"""Tests for anonymization utilities."""

import pytest

from repro.survey import (
    Response,
    ResponseSet,
    anonymize_ids,
    suppress_rare_categories,
)

from tests.survey.test_schema import make_questionnaire
from tests.survey.test_validation import full_answers


def make_set(n=10, scheduler_values=None):
    q = make_questionnaire()
    responses = []
    for i in range(n):
        answers = full_answers()
        if scheduler_values is not None:
            answers["scheduler"] = scheduler_values[i % len(scheduler_values)]
        responses.append(Response(f"user-{i}@princeton.edu", "2024", answers))
    return ResponseSet(q, responses)


class TestAnonymizeIds:
    def test_ids_replaced(self):
        rs = anonymize_ids(make_set(), salt="release-1")
        for r in rs:
            assert r.respondent_id.startswith("anon-")
            assert "@" not in r.respondent_id

    def test_stable_within_salt(self):
        a = anonymize_ids(make_set(), salt="s1")
        b = anonymize_ids(make_set(), salt="s1")
        assert [r.respondent_id for r in a] == [r.respondent_id for r in b]

    def test_differs_across_salts(self):
        a = anonymize_ids(make_set(), salt="s1")
        b = anonymize_ids(make_set(), salt="s2")
        assert [r.respondent_id for r in a] != [r.respondent_id for r in b]

    def test_answers_preserved(self):
        original = make_set()
        rs = anonymize_ids(original, salt="s")
        assert [dict(r.answers) for r in rs] == [dict(r.answers) for r in original]

    def test_empty_salt_rejected(self):
        with pytest.raises(ValueError):
            anonymize_ids(make_set(), salt="")


class TestSuppressRare:
    def test_rare_values_collapsed(self):
        # 8 slurm, 1 pbs, 1 lsf -> pbs/lsf suppressed at k=2.
        rs = make_set(10, ["slurm"] * 8 + ["pbs", "lsf"])
        out = suppress_rare_categories(rs, "scheduler", k=2)
        values = [r.get("scheduler") for r in out]
        assert values.count("slurm") == 8
        assert values.count("other (suppressed)") == 2

    def test_common_values_kept(self):
        rs = make_set(10, ["slurm", "pbs"])
        out = suppress_rare_categories(rs, "scheduler", k=5)
        values = {r.get("scheduler") for r in out}
        assert values == {"slurm", "pbs"}

    def test_k1_suppresses_nothing(self):
        rs = make_set(4, ["slurm", "pbs", "lsf", "flux"])
        out = suppress_rare_categories(rs, "scheduler", k=1)
        assert {r.get("scheduler") for r in out} == {"slurm", "pbs", "lsf", "flux"}

    def test_non_single_choice_rejected(self):
        with pytest.raises(TypeError):
            suppress_rare_categories(make_set(), "languages", k=2)

    def test_bad_k_rejected(self):
        with pytest.raises(ValueError):
            suppress_rare_categories(make_set(), "scheduler", k=0)

    def test_custom_label(self):
        rs = make_set(3, ["slurm", "slurm", "flux"])
        out = suppress_rare_categories(rs, "scheduler", k=2, other_label="redacted")
        assert "redacted" in {r.get("scheduler") for r in out}
