"""Tests for codebook generation."""

import pytest

from repro.survey import Response, ResponseSet, build_codebook

from tests.survey.test_schema import make_questionnaire
from tests.survey.test_validation import full_answers


class TestBuildCodebook:
    def test_entry_per_question(self):
        q = make_questionnaire()
        cb = build_codebook(q)
        assert len(cb) == len(q)
        assert cb.instrument == q.name

    def test_entry_fields(self):
        q = make_questionnaire()
        cb = build_codebook(q)
        entry = cb["languages"]
        assert entry.kind == "multi_choice"
        assert entry.values == ("python", "c", "r")
        assert entry.gated_by is None

    def test_gated_question_documented(self):
        cb = build_codebook(make_questionnaire())
        assert "uses_cluster" in cb["scheduler"].gated_by

    def test_numeric_range_rendered(self):
        cb = build_codebook(make_questionnaire())
        assert "[0, 60]" in cb["years"].values[0]

    def test_likert_labels_rendered(self):
        cb = build_codebook(make_questionnaire())
        values = cb["expertise"].values
        assert values[0].startswith("1=")
        assert values[-1].startswith("5=")

    def test_counts_from_responses(self):
        q = make_questionnaire()
        rs = ResponseSet(
            q,
            [
                Response("r1", "2024", full_answers()),
                Response("r2", "2024", {"uses_cluster": "no"}),
            ],
        )
        cb = build_codebook(q, rs)
        assert cb["uses_cluster"].n_answered == 2
        assert cb["scheduler"].n_answered == 1

    def test_counts_absent_without_responses(self):
        cb = build_codebook(make_questionnaire())
        assert cb["years"].n_answered is None

    def test_mismatched_responses_rejected(self):
        q = make_questionnaire()
        other = make_questionnaire(name="other")
        rs = ResponseSet(other, [])
        with pytest.raises(ValueError):
            build_codebook(q, rs)

    def test_unknown_entry_lookup(self):
        cb = build_codebook(make_questionnaire())
        with pytest.raises(KeyError):
            cb["nope"]

    def test_render_contains_all_keys(self):
        q = make_questionnaire()
        text = build_codebook(q).render()
        for key in q.keys:
            assert key in text
        assert "Codebook" in text

    def test_entry_render_required_star(self):
        cb = build_codebook(make_questionnaire())
        assert "[single_choice*]" in cb["uses_cluster"].render()
        assert "[free_text]" in cb["comments"].render()
