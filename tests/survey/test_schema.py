"""Tests for questionnaire schema and skip logic."""

import pytest

from repro.survey import (
    FreeTextQuestion,
    LikertQuestion,
    MultiChoiceQuestion,
    NumericQuestion,
    Questionnaire,
    SchemaError,
    Section,
    ShowIf,
    SingleChoiceQuestion,
)


def make_questions():
    return [
        SingleChoiceQuestion(
            key="uses_cluster", text="Do you use an HPC cluster?", options=("yes", "no")
        ),
        SingleChoiceQuestion(
            key="scheduler",
            text="Which scheduler?",
            options=("slurm", "pbs", "lsf"),
            allow_other=True,
        ),
        MultiChoiceQuestion(
            key="languages",
            text="Languages used?",
            options=("python", "c", "r"),
        ),
        LikertQuestion(key="expertise", text="Rate expertise"),
        NumericQuestion(key="years", text="Years", minimum=0, maximum=60),
        FreeTextQuestion(key="comments", text="Comments"),
    ]


def make_questionnaire(**kw):
    defaults = dict(
        name="test-instrument",
        questions=make_questions(),
        skip_logic={"scheduler": ShowIf("uses_cluster", ("yes",))},
    )
    defaults.update(kw)
    return Questionnaire(**defaults)


class TestConstruction:
    def test_basic(self):
        q = make_questionnaire()
        assert len(q) == 6
        assert "scheduler" in q
        assert q["languages"].options == ("python", "c", "r")

    def test_keys_in_order(self):
        q = make_questionnaire()
        assert q.keys[0] == "uses_cluster"
        assert q.keys[-1] == "comments"

    def test_unknown_key_lookup(self):
        with pytest.raises(KeyError):
            make_questionnaire()["nope"]

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            make_questionnaire(name=" ")

    def test_no_questions_rejected(self):
        with pytest.raises(SchemaError):
            Questionnaire(name="x", questions=[])

    def test_duplicate_keys_rejected(self):
        qs = make_questions() + [
            SingleChoiceQuestion(key="years_dup", text="t", options=("a", "b"))
        ]
        qs.append(qs[0])
        with pytest.raises(SchemaError):
            Questionnaire(name="x", questions=qs)


class TestSections:
    def test_valid_sections(self):
        q = make_questionnaire(
            sections=[
                Section("Background", ("uses_cluster", "years")),
                Section("Skills", ("languages", "expertise")),
            ]
        )
        assert len(q.sections) == 2

    def test_unknown_key_in_section(self):
        with pytest.raises(SchemaError):
            make_questionnaire(sections=[Section("S", ("nope",))])

    def test_question_in_two_sections(self):
        with pytest.raises(SchemaError):
            make_questionnaire(
                sections=[Section("A", ("years",)), Section("B", ("years",))]
            )

    def test_empty_section_rejected(self):
        with pytest.raises(SchemaError):
            Section("S", ())


class TestSkipLogic:
    def test_gate_hides_question(self):
        q = make_questionnaire()
        shown = q.applicable_keys({"uses_cluster": "no"})
        assert "scheduler" not in shown
        assert "languages" in shown

    def test_gate_shows_question(self):
        q = make_questionnaire()
        shown = q.applicable_keys({"uses_cluster": "yes"})
        assert "scheduler" in shown

    def test_unanswered_gate_hides(self):
        q = make_questionnaire()
        assert "scheduler" not in q.applicable_keys({})

    def test_multichoice_gate_intersects(self):
        qs = make_questions()
        q = Questionnaire(
            name="t",
            questions=qs,
            skip_logic={"expertise": ShowIf("languages", ("python",))},
        )
        assert "expertise" in q.applicable_keys({"languages": ["python", "c"]})
        assert "expertise" not in q.applicable_keys({"languages": ["c"]})

    def test_forward_reference_rejected(self):
        with pytest.raises(SchemaError):
            make_questionnaire(
                skip_logic={"uses_cluster": ShowIf("scheduler", ("slurm",))}
            )

    def test_self_reference_rejected(self):
        with pytest.raises(SchemaError):
            make_questionnaire(
                skip_logic={"scheduler": ShowIf("scheduler", ("slurm",))}
            )

    def test_gate_on_non_choice_rejected(self):
        with pytest.raises(SchemaError):
            make_questionnaire(skip_logic={"comments": ShowIf("years", ("5",))})

    def test_gate_on_unknown_question_rejected(self):
        with pytest.raises(SchemaError):
            make_questionnaire(skip_logic={"scheduler": ShowIf("nope", ("x",))})

    def test_gate_for_unknown_question_rejected(self):
        with pytest.raises(SchemaError):
            make_questionnaire(skip_logic={"nope": ShowIf("uses_cluster", ("yes",))})

    def test_gate_value_not_an_option_rejected(self):
        with pytest.raises(SchemaError):
            make_questionnaire(
                skip_logic={"scheduler": ShowIf("uses_cluster", ("maybe",))}
            )

    def test_gate_value_ok_with_allow_other(self):
        qs = make_questions()
        # scheduler allows 'other', so gating downstream questions on a
        # write-in value is permitted.
        q = Questionnaire(
            name="t",
            questions=qs,
            skip_logic={
                "scheduler": ShowIf("uses_cluster", ("yes",)),
                "comments": ShowIf("scheduler", ("custom-sched",)),
            },
        )
        shown = q.applicable_keys({"uses_cluster": "yes", "scheduler": "custom-sched"})
        assert "comments" in shown

    def test_chained_gates(self):
        """A question gated on a question that was itself hidden stays hidden."""
        q = Questionnaire(
            name="t",
            questions=make_questions(),
            skip_logic={
                "scheduler": ShowIf("uses_cluster", ("yes",)),
                "comments": ShowIf("scheduler", ("slurm",)),
            },
        )
        # uses_cluster=no hides scheduler; comments gated on scheduler must hide
        # too even if a (spurious) scheduler answer is present.
        shown = q.applicable_keys({"uses_cluster": "no", "scheduler": "slurm"})
        assert "scheduler" not in shown
        assert "comments" not in shown

    def test_showif_requires_values(self):
        with pytest.raises(SchemaError):
            ShowIf("x", ())

    def test_showif_matches_none_is_false(self):
        assert not ShowIf("x", ("a",)).matches(None)
