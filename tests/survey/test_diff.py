"""Tests for instrument diffing."""

import pytest

from repro.survey import (
    LikertQuestion,
    MultiChoiceQuestion,
    NumericQuestion,
    Questionnaire,
    ShowIf,
    SingleChoiceQuestion,
    diff_questionnaires,
)


def base_questions():
    return [
        SingleChoiceQuestion(key="uses_cluster", text="Cluster?", options=("yes", "no")),
        MultiChoiceQuestion(key="languages", text="Languages?", options=("python", "c", "r")),
        LikertQuestion(key="expertise", text="Expertise", points=5),
        NumericQuestion(key="years", text="Years", minimum=0, maximum=60),
    ]


def make(questions=None, skip_logic=None, name="wave-a"):
    return Questionnaire(name, questions or base_questions(), skip_logic=skip_logic)


class TestDiffQuestionnaires:
    def test_identical_instruments(self):
        diff = diff_questionnaires(make(), make(name="wave-b"))
        assert diff.comparable
        assert len(diff.identical) == 4
        assert diff.only_in_a == () and diff.only_in_b == ()

    def test_added_and_removed_items(self):
        extra = base_questions() + [
            SingleChoiceQuestion(key="uses_ml", text="ML?", options=("yes", "no"))
        ]
        short = base_questions()[:-1]
        diff = diff_questionnaires(make(short), make(extra, name="b"))
        assert set(diff.only_in_b) == {"uses_ml", "years"}
        assert diff.only_in_a == ()

    def test_option_changes_detected(self):
        changed = base_questions()
        changed[1] = MultiChoiceQuestion(
            key="languages", text="Languages?", options=("python", "c", "julia")
        )
        diff = diff_questionnaires(make(), make(changed, name="b"))
        assert not diff.comparable
        change = diff.changed[0]
        assert change.key == "languages"
        assert any("added: ['julia']" in c for c in change.changes)
        assert any("removed: ['r']" in c for c in change.changes)

    def test_wording_change(self):
        changed = base_questions()
        changed[0] = SingleChoiceQuestion(
            key="uses_cluster", text="Do you use HPC?", options=("yes", "no")
        )
        diff = diff_questionnaires(make(), make(changed, name="b"))
        assert diff.changed[0].changes == ("wording changed",)

    def test_scale_change(self):
        changed = base_questions()
        changed[2] = LikertQuestion(key="expertise", text="Expertise", points=7)
        diff = diff_questionnaires(make(), make(changed, name="b"))
        assert any("scale points: 5 -> 7" in c for c in diff.changed[0].changes)

    def test_numeric_range_change(self):
        changed = base_questions()
        changed[3] = NumericQuestion(key="years", text="Years", minimum=0, maximum=80)
        diff = diff_questionnaires(make(), make(changed, name="b"))
        assert any("range" in c for c in diff.changed[0].changes)

    def test_kind_change(self):
        changed = base_questions()
        changed[3] = SingleChoiceQuestion(
            key="years", text="Years", options=("0-5", "5+")
        )
        diff = diff_questionnaires(make(), make(changed, name="b"))
        assert any("kind changed" in c for c in diff.changed[0].changes)

    def test_gating_change(self):
        gated = make(
            skip_logic={"languages": ShowIf("uses_cluster", ("yes",))}, name="b"
        )
        diff = diff_questionnaires(make(), gated)
        assert any("gating changed" in c for ch in diff.changed for c in ch.changes)

    def test_render(self):
        changed = base_questions()
        changed[0] = SingleChoiceQuestion(
            key="uses_cluster", text="HPC?", options=("yes", "no")
        )
        diff = diff_questionnaires(make(changed), make(name="b"))
        text = diff.render()
        assert "changed items:   1" in text
        assert "~ uses_cluster" in text

    def test_canonical_instrument_self_identical(self):
        from repro.core import build_instrument

        diff = diff_questionnaires(build_instrument(), build_instrument())
        assert diff.comparable
        assert len(diff.identical) == 26
