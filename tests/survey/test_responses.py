"""Tests for response containers and columnar views."""

import numpy as np
import pytest

from repro.survey import MISSING, Response, ResponseSet

from tests.survey.test_schema import make_questionnaire


def make_response(i, cohort="2024", **answers):
    return Response(respondent_id=f"r{i}", cohort=cohort, answers=answers)


def make_set(responses=None):
    q = make_questionnaire()
    if responses is None:
        responses = [
            make_response(
                1, uses_cluster="yes", scheduler="slurm", languages=["python", "c"],
                expertise=4, years=10,
            ),
            make_response(
                2, uses_cluster="no", languages=["r"], expertise=2, years=3,
            ),
            make_response(
                3, cohort="2011", uses_cluster="yes", scheduler="pbs",
                languages=["c"], expertise=5, years=20,
            ),
        ]
    return ResponseSet(q, responses)


class TestResponse:
    def test_get_and_answered(self):
        r = make_response(1, expertise=4)
        assert r.get("expertise") == 4
        assert r.get("years") is MISSING
        assert r.answered("expertise")
        assert not r.answered("years")

    def test_explicit_missing_sentinel(self):
        r = Response("r1", "2024", {"years": MISSING})
        assert not r.answered("years")
        assert r.get("years", None) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            Response("", "2024")
        with pytest.raises(ValueError):
            Response("r1", "")


class TestResponseSet:
    def test_len_iter_index(self):
        rs = make_set()
        assert len(rs) == 3
        assert rs[0].respondent_id == "r1"
        assert sum(1 for _ in rs) == 3

    def test_duplicate_ids_rejected(self):
        q = make_questionnaire()
        with pytest.raises(ValueError):
            ResponseSet(q, [make_response(1), make_response(1)])

    def test_cohorts_sorted(self):
        assert make_set().cohorts == ("2011", "2024")

    def test_by_cohort(self):
        rs = make_set()
        assert len(rs.by_cohort("2024")) == 2
        assert len(rs.by_cohort("2011")) == 1
        assert len(rs.by_cohort("1999")) == 0

    def test_split_cohorts_partitions(self):
        rs = make_set()
        parts = rs.split_cohorts()
        assert sum(len(p) for p in parts.values()) == len(rs)

    def test_filter(self):
        rs = make_set()
        clusters = rs.filter(lambda r: r.get("uses_cluster") == "yes")
        assert len(clusters) == 2

    def test_merge(self):
        rs = make_set()
        other = ResponseSet(rs.questionnaire, [make_response(9, expertise=1)])
        merged = rs.merge(other)
        assert len(merged) == 4

    def test_merge_different_instruments_rejected(self):
        rs = make_set()
        other_q = make_questionnaire(name="different")
        other = ResponseSet(other_q, [make_response(9)])
        with pytest.raises(ValueError):
            rs.merge(other)


class TestColumnarViews:
    def test_column_with_missing(self):
        rs = make_set()
        col = rs.column("scheduler")
        assert col[0] == "slurm"
        assert col[1] is None
        assert col[2] == "pbs"

    def test_column_unknown_key(self):
        with pytest.raises(KeyError):
            make_set().column("nope")

    def test_column_is_cached(self):
        rs = make_set()
        assert rs.column("years") is rs.column("years")

    def test_answered_mask(self):
        rs = make_set()
        assert rs.answered_mask("scheduler").tolist() == [True, False, True]

    def test_numeric_column(self):
        rs = make_set()
        years = rs.numeric_column("years")
        assert years.tolist() == [10.0, 3.0, 20.0]
        assert rs.numeric_column("expertise").dtype == float

    def test_numeric_column_nan_for_missing(self):
        q = make_questionnaire()
        rs = ResponseSet(q, [make_response(1)])
        assert np.isnan(rs.numeric_column("years")[0])

    def test_numeric_column_type_error(self):
        with pytest.raises(TypeError):
            make_set().numeric_column("languages")

    def test_selection_matrix(self):
        rs = make_set()
        mat = rs.selection_matrix("languages")
        assert mat.shape == (3, 3)  # python, c, r
        assert mat[0].tolist() == [True, True, False]
        assert mat[1].tolist() == [False, False, True]
        assert mat[2].tolist() == [False, True, False]

    def test_selection_matrix_missing_row_all_false(self):
        q = make_questionnaire()
        rs = ResponseSet(q, [make_response(1)])
        assert not rs.selection_matrix("languages").any()

    def test_selection_matrix_type_error(self):
        with pytest.raises(TypeError):
            make_set().selection_matrix("uses_cluster")


class TestCompletionRate:
    def test_full_completion(self):
        rs = make_set(
            [
                make_response(
                    1,
                    uses_cluster="no",
                    languages=["python"],
                    expertise=3,
                    years=1,
                    comments="",
                )
            ]
        )
        assert rs.completion_rate() == pytest.approx(1.0)

    def test_partial_completion(self):
        rs = make_set([make_response(1, uses_cluster="no")])
        # Applicable: uses_cluster, languages, expertise, years, comments (5).
        assert rs.completion_rate() == pytest.approx(1 / 5)

    def test_empty_set_rejected(self):
        rs = make_set([])
        with pytest.raises(ValueError):
            rs.completion_rate()
