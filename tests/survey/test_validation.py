"""Tests for response validation."""

import pytest

from repro.survey import Response, ResponseSet, validate_response, validate_response_set
from repro.survey.validation import IssueKind

from tests.survey.test_schema import make_questionnaire


def full_answers(**overrides):
    answers = dict(
        uses_cluster="yes",
        scheduler="slurm",
        languages=["python"],
        expertise=3,
        years=5,
    )
    answers.update(overrides)
    return answers


class TestValidateResponse:
    def test_clean_response(self):
        q = make_questionnaire()
        r = Response("r1", "2024", full_answers())
        assert validate_response(q, r) == []

    def test_unknown_key(self):
        q = make_questionnaire()
        r = Response("r1", "2024", full_answers(favorite_editor="vim"))
        issues = validate_response(q, r)
        assert [i.kind for i in issues] == [IssueKind.UNKNOWN_KEY]
        assert issues[0].question_key == "favorite_editor"

    def test_invalid_value(self):
        q = make_questionnaire()
        r = Response("r1", "2024", full_answers(expertise=9))
        issues = validate_response(q, r)
        assert [i.kind for i in issues] == [IssueKind.INVALID_VALUE]

    def test_missing_required(self):
        q = make_questionnaire()
        answers = full_answers()
        del answers["languages"]
        r = Response("r1", "2024", answers)
        issues = validate_response(q, r)
        assert [i.kind for i in issues] == [IssueKind.MISSING_REQUIRED]
        assert issues[0].question_key == "languages"

    def test_optional_free_text_not_flagged(self):
        q = make_questionnaire()
        r = Response("r1", "2024", full_answers())  # no comments given
        assert all(i.question_key != "comments" for i in validate_response(q, r))

    def test_not_applicable_answer_flagged(self):
        q = make_questionnaire()
        r = Response("r1", "2024", full_answers(uses_cluster="no"))
        issues = validate_response(q, r)
        kinds = {i.kind for i in issues}
        assert IssueKind.NOT_APPLICABLE in kinds
        assert any(i.question_key == "scheduler" for i in issues)

    def test_hidden_question_missing_not_flagged(self):
        q = make_questionnaire()
        answers = full_answers(uses_cluster="no")
        del answers["scheduler"]
        r = Response("r1", "2024", answers)
        assert validate_response(q, r) == []

    def test_writein_accepted_for_allow_other(self):
        q = make_questionnaire()
        r = Response("r1", "2024", full_answers(scheduler="flux"))
        assert validate_response(q, r) == []


class TestValidateResponseSet:
    def test_report_aggregates(self):
        q = make_questionnaire()
        rs = ResponseSet(
            q,
            [
                Response("r1", "2024", full_answers()),
                Response("r2", "2024", full_answers(expertise="high")),
                Response("r3", "2024", {"uses_cluster": "yes"}),
            ],
        )
        report = validate_response_set(rs)
        assert report.n_responses == 3
        assert not report.ok  # r2 has an invalid value
        assert not report.clean
        assert len(report.of_kind(IssueKind.INVALID_VALUE)) == 1
        assert len(report.of_kind(IssueKind.MISSING_REQUIRED)) >= 3

    def test_by_respondent_grouping(self):
        q = make_questionnaire()
        rs = ResponseSet(
            q,
            [
                Response("good", "2024", full_answers()),
                Response("bad", "2024", full_answers(years=-5, expertise=0)),
            ],
        )
        grouped = validate_response_set(rs).by_respondent()
        assert "good" not in grouped
        assert len(grouped["bad"]) == 2

    def test_ok_with_only_quality_issues(self):
        q = make_questionnaire()
        rs = ResponseSet(q, [Response("r1", "2024", {"uses_cluster": "no"})])
        report = validate_response_set(rs)
        assert report.ok  # missing answers are quality issues, not fatal
        assert not report.clean

    def test_clean_empty_set(self):
        q = make_questionnaire()
        report = validate_response_set(ResponseSet(q, []))
        assert report.clean and report.ok
