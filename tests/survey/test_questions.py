"""Tests for question types."""

import pytest
from hypothesis import given, strategies as st

from repro.survey import (
    FreeTextQuestion,
    LikertQuestion,
    MultiChoiceQuestion,
    NumericQuestion,
    QuestionKind,
    SingleChoiceQuestion,
)


class TestSingleChoice:
    def make(self, **kw):
        defaults = dict(key="lang", text="Primary language?", options=("python", "c"))
        defaults.update(kw)
        return SingleChoiceQuestion(**defaults)

    def test_kind(self):
        assert self.make().kind is QuestionKind.SINGLE_CHOICE

    def test_accepts_listed_option(self):
        q = self.make()
        assert q.accepts("python")
        assert not q.accepts("fortran")
        assert not q.accepts(3)

    def test_allow_other_accepts_writein(self):
        q = self.make(allow_other=True)
        assert q.accepts("zig")
        assert not q.accepts("   ")

    def test_rejects_bad_key(self):
        with pytest.raises(ValueError):
            self.make(key="BadKey")
        with pytest.raises(ValueError):
            self.make(key="1abc")

    def test_rejects_too_few_options(self):
        with pytest.raises(ValueError):
            self.make(options=("python",))

    def test_rejects_duplicate_options(self):
        with pytest.raises(ValueError):
            self.make(options=("python", "python"))

    def test_rejects_blank_option(self):
        with pytest.raises(ValueError):
            self.make(options=("python", " "))

    def test_rejects_empty_text(self):
        with pytest.raises(ValueError):
            self.make(text="  ")


class TestMultiChoice:
    def make(self, **kw):
        defaults = dict(
            key="langs", text="All languages used?", options=("python", "c", "r")
        )
        defaults.update(kw)
        return MultiChoiceQuestion(**defaults)

    def test_accepts_subsets(self):
        q = self.make()
        assert q.accepts([])
        assert q.accepts(["python"])
        assert q.accepts(("python", "c"))

    def test_rejects_unknown_member(self):
        assert not self.make().accepts(["python", "zig"])

    def test_rejects_duplicates(self):
        assert not self.make().accepts(["python", "python"])

    def test_rejects_non_sequence(self):
        assert not self.make().accepts("python")

    def test_min_max_selected(self):
        q = self.make(min_selected=1, max_selected=2)
        assert not q.accepts([])
        assert q.accepts(["python"])
        assert not q.accepts(["python", "c", "r"])

    def test_bad_bounds(self):
        with pytest.raises(ValueError):
            self.make(min_selected=-1)
        with pytest.raises(ValueError):
            self.make(min_selected=2, max_selected=1)


class TestLikert:
    def test_accepts_in_scale(self):
        q = LikertQuestion(key="expertise", text="Rate your expertise", points=5)
        for v in range(1, 6):
            assert q.accepts(v)
        assert not q.accepts(0)
        assert not q.accepts(6)

    def test_rejects_bool_and_float(self):
        q = LikertQuestion(key="expertise", text="Rate")
        assert not q.accepts(True)
        assert not q.accepts(3.0)

    def test_rejects_tiny_scale(self):
        with pytest.raises(ValueError):
            LikertQuestion(key="x", text="t", points=1)


class TestNumeric:
    def test_range_enforced(self):
        q = NumericQuestion(key="years", text="Years coding", minimum=0, maximum=60)
        assert q.accepts(10)
        assert q.accepts(0)
        assert not q.accepts(-1)
        assert not q.accepts(61)

    def test_integer_only(self):
        q = NumericQuestion(key="n", text="N", integer_only=True)
        assert q.accepts(4)
        assert not q.accepts(4.5)

    def test_rejects_nan_and_bool(self):
        q = NumericQuestion(key="n", text="N")
        assert not q.accepts(float("nan"))
        assert not q.accepts(True)

    def test_bad_range(self):
        with pytest.raises(ValueError):
            NumericQuestion(key="n", text="N", minimum=5, maximum=1)


class TestFreeText:
    def test_length_cap(self):
        q = FreeTextQuestion(key="comments", text="Anything else?", max_length=10)
        assert q.accepts("short")
        assert not q.accepts("x" * 11)
        assert not q.accepts(42)

    def test_default_not_required(self):
        assert not FreeTextQuestion(key="c", text="t").required

    def test_bad_max_length(self):
        with pytest.raises(ValueError):
            FreeTextQuestion(key="c", text="t", max_length=0)


@given(value=st.integers(min_value=-10, max_value=20), points=st.integers(2, 10))
def test_property_likert_accept_iff_in_range(value, points):
    q = LikertQuestion(key="q", text="t", points=points)
    assert q.accepts(value) == (1 <= value <= points)
