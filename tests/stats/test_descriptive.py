"""Tests for descriptive statistics helpers."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.stats import (
    ecdf,
    geometric_mean,
    gini_coefficient,
    quantiles,
    summarize,
    trimmed_mean,
)


class TestEcdf:
    def test_shape_and_monotonicity(self):
        x, y = ecdf([3.0, 1.0, 2.0])
        assert x.tolist() == [1.0, 2.0, 3.0]
        assert y.tolist() == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_last_point_is_one(self):
        _, y = ecdf(np.random.default_rng(0).normal(size=100))
        assert y[-1] == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ecdf([])


class TestQuantiles:
    def test_median_of_known(self):
        q = quantiles(np.arange(101, dtype=float), qs=(0.5,))
        assert q[0.5] == pytest.approx(50.0)

    def test_keys_match_request(self):
        q = quantiles([1.0, 2.0], qs=(0.1, 0.9))
        assert set(q) == {0.1, 0.9}


class TestSummarize:
    def test_known_sample(self):
        s = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
        assert s.n == 5
        assert s.mean == pytest.approx(3.0)
        assert s.median == pytest.approx(3.0)
        assert s.minimum == 1.0 and s.maximum == 5.0

    def test_single_value_zero_std(self):
        s = summarize([7.0])
        assert s.std == 0.0

    def test_as_dict_round_trip(self):
        d = summarize([1.0, 2.0]).as_dict()
        assert d["n"] == 2 and "median" in d

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])


class TestGeometricMean:
    def test_known(self):
        assert geometric_mean([1.0, 100.0]) == pytest.approx(10.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_le_arithmetic_mean(self):
        rng = np.random.default_rng(2)
        data = rng.lognormal(size=200)
        assert geometric_mean(data) <= data.mean()


class TestTrimmedMean:
    def test_outlier_resistance(self):
        data = [1.0] * 18 + [1000.0, -1000.0]
        assert trimmed_mean(data, 0.1) == pytest.approx(1.0)

    def test_zero_trim_is_mean(self):
        data = [1.0, 2.0, 3.0]
        assert trimmed_mean(data, 0.0) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            trimmed_mean([], 0.1)
        with pytest.raises(ValueError):
            trimmed_mean([1.0], 0.5)


class TestGini:
    def test_perfect_equality(self):
        assert gini_coefficient(np.ones(100)) == pytest.approx(0.0, abs=1e-9)

    def test_perfect_concentration(self):
        values = np.zeros(1000)
        values[0] = 100.0
        assert gini_coefficient(values) == pytest.approx(1.0, abs=2e-3)

    def test_all_zero_is_zero(self):
        assert gini_coefficient(np.zeros(10)) == 0.0

    def test_scale_invariant(self):
        rng = np.random.default_rng(4)
        v = rng.exponential(size=300)
        assert gini_coefficient(v) == pytest.approx(gini_coefficient(v * 1000))

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            gini_coefficient([-1.0, 2.0])


@given(
    data=st.lists(
        st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
        min_size=1,
        max_size=100,
    )
)
def test_property_gini_in_unit_interval(data):
    g = gini_coefficient(data)
    assert -1e-9 <= g < 1.0


@given(
    data=st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=100,
    )
)
def test_property_summary_ordering(data):
    s = summarize(data)
    assert s.minimum <= s.q25 <= s.median <= s.q75 <= s.maximum
    # Mean may fall an ulp outside [min, max] from float summation.
    eps = 1e-9 * max(1.0, abs(s.minimum), abs(s.maximum))
    assert s.minimum - eps <= s.mean <= s.maximum + eps
