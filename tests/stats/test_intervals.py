"""Unit and property tests for binomial interval estimators."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.stats import (
    agresti_coull_interval,
    clopper_pearson_interval,
    wald_interval,
    wilson_interval,
)

ALL_METHODS = [
    wilson_interval,
    agresti_coull_interval,
    clopper_pearson_interval,
    wald_interval,
]


class TestWilson:
    def test_half_is_symmetric(self):
        ci = wilson_interval(50, 100)
        assert ci.estimate == pytest.approx(0.5)
        assert ci.low == pytest.approx(1.0 - ci.high, abs=1e-12)

    def test_known_value(self):
        # Canonical check: 10/100 at 95% gives approx [0.0552, 0.1744].
        ci = wilson_interval(10, 100)
        assert ci.low == pytest.approx(0.0552, abs=2e-3)
        assert ci.high == pytest.approx(0.1744, abs=2e-3)

    def test_zero_successes_has_zero_lower(self):
        ci = wilson_interval(0, 20)
        assert ci.low == 0.0
        assert ci.high > 0.0

    def test_all_successes_has_one_upper(self):
        ci = wilson_interval(20, 20)
        assert ci.high == 1.0
        assert ci.low < 1.0

    def test_narrower_with_more_data(self):
        small = wilson_interval(5, 10)
        large = wilson_interval(500, 1000)
        assert large.width < small.width

    def test_higher_confidence_is_wider(self):
        narrow = wilson_interval(30, 100, confidence=0.90)
        wide = wilson_interval(30, 100, confidence=0.99)
        assert wide.width > narrow.width


class TestValidationErrors:
    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_rejects_zero_trials(self, method):
        with pytest.raises(ValueError):
            method(0, 0)

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_rejects_successes_above_trials(self, method):
        with pytest.raises(ValueError):
            method(11, 10)

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_rejects_bad_confidence(self, method):
        with pytest.raises(ValueError):
            method(1, 10, confidence=1.0)
        with pytest.raises(ValueError):
            method(1, 10, confidence=0.0)


class TestCrossMethod:
    def test_clopper_pearson_is_most_conservative(self):
        # Exact interval should contain the Wilson interval here.
        cp = clopper_pearson_interval(7, 25)
        w = wilson_interval(7, 25)
        assert cp.low <= w.low + 1e-9
        assert cp.high >= w.high - 1e-9

    def test_wald_degenerate_at_extremes(self):
        ci = wald_interval(0, 30)
        assert ci.low == 0.0 and ci.high == 0.0  # the known Wald pathology

    def test_methods_agree_for_large_n(self):
        results = [m(400, 1000) for m in ALL_METHODS]
        lows = [r.low for r in results]
        highs = [r.high for r in results]
        assert max(lows) - min(lows) < 0.01
        assert max(highs) - min(highs) < 0.01

    def test_interval_helpers(self):
        ci = wilson_interval(3, 12)
        assert ci.contains(ci.estimate)
        est, lo, hi = ci.as_tuple()
        assert lo <= est <= hi


@given(
    trials=st.integers(min_value=1, max_value=500),
    data=st.data(),
    confidence=st.sampled_from([0.8, 0.9, 0.95, 0.99]),
)
def test_property_interval_sane(trials, data, confidence):
    """All estimators produce ordered intervals containing the estimate (except
    Wald at extremes, which may exclude via clipping but stays ordered)."""
    successes = data.draw(st.integers(min_value=0, max_value=trials))
    for method in (wilson_interval, agresti_coull_interval, clopper_pearson_interval):
        ci = method(successes, trials, confidence)
        assert 0.0 <= ci.low <= ci.high <= 1.0
        assert ci.low <= successes / trials <= ci.high


@given(
    trials=st.integers(min_value=2, max_value=300),
    data=st.data(),
)
def test_property_wilson_monotone_in_successes(trials, data):
    s = data.draw(st.integers(min_value=0, max_value=trials - 1))
    a = wilson_interval(s, trials)
    b = wilson_interval(s + 1, trials)
    assert b.low >= a.low - 1e-12
    assert b.high >= a.high - 1e-12


@given(trials=st.integers(min_value=1, max_value=200), data=st.data())
def test_property_clopper_pearson_coverage_is_exactish(trials, data):
    """CP interval at x successes always contains x/n."""
    s = data.draw(st.integers(min_value=0, max_value=trials))
    ci = clopper_pearson_interval(s, trials)
    assert ci.contains(s / trials)
    assert not math.isnan(ci.low) and not math.isnan(ci.high)
