"""Tests for contingency and rank hypothesis tests."""

import numpy as np
import pytest
from scipy import stats as sps
from hypothesis import given, strategies as st

from repro.stats import (
    chi_square_test,
    fisher_exact_2x2,
    g_test,
    mann_whitney_u,
    two_proportion_z_test,
)


class TestChiSquare:
    def test_matches_scipy(self):
        table = [[30, 10], [20, 40]]
        result = chi_square_test(table)
        ref = sps.chi2_contingency(np.array(table), correction=False)
        assert result.statistic == pytest.approx(ref.statistic)
        assert result.p_value == pytest.approx(ref.pvalue)
        assert result.dof == 1

    def test_independent_table_not_significant(self):
        # Perfectly proportional rows -> statistic 0, p = 1.
        result = chi_square_test([[10, 20], [30, 60]])
        assert result.statistic == pytest.approx(0.0, abs=1e-9)
        assert result.p_value == pytest.approx(1.0)
        assert not result.significant()

    def test_strong_association_significant(self):
        result = chi_square_test([[90, 10], [10, 90]])
        assert result.significant(0.001)

    def test_drops_empty_margins(self):
        with_empty = chi_square_test([[30, 10, 0], [20, 40, 0]])
        without = chi_square_test([[30, 10], [20, 40]])
        assert with_empty.statistic == pytest.approx(without.statistic)
        assert with_empty.dof == without.dof

    def test_degenerate_after_dropping(self):
        result = chi_square_test([[5, 0], [7, 0]])
        assert result.p_value == 1.0
        assert result.dof == 0

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            chi_square_test([1, 2, 3])
        with pytest.raises(ValueError):
            chi_square_test([[1, 2]])
        with pytest.raises(ValueError):
            chi_square_test([[1, -2], [3, 4]])
        with pytest.raises(ValueError):
            chi_square_test([[0, 0], [0, 0]])

    def test_reports_expected_counts(self):
        result = chi_square_test([[30, 10], [20, 40]])
        assert result.details["min_expected"] > 0
        assert result.details["expected"].shape == (2, 2)


class TestGTest:
    def test_close_to_chi_square_for_big_counts(self):
        table = [[300, 100], [200, 400]]
        g = g_test(table)
        chi = chi_square_test(table)
        assert g.statistic == pytest.approx(chi.statistic, rel=0.05)

    def test_zero_cells_are_handled(self):
        result = g_test([[10, 0], [5, 8]])
        assert np.isfinite(result.statistic)
        assert 0 <= result.p_value <= 1

    def test_independence_gives_zero(self):
        result = g_test([[10, 20], [30, 60]])
        assert result.statistic == pytest.approx(0.0, abs=1e-9)


class TestFisher:
    def test_matches_scipy(self):
        table = [[8, 2], [1, 5]]
        result = fisher_exact_2x2(table)
        odds, p = sps.fisher_exact(np.array(table))
        assert result.statistic == pytest.approx(odds)
        assert result.p_value == pytest.approx(p)

    def test_requires_2x2(self):
        with pytest.raises(ValueError):
            fisher_exact_2x2([[1, 2, 3], [4, 5, 6]])


class TestTwoProportionZ:
    def test_equal_proportions_not_significant(self):
        result = two_proportion_z_test(30, 100, 30, 100)
        assert result.statistic == pytest.approx(0.0)
        assert result.p_value == pytest.approx(1.0)

    def test_clear_difference_significant(self):
        result = two_proportion_z_test(80, 100, 20, 100)
        assert result.significant(1e-6)

    def test_sign_of_statistic(self):
        up = two_proportion_z_test(60, 100, 40, 100)
        down = two_proportion_z_test(40, 100, 60, 100)
        assert up.statistic > 0 > down.statistic
        assert up.p_value == pytest.approx(down.p_value)

    def test_degenerate_all_zero(self):
        result = two_proportion_z_test(0, 50, 0, 70)
        assert result.p_value == 1.0

    def test_degenerate_all_one(self):
        result = two_proportion_z_test(50, 50, 70, 70)
        assert result.p_value == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            two_proportion_z_test(5, 0, 1, 10)
        with pytest.raises(ValueError):
            two_proportion_z_test(11, 10, 1, 10)

    def test_matches_chi_square_squared(self):
        # z^2 for the pooled 2-prop test equals the 2x2 chi-square statistic.
        z = two_proportion_z_test(30, 100, 45, 120)
        chi = chi_square_test([[30, 70], [45, 75]])
        assert z.statistic**2 == pytest.approx(chi.statistic)


class TestMannWhitney:
    def test_matches_scipy_no_ties(self):
        rng = np.random.default_rng(42)
        a = rng.normal(0, 1, 30)
        b = rng.normal(0.8, 1, 35)
        result = mann_whitney_u(a, b)
        ref = sps.mannwhitneyu(a, b, alternative="two-sided", method="asymptotic")
        assert result.statistic == pytest.approx(ref.statistic)
        assert result.p_value == pytest.approx(ref.pvalue, rel=0.02)

    def test_likert_ties(self):
        a = [5, 5, 4, 4, 4, 3, 5, 4]
        b = [2, 3, 2, 1, 3, 2, 3, 2]
        result = mann_whitney_u(a, b)
        assert result.significant(0.01)

    def test_identical_samples(self):
        result = mann_whitney_u([3, 3, 3], [3, 3, 3])
        assert result.p_value == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mann_whitney_u([], [1.0])


@given(
    a=st.integers(min_value=0, max_value=60),
    b=st.integers(min_value=0, max_value=60),
    c=st.integers(min_value=0, max_value=60),
    d=st.integers(min_value=0, max_value=60),
)
def test_property_chi_square_p_in_range(a, b, c, d):
    if (a + b) == 0 or (c + d) == 0 or (a + c) == 0 or (b + d) == 0:
        return  # empty margins collapse to the degenerate branch
    result = chi_square_test([[a, b], [c, d]])
    assert 0.0 <= result.p_value <= 1.0
    assert result.statistic >= 0.0


@given(
    n1=st.integers(min_value=1, max_value=80),
    n2=st.integers(min_value=1, max_value=80),
    data=st.data(),
)
def test_property_two_prop_symmetry(n1, n2, data):
    s1 = data.draw(st.integers(min_value=0, max_value=n1))
    s2 = data.draw(st.integers(min_value=0, max_value=n2))
    ab = two_proportion_z_test(s1, n1, s2, n2)
    ba = two_proportion_z_test(s2, n2, s1, n1)
    assert ab.p_value == pytest.approx(ba.p_value)
    assert ab.statistic == pytest.approx(-ba.statistic)
