"""Tests for post-stratification and raking."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.stats import (
    PostStratificationError,
    effective_sample_size,
    post_stratify,
    rake_weights,
    weighted_mean,
    weighted_proportion,
)


class TestPostStratify:
    def test_balanced_sample_gets_unit_weights(self):
        strata = ["bio"] * 50 + ["phys"] * 50
        w = post_stratify(strata, {"bio": 0.5, "phys": 0.5})
        assert w == pytest.approx(np.ones(100))

    def test_reweights_to_population(self):
        # Sample is 80/20 but population is 50/50.
        strata = ["bio"] * 80 + ["phys"] * 20
        w = post_stratify(strata, {"bio": 0.5, "phys": 0.5})
        bio_share = w[:80].sum() / w.sum()
        assert bio_share == pytest.approx(0.5)
        assert w.mean() == pytest.approx(1.0)

    def test_weighted_proportion_uses_weights(self):
        strata = ["bio"] * 80 + ["phys"] * 20
        uses_gpu = [True] * 80 + [False] * 20  # all bio use GPU
        w = post_stratify(strata, {"bio": 0.5, "phys": 0.5})
        assert weighted_proportion(uses_gpu, w) == pytest.approx(0.5)

    def test_renormalizes_partial_shares(self):
        # Population shares include a stratum absent from the sample.
        strata = ["bio"] * 10 + ["phys"] * 10
        w = post_stratify(strata, {"bio": 0.4, "phys": 0.4, "chem": 0.2})
        assert w.mean() == pytest.approx(1.0)
        assert w[:10].sum() / w.sum() == pytest.approx(0.5)

    def test_missing_share_raises(self):
        with pytest.raises(PostStratificationError):
            post_stratify(["bio", "geo"], {"bio": 1.0})

    def test_empty_sample_raises(self):
        with pytest.raises(PostStratificationError):
            post_stratify([], {"bio": 1.0})

    def test_zero_total_share_raises(self):
        with pytest.raises(PostStratificationError):
            post_stratify(["bio"], {"bio": 0.0})


class TestRaking:
    def test_single_margin_equals_post_stratification(self):
        strata = ["a"] * 30 + ["b"] * 70
        target = {"a": 0.5, "b": 0.5}
        raked = rake_weights([strata], [target])
        ps = post_stratify(strata, target)
        assert raked == pytest.approx(ps)

    def test_two_margins_converge(self):
        rng = np.random.default_rng(5)
        fields = rng.choice(["bio", "phys", "chem"], size=300).tolist()
        stages = rng.choice(["phd", "postdoc", "faculty"], size=300).tolist()
        field_target = {"bio": 0.4, "phys": 0.35, "chem": 0.25}
        stage_target = {"phd": 0.5, "postdoc": 0.3, "faculty": 0.2}
        w = rake_weights([fields, stages], [field_target, stage_target])
        total = w.sum()
        for label, share in field_target.items():
            achieved = w[np.array(fields) == label].sum() / total
            assert achieved == pytest.approx(share, abs=1e-6)
        for label, share in stage_target.items():
            achieved = w[np.array(stages) == label].sum() / total
            assert achieved == pytest.approx(share, abs=1e-6)

    def test_mismatched_margin_lengths_raise(self):
        with pytest.raises(PostStratificationError):
            rake_weights([["a", "b"], ["x"]], [{"a": 0.5, "b": 0.5}, {"x": 1.0}])

    def test_no_margins_raise(self):
        with pytest.raises(PostStratificationError):
            rake_weights([], [])

    def test_unknown_label_raises(self):
        with pytest.raises(PostStratificationError):
            rake_weights([["a", "b"]], [{"a": 1.0}])


class TestWeightedStats:
    def test_weighted_mean_basic(self):
        assert weighted_mean([1.0, 3.0], [1.0, 3.0]) == pytest.approx(2.5)

    def test_weighted_mean_validation(self):
        with pytest.raises(ValueError):
            weighted_mean([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            weighted_mean([], [])
        with pytest.raises(ValueError):
            weighted_mean([1.0], [0.0])

    def test_effective_sample_size_uniform(self):
        assert effective_sample_size(np.ones(50)) == pytest.approx(50.0)

    def test_effective_sample_size_shrinks_with_variance(self):
        uneven = effective_sample_size([1.0] * 25 + [5.0] * 25)
        assert uneven < 50.0

    def test_effective_sample_size_validation(self):
        with pytest.raises(ValueError):
            effective_sample_size([])
        with pytest.raises(ValueError):
            effective_sample_size([-1.0])
        with pytest.raises(ValueError):
            effective_sample_size([0.0, 0.0])


@settings(max_examples=50, deadline=None)
@given(
    counts=st.lists(st.integers(min_value=1, max_value=40), min_size=2, max_size=5),
    shares=st.lists(st.floats(min_value=0.05, max_value=1.0), min_size=2, max_size=5),
)
def test_property_post_stratify_hits_targets(counts, shares):
    k = min(len(counts), len(shares))
    counts, shares = counts[:k], np.array(shares[:k])
    shares = shares / shares.sum()
    labels = [f"s{i}" for i in range(k)]
    strata = [lab for lab, c in zip(labels, counts) for _ in range(c)]
    target = dict(zip(labels, shares.tolist()))
    w = rake_weights([strata], [target])
    arr = np.array(strata)
    for lab, share in target.items():
        achieved = w[arr == lab].sum() / w.sum()
        assert achieved == pytest.approx(share, abs=1e-6)
    assert w.mean() == pytest.approx(1.0)
