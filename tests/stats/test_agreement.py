"""Tests for inter-coder agreement measures."""

import pytest
from hypothesis import given, strategies as st

from repro.stats import cohens_kappa, multilabel_kappa, percent_agreement


class TestPercentAgreement:
    def test_perfect(self):
        assert percent_agreement(["a", "b"], ["a", "b"]) == 1.0

    def test_half(self):
        assert percent_agreement(["a", "b"], ["a", "c"]) == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            percent_agreement(["a"], ["a", "b"])
        with pytest.raises(ValueError):
            percent_agreement([], [])


class TestCohensKappa:
    def test_perfect_agreement(self):
        assert cohens_kappa(["x", "y", "x"], ["x", "y", "x"]) == pytest.approx(1.0)

    def test_chance_level_near_zero(self):
        # Coders independent: kappa ~ 0 over a balanced design.
        a = ["x", "x", "y", "y"] * 25
        b = ["x", "y", "x", "y"] * 25
        assert abs(cohens_kappa(a, b)) < 0.05

    def test_known_value(self):
        # Classic 2x2 worked example: 45/15/25/15 -> kappa ~ 0.1304.
        a = ["+"] * 60 + ["-"] * 40
        b = ["+"] * 45 + ["-"] * 15 + ["+"] * 25 + ["-"] * 15
        assert cohens_kappa(a, b) == pytest.approx(0.1304, abs=1e-3)

    def test_worse_than_chance_negative(self):
        a = ["x", "y"] * 30
        b = ["y", "x"] * 30
        assert cohens_kappa(a, b) < 0

    def test_degenerate_single_label(self):
        assert cohens_kappa(["x"] * 10, ["x"] * 10) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            cohens_kappa(["a"], [])


class TestMultilabelKappa:
    def test_per_label_values(self):
        a = [frozenset({"q"}), frozenset({"q", "s"}), frozenset()]
        b = [frozenset({"q"}), frozenset({"s"}), frozenset()]
        result = multilabel_kappa(a, b, ["q", "s"])
        assert result["s"] == pytest.approx(1.0)
        assert result["q"] < 1.0

    def test_keyword_coder_self_agreement(self, study):
        """The deterministic topic coder agrees with itself perfectly."""
        from repro.text import TOPIC_KEYWORDS, code_challenges

        coded_a = code_challenges(study.current)
        coded_b = code_challenges(study.current)
        ids = sorted(coded_a.per_respondent)
        sets_a = [coded_a.per_respondent[i] for i in ids]
        sets_b = [coded_b.per_respondent[i] for i in ids]
        result = multilabel_kappa(sets_a, sets_b, list(TOPIC_KEYWORDS))
        assert all(v == 1.0 for v in result.values())

    def test_validation(self):
        with pytest.raises(ValueError):
            multilabel_kappa([frozenset()], [frozenset()], [])


@given(
    labels=st.lists(st.sampled_from(["a", "b", "c"]), min_size=2, max_size=60),
)
def test_property_kappa_bounded_and_symmetric(labels):
    import random

    rng = random.Random(0)
    other = [rng.choice(["a", "b", "c"]) for _ in labels]
    k_ab = cohens_kappa(labels, other)
    k_ba = cohens_kappa(other, labels)
    assert -1.0 - 1e-9 <= k_ab <= 1.0 + 1e-9
    assert k_ab == pytest.approx(k_ba)
