"""Tests for effect-size measures."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.stats import (
    cohens_h,
    cohens_w,
    cramers_v,
    odds_ratio,
    rank_biserial,
    risk_difference,
    risk_ratio,
)


class TestCramersV:
    def test_perfect_association(self):
        assert cramers_v([[50, 0], [0, 50]]) == pytest.approx(1.0)

    def test_independence(self):
        assert cramers_v([[10, 20], [30, 60]]) == pytest.approx(0.0, abs=1e-9)

    def test_range(self):
        v = cramers_v([[12, 5, 9], [3, 14, 8]])
        assert 0.0 <= v <= 1.0

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            cramers_v([[0, 0], [0, 0]])
        with pytest.raises(ValueError):
            cramers_v([[1, 2]])


class TestCohens:
    def test_h_zero_for_equal(self):
        assert cohens_h(0.4, 0.4) == pytest.approx(0.0)

    def test_h_antisymmetric(self):
        assert cohens_h(0.7, 0.2) == pytest.approx(-cohens_h(0.2, 0.7))

    def test_h_bounds(self):
        assert cohens_h(1.0, 0.0) == pytest.approx(math.pi)

    def test_h_rejects_bad_proportion(self):
        with pytest.raises(ValueError):
            cohens_h(1.2, 0.5)

    def test_w_zero_when_matching(self):
        assert cohens_w([10, 20, 30], [1, 2, 3]) == pytest.approx(0.0)

    def test_w_positive_for_mismatch(self):
        assert cohens_w([30, 10], [10, 30]) > 0

    def test_w_validation(self):
        with pytest.raises(ValueError):
            cohens_w([1, 2], [1, 2, 3])
        with pytest.raises(ValueError):
            cohens_w([1, 2], [1, 0])


class TestRatios:
    def test_odds_ratio_basic(self):
        assert odds_ratio(20, 10, 5, 10) == pytest.approx(4.0)

    def test_odds_ratio_haldane_on_zero(self):
        # With a zero cell, the corrected OR is finite.
        assert math.isfinite(odds_ratio(20, 0, 5, 10))

    def test_odds_ratio_no_correction_inf(self):
        assert odds_ratio(20, 0, 5, 10, haldane=False) == math.inf

    def test_odds_ratio_rejects_negative(self):
        with pytest.raises(ValueError):
            odds_ratio(-1, 2, 3, 4)

    def test_risk_difference(self):
        assert risk_difference(30, 100, 10, 100) == pytest.approx(0.2)

    def test_risk_ratio(self):
        assert risk_ratio(30, 100, 10, 100) == pytest.approx(3.0)

    def test_risk_ratio_zero_denominator(self):
        assert risk_ratio(5, 10, 0, 10) == math.inf
        assert math.isnan(risk_ratio(0, 10, 0, 10))


class TestRankBiserial:
    def test_complete_separation(self):
        assert rank_biserial([10, 11, 12], [1, 2, 3]) == pytest.approx(1.0)
        assert rank_biserial([1, 2, 3], [10, 11, 12]) == pytest.approx(-1.0)

    def test_identical_distributions_near_zero(self):
        assert rank_biserial([1, 2, 3, 4], [1, 2, 3, 4]) == pytest.approx(0.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            rank_biserial([], [1])


@given(
    p1=st.floats(min_value=0.0, max_value=1.0),
    p2=st.floats(min_value=0.0, max_value=1.0),
)
def test_property_cohens_h_bounded(p1, p2):
    h = cohens_h(p1, p2)
    assert -math.pi - 1e-9 <= h <= math.pi + 1e-9


@given(
    a=st.lists(st.integers(min_value=1, max_value=7), min_size=1, max_size=30),
    b=st.lists(st.integers(min_value=1, max_value=7), min_size=1, max_size=30),
)
def test_property_rank_biserial_bounded_and_antisymmetric(a, b):
    r_ab = rank_biserial(a, b)
    r_ba = rank_biserial(b, a)
    assert -1.0 - 1e-9 <= r_ab <= 1.0 + 1e-9
    assert r_ab == pytest.approx(-r_ba)
