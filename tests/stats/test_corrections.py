"""Tests for multiple-comparison corrections."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.stats import benjamini_hochberg, bonferroni, holm_bonferroni


PVALS = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    min_size=1,
    max_size=40,
)


class TestBonferroni:
    def test_scales_by_family_size(self):
        adjusted = bonferroni([0.01, 0.02, 0.03])
        assert adjusted == pytest.approx([0.03, 0.06, 0.09])

    def test_caps_at_one(self):
        assert bonferroni([0.5, 0.9]).max() == 1.0

    def test_single_test_unchanged(self):
        assert bonferroni([0.04])[0] == pytest.approx(0.04)


class TestHolm:
    def test_known_example(self):
        # Classic worked example: p = (0.01, 0.04, 0.03), m = 3.
        adjusted = holm_bonferroni([0.01, 0.04, 0.03])
        assert adjusted[0] == pytest.approx(0.03)
        assert adjusted[2] == pytest.approx(0.06)
        assert adjusted[1] == pytest.approx(0.06)

    def test_never_less_powerful_than_bonferroni(self):
        p = [0.001, 0.01, 0.02, 0.05, 0.2]
        holm = holm_bonferroni(p)
        bonf = bonferroni(p)
        assert (holm <= bonf + 1e-12).all()

    def test_monotone_in_input_order_of_sorted(self):
        p = np.array([0.04, 0.001, 0.03, 0.2])
        adjusted = holm_bonferroni(p)
        order = np.argsort(p)
        assert (np.diff(adjusted[order]) >= -1e-12).all()


class TestBenjaminiHochberg:
    def test_known_example(self):
        p = [0.01, 0.02, 0.03, 0.04]
        q = benjamini_hochberg(p)
        assert q[0] == pytest.approx(0.04)
        assert q[3] == pytest.approx(0.04)

    def test_less_conservative_than_holm(self):
        p = [0.001, 0.008, 0.04, 0.049]
        q = benjamini_hochberg(p)
        h = holm_bonferroni(p)
        assert (q <= h + 1e-12).all()

    def test_all_ones_stay_one(self):
        assert benjamini_hochberg([1.0, 1.0]).tolist() == [1.0, 1.0]


class TestValidation:
    @pytest.mark.parametrize("fn", [bonferroni, holm_bonferroni, benjamini_hochberg])
    def test_rejects_empty(self, fn):
        with pytest.raises(ValueError):
            fn([])

    @pytest.mark.parametrize("fn", [bonferroni, holm_bonferroni, benjamini_hochberg])
    def test_rejects_out_of_range(self, fn):
        with pytest.raises(ValueError):
            fn([0.5, 1.5])
        with pytest.raises(ValueError):
            fn([-0.1])

    @pytest.mark.parametrize("fn", [bonferroni, holm_bonferroni, benjamini_hochberg])
    def test_rejects_2d(self, fn):
        with pytest.raises(ValueError):
            fn(np.zeros((2, 2)))


@given(p=PVALS)
def test_property_adjusted_never_below_raw(p):
    raw = np.asarray(p)
    for fn in (bonferroni, holm_bonferroni, benjamini_hochberg):
        adjusted = fn(raw)
        assert (adjusted >= raw - 1e-12).all()
        assert (adjusted <= 1.0 + 1e-12).all()
        assert adjusted.shape == raw.shape


@given(p=PVALS)
def test_property_order_is_preserved(p):
    """Smaller raw p-values never get larger adjusted values than bigger ones."""
    raw = np.asarray(p)
    for fn in (holm_bonferroni, benjamini_hochberg):
        adjusted = fn(raw)
        order = np.argsort(raw, kind="stable")
        assert (np.diff(adjusted[order]) >= -1e-9).all()
