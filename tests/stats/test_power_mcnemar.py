"""Tests for power analysis and McNemar's test."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.stats import (
    mcnemar_test,
    minimum_detectable_delta,
    required_n_per_group,
    two_proportion_power,
)


class TestMcNemar:
    def test_balanced_discordance_not_significant(self):
        result = mcnemar_test(10, 10)
        assert result.p_value > 0.5

    def test_lopsided_discordance_significant(self):
        result = mcnemar_test(40, 5)
        assert result.significant(0.001)

    def test_no_discordant_pairs(self):
        result = mcnemar_test(0, 0)
        assert result.p_value == 1.0

    def test_exact_small_sample(self):
        result = mcnemar_test(8, 1)
        assert result.details["exact"] is True
        # Exact binomial: 2 * P(X <= 1 | n=9, p=0.5)
        from scipy import stats as sps

        expected = 2 * sps.binom.cdf(1, 9, 0.5)
        assert result.p_value == pytest.approx(expected)

    def test_asymptotic_large_sample(self):
        result = mcnemar_test(80, 40)
        assert result.details["exact"] is False
        assert result.dof == 1

    def test_force_exact(self):
        a = mcnemar_test(80, 40, exact=True)
        b = mcnemar_test(80, 40, exact=False)
        assert a.details["exact"] and not b.details["exact"]
        # Both must agree on significance for so clear a signal.
        assert a.significant(0.01) and b.significant(0.01)

    def test_symmetry(self):
        assert mcnemar_test(30, 7).p_value == pytest.approx(mcnemar_test(7, 30).p_value)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            mcnemar_test(-1, 5)


class TestTwoProportionPower:
    def test_null_effect_gives_alpha(self):
        assert two_proportion_power(0.4, 0.4, 100, 100) == pytest.approx(0.05)

    def test_power_grows_with_n(self):
        small = two_proportion_power(0.5, 0.6, 50, 50)
        large = two_proportion_power(0.5, 0.6, 500, 500)
        assert large > small

    def test_power_grows_with_effect(self):
        weak = two_proportion_power(0.5, 0.55, 200, 200)
        strong = two_proportion_power(0.5, 0.7, 200, 200)
        assert strong > weak

    def test_known_benchmark(self):
        # Classic: p1=0.5, p2=0.65, n=170/group gives ~80% power.
        power = two_proportion_power(0.5, 0.65, 170, 170)
        assert power == pytest.approx(0.80, abs=0.03)

    def test_monte_carlo_agreement(self):
        """Analytic power tracks simulated rejection rate."""
        from repro.stats import two_proportion_z_test

        rng = np.random.default_rng(0)
        p1, p2, n = 0.3, 0.45, 150
        rejections = 0
        trials = 400
        for _ in range(trials):
            s1 = rng.binomial(n, p1)
            s2 = rng.binomial(n, p2)
            if two_proportion_z_test(s1, n, s2, n).significant(0.05):
                rejections += 1
        simulated = rejections / trials
        analytic = two_proportion_power(p1, p2, n, n)
        assert simulated == pytest.approx(analytic, abs=0.07)

    def test_validation(self):
        with pytest.raises(ValueError):
            two_proportion_power(0.0, 0.5, 10, 10)
        with pytest.raises(ValueError):
            two_proportion_power(0.3, 0.5, 0, 10)
        with pytest.raises(ValueError):
            two_proportion_power(0.3, 0.5, 10, 10, alpha=0.0)


class TestRequiredN:
    def test_achieves_requested_power(self):
        n = required_n_per_group(0.5, 0.65, power=0.8)
        assert two_proportion_power(0.5, 0.65, n, n) >= 0.8
        assert two_proportion_power(0.5, 0.65, n - 1, n - 1) < 0.8

    def test_smaller_effect_needs_more(self):
        assert required_n_per_group(0.5, 0.55) > required_n_per_group(0.5, 0.7)

    def test_null_rejected(self):
        with pytest.raises(ValueError):
            required_n_per_group(0.5, 0.5)


class TestMinimumDetectableDelta:
    def test_round_trip_with_power(self):
        delta = minimum_detectable_delta(0.3, 200, 200)
        assert two_proportion_power(0.3, 0.3 + delta, 200, 200) == pytest.approx(
            0.8, abs=0.01
        )

    def test_shrinks_with_n(self):
        small = minimum_detectable_delta(0.3, 50, 50)
        large = minimum_detectable_delta(0.3, 500, 500)
        assert large < small

    def test_validation(self):
        with pytest.raises(ValueError):
            minimum_detectable_delta(1.5, 100, 100)


@settings(max_examples=30, deadline=None)
@given(
    p1=st.floats(min_value=0.05, max_value=0.95),
    p2=st.floats(min_value=0.05, max_value=0.95),
    n=st.integers(min_value=5, max_value=2000),
)
def test_property_power_in_unit_interval(p1, p2, n):
    power = two_proportion_power(p1, p2, n, n)
    assert 0.0 <= power <= 1.0
