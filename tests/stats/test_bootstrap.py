"""Tests for the vectorized bootstrap."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.stats import bootstrap_ci, bootstrap_diff_ci, percentile_ci


class TestBootstrapCI:
    def test_mean_interval_brackets_sample_mean(self):
        rng = np.random.default_rng(7)
        data = rng.normal(10.0, 2.0, size=500)
        result = bootstrap_ci(data, np.mean, rng=np.random.default_rng(1))
        assert result.low < data.mean() < result.high
        # Width should be near the analytic 2*1.96*sem for the mean.
        sem = data.std(ddof=1) / np.sqrt(data.size)
        assert result.width == pytest.approx(2 * 1.96 * sem, rel=0.2)
        assert result.estimate == pytest.approx(data.mean())

    def test_deterministic_default_rng(self):
        data = np.arange(50, dtype=float)
        a = bootstrap_ci(data)
        b = bootstrap_ci(data)
        assert (a.low, a.high) == (b.low, b.high)

    def test_seed_changes_interval_slightly(self):
        data = np.arange(50, dtype=float)
        a = bootstrap_ci(data, rng=np.random.default_rng(1))
        b = bootstrap_ci(data, rng=np.random.default_rng(2))
        assert (a.low, a.high) != (b.low, b.high)
        assert abs(a.low - b.low) < 2.0

    def test_median_statistic(self):
        data = np.concatenate([np.zeros(50), np.ones(50) * 100])
        result = bootstrap_ci(data, np.median, n_resamples=500)
        assert result.low <= result.estimate <= result.high

    def test_non_axis_statistic_fallback(self):
        # A plain Python callable without axis support exercises the fallback.
        def spread(x):
            return float(max(x) - min(x))

        result = bootstrap_ci([1.0, 5.0, 9.0, 2.0], spread, n_resamples=100)
        assert 0.0 <= result.low <= result.high <= 8.0

    def test_interval_narrows_with_sample_size(self):
        rng = np.random.default_rng(3)
        small = bootstrap_ci(rng.normal(size=20), rng=np.random.default_rng(0))
        large = bootstrap_ci(rng.normal(size=2000), rng=np.random.default_rng(0))
        assert large.width < small.width

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], n_resamples=0)

    def test_constant_data_degenerate_interval(self):
        result = bootstrap_ci(np.full(30, 4.2))
        assert result.low == pytest.approx(4.2)
        assert result.high == pytest.approx(4.2)


class TestBootstrapDiff:
    def test_detects_shift(self):
        rng = np.random.default_rng(11)
        a = rng.normal(5.0, 1.0, 300)
        b = rng.normal(3.0, 1.0, 300)
        result = bootstrap_diff_ci(a, b, rng=np.random.default_rng(0))
        assert result.low > 1.5
        assert result.high < 2.5
        assert result.estimate == pytest.approx(a.mean() - b.mean())

    def test_no_shift_brackets_zero(self):
        rng = np.random.default_rng(12)
        a = rng.normal(0.0, 1.0, 400)
        b = rng.normal(0.0, 1.0, 400)
        result = bootstrap_diff_ci(a, b, rng=np.random.default_rng(0))
        assert result.low < 0.0 < result.high

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_diff_ci([], [1.0])


class TestPercentileCI:
    def test_quantile_endpoints(self):
        values = np.arange(1000, dtype=float)
        low, high = percentile_ci(values, 0.9)
        assert low == pytest.approx(np.quantile(values, 0.05))
        assert high == pytest.approx(np.quantile(values, 0.95))

    def test_validation(self):
        with pytest.raises(ValueError):
            percentile_ci(np.array([]))
        with pytest.raises(ValueError):
            percentile_ci(np.array([1.0]), confidence=0.0)


@settings(max_examples=25, deadline=None)
@given(
    data=st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=2,
        max_size=60,
    ),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_property_interval_contains_plugin_estimate_region(data, seed):
    """Interval is ordered and lies within the sample's range for the mean."""
    result = bootstrap_ci(
        data, np.mean, n_resamples=200, rng=np.random.default_rng(seed)
    )
    assert result.low <= result.high
    assert min(data) - 1e-9 <= result.low
    assert result.high <= max(data) + 1e-9
