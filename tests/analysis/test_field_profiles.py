"""Tests for per-field practice portraits and interarrival stats."""

import numpy as np
import pytest

from repro.analysis import field_profiles
from repro.cluster import interarrival_stats


class TestFieldProfiles:
    @pytest.fixture(scope="class")
    def profiles(self, study):
        return field_profiles(study.responses, min_n=5)

    def test_structure(self, profiles):
        assert len(profiles) >= 5
        for p in profiles:
            assert p.n >= 5
            assert 1 <= len(p.top_languages) <= 3
            shares = [s for _, s in p.top_languages]
            assert shares == sorted(shares, reverse=True)

    def test_sorted_by_size(self, profiles):
        sizes = [p.n for p in profiles]
        assert sizes == sorted(sizes, reverse=True)

    def test_python_dominates_everywhere_in_2024(self, profiles):
        python_top3 = sum(
            any(lang == "python" for lang, _ in p.top_languages) for p in profiles
        )
        assert python_top3 >= len(profiles) - 1

    def test_distinguishing_is_the_largest_excess(self, profiles):
        """The flagged practice has the largest field-minus-overall excess
        among the candidates (it may still be negative for a field that is
        below average on everything)."""
        for p in profiles:
            label, field_share, overall_share = p.distinguishing
            candidates = {
                "GPU use": p.gpu_share,
                "cluster use": p.cluster_share,
                "ML use": p.ml_share,
            }
            if label in candidates:
                assert candidates[label] == pytest.approx(field_share)

    def test_min_n_filter(self, study):
        strict = field_profiles(study.responses, min_n=50)
        loose = field_profiles(study.responses, min_n=2)
        assert len(strict) <= len(loose)

    def test_empty_cohort_rejected(self, study):
        with pytest.raises(ValueError):
            field_profiles(study.responses, cohort="1999")


class TestInterarrival:
    def test_poisson_cv_near_one(self):
        from repro.cluster.records import JobRecord, JobState, JobTable

        rng = np.random.default_rng(0)
        submits = np.sort(rng.uniform(0, 1e6, size=2000))
        records = [
            JobRecord(i, "u", "f", "cpu", float(s), float(s), float(s) + 60.0,
                      1, 0, JobState.COMPLETED)
            for i, s in enumerate(submits)
        ]
        stats = interarrival_stats(JobTable.from_records(records))
        assert stats["cv"] == pytest.approx(1.0, abs=0.1)

    def test_diurnal_traffic_is_bursty(self, study):
        stats = interarrival_stats(study.telemetry)
        assert stats["cv"] > 1.0  # rhythm makes arrivals over-dispersed
        assert stats["mean_gap_s"] > 0

    def test_validation(self):
        from repro.cluster import JobTable

        with pytest.raises(ValueError):
            interarrival_stats(JobTable.empty())
