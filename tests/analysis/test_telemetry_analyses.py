"""Tests for telemetry analyses (F3-F5, F7, T5) and concordance (F8)."""

import numpy as np
import pytest

from repro.analysis import (
    cpu_hours_figure,
    gpu_concordance,
    gpu_growth_figure,
    job_width_figure,
    queue_wait_table,
    runtime_figure,
)
from repro.core import Study
from repro.cluster import JobTable


class TestCpuHoursFigure:
    def test_structure(self, study):
        result = cpu_hours_figure(study, top_fields=4)
        assert "__total__" in result
        named = [k for k in result if k != "__total__"]
        assert 4 <= len(named) <= 5  # top 4 + possibly "other"
        months = result["__total__"].size
        assert all(v.size == months for v in result.values())

    def test_total_is_sum(self, study):
        result = cpu_hours_figure(study, top_fields=3)
        total = result.pop("__total__")
        np.testing.assert_allclose(
            np.sum(list(result.values()), axis=0), total, rtol=1e-9
        )

    def test_top_fields_validation(self, study):
        with pytest.raises(ValueError):
            cpu_hours_figure(study, top_fields=0)

    def test_empty_telemetry_rejected(self, study):
        empty = Study(
            responses=study.responses,
            telemetry=JobTable.empty(),
            cluster=study.cluster,
            window_seconds=study.window_seconds,
        )
        with pytest.raises(ValueError):
            cpu_hours_figure(empty)


class TestJobWidthFigure:
    def test_both_partitions(self, study):
        result = job_width_figure(study)
        assert set(result) == {"cpu", "gpu"}
        for dist in result.values():
            assert dist.cdf[-1] == pytest.approx(1.0)
            assert sum(dist.weighted_share.values()) == pytest.approx(1.0)

    def test_wide_jobs_hold_most_cpu_hours(self, study):
        cpu = job_width_figure(study)["cpu"]
        assert cpu.weighted_share["65-512"] > cpu.weighted_share["1"]


class TestQueueWaitTable:
    def test_all_partitions_present(self, study):
        stats = queue_wait_table(study)
        assert set(stats) == set(study.telemetry.partitions())
        for s in stats.values():
            assert s["n"] > 0
            assert s["p95_h"] >= s["median_h"] >= 0.0


class TestGpuGrowthFigure:
    def test_positive_growth(self, study):
        result = gpu_growth_figure(study, n_resamples=100)
        assert result.monthly_gpu_hours.size == 4
        assert result.growth_ci.low <= result.growth_per_month <= result.growth_ci.high

    def test_growth_matches_workload_parameter_at_scale(self):
        # A longer window pins the fitted growth to the configured 4%/month.
        from repro.core import build_default_study

        long_study = build_default_study(
            seed=77, n_baseline=10, n_current=10, months=18, jobs_per_day=120
        )
        result = gpu_growth_figure(long_study, n_resamples=50)
        assert result.growth_per_month == pytest.approx(0.04, abs=0.02)


class TestRuntimeFigure:
    def test_shared_bins(self, study):
        result = runtime_figure(study, top_fields=5)
        bins = result.pop("__bins__")
        assert len(result) <= 5
        for counts in result.values():
            assert counts.size == bins.size - 1
            assert counts.sum() > 0


class TestConcordance:
    def test_positive_correlation_at_scale(self):
        from repro.core import build_default_study

        big = build_default_study(
            seed=123, n_baseline=150, n_current=400, months=6, jobs_per_day=200
        )
        result = gpu_concordance(big)
        assert len(result.fields) >= 5
        assert result.spearman_rho > 0.0

    def test_structure(self, study):
        result = gpu_concordance(study)
        assert result.survey_share.shape == result.telemetry_share.shape
        assert result.telemetry_share.sum() <= 1.0 + 1e-9
        assert -1.0 <= result.spearman_rho <= 1.0

    def test_no_gpu_jobs_rejected(self, study):
        cpu_only = Study(
            responses=study.responses,
            telemetry=study.telemetry.mask(study.telemetry.gpus == 0),
            cluster=study.cluster,
            window_seconds=study.window_seconds,
        )
        with pytest.raises(ValueError):
            gpu_concordance(cpu_only)
