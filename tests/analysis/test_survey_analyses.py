"""Tests for the survey-side analysis modules (T1-T4, T6-T8, F1, F2)."""

import numpy as np
import pytest

from repro.analysis import (
    demographics_table,
    gpu_adoption_by_field,
    language_shares,
    language_trend_series,
    ml_adoption_summary,
    parallel_mode_trends,
    parallelism_rates,
    practices_trends,
    primary_language_table,
    storage_summary,
    training_summary,
)


class TestDemographics(object):
    def test_counts_match_cohorts(self, study):
        result = demographics_table(study.responses)
        assert result.response_counts == {"2011": 150, "2024": 180}
        assert set(result.years_programming) == {"2011", "2024"}

    def test_field_crosstab_covers_cohorts(self, study):
        result = demographics_table(study.responses)
        assert result.field_by_cohort.col_labels == ("2011", "2024")
        assert result.field_by_cohort.n > 300

    def test_stage_labels(self, study):
        result = demographics_table(study.responses)
        assert "graduate_student" in result.stage_by_cohort.row_labels


class TestLanguages:
    def test_shares_structure(self, study):
        shares = language_shares(study.responses)
        assert set(shares) == {"2011", "2024"}
        assert len(shares["2024"]) == 11
        for s in shares["2024"]:
            assert 0 <= s.interval.low <= s.interval.estimate <= s.interval.high <= 1
            assert s.count <= s.n

    def test_python_dominates_2024(self, study):
        shares = {s.language: s.interval.estimate for s in language_shares(study.responses)["2024"]}
        assert shares["python"] > 0.8
        assert shares["python"] > shares["fortran"]

    def test_trend_series_sorted_and_corrected(self, study):
        table = language_trend_series(study.responses)
        deltas = [abs(r.delta) for r in table]
        assert deltas == sorted(deltas, reverse=True)
        assert table.correction == "holm"
        assert table["python"].significant(0.001)

    def test_primary_language_table(self, study):
        ct = primary_language_table(study.responses)
        assert "python" in ct.row_labels
        assert ct.col_labels == ("2011", "2024")


class TestParallelism:
    def test_rates_directions(self, study):
        rates = parallelism_rates(study.responses)
        assert rates.uses_gpu.delta > 0.2
        assert rates.uses_parallelism.current.estimate > 0.5

    def test_mode_trends_denominator_is_parallel_users(self, study):
        table = parallel_mode_trends(study.responses)
        n_parallel_2024 = sum(
            1
            for r in study.current
            if r.answered("parallel_modes")
        )
        assert table["mpi"].n_current == n_parallel_2024

    def test_gpu_by_field_filters_small_fields(self, study):
        full = gpu_adoption_by_field(study.responses, min_n=1)
        filtered = gpu_adoption_by_field(study.responses, min_n=10)
        assert len(filtered) <= len(full)
        for a in filtered:
            assert a.n >= 10

    def test_gpu_by_field_sorted(self, study):
        adoption = gpu_adoption_by_field(study.responses)
        estimates = [a.interval.estimate for a in adoption]
        assert estimates == sorted(estimates, reverse=True)


class TestMLAdoption:
    def test_adoption_rises(self, study):
        summary = ml_adoption_summary(study.responses)
        assert summary.adoption.delta > 0.3
        assert summary.adoption.significant(0.001)

    def test_framework_shares(self, study):
        summary = ml_adoption_summary(study.responses)
        assert summary.n_ml_users > 20
        assert "pytorch" in summary.framework_shares
        pytorch = summary.framework_shares["pytorch"]
        tensorflow = summary.framework_shares["tensorflow"]
        assert pytorch.estimate > tensorflow.estimate  # the 2024 story


class TestPractices:
    def test_family_contents(self, study):
        table = practices_trends(study.responses)
        labels = {r.label for r in table}
        assert labels == {
            "uses git",
            "any version control",
            "unit testing",
            "continuous integration",
            "containers",
        }
        assert table.correction == "holm"

    def test_git_and_containers_rise(self, study):
        table = practices_trends(study.responses)
        assert table["uses git"].delta > 0.3
        assert table["containers"].delta > 0.15

    def test_any_vcs_geq_git(self, study):
        table = practices_trends(study.responses)
        assert (
            table["any version control"].current.estimate
            >= table["uses git"].current.estimate
        )


class TestTraining:
    def test_summary(self, study):
        summary = training_summary(study.responses)
        assert set(summary.expertise_means) == {"2011", "2024"}
        assert -1.0 <= summary.expertise_effect <= 1.0
        assert 0.0 <= summary.expertise_test.p_value <= 1.0

    def test_crosstab_rows(self, study):
        summary = training_summary(study.responses)
        assert "self_taught" in summary.training_by_cohort.row_labels


class TestStorage:
    def test_data_gets_bigger(self, study):
        summary = storage_summary(study.responses)
        # Positive rank-biserial = 2024 reports larger data scales.
        assert summary.scale_shift_effect > 0.05
        assert summary.scale_shift_test.p_value < 0.05

    def test_locations_family(self, study):
        summary = storage_summary(study.responses)
        assert summary.locations["cloud_storage"].delta > 0.1
