"""Tests for cohort balance and capacity outlook (X9/X10)."""

import math

import numpy as np
import pytest

from repro.analysis import cohort_balance
from repro.cluster import (
    JobRecord,
    JobState,
    JobTable,
    Partition,
    gpu_capacity_outlook,
    months_to_saturation,
)
from repro.cluster.usage import MONTH_SECONDS
from repro.core import build_instrument
from repro.report import run_experiment
from repro.survey import Response, ResponseSet


class TestCohortBalance:
    def test_generated_cohorts_roughly_balanced(self, study):
        report = cohort_balance(study.responses)
        # Same sampling frame in both waves: no extreme imbalance. The
        # |d|<0.1 convention is tighter than sampling noise at n~150
        # (sd of d is ~0.11), so only bound the mean and the max.
        assert report.max_abs_std_diff < 0.45
        mean_abs = np.mean([abs(r.std_diff) for r in report.rows])
        assert mean_abs < 0.2

    def test_rows_sorted_worst_first(self, study):
        report = cohort_balance(study.responses)
        diffs = [abs(r.std_diff) for r in report.rows]
        assert diffs == sorted(diffs, reverse=True)

    def test_detects_planted_imbalance(self):
        q = build_instrument()
        responses = []
        i = 0
        for cohort, fields in (
            ("2011", ["physics"] * 80 + ["biology"] * 20),
            ("2024", ["physics"] * 20 + ["biology"] * 80),
        ):
            for f in fields:
                responses.append(
                    Response(f"r{i}", cohort, {"field": f, "career_stage": "postdoc",
                                               "years_programming": 5})
                )
                i += 1
        report = cohort_balance(ResponseSet(q, responses))
        physics = next(r for r in report.rows if r.covariate == "field=physics")
        assert not physics.balanced
        assert physics.std_diff < -1.0  # share dropped sharply

    def test_empty_cohort_rejected(self):
        q = build_instrument()
        rs = ResponseSet(q, [Response("a", "2011", {"field": "physics"})])
        with pytest.raises(ValueError):
            cohort_balance(rs)

    def test_x10_experiment_renders(self, study):
        table = run_experiment("X10", study)
        assert "std diff" in table.columns
        assert len(table.rows) > 10


class TestMonthsToSaturation:
    def test_basic_projection(self):
        # 100 -> 200 capacity at 5%/month: log(2)/log(1.05) ~ 14.2 months.
        months = months_to_saturation(100.0, 200.0, 0.05)
        assert months == pytest.approx(math.log(2) / math.log(1.05))

    def test_already_saturated(self):
        assert months_to_saturation(250.0, 200.0, 0.05) == 0.0

    def test_no_growth_never_saturates(self):
        assert months_to_saturation(100.0, 200.0, 0.0) == math.inf

    def test_validation(self):
        with pytest.raises(ValueError):
            months_to_saturation(0.0, 100.0, 0.05)
        with pytest.raises(ValueError):
            months_to_saturation(10.0, 0.0, 0.05)


def synthetic_gpu_table(months=8, base=1000.0, growth=0.10, gpus_per_job=2):
    """GPU jobs whose monthly hours grow exponentially."""
    records = []
    jid = 0
    for m in range(months):
        hours_needed = base * (1 + growth) ** m
        runtime = 10 * 3600.0
        n_jobs = max(1, int(round(hours_needed / (gpus_per_job * runtime / 3600.0))))
        for k in range(n_jobs):
            start = m * MONTH_SECONDS + k * 60.0
            records.append(
                JobRecord(jid, f"u{k%7}", "neuroscience", "gpu", start, start,
                          start + runtime, 8, gpus_per_job, JobState.COMPLETED,
                          req_walltime=runtime * 2)
            )
            jid += 1
    return JobTable.from_records(records)


class TestGpuCapacityOutlook:
    PART = Partition("gpu", nodes=10, cores_per_node=48, gpus_per_node=4)

    def test_recovers_growth_and_projects(self):
        table = synthetic_gpu_table(growth=0.10)
        outlook = gpu_capacity_outlook(table, self.PART)
        assert outlook.growth_per_month == pytest.approx(0.10, abs=0.02)
        assert outlook.months_to_saturation > 0
        # Doubling buys log2/log(1.1) ~ 7.3 months.
        assert outlook.months_bought_by_doubling == pytest.approx(7.27, abs=1.0)

    def test_saturated_now(self):
        tiny = Partition("gpu", nodes=1, cores_per_node=8, gpus_per_node=1)
        table = synthetic_gpu_table(growth=0.05)
        outlook = gpu_capacity_outlook(table, tiny)
        assert outlook.months_to_saturation == 0.0

    def test_requires_gpus(self):
        cpu_part = Partition("cpu", nodes=2, cores_per_node=8)
        with pytest.raises(ValueError):
            gpu_capacity_outlook(synthetic_gpu_table(), cpu_part)

    def test_requires_enough_months(self):
        table = synthetic_gpu_table(months=2)
        with pytest.raises(ValueError):
            gpu_capacity_outlook(table, self.PART)

    def test_x9_experiment_renders(self, study):
        table = run_experiment("X9", study)
        quantities = table.column("quantity")
        assert "projected saturation" in quantities
        assert "fitted growth" in quantities
