"""Tests for the cross-tab engine, including vectorized == loop."""

import numpy as np
import pytest

from repro.analysis import crosstab, crosstab_loop
from repro.analysis.crosstab import COHORT
from repro.survey import Questionnaire, Response, ResponseSet, SingleChoiceQuestion


def make_set(pairs, cohorts=None):
    q = Questionnaire(
        "t",
        [
            SingleChoiceQuestion(key="color", text="c", options=("red", "blue", "green")),
            SingleChoiceQuestion(key="size", text="s", options=("small", "large")),
        ],
    )
    responses = []
    for i, (color, size) in enumerate(pairs):
        answers = {}
        if color is not None:
            answers["color"] = color
        if size is not None:
            answers["size"] = size
        cohort = cohorts[i] if cohorts else "2024"
        responses.append(Response(f"r{i}", cohort, answers))
    return ResponseSet(q, responses)


class TestCrosstab:
    def test_counts(self):
        rs = make_set(
            [("red", "small"), ("red", "small"), ("red", "large"), ("blue", "large")]
        )
        ct = crosstab(rs, "color", "size")
        assert ct.row_labels == ("blue", "red")
        assert ct.col_labels == ("large", "small")
        assert ct.counts.tolist() == [[1, 0], [1, 2]]
        assert ct.n == 4

    def test_missing_either_excluded(self):
        rs = make_set([("red", "small"), ("red", None), (None, "large")])
        ct = crosstab(rs, "color", "size")
        assert ct.n == 1

    def test_cohort_pseudo_key(self):
        rs = make_set(
            [("red", "small"), ("blue", "small"), ("red", "small")],
            cohorts=["2011", "2024", "2024"],
        )
        ct = crosstab(rs, "color", COHORT)
        assert ct.col_labels == ("2011", "2024")
        assert ct.row("red").tolist() == [1, 1]

    def test_row_shares_normalize_columns(self):
        rs = make_set([("red", "small"), ("blue", "small"), ("red", "large")])
        shares = crosstab(rs, "color", "size").row_shares()
        np.testing.assert_allclose(shares.sum(axis=0), [1.0, 1.0])

    def test_unknown_row_lookup(self):
        rs = make_set([("red", "small"), ("blue", "large")])
        with pytest.raises(KeyError):
            crosstab(rs, "color", "size").row("green")

    def test_all_missing_raises(self):
        rs = make_set([(None, None)])
        with pytest.raises(ValueError):
            crosstab(rs, "color", "size")

    def test_non_single_choice_rejected(self, study):
        with pytest.raises(TypeError):
            crosstab(study.responses, "languages")

    def test_degenerate_single_column(self):
        rs = make_set([("red", "small"), ("blue", "small")])
        ct = crosstab(rs, "color", "size")
        assert ct.test.p_value == 1.0
        assert ct.effect == 0.0


class TestLoopEquivalence:
    def test_equal_on_synthetic(self):
        rs = make_set(
            [("red", "small"), ("red", "large"), ("blue", "small"), ("green", "large")] * 5
        )
        fast = crosstab(rs, "color", "size")
        slow = crosstab_loop(rs, "color", "size")
        assert fast.row_labels == slow.row_labels
        assert fast.col_labels == slow.col_labels
        assert fast.counts.tolist() == slow.counts.tolist()
        assert fast.test.p_value == pytest.approx(slow.test.p_value)

    def test_equal_on_real_study(self, study):
        for key in ("field", "vcs", "training", "data_scale"):
            fast = crosstab(study.responses, key, COHORT)
            slow = crosstab_loop(study.responses, key, COHORT)
            assert fast.counts.tolist() == slow.counts.tolist(), key
            assert fast.row_labels == slow.row_labels

    def test_loop_rejects_non_single_choice(self, study):
        with pytest.raises(TypeError):
            crosstab_loop(study.responses, "languages")
