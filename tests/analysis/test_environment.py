"""Tests for the work-environment analysis (X6)."""

import pytest

from repro.analysis import environment_summary
from repro.report import Table, run_experiment


class TestEnvironmentSummary:
    @pytest.fixture(scope="class")
    def summary(self, study):
        return environment_summary(study.responses)

    def test_os_crosstab(self, summary):
        assert set(summary.os_by_cohort.row_labels) <= {"linux", "macos", "windows"}
        assert summary.os_by_cohort.col_labels == ("2011", "2024")

    def test_vscode_rises_emacs_falls(self, summary):
        vscode = summary.editor_trends["vscode"]
        emacs = summary.editor_trends["emacs"]
        assert vscode.delta > 0.3
        assert emacs.delta < 0.05

    def test_editor_family_corrected(self, summary):
        assert summary.editor_trends.correction == "holm"

    def test_hours_summaries(self, summary):
        assert set(summary.hours_per_week) == {"2011", "2024"}
        for s in summary.hours_per_week.values():
            assert 0 <= s.median <= 100

    def test_hpc_training_denominator_is_cluster_users(self, summary, study):
        cluster_users_2024 = sum(
            1
            for r in study.current
            if r.answered("hpc_training")
        )
        assert summary.hpc_training.n_current == cluster_users_2024

    def test_open_source_rises(self, summary):
        assert summary.open_source.delta > 0.05


class TestX6Experiment:
    def test_renders(self, study):
        table = run_experiment("X6", study)
        assert isinstance(table, Table)
        items = table.column("item")
        assert any(i.startswith("os:") for i in items)
        assert any(i.startswith("editor:") for i in items)
        assert any(i.startswith("hours/week") for i in items)
        assert "open-source contribution" in items
        text = table.render_ascii()
        assert "X6" in text
