"""Tests for the data-quality (nonresponse) report."""

import pytest

from repro.analysis import quality_report
from repro.core import build_instrument
from repro.survey import Response, ResponseSet


class TestQualityReport:
    def test_on_generated_study(self, study):
        report = quality_report(study.responses)
        assert report.item_nonresponse
        # Rates sorted worst-first.
        rates = [r.rate.estimate for r in report.item_nonresponse]
        assert rates == sorted(rates, reverse=True)
        # Optional free-text questions skip most.
        worst_keys = {r.key for r in report.worst_items(4)}
        assert worst_keys & {"stack_description", "biggest_challenge"}

    def test_completion_quartiles(self, study):
        report = quality_report(study.responses)
        for cohort, (q25, q50, q75) in report.completion_quartiles.items():
            assert 0.0 <= q25 <= q50 <= q75 <= 1.0

    def test_gated_items_use_applicability_denominator(self, study):
        report = quality_report(study.responses)
        scheduler_rows = [r for r in report.item_nonresponse if r.key == "scheduler"]
        for row in scheduler_rows:
            cluster_users = sum(
                1
                for r in study.responses.by_cohort(row.cohort)
                if r.get("uses_cluster") == "yes"
            )
            assert row.n_applicable == cluster_users

    def test_differential_missingness_detected(self):
        q = build_instrument()
        responses = []
        i = 0
        # Physicists answer everything they can; biologists skip years_programming.
        for field_name, skips in (("physics", False), ("biology", True)):
            for _ in range(40):
                answers = {"field": field_name, "career_stage": "postdoc"}
                if not skips:
                    answers["years_programming"] = 5
                responses.append(Response(f"r{i}", "2024", answers))
                i += 1
        report = quality_report(ResponseSet(q, responses))
        assert report.field_missingness_test.significant(0.001)

    def test_uniform_missingness_not_flagged(self):
        q = build_instrument()
        responses = [
            Response(f"r{i}", "2024", {"field": f, "career_stage": "postdoc"})
            for i, f in enumerate(["physics", "biology"] * 30)
        ]
        report = quality_report(ResponseSet(q, responses))
        assert not report.field_missingness_test.significant(0.01)

    def test_empty_rejected(self):
        q = build_instrument()
        with pytest.raises(ValueError):
            quality_report(ResponseSet(q, []))
