"""Tests for the tokenizer and lexicon."""

import pytest
from hypothesis import given, strategies as st

from repro.text import DEFAULT_LEXICON, Lexicon, ToolEntry, normalize_token, tokenize


class TestTokenize:
    def test_simple_sentence(self):
        assert tokenize("I use NumPy and SciPy.") == ["i", "use", "numpy", "and", "scipy"]

    def test_preserves_tool_punctuation(self):
        tokens = tokenize("C++ and F# and scikit-learn and mpi4py")
        assert "c++" in tokens
        assert "f#" in tokens
        assert "scikit-learn" in tokens
        assert "mpi4py" in tokens

    def test_versions_separate_tokens(self):
        tokens = tokenize("pytorch 2.1 on CUDA 12.0")
        assert "pytorch" in tokens and "2.1" in tokens

    def test_empty_text(self):
        assert tokenize("") == []

    def test_type_error(self):
        with pytest.raises(TypeError):
            tokenize(42)


class TestNormalize:
    def test_lowercase_and_strip(self):
        assert normalize_token("NumPy.") == "numpy"

    def test_drops_bare_versions(self):
        assert normalize_token("2.1") is None
        assert normalize_token("12") is None

    def test_keeps_versioned_names(self):
        assert normalize_token("mpi4py") == "mpi4py"
        assert normalize_token("f90") == "f90"

    def test_drops_empty(self):
        assert normalize_token("  ") is None


class TestLexicon:
    def test_resolve_canonical(self):
        assert DEFAULT_LEXICON.resolve("numpy") == "numpy"

    def test_resolve_alias(self):
        assert DEFAULT_LEXICON.resolve("torch") == "pytorch"
        assert DEFAULT_LEXICON.resolve("sklearn") == "scikit-learn"
        assert DEFAULT_LEXICON.resolve("singularity") == "apptainer"

    def test_resolve_case_insensitive(self):
        assert DEFAULT_LEXICON.resolve("GitHub") == "git"

    def test_resolve_unknown(self):
        assert DEFAULT_LEXICON.resolve("cobol") is None
        assert "cobol" not in DEFAULT_LEXICON
        assert "numpy" in DEFAULT_LEXICON

    def test_category(self):
        assert DEFAULT_LEXICON.category("pytorch") == "ml"
        with pytest.raises(KeyError):
            DEFAULT_LEXICON.category("cobol")

    def test_extended(self):
        bigger = DEFAULT_LEXICON.extended([ToolEntry("dask", "hpc", ("dask.distributed",))])
        assert bigger.resolve("dask") == "dask"
        assert len(bigger) == len(DEFAULT_LEXICON) + 1
        # original untouched
        assert DEFAULT_LEXICON.resolve("dask") is None

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            Lexicon([ToolEntry("a", "x"), ToolEntry("a", "y")])

    def test_conflicting_alias_rejected(self):
        with pytest.raises(ValueError):
            Lexicon([ToolEntry("a", "x", ("z",)), ToolEntry("b", "y", ("z",))])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Lexicon([])


@given(text=st.text(max_size=300))
def test_property_tokenize_never_crashes_and_lowercases(text):
    tokens = tokenize(text)
    assert all(t == t.lower() for t in tokens)
    for t in tokens:
        norm = normalize_token(t)
        assert norm is None or norm
