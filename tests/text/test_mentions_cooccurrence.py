"""Tests for mention extraction and the co-occurrence graph."""

import pytest

from repro.survey import (
    FreeTextQuestion,
    Questionnaire,
    Response,
    ResponseSet,
    SingleChoiceQuestion,
)
from repro.text import (
    MentionExtractor,
    build_cooccurrence_graph,
    cooccurrence_summary,
    extract_mentions,
)


def make_set(texts):
    q = Questionnaire(
        "t",
        [
            SingleChoiceQuestion(key="dummy", text="d", options=("a", "b")),
            FreeTextQuestion(key="stack", text="stack?"),
        ],
    )
    responses = [
        Response(f"r{i}", "2024", {"stack": text} if text is not None else {})
        for i, text in enumerate(texts)
    ]
    return ResponseSet(q, responses)


class TestMentionsIn:
    def test_basic_extraction(self):
        m = MentionExtractor().mentions_in("We use NumPy, PyTorch 2.1 and Git.")
        assert m == frozenset({"numpy", "pytorch", "git"})

    def test_aliases_resolve(self):
        m = MentionExtractor().mentions_in("torch + sklearn on github")
        assert m == frozenset({"pytorch", "scikit-learn", "git"})

    def test_no_mentions(self):
        assert MentionExtractor().mentions_in("I like turtles") == frozenset()


class TestSummarize:
    def test_document_frequencies(self):
        rs = make_set(
            [
                "numpy and pytorch",
                "numpy numpy numpy",  # repeated token counts once
                "just bash",
                None,  # unanswered
            ]
        )
        summary = extract_mentions(rs, "stack")
        assert summary.n_documents == 3
        assert summary.counts["numpy"] == 2
        assert summary.counts["pytorch"] == 1
        assert summary.share("numpy") == pytest.approx(2 / 3)

    def test_top(self):
        rs = make_set(["numpy pytorch", "numpy", "pytorch numpy"])
        summary = extract_mentions(rs, "stack")
        assert summary.top(1) == [("numpy", 3)]

    def test_share_with_no_documents(self):
        summary = extract_mentions(make_set([None]), "stack")
        with pytest.raises(ValueError):
            summary.share("numpy")


class TestCooccurrence:
    def make_summary(self):
        rs = make_set(
            [
                "numpy and pytorch and cuda",
                "numpy and pytorch",
                "numpy pandas",
                "fortran mpi",
                "fortran mpi openmp",
            ]
        )
        return extract_mentions(rs, "stack")

    def test_edge_weights(self):
        graph = build_cooccurrence_graph(self.make_summary(), min_count=1)
        assert graph["numpy"]["pytorch"]["weight"] == 2
        assert graph["fortran"]["mpi"]["weight"] == 2

    def test_min_count_threshold(self):
        graph = build_cooccurrence_graph(self.make_summary(), min_count=2)
        assert not graph.has_edge("numpy", "pandas")  # weight 1 dropped
        assert graph.has_edge("numpy", "pytorch")

    def test_min_count_validation(self):
        with pytest.raises(ValueError):
            build_cooccurrence_graph(self.make_summary(), min_count=0)

    def test_summary_top_pairs(self):
        graph = build_cooccurrence_graph(self.make_summary(), min_count=1)
        result = cooccurrence_summary(graph, top_k=2)
        assert len(result.top_pairs) == 2
        assert all(w >= 1 for _, _, w in result.top_pairs)
        weights = [w for _, _, w in result.top_pairs]
        assert weights == sorted(weights, reverse=True)

    def test_communities_separate_stacks(self):
        graph = build_cooccurrence_graph(self.make_summary(), min_count=1)
        result = cooccurrence_summary(graph)
        # numpy/pytorch stack and fortran/mpi stack land in different groups.
        community_of = {}
        for i, community in enumerate(result.communities):
            for tool in community:
                community_of[tool] = i
        assert community_of["numpy"] != community_of["fortran"]

    def test_centrality_sums_to_one(self):
        graph = build_cooccurrence_graph(self.make_summary(), min_count=1)
        result = cooccurrence_summary(graph)
        assert sum(result.centrality.values()) == pytest.approx(1.0)

    def test_edgeless_graph(self):
        rs = make_set(["numpy", "fortran"])
        graph = build_cooccurrence_graph(extract_mentions(rs, "stack"))
        result = cooccurrence_summary(graph)
        assert result.n_edges == 0
        assert result.communities == ()

    def test_top_k_validation(self):
        graph = build_cooccurrence_graph(self.make_summary())
        with pytest.raises(ValueError):
            cooccurrence_summary(graph, top_k=0)
