"""Tests for challenge-topic coding."""

import pytest

from repro.text import TOPIC_KEYWORDS, code_challenges
from repro.text.topics import topics_in

from tests.text.test_mentions_cooccurrence import make_set


class TestTopicsIn:
    def test_queue_topic(self):
        assert "queue_contention" in topics_in(
            "Queue wait times on the cluster are the biggest bottleneck."
        )

    def test_installation_topic(self):
        assert "software_installation" in topics_in(
            "Installing dependencies reproducibly is painful."
        )

    def test_multi_label(self):
        topics = topics_in(
            "Storage quotas and the queue make everything slow."
        )
        assert {"storage_data", "queue_contention", "performance_scaling"} <= topics

    def test_no_match(self):
        assert topics_in("Everything is wonderful.") == frozenset()

    def test_case_insensitive(self):
        assert topics_in("DEBUGGING MPI JOBS") == topics_in("debugging mpi jobs")


class TestCodeChallenges:
    def make_responses(self):
        # Reuse the mentions-test questionnaire; the free-text key is "stack".
        return make_set(
            [
                "Queue wait times are brutal",
                "Installing dependencies reproducibly is painful",
                "My code is too slow and I don't know how to parallelize it",
                "Everything is wonderful",
                None,
            ]
        )

    def test_counts_and_uncoded(self):
        coded = code_challenges(self.make_responses(), key="stack")
        assert coded.n_documents == 4
        assert coded.n_uncoded == 1
        assert coded.counts["queue_contention"] == 1
        assert coded.counts["software_installation"] == 1
        assert coded.counts["performance_scaling"] == 1

    def test_share(self):
        coded = code_challenges(self.make_responses(), key="stack")
        assert coded.share("queue_contention") == pytest.approx(0.25)

    def test_ranked_order(self):
        coded = code_challenges(self.make_responses(), key="stack")
        values = [c for _, c in coded.ranked()]
        assert values == sorted(values, reverse=True)

    def test_share_without_documents(self):
        coded = code_challenges(make_set([None]), key="stack")
        with pytest.raises(ValueError):
            coded.share("queue_contention")

    def test_on_generated_study(self, study):
        coded = code_challenges(study.current)
        assert coded.n_documents > 100
        # The synthetic templates cover most categories.
        assert len(coded.counts) >= 4
        assert coded.n_uncoded / coded.n_documents < 0.2

    def test_keywords_disjoint_enough(self):
        """No keyword claimed by two topics (keeps coding interpretable)."""
        seen = {}
        for topic, keywords in TOPIC_KEYWORDS.items():
            for kw in keywords:
                assert kw not in seen, f"{kw!r} in both {seen.get(kw)} and {topic}"
                seen[kw] = topic
