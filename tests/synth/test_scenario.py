"""Ground-truth recovery tests: the pipeline finds planted effects and
controls false positives on null scenarios."""

import numpy as np
import pytest

from repro.core import TrendEngine, build_instrument, profile_2011, profile_2024
from repro.synth import (
    generate_study,
    null_revisit_profile,
    with_multi_rates,
    with_yes_rate,
)
from repro.synth.models import BernoulliYesNoModel


@pytest.fixture(scope="module")
def questionnaire():
    return build_instrument()


class TestScenarioConstruction:
    def test_with_yes_rate_overrides_base(self):
        modified = with_yes_rate(profile_2024(), "uses_containers", 0.9)
        model = modified.question_models["uses_containers"]
        assert isinstance(model, BernoulliYesNoModel)
        assert model.base == 0.9
        # Loadings preserved; original untouched.
        assert model.loadings == profile_2024().question_models["uses_containers"].loadings
        assert profile_2024().question_models["uses_containers"].base != 0.9

    def test_with_yes_rate_validation(self):
        with pytest.raises(TypeError):
            with_yes_rate(profile_2024(), "languages", 0.5)
        with pytest.raises(ValueError):
            with_yes_rate(profile_2024(), "uses_ml", 1.5)

    def test_with_multi_rates(self):
        modified = with_multi_rates(profile_2024(), "languages", {"julia": 0.6})
        assert modified.question_models["languages"].option_probs["julia"] == 0.6

    def test_with_multi_rates_validation(self):
        with pytest.raises(TypeError):
            with_multi_rates(profile_2024(), "uses_ml", {"yes": 0.5})
        with pytest.raises(ValueError):
            with_multi_rates(profile_2024(), "languages", {"cobol": 0.5})
        with pytest.raises(ValueError):
            with_multi_rates(profile_2024(), "languages", {"julia": 2.0})

    def test_null_profile_label(self):
        null = null_revisit_profile(profile_2011(), "2024")
        assert null.cohort == "2024"
        with pytest.raises(ValueError):
            null_revisit_profile(profile_2011(), "2011")


class TestEffectRecovery:
    def test_planted_yes_effect_detected(self, questionnaire):
        """Plant a big containers effect and confirm the engine finds it."""
        boosted = with_yes_rate(profile_2024(), "uses_containers", 0.80)
        responses = generate_study(
            {"2011": (profile_2011(), 150), "2024": (boosted, 150)},
            questionnaire,
            seed=3,
        )
        row = TrendEngine(responses).yes_no_trend("uses_containers")
        assert row.current.estimate > 0.6
        assert row.significant(1e-6)

    def test_planted_multi_effect_detected(self, questionnaire):
        surged = with_multi_rates(profile_2024(), "languages", {"julia": 0.55})
        responses = generate_study(
            {"2011": (profile_2011(), 150), "2024": (surged, 150)},
            questionnaire,
            seed=4,
        )
        table = TrendEngine(responses).multi_choice_trend("languages").corrected("holm")
        assert table["julia"].significant(0.001)
        assert table["julia"].delta > 0.3

    def test_effect_size_recovered_within_ci(self, questionnaire):
        """The planted rate should land inside the reported Wilson CI."""
        planted = 0.65
        boosted = with_yes_rate(profile_2024(), "uses_containers", planted)
        responses = generate_study(
            {"2011": (profile_2011(), 300), "2024": (boosted, 300)},
            questionnaire,
            seed=5,
        )
        row = TrendEngine(responses).yes_no_trend("uses_containers")
        assert row.current.low - 0.03 <= planted <= row.current.high + 0.03


class TestNullControl:
    def test_false_positive_rate_controlled(self, questionnaire):
        """On a null revisit, Holm-corrected families reject ~never and raw
        per-row rejections stay near alpha."""
        null = null_revisit_profile(profile_2011(), "2024")
        raw_rejections = 0
        corrected_rejections = 0
        n_rows = 0
        for seed in range(6):
            responses = generate_study(
                {"2011": (profile_2011(), 150), "2024": (null, 150)},
                questionnaire,
                seed=100 + seed,
            )
            engine = TrendEngine(responses)
            table = engine.multi_choice_trend("languages")
            for row in table:
                n_rows += 1
                raw_rejections += row.significant(0.05)
            corrected = table.corrected("holm")
            corrected_rejections += sum(r.significant(0.05) for r in corrected)
        assert n_rows == 66
        # Raw false-positive rate should be near 5% (allow generous slack).
        assert raw_rejections / n_rows < 0.15
        # Family-wise control: at most one corrected rejection across runs.
        assert corrected_rejections <= 1

    def test_null_yes_no_rows_not_significant(self, questionnaire):
        null = null_revisit_profile(profile_2011(), "2024")
        responses = generate_study(
            {"2011": (profile_2011(), 200), "2024": (null, 200)},
            questionnaire,
            seed=55,
        )
        engine = TrendEngine(responses)
        significant = [
            key
            for key in ("uses_ml", "uses_gpu", "uses_containers", "uses_cluster")
            if engine.yes_no_trend(key).significant(0.01)
        ]
        assert significant == []
