"""Ground-truth recovery tests: the pipeline finds planted effects and
controls false positives on null scenarios."""

import numpy as np
import pytest

from repro.core import TrendEngine, build_instrument, profile_2011, profile_2024
from repro.synth import (
    generate_study,
    null_revisit_profile,
    with_multi_rates,
    with_yes_rate,
)
from repro.synth.models import BernoulliYesNoModel
from repro.synth.scenario import (
    DRIFT_SCENARIOS,
    apply_drift,
    get_drift_scenario,
)


@pytest.fixture(scope="module")
def questionnaire():
    return build_instrument()


class TestScenarioConstruction:
    def test_with_yes_rate_overrides_base(self):
        modified = with_yes_rate(profile_2024(), "uses_containers", 0.9)
        model = modified.question_models["uses_containers"]
        assert isinstance(model, BernoulliYesNoModel)
        assert model.base == 0.9
        # Loadings preserved; original untouched.
        assert model.loadings == profile_2024().question_models["uses_containers"].loadings
        assert profile_2024().question_models["uses_containers"].base != 0.9

    def test_with_yes_rate_validation(self):
        with pytest.raises(TypeError):
            with_yes_rate(profile_2024(), "languages", 0.5)
        with pytest.raises(ValueError):
            with_yes_rate(profile_2024(), "uses_ml", 1.5)

    def test_with_multi_rates(self):
        modified = with_multi_rates(profile_2024(), "languages", {"julia": 0.6})
        assert modified.question_models["languages"].option_probs["julia"] == 0.6

    def test_with_multi_rates_validation(self):
        with pytest.raises(TypeError):
            with_multi_rates(profile_2024(), "uses_ml", {"yes": 0.5})
        with pytest.raises(ValueError):
            with_multi_rates(profile_2024(), "languages", {"cobol": 0.5})
        with pytest.raises(ValueError):
            with_multi_rates(profile_2024(), "languages", {"julia": 2.0})

    def test_null_profile_label(self):
        null = null_revisit_profile(profile_2011(), "2024")
        assert null.cohort == "2024"
        with pytest.raises(ValueError):
            null_revisit_profile(profile_2011(), "2011")


class TestDriftScenarioCatalog:
    EXPECTED = {
        "package_version_churn",
        "partial_data_loss",
        "schema_evolution",
        "planted_yes_rate",
    }

    def test_catalog_complete_and_self_named(self):
        assert set(DRIFT_SCENARIOS) == self.EXPECTED
        for name, scenario in DRIFT_SCENARIOS.items():
            assert scenario.name == name
            assert scenario.description
            assert scenario.origin == ("survey",)

    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_baseline_wave_is_frozen(self, name):
        """Every scenario models *revisit-time* drift: 2011 is archived data."""
        original = profile_2011()
        assert apply_drift(name, "2011", original) is original

    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_revisit_wave_actually_changes(self, name):
        # Profiles don't define value equality, so compare structurally —
        # the same digest the audit uses to detect divergence.
        from repro.audit.digests import structural_digest

        drifted = apply_drift(name, "2024", profile_2024())
        assert structural_digest(drifted) != structural_digest(profile_2024())

    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_transforms_are_pure(self, name):
        from repro.audit.digests import structural_digest

        once = apply_drift(name, "2024", profile_2024())
        again = apply_drift(name, "2024", profile_2024())
        assert structural_digest(once) == structural_digest(again)

    def test_package_version_churn_nudges_marginals(self):
        base = profile_2024().question_models["uses_containers"].base
        drifted = apply_drift("package_version_churn", "2024", profile_2024())
        assert drifted.question_models["uses_containers"].base == pytest.approx(
            min(1.0, base + 0.04)
        )

    def test_partial_data_loss_raises_missingness(self):
        base = profile_2024()
        drifted = apply_drift("partial_data_loss", "2024", base)
        assert drifted.missing_rate == pytest.approx(base.missing_rate + 0.25)
        assert drifted.required_missing_rate == pytest.approx(
            base.required_missing_rate + 0.10
        )

    def test_schema_evolution_zeroes_dropped_option(self):
        drifted = apply_drift("schema_evolution", "2024", profile_2024())
        assert drifted.question_models["languages"].option_probs["fortran"] == 0.0

    def test_planted_yes_rate_is_the_positive_control(self):
        drifted = apply_drift("planted_yes_rate", "2024", profile_2024())
        assert drifted.question_models["uses_parallelism"].base == 0.95

    def test_unknown_scenario_raises_with_catalog(self):
        with pytest.raises(KeyError, match="unknown drift scenario"):
            get_drift_scenario("cosmic_rays")
        with pytest.raises(KeyError, match="planted_yes_rate"):
            apply_drift("cosmic_rays", "2024", profile_2024())

    def test_empty_name_is_identity(self):
        original = profile_2024()
        assert apply_drift("", "2024", original) is original


class TestEffectRecovery:
    def test_planted_yes_effect_detected(self, questionnaire):
        """Plant a big containers effect and confirm the engine finds it."""
        boosted = with_yes_rate(profile_2024(), "uses_containers", 0.80)
        responses = generate_study(
            {"2011": (profile_2011(), 150), "2024": (boosted, 150)},
            questionnaire,
            seed=3,
        )
        row = TrendEngine(responses).yes_no_trend("uses_containers")
        assert row.current.estimate > 0.6
        assert row.significant(1e-6)

    def test_planted_multi_effect_detected(self, questionnaire):
        surged = with_multi_rates(profile_2024(), "languages", {"julia": 0.55})
        responses = generate_study(
            {"2011": (profile_2011(), 150), "2024": (surged, 150)},
            questionnaire,
            seed=4,
        )
        table = TrendEngine(responses).multi_choice_trend("languages").corrected("holm")
        assert table["julia"].significant(0.001)
        assert table["julia"].delta > 0.3

    def test_effect_size_recovered_within_ci(self, questionnaire):
        """The planted rate should land inside the reported Wilson CI."""
        planted = 0.65
        boosted = with_yes_rate(profile_2024(), "uses_containers", planted)
        responses = generate_study(
            {"2011": (profile_2011(), 300), "2024": (boosted, 300)},
            questionnaire,
            seed=5,
        )
        row = TrendEngine(responses).yes_no_trend("uses_containers")
        assert row.current.low - 0.03 <= planted <= row.current.high + 0.03


class TestNullControl:
    def test_false_positive_rate_controlled(self, questionnaire):
        """On a null revisit, Holm-corrected families reject ~never and raw
        per-row rejections stay near alpha."""
        null = null_revisit_profile(profile_2011(), "2024")
        raw_rejections = 0
        corrected_rejections = 0
        n_rows = 0
        for seed in range(6):
            responses = generate_study(
                {"2011": (profile_2011(), 150), "2024": (null, 150)},
                questionnaire,
                seed=100 + seed,
            )
            engine = TrendEngine(responses)
            table = engine.multi_choice_trend("languages")
            for row in table:
                n_rows += 1
                raw_rejections += row.significant(0.05)
            corrected = table.corrected("holm")
            corrected_rejections += sum(r.significant(0.05) for r in corrected)
        assert n_rows == 66
        # Raw false-positive rate should be near 5% (allow generous slack).
        assert raw_rejections / n_rows < 0.15
        # Family-wise control: at most one corrected rejection across runs.
        assert corrected_rejections <= 1

    def test_null_yes_no_rows_not_significant(self, questionnaire):
        null = null_revisit_profile(profile_2011(), "2024")
        responses = generate_study(
            {"2011": (profile_2011(), 200), "2024": (null, 200)},
            questionnaire,
            seed=55,
        )
        engine = TrendEngine(responses)
        significant = [
            key
            for key in ("uses_ml", "uses_gpu", "uses_containers", "uses_cluster")
            if engine.yes_no_trend(key).significant(0.01)
        ]
        assert significant == []
