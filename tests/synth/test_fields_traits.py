"""Tests for the field taxonomy and latent trait model."""

import numpy as np
import pytest

from repro.synth import TRAIT_NAMES, TraitModel, TraitSpec
from repro.synth.fields import CAREER_STAGES, FIELDS, field_names, field_shares


class TestFields:
    def test_shares_form_distribution(self):
        assert sum(f.share for f in FIELDS) == pytest.approx(1.0)

    def test_names_unique(self):
        names = field_names()
        assert len(set(names)) == len(names)

    def test_shares_mapping_matches(self):
        shares = field_shares()
        assert set(shares) == set(field_names())
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_career_stage_distribution(self):
        assert sum(CAREER_STAGES.values()) == pytest.approx(1.0)

    def test_trait_shifts_roughly_zero_mean(self):
        """Shifts must stay near share-weighted zero so cohort base rates
        remain the cohort marginals (calibration invariant)."""
        for trait in TRAIT_NAMES:
            weighted = sum(f.share * f.trait_shift.get(trait, 0.0) for f in FIELDS)
            assert abs(weighted) < 0.03, f"trait {trait} weighted shift {weighted}"

    def test_shift_traits_are_known(self):
        for f in FIELDS:
            assert set(f.trait_shift) <= set(TRAIT_NAMES)


def make_model(**means):
    base = {"programming": 0.5, "hpc": 0.4, "ml": 0.3, "rigor": 0.5}
    base.update(means)
    return TraitModel({k: TraitSpec(mean=v) for k, v in base.items()})


class TestTraitSpec:
    def test_rejects_bad_mean(self):
        with pytest.raises(ValueError):
            TraitSpec(mean=0.0)
        with pytest.raises(ValueError):
            TraitSpec(mean=1.0)

    def test_rejects_bad_concentration(self):
        with pytest.raises(ValueError):
            TraitSpec(mean=0.5, concentration=0.0)


class TestTraitModel:
    def test_requires_all_traits(self):
        with pytest.raises(ValueError):
            TraitModel({"programming": TraitSpec(mean=0.5)})

    def test_rejects_unknown_traits(self):
        specs = {k: TraitSpec(mean=0.5) for k in TRAIT_NAMES}
        specs["charisma"] = TraitSpec(mean=0.5)
        with pytest.raises(ValueError):
            TraitModel(specs)

    def test_sample_in_unit_interval(self):
        model = make_model()
        rng = np.random.default_rng(0)
        for f in FIELDS:
            traits = model.sample(f, rng)
            assert set(traits) == set(TRAIT_NAMES)
            assert all(0.0 <= v <= 1.0 for v in traits.values())

    def test_field_shift_moves_mean(self):
        model = make_model()
        rng = np.random.default_rng(1)
        astro = next(f for f in FIELDS if f.name == "astrophysics")
        social = next(f for f in FIELDS if f.name == "social_sciences")
        astro_hpc = model.sample_many(astro, 3000, rng)["hpc"].mean()
        social_hpc = model.sample_many(social, 3000, rng)["hpc"].mean()
        assert astro_hpc > social_hpc + 0.2

    def test_sample_many_matches_effective_mean(self):
        model = make_model()
        rng = np.random.default_rng(2)
        f = FIELDS[0]
        draws = model.sample_many(f, 20000, rng)
        for trait in TRAIT_NAMES:
            expected = model.effective_mean(trait, f)
            assert draws[trait].mean() == pytest.approx(expected, abs=0.02)

    def test_effective_mean_clipped(self):
        model = make_model(ml=0.03)
        f = next(f for f in FIELDS if f.trait_shift.get("ml", 0) < 0)
        assert 0.0 < model.effective_mean("ml", f) < 1.0

    def test_sample_many_negative_n_rejected(self):
        with pytest.raises(ValueError):
            make_model().sample_many(FIELDS[0], -1, np.random.default_rng(0))
