"""Tests for the free-text generator."""

import numpy as np
import pytest

from repro.synth import FreeTextTemplates
from repro.synth.models import RespondentContext


def ctx(**traits):
    base = {"programming": 0.5, "hpc": 0.5, "ml": 0.5, "rigor": 0.5}
    base.update(traits)
    return RespondentContext(
        field_name="physics", career_stage="postdoc", traits=base, cohort="2024"
    )


def make_templates(**kw):
    defaults = dict(
        tool_probs={"numpy": 0.8, "matlab": 0.3, "mpi": 0.2},
        tool_loadings={"mpi": {"hpc": 4.0}},
    )
    defaults.update(kw)
    return FreeTextTemplates(**defaults)


class TestStackDescription:
    def test_returns_nonempty_string(self):
        t = make_templates()
        rng = np.random.default_rng(0)
        text = t.stack_description(ctx(), {}, rng)
        assert isinstance(text, str) and text

    def test_mentions_probable_tools(self):
        t = make_templates()
        rng = np.random.default_rng(1)
        texts = [t.stack_description(ctx(), {}, rng).lower() for _ in range(200)]
        numpy_rate = sum("numpy" in s for s in texts) / len(texts)
        assert numpy_rate > 0.6

    def test_trait_loading_changes_mentions(self):
        t = make_templates(mention_decorations=0.0)
        rng = np.random.default_rng(2)
        hpc_texts = [t.stack_description(ctx(hpc=0.95), {}, rng) for _ in range(300)]
        low_texts = [t.stack_description(ctx(hpc=0.05), {}, rng) for _ in range(300)]
        hpc_rate = sum("mpi" in s.lower() for s in hpc_texts) / len(hpc_texts)
        low_rate = sum("mpi" in s.lower() for s in low_texts) / len(low_texts)
        assert hpc_rate > low_rate + 0.2

    def test_never_empty_mentions(self):
        # Tiny probabilities still produce at least one tool (the fallback).
        t = FreeTextTemplates(tool_probs={"numpy": 0.001, "matlab": 0.0005})
        rng = np.random.default_rng(3)
        for _ in range(50):
            text = t.stack_description(ctx(), {}, rng)
            assert "numpy" in text.lower() or "matlab" in text.lower()

    def test_decorations_add_versions_sometimes(self):
        t = make_templates(mention_decorations=1.0)
        rng = np.random.default_rng(4)
        texts = [t.stack_description(ctx(), {}, rng) for _ in range(100)]
        assert any(any(ch.isdigit() for ch in s) for s in texts)


class TestChallenge:
    def test_returns_template(self):
        t = make_templates()
        rng = np.random.default_rng(5)
        text = t.challenge(ctx(), {}, rng)
        assert isinstance(text, str) and len(text) > 10

    def test_hpc_users_complain_about_cluster_more(self):
        t = make_templates()
        rng = np.random.default_rng(6)
        hpc = [t.challenge(ctx(hpc=0.9), {}, rng) for _ in range(400)]
        low = [t.challenge(ctx(hpc=0.1), {}, rng) for _ in range(400)]
        cluster_words = ("queue", "gpu", "mpi", "parallelize")
        hpc_rate = sum(any(w in s.lower() for w in cluster_words) for s in hpc) / len(hpc)
        low_rate = sum(any(w in s.lower() for w in cluster_words) for s in low) / len(low)
        assert hpc_rate > low_rate


class TestValidation:
    def test_empty_probs_rejected(self):
        with pytest.raises(ValueError):
            FreeTextTemplates(tool_probs={})

    def test_bad_probability_rejected(self):
        with pytest.raises(ValueError):
            FreeTextTemplates(tool_probs={"x": 1.5})

    def test_unknown_loading_rejected(self):
        with pytest.raises(ValueError):
            FreeTextTemplates(tool_probs={"x": 0.5}, tool_loadings={"y": {"ml": 1.0}})
