"""Tests for per-question response models."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.synth import (
    BernoulliYesNoModel,
    CategoricalModel,
    DerivedMultiChoiceModel,
    FreeTextModel,
    LikertModel,
    MultiChoiceModel,
    NumericModel,
    RespondentContext,
)


def ctx(cohort="2024", centers=None, **traits):
    base = {"programming": 0.5, "hpc": 0.5, "ml": 0.5, "rigor": 0.5}
    base.update(traits)
    return RespondentContext(
        field_name="physics", career_stage="postdoc", traits=base, cohort=cohort,
        centers=centers,
    )


class TestContext:
    def test_trait_lookup(self):
        c = ctx(hpc=0.9)
        assert c.trait("hpc") == 0.9
        with pytest.raises(KeyError):
            c.trait("charisma")

    def test_centered_default(self):
        assert ctx(hpc=0.7).centered_trait("hpc") == pytest.approx(0.2)

    def test_centered_with_centers(self):
        c = ctx(hpc=0.7, centers={"hpc": 0.7})
        assert c.centered_trait("hpc") == pytest.approx(0.0)

    def test_centers_fallback_for_missing_key(self):
        c = ctx(hpc=0.7, centers={"ml": 0.3})
        assert c.centered_trait("hpc") == pytest.approx(0.2)


class TestCategorical:
    def test_probabilities_normalized(self):
        m = CategoricalModel(base_probs={"a": 0.5, "b": 0.3, "c": 0.2})
        probs = m.probabilities(ctx())
        assert sum(probs.values()) == pytest.approx(1.0)
        assert probs["a"] == pytest.approx(0.5)

    def test_loading_shifts_option(self):
        m = CategoricalModel(
            base_probs={"git": 0.3, "none": 0.7},
            loadings={"git": {"rigor": 4.0}},
        )
        lo = m.probabilities(ctx(rigor=0.1))["git"]
        hi = m.probabilities(ctx(rigor=0.9))["git"]
        assert hi > lo + 0.3

    def test_sample_returns_option(self):
        m = CategoricalModel(base_probs={"a": 0.5, "b": 0.5})
        rng = np.random.default_rng(0)
        assert m.sample(ctx(), {}, rng) in ("a", "b")

    def test_zero_base_prob_nearly_never(self):
        m = CategoricalModel(base_probs={"a": 1.0, "b": 0.0})
        rng = np.random.default_rng(0)
        draws = {m.sample(ctx(), {}, rng) for _ in range(200)}
        assert draws == {"a"}

    def test_validation(self):
        with pytest.raises(ValueError):
            CategoricalModel(base_probs={})
        with pytest.raises(ValueError):
            CategoricalModel(base_probs={"a": -0.1, "b": 0.5})
        with pytest.raises(ValueError):
            CategoricalModel(base_probs={"a": 0.5}, loadings={"zz": {"ml": 1.0}})
        with pytest.raises(ValueError):
            CategoricalModel(base_probs={"a": 0.5, "b": 0.5}, loadings={"a": {"zz": 1.0}})


class TestBernoulli:
    def test_base_probability_at_center(self):
        m = BernoulliYesNoModel(base=0.3, loadings={"hpc": 4.0})
        assert m.probability(ctx(hpc=0.5)) == pytest.approx(0.3)

    def test_loading_direction(self):
        m = BernoulliYesNoModel(base=0.3, loadings={"hpc": 4.0})
        assert m.probability(ctx(hpc=0.9)) > 0.3 > m.probability(ctx(hpc=0.1))

    def test_empirical_rate(self):
        m = BernoulliYesNoModel(base=0.4)
        rng = np.random.default_rng(3)
        draws = [m.sample(ctx(), {}, rng) for _ in range(4000)]
        rate = draws.count("yes") / len(draws)
        assert rate == pytest.approx(0.4, abs=0.03)

    def test_custom_labels(self):
        m = BernoulliYesNoModel(base=1.0, yes="si", no="no")
        assert m.sample(ctx(), {}, np.random.default_rng(0)) == "si"

    def test_validation(self):
        with pytest.raises(ValueError):
            BernoulliYesNoModel(base=1.5)
        with pytest.raises(ValueError):
            BernoulliYesNoModel(base=0.5, loadings={"zz": 1.0})


class TestMultiChoice:
    def test_independent_selection_rates(self):
        m = MultiChoiceModel(option_probs={"x": 0.9, "y": 0.1})
        rng = np.random.default_rng(5)
        selections = [m.sample(ctx(), {}, rng) for _ in range(3000)]
        x_rate = sum("x" in s for s in selections) / len(selections)
        y_rate = sum("y" in s for s in selections) / len(selections)
        assert x_rate == pytest.approx(0.9, abs=0.03)
        assert y_rate == pytest.approx(0.1, abs=0.03)

    def test_returns_subset(self):
        m = MultiChoiceModel(option_probs={"x": 0.5, "y": 0.5, "z": 0.5})
        rng = np.random.default_rng(6)
        for _ in range(50):
            sel = m.sample(ctx(), {}, rng)
            assert set(sel) <= {"x", "y", "z"}
            assert len(set(sel)) == len(sel)

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiChoiceModel(option_probs={})
        with pytest.raises(ValueError):
            MultiChoiceModel(option_probs={"x": 1.2})


class TestDerivedMultiChoice:
    def test_adjust_applied(self):
        inner = MultiChoiceModel(option_probs={"gpu": 0.1, "mpi": 0.5})

        def force_gpu(probs, answers):
            if answers.get("uses_gpu") == "yes":
                probs["gpu"] = 1.0
            return probs

        m = DerivedMultiChoiceModel(inner=inner, adjust=force_gpu)
        rng = np.random.default_rng(0)
        with_gpu = [m.sample(ctx(), {"uses_gpu": "yes"}, rng) for _ in range(50)]
        assert all("gpu" in s for s in with_gpu)

    def test_bad_adjusted_probability_raises(self):
        inner = MultiChoiceModel(option_probs={"a": 0.5})
        m = DerivedMultiChoiceModel(inner=inner, adjust=lambda p, a: {"a": 2.0})
        with pytest.raises(ValueError):
            m.sample(ctx(), {}, np.random.default_rng(0))

    def test_requires_adjust(self):
        inner = MultiChoiceModel(option_probs={"a": 0.5})
        with pytest.raises(ValueError):
            DerivedMultiChoiceModel(inner=inner, adjust=None)


class TestLikert:
    def test_in_scale(self):
        m = LikertModel(points=5, base_mean=3.0)
        rng = np.random.default_rng(1)
        draws = [m.sample(ctx(), {}, rng) for _ in range(500)]
        assert all(1 <= v <= 5 for v in draws)
        assert np.mean(draws) == pytest.approx(3.0, abs=0.15)

    def test_loading_shifts_mean(self):
        m = LikertModel(points=5, base_mean=3.0, loadings={"programming": 3.0})
        assert m.mean(ctx(programming=0.9)) > m.mean(ctx(programming=0.1))

    def test_validation(self):
        with pytest.raises(ValueError):
            LikertModel(points=1, base_mean=1.0)
        with pytest.raises(ValueError):
            LikertModel(points=5, base_mean=7.0)
        with pytest.raises(ValueError):
            LikertModel(points=5, base_mean=3.0, sd=0.0)


class TestNumeric:
    def test_range_respected(self):
        m = NumericModel(log_mean=2.0, log_sd=1.0, minimum=0, maximum=60)
        rng = np.random.default_rng(2)
        draws = [m.sample(ctx(), {}, rng) for _ in range(300)]
        assert all(0 <= v <= 60 for v in draws)
        assert all(isinstance(v, int) for v in draws)

    def test_float_mode(self):
        m = NumericModel(log_mean=0.0, log_sd=0.5, minimum=0, maximum=10, integer=False)
        v = m.sample(ctx(), {}, np.random.default_rng(0))
        assert isinstance(v, float)

    def test_validation(self):
        with pytest.raises(ValueError):
            NumericModel(log_mean=0, log_sd=0, minimum=0, maximum=1)
        with pytest.raises(ValueError):
            NumericModel(log_mean=0, log_sd=1, minimum=5, maximum=1)


class TestFreeText:
    def test_delegates(self):
        m = FreeTextModel(generate=lambda c, a, r: f"I am a {c.field_name}")
        assert m.sample(ctx(), {}, np.random.default_rng(0)) == "I am a physics"

    def test_non_string_rejected(self):
        m = FreeTextModel(generate=lambda c, a, r: 42)
        with pytest.raises(TypeError):
            m.sample(ctx(), {}, np.random.default_rng(0))


@settings(max_examples=30, deadline=None)
@given(
    base=st.floats(min_value=0.01, max_value=0.99),
    trait=st.floats(min_value=0.0, max_value=1.0),
    loading=st.floats(min_value=-5.0, max_value=5.0),
)
def test_property_bernoulli_probability_valid(base, trait, loading):
    m = BernoulliYesNoModel(base=base, loadings={"ml": loading})
    p = m.probability(ctx(ml=trait))
    assert 0.0 <= p <= 1.0
    # Monotone in the trait when loading is positive.
    if loading > 0:
        assert m.probability(ctx(ml=1.0)) >= m.probability(ctx(ml=0.0))
