"""Tests for cohort generation and the calibrated profiles."""

import numpy as np
import pytest

from repro.core import (
    BASELINE_2011,
    TARGETS_2024,
    build_instrument,
    profile_2011,
    profile_2024,
)
from repro.survey import validate_response_set
from repro.survey.validation import IssueKind
from repro.synth import CohortProfile, ProfileError, generate_cohort, generate_study
from repro.synth.models import BernoulliYesNoModel
from repro.synth.traits import TraitModel, TraitSpec


@pytest.fixture(scope="module")
def questionnaire():
    return build_instrument()


@pytest.fixture(scope="module")
def study_responses(questionnaire):
    return generate_study(
        {"2011": (profile_2011(), 400), "2024": (profile_2024(), 400)},
        questionnaire,
        seed=99,
    )


def proportion(cohort_set, key, value):
    col = cohort_set.column(key)
    answered = [v for v in col if v is not None]
    return sum(1 for v in answered if v == value) / len(answered)


def multi_share(cohort_set, key, option):
    q = cohort_set.questionnaire[key]
    j = q.options.index(option)
    mat = cohort_set.selection_matrix(key)
    mask = cohort_set.answered_mask(key)
    return mat[mask, j].mean()


class TestGenerateCohort:
    def test_sizes_and_cohort_label(self, questionnaire):
        rs = generate_cohort(profile_2024(), questionnaire, 50, np.random.default_rng(0))
        assert len(rs) == 50
        assert rs.cohorts == ("2024",)

    def test_zero_respondents(self, questionnaire):
        rs = generate_cohort(profile_2024(), questionnaire, 0, np.random.default_rng(0))
        assert len(rs) == 0

    def test_negative_rejected(self, questionnaire):
        with pytest.raises(ValueError):
            generate_cohort(profile_2024(), questionnaire, -1, np.random.default_rng(0))

    def test_deterministic_with_seed(self, questionnaire):
        a = generate_cohort(profile_2024(), questionnaire, 30, np.random.default_rng(5))
        b = generate_cohort(profile_2024(), questionnaire, 30, np.random.default_rng(5))
        assert [dict(r.answers) for r in a] == [dict(r.answers) for r in b]

    def test_respects_skip_logic(self, questionnaire):
        rs = generate_cohort(profile_2024(), questionnaire, 200, np.random.default_rng(1))
        for r in rs:
            if r.get("uses_cluster", None) != "yes":
                assert not r.answered("scheduler")
            if r.get("uses_ml", None) != "yes":
                assert not r.answered("ml_frameworks")

    def test_no_fatal_validation_issues(self, questionnaire):
        rs = generate_cohort(profile_2024(), questionnaire, 150, np.random.default_rng(2))
        report = validate_response_set(rs)
        assert report.ok, report.of_kind(IssueKind.INVALID_VALUE)[:3]

    def test_demographics_pinned(self, questionnaire):
        """field/career_stage answers always present and from the taxonomy."""
        rs = generate_cohort(profile_2011(), questionnaire, 100, np.random.default_rng(3))
        for r in rs:
            assert r.answered("field")
            assert r.answered("career_stage")

    def test_missingness_appears(self, questionnaire):
        rs = generate_cohort(profile_2024(), questionnaire, 300, np.random.default_rng(4))
        assert rs.completion_rate() < 1.0


class TestGenerateStudy:
    def test_cohorts_merged(self, study_responses):
        assert study_responses.cohorts == ("2011", "2024")
        assert len(study_responses) == 800

    def test_ids_unique_across_cohorts(self, study_responses):
        ids = [r.respondent_id for r in study_responses]
        assert len(set(ids)) == len(ids)

    def test_empty_request_rejected(self, questionnaire):
        with pytest.raises(ValueError):
            generate_study({}, questionnaire, seed=1)

    def test_label_mismatch_rejected(self, questionnaire):
        with pytest.raises(ValueError):
            generate_study({"2020": (profile_2024(), 5)}, questionnaire, seed=1)

    def test_cohort_independence(self, questionnaire):
        """Adding a cohort never changes another cohort's draws."""
        both = generate_study(
            {"2011": (profile_2011(), 40), "2024": (profile_2024(), 40)},
            questionnaire,
            seed=7,
        )
        alone = generate_study({"2011": (profile_2011(), 40)}, questionnaire, seed=7)
        both_2011 = [dict(r.answers) for r in both.by_cohort("2011")]
        alone_2011 = [dict(r.answers) for r in alone]
        assert both_2011 == alone_2011


class TestCalibration:
    """Generated marginals must land near the documented targets."""

    @pytest.mark.parametrize(
        "key,target_key",
        [
            ("uses_parallelism", "uses_parallelism.yes"),
            ("uses_cluster", "uses_cluster.yes"),
            ("uses_ml", "uses_ml.yes"),
        ],
    )
    def test_2024_yes_rates(self, study_responses, key, target_key):
        rate = proportion(study_responses.by_cohort("2024"), key, "yes")
        assert rate == pytest.approx(TARGETS_2024[target_key], abs=0.08)

    def test_2011_ml_rate_low(self, study_responses):
        rate = proportion(study_responses.by_cohort("2011"), "uses_ml", "yes")
        assert rate == pytest.approx(BASELINE_2011["uses_ml.yes"], abs=0.06)

    @pytest.mark.parametrize("language,lo,hi", [("python", 0.84, 0.97), ("fortran", 0.05, 0.22)])
    def test_2024_language_shares(self, study_responses, language, lo, hi):
        share = multi_share(study_responses.by_cohort("2024"), "languages", language)
        assert lo <= share <= hi

    def test_python_rise_is_the_headline(self, study_responses):
        rise = multi_share(study_responses.by_cohort("2024"), "languages", "python") - multi_share(
            study_responses.by_cohort("2011"), "languages", "python"
        )
        assert rise > 0.40

    def test_git_displaces_none(self, study_responses):
        git_2011 = proportion(study_responses.by_cohort("2011"), "vcs", "git")
        git_2024 = proportion(study_responses.by_cohort("2024"), "vcs", "git")
        none_2011 = proportion(study_responses.by_cohort("2011"), "vcs", "none")
        none_2024 = proportion(study_responses.by_cohort("2024"), "vcs", "none")
        assert git_2024 > git_2011 + 0.4
        assert none_2024 < none_2011 - 0.2

    def test_slurm_monoculture_2024(self, study_responses):
        assert proportion(study_responses.by_cohort("2024"), "scheduler", "slurm") > 0.7

    def test_gpu_consistent_with_modes(self, study_responses):
        """Nearly everyone selecting the gpu parallel mode reports using GPUs."""
        for r in study_responses.by_cohort("2024"):
            modes = r.get("parallel_modes", None)
            if modes and "gpu" in modes and r.answered("uses_gpu"):
                pass  # counted below
        hits, total = 0, 0
        for r in study_responses:
            modes = r.get("parallel_modes", None)
            if modes and "gpu" in modes and r.answered("uses_gpu"):
                total += 1
                hits += r.get("uses_gpu") == "yes"
        assert total > 10
        assert hits / total > 0.85

    def test_freetext_present_and_bounded(self, study_responses):
        texts = [
            r.get("stack_description")
            for r in study_responses
            if r.answered("stack_description")
        ]
        assert len(texts) > 500
        assert all(isinstance(t, str) and 0 < len(t) <= 500 for t in texts)


class TestProfileValidation:
    def test_bad_rates_rejected(self):
        traits = TraitModel({k: TraitSpec(mean=0.5) for k in ("programming", "hpc", "ml", "rigor")})
        with pytest.raises(ProfileError):
            CohortProfile(
                cohort="x",
                trait_model=traits,
                question_models={"q": BernoulliYesNoModel(base=0.5)},
                missing_rate=1.5,
            )

    def test_empty_models_rejected(self):
        traits = TraitModel({k: TraitSpec(mean=0.5) for k in ("programming", "hpc", "ml", "rigor")})
        with pytest.raises(ProfileError):
            CohortProfile(cohort="x", trait_model=traits, question_models={})

    def test_field_lookup(self):
        p = profile_2024()
        assert p.field_by_name("physics").name == "physics"
        with pytest.raises(KeyError):
            p.field_by_name("alchemy")
