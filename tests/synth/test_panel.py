"""Tests for panel generation and paired analysis."""

import numpy as np
import pytest

from repro.analysis import paired_multi_change, paired_yes_no_change
from repro.core import build_instrument, profile_2011, profile_2024
from repro.survey import Response, ResponseSet
from repro.synth import PanelResponses, generate_panel


@pytest.fixture(scope="module")
def questionnaire():
    return build_instrument()


@pytest.fixture(scope="module")
def panel(questionnaire):
    return generate_panel(
        profile_2011(), profile_2024(), questionnaire, 150, np.random.default_rng(3)
    )


class TestGeneratePanel:
    def test_sizes_and_alignment(self, panel):
        assert len(panel) == 150
        for ra, rb in panel.pairs():
            assert ra.cohort == "2011" and rb.cohort == "2024"
            assert ra.respondent_id.split("@")[0] == rb.respondent_id.split("@")[0]

    def test_identity_stable_across_waves(self, panel):
        for ra, rb in panel.pairs():
            assert ra.get("field") == rb.get("field")
            assert ra.get("career_stage") == rb.get("career_stage")

    def test_merged_is_two_cohorts(self, panel):
        merged = panel.merged()
        assert merged.cohorts == ("2011", "2024")
        assert len(merged) == 300

    def test_deterministic(self, questionnaire):
        a = generate_panel(profile_2011(), profile_2024(), questionnaire, 20, np.random.default_rng(1))
        b = generate_panel(profile_2011(), profile_2024(), questionnaire, 20, np.random.default_rng(1))
        assert [dict(r.answers) for r in a.wave_b] == [dict(r.answers) for r in b.wave_b]

    def test_persistence_preserves_rank(self, questionnaire):
        """With persistence=1 and no drift, a wave-A outlier stays an outlier."""
        panel = generate_panel(
            profile_2011(), profile_2024(), questionnaire, 300,
            np.random.default_rng(5), persistence=1.0, drift_sd=0.0,
        )
        # git users in 2011 should almost all still be git users in 2024
        # (rigor persisted and the 2024 base rate is high anyway); check the
        # reverse direction: 2011 git users rarely regress to 'none'.
        regressed = sum(
            1
            for ra, rb in panel.pairs()
            if ra.get("vcs") == "git" and rb.get("vcs") == "none"
        )
        git_2011 = sum(1 for ra, _ in panel.pairs() if ra.get("vcs") == "git")
        assert git_2011 > 10
        assert regressed / git_2011 < 0.15

    def test_validation(self, questionnaire):
        with pytest.raises(ValueError):
            generate_panel(profile_2011(), profile_2024(), questionnaire, -1, np.random.default_rng(0))
        with pytest.raises(ValueError):
            generate_panel(
                profile_2011(), profile_2024(), questionnaire, 5,
                np.random.default_rng(0), persistence=1.5,
            )
        with pytest.raises(ValueError):
            generate_panel(
                profile_2011(), profile_2024(), questionnaire, 5,
                np.random.default_rng(0), drift_sd=-0.1,
            )

    def test_misaligned_panel_rejected(self, questionnaire):
        a = ResponseSet(questionnaire, [Response("x@2011", "2011", {})])
        b = ResponseSet(questionnaire, [Response("y@2024", "2024", {})])
        with pytest.raises(ValueError):
            PanelResponses(wave_a=a, wave_b=b)

    def test_length_mismatch_rejected(self, questionnaire):
        a = ResponseSet(questionnaire, [Response("x@2011", "2011", {})])
        b = ResponseSet(questionnaire, [])
        with pytest.raises(ValueError):
            PanelResponses(wave_a=a, wave_b=b)


class TestPairedAnalysis:
    def test_ml_adoption_within_person(self, panel):
        change = paired_yes_no_change(panel, "uses_ml")
        assert change.n_pairs > 100
        assert change.adopters > change.abandoners
        assert change.test.significant(0.001)
        assert change.net_change > 0.2

    def test_python_adoption_within_person(self, panel):
        change = paired_multi_change(panel, "languages", "python")
        assert change.adopters > change.abandoners
        assert change.test.significant(0.001)

    def test_counts_partition_pairs(self, panel):
        change = paired_yes_no_change(panel, "uses_cluster")
        assert change.n00 + change.n01 + change.n10 + change.n11 == change.n_pairs

    def test_wrong_kind_rejected(self, panel):
        with pytest.raises(TypeError):
            paired_yes_no_change(panel, "languages")
        with pytest.raises(TypeError):
            paired_multi_change(panel, "uses_ml", "yes")

    def test_unknown_option_rejected(self, panel):
        with pytest.raises(ValueError):
            paired_multi_change(panel, "languages", "cobol")

    def test_net_change_empty_pairs_rejected(self, questionnaire):
        empty = PanelResponses(
            wave_a=ResponseSet(questionnaire, []),
            wave_b=ResponseSet(questionnaire, []),
        )
        change = paired_yes_no_change(empty, "uses_ml")
        with pytest.raises(ValueError):
            change.net_change
