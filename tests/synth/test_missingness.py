"""Tests for trait-dependent (MAR) missingness."""

from dataclasses import replace

import numpy as np
import pytest

from repro.analysis import quality_report
from repro.core import build_instrument, profile_2024
from repro.synth import CohortProfile, ProfileError, generate_cohort
from repro.synth.generator import _skip_probability
from repro.synth.models import RespondentContext


def ctx(programming=0.5, centers=None):
    traits = {"programming": programming, "hpc": 0.5, "ml": 0.5, "rigor": 0.5}
    return RespondentContext(
        field_name="physics", career_stage="postdoc", traits=traits,
        cohort="2024", centers=centers or {"programming": 0.5, "hpc": 0.5, "ml": 0.5, "rigor": 0.5},
    )


class TestSkipProbability:
    def test_no_loadings_returns_base(self):
        profile = profile_2024()
        assert _skip_probability(0.08, profile, ctx()) == 0.08

    def test_loading_shifts_rate(self):
        profile = replace(profile_2024(), missingness_loadings={"programming": -3.0})
        low = _skip_probability(0.08, profile, ctx(programming=0.9))
        high = _skip_probability(0.08, profile, ctx(programming=0.1))
        assert low < 0.08 < high

    def test_zero_base_stays_zero(self):
        profile = replace(profile_2024(), missingness_loadings={"programming": -3.0})
        assert _skip_probability(0.0, profile, ctx()) == 0.0

    def test_unknown_trait_rejected(self):
        with pytest.raises(ProfileError):
            replace(profile_2024(), missingness_loadings={"charisma": 1.0})


class TestDifferentialMissingnessEndToEnd:
    def test_mar_pattern_detected_by_quality_report(self):
        """With strong negative programming loadings, low-computing fields
        skip more — and the QA module flags it."""
        questionnaire = build_instrument()
        mar_profile = replace(
            profile_2024(),
            missing_rate=0.15,
            missingness_loadings={"programming": -6.0},
        )
        responses = generate_cohort(
            mar_profile, questionnaire, 500, np.random.default_rng(0)
        )
        report = quality_report(responses)
        assert report.field_missingness_test.significant(0.05)

    def test_mcar_baseline_not_flagged(self):
        questionnaire = build_instrument()
        responses = generate_cohort(
            profile_2024(), questionnaire, 500, np.random.default_rng(0)
        )
        report = quality_report(responses)
        # MCAR: differential test should usually stay quiet at alpha=0.001.
        assert report.field_missingness_test.p_value > 0.001

    def test_completion_gap_direction(self):
        """Computer scientists complete more than social scientists under MAR."""
        questionnaire = build_instrument()
        mar_profile = replace(
            profile_2024(),
            missing_rate=0.20,
            missingness_loadings={"programming": -6.0},
        )
        responses = generate_cohort(
            mar_profile, questionnaire, 800, np.random.default_rng(1)
        )

        def completion(field_name):
            subset = responses.filter(lambda r: r.get("field") == field_name)
            return subset.completion_rate()

        assert completion("computer_science") > completion("social_sciences")
