"""Fleet-mode basics: clean runs match sequential, and the backend's
contract (validation, error isolation, resume, determinism) holds without
any chaos in play."""

import pytest

from repro.core.journal import RunJournal, load_resume_state
from repro.core.pipeline import ArtifactCache, Pipeline, PipelineError, PipelineStep
from repro.core.trace import Tracer

from tests.dist.conftest import (
    FAST,
    STEP_NAMES,
    _gen,
    artifact_bytes,
    assert_no_residue,
    assert_single_publishes,
    make_pipeline,
)


class TestCleanRun:
    def test_matches_sequential_byte_for_byte(self, tmp_path, sequential_artifacts):
        pipeline = make_pipeline(tmp_path / "fleet")
        results = pipeline.run(executor="dist", backend_options=dict(FAST))
        assert artifact_bytes(results) == sequential_artifacts
        report = pipeline.last_report
        assert {o.name: o.status for o in report.outcomes} == {
            name: "ok" for name in STEP_NAMES
        }
        assert_no_residue(tmp_path / "fleet")
        assert_single_publishes(pipeline.last_metrics)

    def test_backend_stats_recorded(self, tmp_path):
        pipeline = make_pipeline(tmp_path)
        pipeline.run(executor="dist", backend_options=dict(FAST))
        stats = pipeline.last_metrics.backend_stats
        assert stats["backend"] == "dist"
        assert stats["workers"] == FAST["workers"]
        assert stats["dead_workers"] == []
        assert stats["reassignments"] == 0
        assert stats["quarantined"] == []
        assert stats["degraded_all_lost"] is False
        assert pipeline.last_metrics.max_workers == FAST["workers"]

    def test_default_worker_count_is_bounded(self, tmp_path):
        import os

        pipeline = make_pipeline(tmp_path)
        pipeline.run(
            executor="dist",
            backend_options={
                k: v for k, v in FAST.items() if k != "workers"
            },
        )
        assert pipeline.last_metrics.max_workers == min(4, os.cpu_count() or 1)

    def test_second_run_fully_cached(self, tmp_path):
        pipeline = make_pipeline(tmp_path)
        first = pipeline.run(executor="dist", backend_options=dict(FAST))
        again = pipeline.run(executor="dist", backend_options=dict(FAST))
        assert artifact_bytes(first) == artifact_bytes(again)
        assert pipeline.last_metrics.steps_cached == len(STEP_NAMES)
        assert pipeline.last_metrics.steps_run == 0


class TestValidation:
    def test_requires_disk_cache(self, tmp_path):
        pipeline = Pipeline([PipelineStep("gen", _gen)], ArtifactCache())
        with pytest.raises(PipelineError, match="disk"):
            pipeline.run(executor="dist", backend_options=dict(FAST))

    def test_requires_picklable_steps(self, tmp_path):
        pipeline = Pipeline(
            [PipelineStep("gen", lambda inputs: 1)],
            ArtifactCache(tmp_path / "cache"),
        )
        with pytest.raises(PipelineError, match="pickl"):
            pipeline.run(executor="dist", backend_options=dict(FAST))

    def test_rejects_coordinator_side_fault_plan(self, tmp_path):
        from repro.core.faults import FaultPlan

        pipeline = make_pipeline(tmp_path)
        with pytest.raises(PipelineError, match="WorkerFaultPlan"):
            pipeline.run(
                executor="dist",
                backend_options=dict(FAST),
                fault_plan=FaultPlan.transient_errors(["gen"]),
            )

    def test_rejects_mixed_backend_options(self, tmp_path):
        from repro.dist import DistConfig

        pipeline = make_pipeline(tmp_path)
        with pytest.raises((PipelineError, ValueError)):
            pipeline.run(
                executor="dist",
                backend_options={"config": DistConfig(), "workers": 2},
            )

    def test_unknown_executor_still_rejected(self, tmp_path):
        pipeline = make_pipeline(tmp_path)
        with pytest.raises(PipelineError, match="executor"):
            pipeline.run(executor="warp")


def _boom(inputs, **params):
    raise RuntimeError("injected terminal failure")


def _downstream(inputs, **params):
    return inputs["boom"]


class TestErrorPaths:
    def _failing_pipeline(self, root):
        return Pipeline(
            [
                PipelineStep("gen", _gen),
                PipelineStep("boom", _boom, depends_on=("gen",)),
                PipelineStep("downstream", _downstream, depends_on=("boom",)),
                PipelineStep("stats", _stats_indep, depends_on=("gen",)),
            ],
            ArtifactCache(root / "cache"),
        )

    def test_on_error_raise_propagates(self, tmp_path):
        pipeline = self._failing_pipeline(tmp_path)
        with pytest.raises(PipelineError, match="boom"):
            pipeline.run(executor="dist", backend_options=dict(FAST))
        assert_no_residue(tmp_path)

    def test_keep_going_isolates_subtree(self, tmp_path):
        pipeline = self._failing_pipeline(tmp_path)
        results = pipeline.run(
            executor="dist",
            backend_options=dict(FAST),
            on_error="keep_going",
        )
        assert set(results) == {"gen", "stats"}
        status = {o.name: o.status for o in pipeline.last_report.outcomes}
        assert status["boom"] == "failed"
        assert status["downstream"] == "skipped_upstream"
        assert status["stats"] == "ok"
        assert_no_residue(tmp_path)


def _stats_indep(inputs, **params):
    return {"total": sum(inputs["gen"]["rows"])}


class TestJournalAndResume:
    def test_journaled_run_resumes_as_replay(self, tmp_path, sequential_artifacts):
        journal_dir = tmp_path / "journals"
        pipeline = make_pipeline(tmp_path)
        with RunJournal.open(journal_dir) as journal:
            run_id = journal.run_id
            first = pipeline.run(
                executor="dist", backend_options=dict(FAST), journal=journal
            )
        assert artifact_bytes(first) == sequential_artifacts

        resume = load_resume_state(journal_dir, run_id)
        fresh = make_pipeline(tmp_path)
        with RunJournal.open(journal_dir) as journal:
            replayed = fresh.run(
                executor="dist",
                backend_options=dict(FAST),
                journal=journal,
                resume=resume,
            )
        assert artifact_bytes(replayed) == sequential_artifacts
        assert fresh.last_metrics.steps_replayed == len(STEP_NAMES)
        assert fresh.last_metrics.steps_run == 0


class TestTraceDeterminism:
    def _normalized(self, tmp_path, name):
        tracer = Tracer()
        pipeline = make_pipeline(tmp_path / name)
        pipeline.run(executor="dist", backend_options=dict(FAST), trace=tracer)
        return tracer.to_perfetto(normalize=True)

    def test_normalized_export_is_deterministic(self, tmp_path):
        import json

        a = self._normalized(tmp_path, "a")
        b = self._normalized(tmp_path, "b")
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_normalized_export_drops_dist_instants(self, tmp_path):
        a = self._normalized(tmp_path, "c")
        cats = {e.get("cat") for e in a["traceEvents"]}
        assert "dist" not in cats

    def test_raw_export_has_per_worker_lanes(self, tmp_path):
        tracer = Tracer()
        pipeline = make_pipeline(tmp_path)
        pipeline.run(executor="dist", backend_options=dict(FAST), trace=tracer)
        raw = tracer.to_perfetto()
        tids = {
            e["tid"]
            for e in raw["traceEvents"]
            if e.get("cat") == "step" and str(e["tid"]).startswith("dist:")
        }
        assert tids, "step spans should land on dist:<worker> lanes"
