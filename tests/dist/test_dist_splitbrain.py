"""The failure ladder beyond a single kill: split-brain partitions that
lease fencing must win, stragglers rescued by speculative duplicates,
poison steps that chew through workers until quarantined, and the
everyone-died endgame that must degrade instead of hang."""

import pytest

from repro.core.faults import (
    WorkerFaultPlan,
    WorkerHang,
    WorkerKill,
    WorkerPartition,
)
from repro.core.pipeline import PipelineError

from tests.dist.conftest import (
    FAST,
    STEP_NAMES,
    artifact_bytes,
    assert_no_residue,
    assert_single_publishes,
    make_pipeline,
)


class TestSplitBrain:
    def test_partitioned_worker_races_its_replacement(
        self, tmp_path, sequential_artifacts
    ):
        """A worker stops heartbeating but keeps computing. The
        coordinator declares it dead, bumps the epoch, and a replacement
        recomputes the step — while the zombie finishes too and races the
        publish. Fencing must discard exactly one of them: the artifacts
        stay correct and the publish count stays 1."""
        opts = dict(FAST)
        pipeline = make_pipeline(tmp_path / "fleet")
        results = pipeline.run(
            executor="dist",
            backend_options=opts,
            # delay > lease_ttl so the partition is actually declared dead
            # while the zombie still intends to publish.
            fault_plan=WorkerFaultPlan([WorkerPartition("stats", delay=0.6)]),
        )
        assert artifact_bytes(results) == sequential_artifacts
        stats = pipeline.last_metrics.backend_stats
        assert len(stats["dead_workers"]) == 1
        assert stats["reassignments"] >= 1
        assert_single_publishes(pipeline.last_metrics)
        assert_no_residue(tmp_path / "fleet")

    def test_partition_on_root_step(self, tmp_path, sequential_artifacts):
        pipeline = make_pipeline(tmp_path / "fleet")
        results = pipeline.run(
            executor="dist",
            backend_options=dict(FAST),
            fault_plan=WorkerFaultPlan([WorkerPartition("gen", delay=0.6)]),
        )
        assert artifact_bytes(results) == sequential_artifacts
        assert_single_publishes(pipeline.last_metrics)
        assert_no_residue(tmp_path / "fleet")


class TestSpeculation:
    def test_straggler_rescued_by_speculative_twin(
        self, tmp_path, sequential_artifacts
    ):
        """A hung worker keeps heartbeating, so its lease never expires;
        only the speculation deadline can rescue the step. The twin runs
        under the *same* epoch — both executions are legitimate and
        first-writer-wins via the entry lock + peek."""
        opts = dict(FAST)
        opts["speculate_after"] = 0.15
        pipeline = make_pipeline(tmp_path / "fleet")
        results = pipeline.run(
            executor="dist",
            backend_options=opts,
            fault_plan=WorkerFaultPlan([WorkerHang("double", seconds=1.0)]),
        )
        assert artifact_bytes(results) == sequential_artifacts
        stats = pipeline.last_metrics.backend_stats
        assert stats["speculations"] >= 1
        assert stats["dead_workers"] == []
        assert_single_publishes(pipeline.last_metrics)
        assert_no_residue(tmp_path / "fleet")

    def test_no_speculation_when_disabled(self, tmp_path, sequential_artifacts):
        opts = dict(FAST)
        assert "speculate_after" not in opts  # default: disabled
        pipeline = make_pipeline(tmp_path / "fleet")
        results = pipeline.run(
            executor="dist",
            backend_options=opts,
            fault_plan=WorkerFaultPlan([WorkerHang("double", seconds=0.4)]),
        )
        assert artifact_bytes(results) == sequential_artifacts
        assert pipeline.last_metrics.backend_stats["speculations"] == 0


class TestPoisonQuarantine:
    def test_poison_step_quarantined_and_subtree_skipped(self, tmp_path):
        """A step that SIGKILLs every worker that touches it must not
        take the whole fleet down: after ``poison_threshold`` distinct
        dead workers it is quarantined exactly like an ``on_error=
        "keep_going"`` failure — downstream skipped, siblings complete."""
        opts = dict(FAST)
        opts["poison_threshold"] = 2
        pipeline = make_pipeline(tmp_path / "fleet")
        results = pipeline.run(
            executor="dist",
            backend_options=opts,
            on_error="keep_going",
            fault_plan=WorkerFaultPlan(
                [WorkerKill("double", "task_start", count=len(STEP_NAMES))]
            ),
        )
        # gen and stats complete; double is poisoned; merge starves.
        assert set(results) == {"gen", "stats"}
        status = {o.name: o.status for o in pipeline.last_report.outcomes}
        assert status["double"] == "failed"
        assert status["merge"] == "skipped_upstream"
        stats = pipeline.last_metrics.backend_stats
        assert stats["quarantined"] == ["double"]
        assert len(stats["dead_workers"]) == opts["poison_threshold"]
        assert_no_residue(tmp_path / "fleet")

    def test_poison_step_raises_under_on_error_raise(self, tmp_path):
        opts = dict(FAST)
        opts["poison_threshold"] = 2
        pipeline = make_pipeline(tmp_path / "fleet")
        with pytest.raises(PipelineError, match="poison"):
            pipeline.run(
                executor="dist",
                backend_options=opts,
                fault_plan=WorkerFaultPlan(
                    [WorkerKill("double", "task_start", count=len(STEP_NAMES))]
                ),
            )
        assert_no_residue(tmp_path / "fleet")


class TestAllWorkersLost:
    def test_total_fleet_loss_degrades_instead_of_hanging(self, tmp_path):
        """Killing the whole fleet on the root step must end the run with
        a degraded report — never a hang waiting for heartbeats that will
        not come."""
        opts = dict(FAST)
        opts["workers"] = 2
        opts["poison_threshold"] = 5  # out of reach: exercise all-lost, not poison
        pipeline = make_pipeline(tmp_path / "fleet")
        results = pipeline.run(
            executor="dist",
            backend_options=opts,
            on_error="keep_going",
            fault_plan=WorkerFaultPlan([WorkerKill("gen", "task_start", count=2)]),
        )
        assert results == {}
        stats = pipeline.last_metrics.backend_stats
        assert stats["degraded_all_lost"] is True
        assert len(stats["dead_workers"]) == 2
        status = {o.name: o.status for o in pipeline.last_report.outcomes}
        assert status["gen"] == "failed"
        assert set(status.values()) <= {"failed", "skipped_upstream"}
        assert_no_residue(tmp_path / "fleet")
