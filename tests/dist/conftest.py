"""Shared fixtures for the fleet-mode (dist backend) suite.

Every test drives the same 4-step diamond DAG used by the crash-resume
suite, once sequentially (the oracle) and once on a worker fleet, and
asserts the two runs are indistinguishable artifact-for-artifact. Fleet
timings are tuned hard for test speed: SIGKILL'd workers are detected via
the same-host pid probe (next coordinator tick), so only genuinely
partition-shaped tests need to wait out a full ``lease_ttl``.
"""

import pickle

import pytest

from repro.core.pipeline import ArtifactCache, Pipeline, PipelineStep

STEP_NAMES = ("gen", "double", "stats", "merge")

#: Fleet knobs for tests: fast heartbeats, short lease, tight polling.
FAST = {
    "workers": 4,
    "heartbeat_interval": 0.02,
    "lease_ttl": 0.3,
    "poll_interval": 0.005,
    "tick_interval": 0.005,
}


# Module-level step functions so the run spec pickles into worker processes.
def _gen(inputs):
    return {"rows": list(range(8))}


def _double(inputs, **params):
    return [r * 2 for r in inputs["gen"]["rows"]]


def _stats(inputs, **params):
    return {"total": sum(inputs["gen"]["rows"])}


def _merge(inputs, **params):
    return {"doubled": inputs["double"], "total": inputs["stats"]["total"]}


def make_pipeline(root) -> Pipeline:
    """The diamond DAG over a disk cache rooted at ``root``."""
    return Pipeline(
        [
            PipelineStep("gen", _gen),
            PipelineStep("double", _double, depends_on=("gen",)),
            PipelineStep("stats", _stats, depends_on=("gen",)),
            PipelineStep("merge", _merge, depends_on=("double", "stats")),
        ],
        ArtifactCache(root / "cache"),
    )


def artifact_bytes(results) -> dict[str, bytes]:
    """Per-step pickle bytes — the unit of "byte-identical" assertions.

    The aggregate dict is a fresh object graph in every run (worker
    values round-trip through the cache), so cross-step memoization would
    differ even for identical values; per-artifact pickles do not.
    """
    return {name: pickle.dumps(value) for name, value in results.items()}


@pytest.fixture()
def sequential_artifacts(tmp_path):
    """Oracle artifacts from an uninterrupted sequential run."""
    pipeline = make_pipeline(tmp_path / "baseline")
    return artifact_bytes(pipeline.run(executor="sequential"))


def assert_no_residue(root) -> None:
    """After a dist run ends, the cache dir holds only artifacts.

    No ``.dist`` run directory (leases, heartbeats, assignments), and no
    stranded ``*.tmp`` publish files from killed workers.
    """
    cache = root / "cache"
    leftovers = sorted(p.name for p in cache.glob(".dist/**/*"))
    assert leftovers == [], f"run directory not cleaned up: {leftovers}"
    assert not (cache / ".dist").exists()
    tmps = sorted(p.name for p in cache.glob("*.tmp"))
    assert tmps == [], f"stranded publish temp files: {tmps}"


def assert_single_publishes(metrics) -> None:
    """Every artifact was published exactly once, fleet-wide."""
    stats = metrics.backend_stats
    assert stats is not None
    duplicates = {k: n for k, n in stats["publishes"].items() if n > 1}
    assert duplicates == {}, f"duplicate cache publishes: {duplicates}"
