"""CLI surface of fleet mode: the ``repro worker`` join command, the
``--backend dist`` flags on ``repro report``, and exit-code conventions."""

import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.cli import main

from tests.dist.conftest import (
    FAST,
    artifact_bytes,
    assert_no_residue,
    make_pipeline,
)


def _run_cli(*argv):
    import io

    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestWorkerCommand:
    def test_missing_spec_exits_2(self, tmp_path):
        code, output = _run_cli(
            "worker",
            "--dir", str(tmp_path / "no-such-run"),
            "--id", "w0",
            "--join-timeout", "0.2",
        )
        assert code == 2
        assert "no run spec" in output

    def test_external_worker_joins_and_drains_the_run(
        self, tmp_path, sequential_artifacts
    ):
        """A coordinator with ``spawn_workers=False`` forks nothing; a
        ``repro worker`` subprocess — the multi-host join path — must
        execute the whole DAG through the shared run directory."""
        opts = dict(FAST)
        opts.update(
            workers=1,
            spawn_workers=False,
            # Generous ttl: the external worker pays interpreter startup
            # before its first heartbeat, and must not be declared dead
            # meanwhile.
            lease_ttl=10.0,
            heartbeat_interval=0.05,
        )
        pipeline = make_pipeline(tmp_path / "fleet")
        box = {}

        def coordinate():
            try:
                box["results"] = pipeline.run(executor="dist", backend_options=opts)
            except BaseException as exc:  # surfaced in the main thread
                box["error"] = exc

        thread = threading.Thread(target=coordinate)
        thread.start()
        try:
            dist_root = tmp_path / "fleet" / "cache" / ".dist"
            deadline = time.monotonic() + 10.0
            run_dir = None
            while time.monotonic() < deadline:
                run_dirs = list(dist_root.glob("*")) if dist_root.exists() else []
                if run_dirs:
                    run_dir = run_dirs[0]
                    break
                time.sleep(0.02)
            assert run_dir is not None, "coordinator never published a run dir"

            proc = subprocess.run(
                [
                    sys.executable, "-m", "repro.cli", "worker",
                    "--dir", str(run_dir),
                    "--id", "w0",
                    "--join-timeout", "10",
                ],
                capture_output=True,
                text=True,
                timeout=60,
                cwd=str(tmp_path),
                env=_pythonpath_env(),
            )
            assert proc.returncode == 0, proc.stderr
        finally:
            thread.join(timeout=60)
        assert not thread.is_alive(), "coordinator hung"
        assert "error" not in box, box.get("error")
        assert artifact_bytes(box["results"]) == sequential_artifacts
        assert_no_residue(tmp_path / "fleet")


def _pythonpath_env():
    import os

    env = dict(os.environ)
    repo = Path(__file__).resolve().parents[2]
    # src for the repro package; the repo root so the worker can unpickle
    # this suite's step functions (they live in tests.dist.conftest).
    extra = [str(repo / "src"), str(repo)]
    if env.get("PYTHONPATH"):
        extra.append(env["PYTHONPATH"])
    env["PYTHONPATH"] = os.pathsep.join(extra)
    return env


class TestReportFlags:
    def test_workers_requires_dist_backend(self):
        code, output = _run_cli("report", "--workers", "2")
        assert code == 2
        assert "--backend dist" in output

    def test_workers_must_be_positive(self):
        code, output = _run_cli(
            "report", "--backend", "dist", "--workers", "0"
        )
        assert code == 2
        assert "--workers" in output

    def test_bench_exposes_dist_overhead_gate(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["bench"])
        assert args.max_dist_overhead == pytest.approx(0.25)
