"""The fleet kill matrix: SIGKILL one worker at every (step, event)
coordinate of the diamond DAG.

For every coordinate the invariants are identical: the run completes, the
artifacts are byte-identical to an uninterrupted sequential run, exactly
one cache publish happened per step fleet-wide, and the run directory
(leases, heartbeats, assignments) plus any stranded publish temp files
are gone afterwards. The kill is detected by the coordinator's same-host
pid probe, the dead worker's lease is expired, and a survivor re-executes
the step under a bumped fencing epoch.
"""

import pytest

from repro.core.faults import WorkerFaultPlan, WorkerKill, worker_crash_coordinates
from repro.dist.worker import WORKER_EVENTS

from tests.dist.conftest import (
    FAST,
    STEP_NAMES,
    artifact_bytes,
    assert_no_residue,
    assert_single_publishes,
    make_pipeline,
)

COORDINATES = worker_crash_coordinates(STEP_NAMES)


def test_matrix_covers_every_coordinate():
    assert len(COORDINATES) == len(STEP_NAMES) * len(WORKER_EVENTS)
    assert {(k.step, k.event) for k in COORDINATES} == {
        (s, e) for s in STEP_NAMES for e in WORKER_EVENTS
    }


@pytest.mark.parametrize(
    "kill", COORDINATES, ids=[f"{k.step}-{k.event}" for k in COORDINATES]
)
def test_kill_one_worker_anywhere(kill, tmp_path, sequential_artifacts):
    pipeline = make_pipeline(tmp_path / "fleet")
    results = pipeline.run(
        executor="dist",
        backend_options=dict(FAST),
        fault_plan=WorkerFaultPlan([kill]),
    )
    assert artifact_bytes(results) == sequential_artifacts

    stats = pipeline.last_metrics.backend_stats
    # A kill at after_result fires once the worker has already reported:
    # the run may complete before the coordinator's next liveness check,
    # so observing that death is optional. Any earlier coordinate leaves
    # the step unreported, which *forces* the coordinator to notice the
    # death and hand the step to a survivor.
    if kill.event == "after_result":
        assert len(stats["dead_workers"]) <= 1
    else:
        assert len(stats["dead_workers"]) == 1
        assert stats["reassignments"] >= 1
    assert stats["quarantined"] == []
    assert stats["degraded_all_lost"] is False

    assert_single_publishes(pipeline.last_metrics)
    assert_no_residue(tmp_path / "fleet")


def test_kill_two_workers_still_recovers(tmp_path, sequential_artifacts):
    """Two distinct workers die on the same step — one short of the
    default poison threshold of... exactly the threshold, so raise it."""
    opts = dict(FAST)
    opts["poison_threshold"] = 3
    pipeline = make_pipeline(tmp_path / "fleet")
    results = pipeline.run(
        executor="dist",
        backend_options=opts,
        fault_plan=WorkerFaultPlan([WorkerKill("double", "task_start", count=2)]),
    )
    assert artifact_bytes(results) == sequential_artifacts
    stats = pipeline.last_metrics.backend_stats
    assert len(stats["dead_workers"]) == 2
    assert stats["quarantined"] == []
    assert_single_publishes(pipeline.last_metrics)
    assert_no_residue(tmp_path / "fleet")
