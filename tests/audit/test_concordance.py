"""Concordance-report assembly logic (synthetic digests, no pipelines)."""

import pytest

from repro.audit.concordance import (
    Perturbation,
    RunRecord,
    build_concordance_report,
)

STEPS = ["survey", "workload", "schedule", "study", "exp:T1"]
DEPENDENTS = {
    "survey": ("study",),
    "workload": ("schedule", "study"),
    "schedule": ("study",),
    "study": ("exp:T1",),
    "exp:T1": (),
}


def runs(*names):
    return [RunRecord(perturbation=Perturbation(name)) for name in names]


def report(digest_overrides=None, key_overrides=None, drift=""):
    """Two-leg report; overrides patch the second leg's maps."""
    base_keys = {s: f"key-{s}" for s in STEPS}
    base_digests = {s: f"dig-{s}" for s in STEPS}
    other_keys = dict(base_keys, **(key_overrides or {}))
    other_digests = dict(base_digests, **(digest_overrides or {}))
    return build_concordance_report(
        runs=runs("baseline", "other"),
        step_order=STEPS,
        keys_by_run={"baseline": base_keys, "other": other_keys},
        digests_by_run={"baseline": base_digests, "other": other_digests},
        dependents=DEPENDENTS,
        drift=drift,
    )


class TestPerturbation:
    def test_requires_name(self):
        with pytest.raises(ValueError, match="name"):
            Perturbation("")

    def test_crash_resume_must_be_sequential(self):
        with pytest.raises(ValueError, match="sequential"):
            Perturbation("crash", executor="thread", crash_resume=True)


class TestConcordantReport:
    def test_clean_report(self):
        rep = report()
        assert rep.concordant and not rep.divergent
        assert rep.verdict == "concordant"
        assert rep.first_divergence is None
        assert rep.affected_subtree() == ()
        assert rep.localized()

    def test_baseline_is_first_run(self):
        assert report().baseline.name == "baseline"

    def test_empty_runs_rejected(self):
        with pytest.raises(ValueError, match="no runs"):
            build_concordance_report(
                runs=[],
                step_order=STEPS,
                keys_by_run={},
                digests_by_run={},
                dependents=DEPENDENTS,
            )


class TestDivergence:
    def test_unexplained_without_drift(self):
        rep = report(digest_overrides={"schedule": "dig-OTHER"})
        assert rep.verdict == "divergent"
        assert rep.divergent_steps == ("schedule",)
        assert rep.unexplained_steps == ("schedule",)
        assert rep.first_divergence == "schedule"

    def test_subtree_closure_is_transitive(self):
        rep = report(digest_overrides={"workload": "x"})
        assert rep.affected_subtree() == ("workload", "schedule", "study", "exp:T1")

    def test_localized_when_divergence_inside_subtree(self):
        rep = report(digest_overrides={"workload": "x", "study": "y"})
        assert rep.localized()

    def test_not_localized_for_independent_causes(self):
        # schedule diverges AND survey diverges: survey is not downstream
        # of schedule's subtree-first step... actually survey comes first
        # in topo order, and schedule is NOT in survey's subtree.
        rep = report(digest_overrides={"survey": "x", "schedule": "y"})
        assert rep.first_divergence == "survey"
        assert not rep.localized()

    def test_missing_digest_counts_as_divergent(self):
        base_keys = {s: f"key-{s}" for s in STEPS}
        base_digests = {s: f"dig-{s}" for s in STEPS}
        other = dict(base_digests)
        del other["exp:T1"]
        rep = build_concordance_report(
            runs=runs("baseline", "other"),
            step_order=STEPS,
            keys_by_run={"baseline": base_keys, "other": base_keys},
            digests_by_run={"baseline": base_digests, "other": other},
            dependents=DEPENDENTS,
        )
        assert rep.divergent_steps == ("exp:T1",)


class TestDriftAttribution:
    def test_key_changed_divergence_is_expected_under_drift(self):
        rep = report(
            digest_overrides={"survey": "x", "study": "y", "exp:T1": "z"},
            key_overrides={"survey": "k", "study": "k2", "exp:T1": "k3"},
            drift="planted",
        )
        assert rep.verdict == "drift"
        assert rep.expected_steps == ("survey", "study", "exp:T1")
        assert rep.unexplained_steps == ()

    def test_same_key_divergence_stays_unexplained_under_drift(self):
        # A declared drift never excuses a digest change on a step whose
        # cache key did not move — that is by definition unexplained.
        rep = report(digest_overrides={"schedule": "x"}, drift="planted")
        assert rep.verdict == "divergent"
        assert rep.unexplained_steps == ("schedule",)

    def test_no_drift_means_nothing_expected(self):
        rep = report(
            digest_overrides={"survey": "x"}, key_overrides={"survey": "k"}
        )
        assert rep.expected_steps == ()
        assert rep.unexplained_steps == ("survey",)
