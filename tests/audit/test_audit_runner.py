"""Chaos-style audit-matrix suite.

Runs real audits (real pipelines, real SIGKILL, real injected faults) at
a tiny study scale and asserts the headline guarantees:

* a clean study is concordant across every perturbation leg — all
  executor modes, SIGKILL+resume, transient faults, warm cache;
* a planted ``with_yes_rate`` scenario diverges and is localized to
  exactly the survey's downstream DAG subtree;
* every cataloged drift scenario is *attributed* (never flagged
  unexplained);
* the normalized report card is byte-identical no matter which executor
  mode produced the runs (the PR-5 ``normalize=True`` guarantee, lifted
  to the audit layer).
"""

import signal

import pytest

from repro.audit import Perturbation, default_matrix, run_audit, select_matrix
from repro.report.document import render_report_card
from repro.synth.scenario import DRIFT_SCENARIOS

TINY = {"seed": 2024, "n_baseline": 24, "n_current": 30, "months": 1, "jobs_per_day": 40.0}
IDS = ["T1", "T3"]

SURVEY_SUBTREE = ("survey", "study", "exp:T1", "exp:T3")


@pytest.fixture(scope="module")
def clean_report():
    """One full six-leg audit of a clean study, shared by the module."""
    return run_audit(matrix=default_matrix(), experiment_ids=IDS, study_kwargs=TINY)


class TestCleanStudyConcordance:
    def test_concordant_across_full_matrix(self, clean_report):
        assert clean_report.concordant, clean_report.divergent_steps
        assert clean_report.verdict == "concordant"

    def test_all_six_legs_ran(self, clean_report):
        assert [r.name for r in clean_report.runs] == [
            "baseline", "thread", "process", "crash-resume", "faults", "warm-cache",
        ]

    def test_crash_leg_really_crashed_and_resumed(self, clean_report):
        crash = next(r for r in clean_report.runs if r.name == "crash-resume")
        assert crash.crash_exitcode == -signal.SIGKILL
        assert crash.resumed_steps > 0
        assert crash.outcome_counts.get("replayed", 0) == crash.resumed_steps

    def test_fault_leg_really_retried(self, clean_report):
        faults = next(r for r in clean_report.runs if r.name == "faults")
        assert faults.outcome_counts.get("retried", 0) == 2  # survey + schedule

    def test_warm_leg_fully_cached(self, clean_report):
        warm = next(r for r in clean_report.runs if r.name == "warm-cache")
        assert warm.outcome_counts == {"cached": len(clean_report.steps)}

    def test_every_step_has_a_digest_in_every_leg(self, clean_report):
        for step in clean_report.steps:
            assert set(step.digests) == {r.name for r in clean_report.runs}
            assert all(step.digests.values()), step.step

    def test_timing_deltas_cover_every_step(self, clean_report):
        assert {t.step for t in clean_report.timings} == {
            s.step for s in clean_report.steps
        }


class TestPlantedDriftLocalization:
    @pytest.fixture(scope="class")
    def drifted(self):
        return run_audit(
            matrix=select_matrix(["thread"]),
            experiment_ids=IDS,
            study_kwargs=TINY,
            drift="planted_yes_rate",
        )

    def test_diverges(self, drifted):
        assert drifted.divergent
        assert drifted.verdict == "drift"

    def test_localized_to_exactly_the_survey_subtree(self, drifted):
        # The planted effect enters through the survey step: the survey
        # and everything downstream must diverge; workload and schedule
        # are independent of it and must stay byte-identical.
        assert drifted.divergent_steps == SURVEY_SUBTREE
        assert drifted.first_divergence == "survey"
        assert drifted.affected_subtree() == SURVEY_SUBTREE
        assert drifted.localized()

    def test_all_divergence_attributed(self, drifted):
        assert drifted.expected_steps == SURVEY_SUBTREE
        assert drifted.unexplained_steps == ()

    def test_keys_changed_only_in_subtree(self, drifted):
        for step in drifted.steps:
            key_changed = len(set(step.keys.values())) > 1
            assert key_changed == (step.step in SURVEY_SUBTREE), step.step

    def test_baseline_leg_stays_undrifted(self, drifted):
        assert drifted.baseline.perturbation.drift == ""
        assert all(r.perturbation.drift == "planted_yes_rate" for r in drifted.runs[1:])


class TestDriftScenarioCatalogAttribution:
    @pytest.mark.parametrize("scenario", sorted(DRIFT_SCENARIOS))
    def test_scenario_attributed_not_unexplained(self, scenario):
        report = run_audit(
            matrix=(Perturbation("baseline"), Perturbation("drifted")),
            experiment_ids=["T1"],
            study_kwargs=TINY,
            drift=scenario,
        )
        # Every cataloged scenario perturbs the 2024 wave's profile, so it
        # must (1) actually move bytes, (2) be fully attributed via the
        # survey-step key change, and (3) start at the declared origin.
        assert report.divergent, f"{scenario} produced no divergence"
        assert report.verdict == "drift"
        assert report.unexplained_steps == ()
        assert report.first_divergence in report.drift_origin
        assert report.drift_description

    def test_unknown_scenario_rejected_before_any_compute(self):
        with pytest.raises(KeyError, match="unknown drift scenario"):
            run_audit(
                matrix=(Perturbation("baseline"), Perturbation("other")),
                experiment_ids=["T1"],
                study_kwargs=TINY,
                drift="not_a_scenario",
            )


class TestReportCardDeterminism:
    @pytest.mark.parametrize("executor", ["sequential", "thread", "process"])
    def test_normalized_card_byte_identical_across_executors(self, executor):
        # Matches the PR-5 Perfetto guarantee: same seed + same matrix
        # shape, any executor mode → byte-identical normalized output.
        # The card embeds the per-step digests, so this also re-proves
        # that artifact bytes are executor-invariant.
        matrix = (
            Perturbation("baseline", executor=executor, max_workers=2),
            Perturbation("rerun", executor=executor, max_workers=2),
        )
        report = run_audit(matrix=matrix, experiment_ids=IDS, study_kwargs=TINY)
        assert report.concordant
        card = render_report_card(report, normalize=True)
        if not hasattr(TestReportCardDeterminism, "_reference_card"):
            TestReportCardDeterminism._reference_card = card
        assert card == TestReportCardDeterminism._reference_card

    def test_normalized_card_strips_run_dependent_fields(self):
        report = run_audit(
            matrix=select_matrix(["thread"]), experiment_ids=["T1"], study_kwargs=TINY
        )
        card = render_report_card(report, normalize=True)
        assert report.runs[0].run_id not in card
        assert "wall (s)" not in card
        assert "Timing deltas" not in card
        full = render_report_card(report)
        assert report.runs[0].run_id in full
        assert "Timing deltas" in full


class TestMatrixSelection:
    def test_baseline_always_included(self):
        legs = select_matrix(["process"])
        assert [p.name for p in legs] == ["baseline", "process"]

    def test_baseline_moved_to_front(self):
        legs = select_matrix(["thread", "baseline"])
        assert [p.name for p in legs] == ["baseline", "thread"]

    def test_unknown_leg_rejected(self):
        with pytest.raises(ValueError, match="unknown audit legs"):
            select_matrix(["thread", "quantum"])

    def test_duplicate_leg_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            run_audit(
                matrix=(Perturbation("a"), Perturbation("a")),
                experiment_ids=["T1"],
                study_kwargs=TINY,
            )
