"""``repro audit`` CLI: exit codes, report-card round-trip, back-compat.

The subcommand is overloaded: with a positional PATH it is the historical
sacct accounting audit; without one it runs the reproducibility audit.
Both personalities are covered here (the sacct side also keeps its full
suite in ``tests/report/test_document_cli.py``).
"""

import io

import pytest

from repro.cli import main

TINY = (
    "--seed", "2024", "--baseline", "24", "--current", "30",
    "--months", "1", "--jobs-per-day", "40",
)


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def run_tiny_audit(*extra):
    return run_cli(
        "audit", *TINY, "--experiments", "T1,T3", "--matrix", "thread", *extra
    )


class TestExitCodes:
    def test_clean_audit_exits_zero(self):
        code, text = run_tiny_audit()
        assert code == 0, text
        assert "audit ok: 2 runs concordant" in text
        assert "Verdict: CONCORDANT" in text

    def test_planted_drift_exits_partial(self):
        code, text = run_tiny_audit("--drift", "planted_yes_rate")
        assert code == 3, text
        assert "audit DIVERGENT" in text
        assert "first at 'survey'" in text
        assert "drift 'planted_yes_rate' attributed" in text

    def test_resume_without_durable_is_usage_error(self):
        code, text = run_cli("audit", "--resume")
        assert code == 2
        assert "--resume requires --durable" in text

    def test_unknown_drift_is_usage_error(self):
        code, text = run_cli("audit", "--drift", "cosmic_rays")
        assert code == 2
        assert "unknown drift scenario" in text
        assert "planted_yes_rate" in text  # catalog listed for the user

    def test_unknown_matrix_leg_is_usage_error(self):
        code, text = run_cli("audit", "--matrix", "thread,quantum")
        assert code == 2
        assert "unknown audit legs" in text

    def test_unknown_experiment_is_usage_error(self):
        code, text = run_cli("audit", "--experiments", "T1,T99")
        assert code == 2
        assert "unknown experiments" in text


class TestReportCard:
    def test_card_round_trips_through_out_file(self, tmp_path):
        out_file = tmp_path / "card.md"
        code, text = run_tiny_audit("--normalize", "--out", str(out_file))
        assert code == 0
        assert f"wrote report card to {out_file}" in text
        card = out_file.read_text(encoding="utf-8")
        assert card.startswith("# Reproducibility report card")
        assert "Verdict" in card and "baseline" in card and "thread" in card
        # The normalized card is deterministic, so the written file is
        # byte-for-byte what a fresh stdout-mode invocation prints.
        code2, streamed = run_tiny_audit("--normalize")
        assert card in streamed

    def test_drift_card_shows_attribution(self, tmp_path):
        out_file = tmp_path / "card.md"
        code, _ = run_tiny_audit(
            "--drift", "planted_yes_rate", "--out", str(out_file)
        )
        assert code == 3
        card = out_file.read_text(encoding="utf-8")
        assert "planted_yes_rate" in card
        assert "expected" in card
        assert "UNEXPLAINED" not in card

    def test_durable_audit_keeps_sandboxes_and_resumes(self, tmp_path):
        root = tmp_path / "audit-root"
        code, _ = run_tiny_audit("--durable", str(root))
        assert code == 0
        assert (root / "baseline" / "cache").is_dir()
        assert (root / "thread" / "journals").is_dir()
        # Second pass over the same root reuses the caches: still exit 0.
        code2, text2 = run_tiny_audit("--durable", str(root), "--resume")
        assert code2 == 0, text2

    def test_trace_dir_gets_per_leg_traces(self, tmp_path):
        trace_dir = tmp_path / "traces"
        code, text = run_tiny_audit("--trace", str(trace_dir))
        assert code == 0
        assert f"wrote per-leg Perfetto traces to {trace_dir}" in text
        assert (trace_dir / "baseline.json").is_file()
        assert (trace_dir / "thread.json").is_file()

    def test_normalize_strips_run_ids(self, tmp_path):
        out_file = tmp_path / "card.md"
        code, _ = run_tiny_audit("--normalize", "--out", str(out_file))
        assert code == 0
        card = out_file.read_text(encoding="utf-8")
        assert "wall (s)" not in card
        assert "Timing deltas" not in card


class TestSacctBackCompat:
    @pytest.fixture()
    def sacct_path(self, tmp_path):
        code, _ = run_cli("generate", *TINY, "--out", str(tmp_path))
        assert code == 0
        return tmp_path / "accounting.sacct"

    def test_positional_path_still_audits_accounting(self, sacct_path):
        code, text = run_cli("audit", str(sacct_path))
        assert code == 0
        assert "jobs audited" in text
        assert "accounting ok" in text
        # None of the repro-audit machinery leaks into the sacct path.
        assert "report card" not in text and "concordant" not in text
