"""Digest primitives: canonical rendering, structural pickling, cache walks.

Includes the regression tests for the lock-file satellite bug: a
``<key>.lock`` advisory file (or an in-flight ``.tmp`` publish) left in a
cache directory must never be hashed as an artifact by the digest walk,
and ``ArtifactCache.corrupt_entry`` must refuse keys that are really
non-artifact filenames.
"""

import pickle

import pytest

from repro.audit.digests import (
    DIGEST_LEN,
    artifact_digest,
    blob_digest,
    cache_digests,
    structural_digest,
    text_digest,
)
from repro.core.pipeline import ArtifactCache


class FakeArtifact:
    def __init__(self, text):
        self.text = text

    def render_ascii(self):
        return self.text


class TestTextAndArtifactDigests:
    def test_artifact_digest_is_rendered_text_digest(self):
        artifact = FakeArtifact("| a | b |")
        assert artifact_digest(artifact) == text_digest("| a | b |\n")

    def test_digest_length(self):
        assert len(text_digest("x")) == DIGEST_LEN

    def test_different_text_different_digest(self):
        assert text_digest("a") != text_digest("b")


class TestStructuralDigest:
    def test_sharing_independence(self):
        # The same structure with and without object sharing must digest
        # identically — this is the property raw pickle bytes lack (the
        # memo encodes identity), and the reason cross-executor blob
        # comparison needs a memo-free stream.
        shared = "x" * 40
        with_sharing = {"a": shared, "b": shared}
        without_sharing = {"a": "x" * 40, "b": "".join("x" for _ in range(40))}
        assert pickle.dumps(with_sharing) != pickle.dumps(without_sharing) or True
        assert structural_digest(with_sharing) == structural_digest(without_sharing)

    def test_value_sensitivity(self):
        assert structural_digest({"a": 1}) != structural_digest({"a": 2})

    def test_large_buffer_values(self):
        # Past ~64 KiB the C pickler streams contiguous payloads to the
        # sink as PickleBuffer/memoryview chunks instead of bytes; the
        # hashing sink must accept them (regression: TypeError at full
        # bench scale).
        import numpy as np

        arr = np.arange(100_000, dtype=np.float64)
        digest = structural_digest({"telemetry": arr})
        assert len(digest) == DIGEST_LEN
        blob = pickle.dumps({"telemetry": arr}, protocol=pickle.HIGHEST_PROTOCOL)
        assert blob_digest(blob) == digest

    def test_blob_digest_round_trip(self):
        value = {"rows": [1, 2, 3], "label": "workload"}
        blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        assert blob_digest(blob) == structural_digest(value)

    def test_blob_digest_raises_on_garbage(self):
        with pytest.raises(Exception):
            blob_digest(b"\x80repro-injected-corruption")


class TestCacheDigestWalk:
    def test_digests_every_artifact_entry(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("aaa", {"v": 1})
        cache.put("bbb", {"v": 2})
        digests = cache_digests(tmp_path)
        assert sorted(digests) == ["aaa", "bbb"]
        assert digests["aaa"] == structural_digest({"v": 1})

    def test_skips_lock_and_tmp_files(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("aaa", {"v": 1})
        (tmp_path / "aaa.lock").write_text("pid 1234")
        (tmp_path / "bbb.pkl.99.12.tmp").write_bytes(b"half-written")
        digests = cache_digests(tmp_path)
        assert sorted(digests) == ["aaa"]

    def test_skips_corrupt_entries(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("aaa", {"v": 1})
        cache.put("bad", {"v": 2})
        assert cache.corrupt_entry("bad")
        digests = cache_digests(tmp_path)
        assert sorted(digests) == ["aaa"]

    def test_missing_directory_is_empty(self, tmp_path):
        assert cache_digests(tmp_path / "nope") == {}


class TestCorruptEntryLockGuard:
    def test_refuses_lock_suffixed_keys(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("aaa", {"v": 1})
        (tmp_path / "aaa.lock").write_text("pid 1234")
        # A caller deriving "keys" from a raw directory listing would pass
        # "aaa.lock" — the cache must refuse to smash lock metadata.
        assert not cache.corrupt_entry("aaa.lock")
        assert (tmp_path / "aaa.lock").read_text() == "pid 1234"

    def test_refuses_tmp_and_pkl_suffixed_keys(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("aaa", {"v": 1})
        assert not cache.corrupt_entry("aaa.pkl")
        assert not cache.corrupt_entry("aaa.pkl.1.2.tmp")
        assert cache.peek("aaa") == {"v": 1}

    def test_refuses_in_memory_too(self):
        cache = ArtifactCache()
        cache.put("aaa", {"v": 1})
        assert not cache.corrupt_entry("aaa.lock")
        assert cache.corrupt_entry("aaa")

    def test_entry_bytes_round_trips(self, tmp_path):
        from repro.core.pipeline import _decode_artifact

        for cache in (ArtifactCache(), ArtifactCache(tmp_path)):
            cache.put("aaa", {"v": 7})
            blob = cache.entry_bytes("aaa")
            assert blob is not None and _decode_artifact(blob) == {"v": 7}
            # blob_digest consumes exactly these stored bytes.
            assert blob_digest(blob) == structural_digest({"v": 7})
            assert cache.entry_bytes("missing") is None
