"""Tests for the capacity model and workload generator."""

import numpy as np
import pytest

from repro.cluster import (
    ClusterConfig,
    Partition,
    SubmittedJob,
    WorkloadModel,
    WorkloadParams,
)
from repro.cluster.partitions import DEFAULT_CLUSTER


class TestPartition:
    def test_totals(self):
        p = Partition("cpu", nodes=10, cores_per_node=64, gpus_per_node=2)
        assert p.total_cores == 640
        assert p.total_gpus == 20

    def test_fits(self):
        p = Partition("gpu", nodes=2, cores_per_node=48, gpus_per_node=4)
        assert p.fits(96, 8)
        assert not p.fits(97, 0)
        assert not p.fits(1, 9)

    def test_validation(self):
        with pytest.raises(ValueError):
            Partition("", nodes=1, cores_per_node=1)
        with pytest.raises(ValueError):
            Partition("x", nodes=0, cores_per_node=1)
        with pytest.raises(ValueError):
            Partition("x", nodes=1, cores_per_node=0)
        with pytest.raises(ValueError):
            Partition("x", nodes=1, cores_per_node=1, gpus_per_node=-1)
        with pytest.raises(ValueError):
            Partition("x", nodes=1, cores_per_node=1, max_walltime=0)


class TestClusterConfig:
    def test_lookup(self):
        assert DEFAULT_CLUSTER["gpu"].gpus_per_node == 4
        assert "cpu" in DEFAULT_CLUSTER
        assert "quantum" not in DEFAULT_CLUSTER
        with pytest.raises(KeyError):
            DEFAULT_CLUSTER["quantum"]

    def test_totals(self):
        assert DEFAULT_CLUSTER.total_cores == sum(
            p.total_cores for p in DEFAULT_CLUSTER
        )
        assert DEFAULT_CLUSTER.total_gpus > 0

    def test_duplicate_partition_rejected(self):
        p = Partition("a", nodes=1, cores_per_node=1)
        with pytest.raises(ValueError):
            ClusterConfig("c", (p, p))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ClusterConfig("c", ())


class TestWorkloadParams:
    def test_window(self):
        assert WorkloadParams(months=2).window_seconds == pytest.approx(2 * 30 * 86400)

    @pytest.mark.parametrize(
        "kw",
        [
            dict(months=0),
            dict(jobs_per_day=0),
            dict(gpu_growth_per_month=-0.1),
            dict(gpu_base_scale=0),
            dict(walltime_overrequest=0.5),
            dict(failure_rate=0.5, cancel_rate=0.4, timeout_rate=0.2),
        ],
    )
    def test_validation(self, kw):
        with pytest.raises(ValueError):
            WorkloadParams(**kw)


class TestSubmittedJob:
    def test_validation(self):
        good = dict(
            job_id=1, user="u", field="physics", partition="cpu",
            submit=0.0, cores=4, gpus=0, runtime=100.0, requested_walltime=200.0,
        )
        SubmittedJob(**good)
        with pytest.raises(ValueError):
            SubmittedJob(**{**good, "cores": 0})
        with pytest.raises(ValueError):
            SubmittedJob(**{**good, "runtime": 0.0})
        with pytest.raises(ValueError):
            SubmittedJob(**{**good, "requested_walltime": 50.0})


@pytest.fixture(scope="module")
def small_workload():
    params = WorkloadParams(months=2, jobs_per_day=120)
    return params, WorkloadModel(params).generate(np.random.default_rng(11))


class TestWorkloadModel:
    def test_jobs_sorted_and_unique(self, small_workload):
        _, jobs = small_workload
        assert len(jobs) > 1000
        submits = [j.submit for j in jobs]
        assert submits == sorted(submits)
        ids = [j.job_id for j in jobs]
        assert len(set(ids)) == len(ids)

    def test_all_jobs_within_window(self, small_workload):
        params, jobs = small_workload
        assert all(0 <= j.submit <= params.window_seconds for j in jobs)

    def test_all_jobs_fit_their_partition(self, small_workload):
        _, jobs = small_workload
        for j in jobs:
            part = DEFAULT_CLUSTER[j.partition]
            assert part.fits(j.cores, j.gpus), (j.partition, j.cores, j.gpus)
            assert j.requested_walltime <= part.max_walltime + 1e-6

    def test_gpu_jobs_only_on_gpu_partition(self, small_workload):
        _, jobs = small_workload
        for j in jobs:
            if j.gpus > 0:
                assert j.partition == "gpu"

    def test_deterministic(self):
        params = WorkloadParams(months=1, jobs_per_day=50)
        a = WorkloadModel(params).generate(np.random.default_rng(3))
        b = WorkloadModel(params).generate(np.random.default_rng(3))
        assert a == b

    def test_gpu_rate_grows(self):
        """Later months contain more GPU submissions than early months."""
        params = WorkloadParams(months=24, jobs_per_day=60, gpu_growth_per_month=0.08)
        jobs = WorkloadModel(params).generate(np.random.default_rng(5))
        month = 30 * 86400.0
        early = sum(1 for j in jobs if j.gpus > 0 and j.submit < 6 * month)
        late = sum(1 for j in jobs if j.gpus > 0 and j.submit >= 18 * month)
        assert late > early * 1.8

    def test_requires_core_partitions(self):
        tiny = ClusterConfig("t", (Partition("cpu", nodes=1, cores_per_node=4),))
        with pytest.raises(ValueError):
            WorkloadModel(cluster=tiny)

    def test_field_mix_drives_field_distribution(self, small_workload):
        _, jobs = small_workload
        fields = {j.field for j in jobs}
        assert "astrophysics" in fields and "biology" in fields

    def test_user_activity_heavy_tailed(self, small_workload):
        """Top user in a field submits several times the median user."""
        _, jobs = small_workload
        from collections import Counter

        counts = Counter(j.user for j in jobs if j.field == "astrophysics")
        values = sorted(counts.values())
        assert values[-1] >= 4 * values[len(values) // 2]
