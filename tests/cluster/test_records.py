"""Tests for JobRecord and the columnar JobTable."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import JobRecord, JobState, JobTable


def rec(i=0, **kw):
    defaults = dict(
        job_id=i,
        user="astro001",
        field="astrophysics",
        partition="cpu",
        submit=100.0,
        start=200.0,
        end=3800.0,
        cores=64,
        gpus=0,
        state=JobState.COMPLETED,
    )
    defaults.update(kw)
    return JobRecord(**defaults)


class TestJobRecord:
    def test_derived_quantities(self):
        r = rec()
        assert r.wait == pytest.approx(100.0)
        assert r.runtime == pytest.approx(3600.0)
        assert r.cpu_hours == pytest.approx(64.0)
        assert r.gpu_hours == 0.0

    def test_gpu_hours(self):
        r = rec(gpus=4)
        assert r.gpu_hours == pytest.approx(4.0)

    def test_time_ordering_enforced(self):
        with pytest.raises(ValueError):
            rec(start=50.0)
        with pytest.raises(ValueError):
            rec(end=150.0)

    def test_resource_validation(self):
        with pytest.raises(ValueError):
            rec(cores=0)
        with pytest.raises(ValueError):
            rec(gpus=-1)


class TestJobTable:
    def make_table(self):
        return JobTable.from_records(
            [
                rec(0),
                rec(1, partition="gpu", gpus=2, field="neuroscience", user="neur001"),
                rec(2, state=JobState.FAILED, cores=8),
                rec(3, partition="gpu", gpus=1, user="neur001", field="neuroscience"),
            ]
        )

    def test_len_and_roundtrip(self):
        t = self.make_table()
        assert len(t) == 4
        r = t.record(1)
        assert r.partition == "gpu" and r.gpus == 2

    def test_iteration_yields_records(self):
        t = self.make_table()
        assert [r.job_id for r in t] == [0, 1, 2, 3]

    def test_empty(self):
        t = JobTable.empty()
        assert len(t) == 0
        assert t.partitions() == ()

    def test_vectorized_derived_columns(self):
        t = self.make_table()
        assert t.wait.tolist() == [100.0] * 4
        assert t.cpu_hours[0] == pytest.approx(64.0)
        assert t.gpu_hours.tolist() == [0.0, 2.0, 0.0, 1.0]

    def test_filters(self):
        t = self.make_table()
        assert len(t.by_partition("gpu")) == 2
        assert len(t.by_field("neuroscience")) == 2
        assert len(t.gpu_jobs()) == 2
        assert len(t.completed()) == 3

    def test_partitions_fields_sorted(self):
        t = self.make_table()
        assert t.partitions() == ("cpu", "gpu")
        assert t.fields() == ("astrophysics", "neuroscience")

    def test_mask_shape_checked(self):
        t = self.make_table()
        with pytest.raises(ValueError):
            t.mask(np.array([True]))

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            JobTable.from_records([rec(0), rec(0)])

    def test_column_length_mismatch_rejected(self):
        t = self.make_table()
        with pytest.raises(ValueError):
            JobTable(
                job_id=t.job_id[:2],
                user=t.user,
                field=t.field,
                partition=t.partition,
                submit=t.submit,
                start=t.start,
                end=t.end,
                cores=t.cores,
                gpus=t.gpus,
                state=t.state,
            )

    def test_time_order_validated_columnwise(self):
        with pytest.raises(ValueError):
            JobTable(
                job_id=np.array([0]),
                user=np.array(["u"], dtype=object),
                field=np.array(["f"], dtype=object),
                partition=np.array(["p"], dtype=object),
                submit=np.array([100.0]),
                start=np.array([50.0]),
                end=np.array([60.0]),
                cores=np.array([1]),
                gpus=np.array([0]),
                state=np.array(["COMPLETED"], dtype=object),
            )

    def test_concat(self):
        t = self.make_table()
        other = JobTable.from_records([rec(10)])
        merged = t.concat(other)
        assert len(merged) == 5

    def test_concat_duplicate_ids_rejected(self):
        t = self.make_table()
        with pytest.raises(ValueError):
            t.concat(t)

    def test_contiguous_numeric_columns(self):
        """Numeric columns must be contiguous for fast aggregation."""
        t = self.make_table()
        for col in (t.submit, t.start, t.end, t.cores, t.gpus, t.job_id):
            assert col.flags["C_CONTIGUOUS"]


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=40),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_property_roundtrip_from_records(n, seed):
    rng = np.random.default_rng(seed)
    records = []
    for i in range(n):
        submit = float(rng.uniform(0, 1e6))
        start = submit + float(rng.uniform(0, 1e4))
        end = start + float(rng.uniform(1, 1e5))
        records.append(
            rec(
                i,
                submit=submit,
                start=start,
                end=end,
                cores=int(rng.integers(1, 512)),
                gpus=int(rng.integers(0, 8)),
            )
        )
    table = JobTable.from_records(records)
    assert len(table) == n
    for i in (0, n - 1):
        back = table.record(i)
        assert back == records[i]
    assert (table.wait >= 0).all()
    assert (table.runtime >= 0).all()
