"""Tests for cluster health analysis and accounting audit."""

import numpy as np
import pytest

from repro.cluster import (
    AuditIssueKind,
    ClusterConfig,
    JobRecord,
    JobState,
    JobTable,
    Partition,
    audit_table,
    failure_bursts,
    failure_rates_by,
    waste_summary,
)


def rec(i, state=JobState.COMPLETED, partition="cpu", cores=10, gpus=0,
        runtime_h=1.0, end_at=None, user="u0", req_walltime=None):
    start = (end_at - runtime_h * 3600.0) if end_at is not None else 1000.0
    end = start + runtime_h * 3600.0
    return JobRecord(
        job_id=i, user=user, field="physics", partition=partition,
        submit=start, start=start, end=end, cores=cores, gpus=gpus, state=state,
        req_walltime=req_walltime if req_walltime is not None else runtime_h * 7200.0,
    )


class TestWasteSummary:
    def test_no_waste(self):
        table = JobTable.from_records([rec(0), rec(1)])
        summary = waste_summary(table)
        assert summary.waste_fraction == 0.0
        assert summary.wasted_core_hours == {}

    def test_waste_breakdown(self):
        table = JobTable.from_records(
            [
                rec(0, runtime_h=2.0),                      # 20 good core-h
                rec(1, state=JobState.FAILED, runtime_h=1.0),    # 10 wasted
                rec(2, state=JobState.TIMEOUT, runtime_h=1.0),   # 10 wasted
            ]
        )
        summary = waste_summary(table)
        assert summary.total_core_hours == pytest.approx(40.0)
        assert summary.wasted_core_hours["FAILED"] == pytest.approx(10.0)
        assert summary.waste_fraction == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            waste_summary(JobTable.empty())


class TestFailureRates:
    def test_rates_by_partition(self):
        records = [rec(i, partition="cpu") for i in range(40)]
        records += [rec(100 + i, partition="gpu", gpus=1,
                        state=JobState.FAILED if i < 10 else JobState.COMPLETED)
                    for i in range(40)]
        rates = failure_rates_by(JobTable.from_records(records), "partition")
        assert rates["cpu"].estimate == 0.0
        assert rates["gpu"].estimate == pytest.approx(0.25)

    def test_min_jobs_filter(self):
        records = [rec(i) for i in range(5)]
        rates = failure_rates_by(JobTable.from_records(records), "partition", min_jobs=10)
        assert rates == {}

    def test_bad_column(self):
        with pytest.raises(ValueError):
            failure_rates_by(JobTable.from_records([rec(0)]), "state")


class TestFailureBursts:
    def test_no_failures_no_bursts(self):
        table = JobTable.from_records([rec(i, end_at=i * 600.0 + 3600) for i in range(50)])
        assert failure_bursts(table) == []

    def test_detects_concentrated_burst(self):
        # Background: 200 jobs ending uniformly over ~14 days, 2% failures.
        records = []
        for i in range(200):
            state = JobState.FAILED if i % 50 == 0 else JobState.COMPLETED
            records.append(rec(i, state=state, end_at=1e4 + i * 6000.0))
        # Burst: 8 failures within one hour (a node went bad).
        for k in range(8):
            records.append(
                rec(1000 + k, state=JobState.FAILED, end_at=5e5 + k * 400.0)
            )
        bursts = failure_bursts(JobTable.from_records(records))
        assert len(bursts) >= 1
        start, stop, n = bursts[0]
        assert n >= 5
        assert 4.9e5 < start < 5.1e5

    def test_uniform_failures_not_bursts(self):
        # 10% failures spread evenly: no window should trip 3x the base rate.
        records = [
            rec(i, state=JobState.FAILED if i % 10 == 0 else JobState.COMPLETED,
                end_at=1e4 + i * 3600.0)
            for i in range(300)
        ]
        assert failure_bursts(JobTable.from_records(records)) == []

    def test_validation(self):
        table = JobTable.from_records([rec(0)])
        with pytest.raises(ValueError):
            failure_bursts(table, window_seconds=0)


TINY = ClusterConfig(
    "tiny",
    (
        Partition("cpu", nodes=2, cores_per_node=16),
        Partition("gpu", nodes=1, cores_per_node=16, gpus_per_node=4),
    ),
)


class TestAudit:
    def test_clean_table(self):
        table = JobTable.from_records([rec(0, cores=16), rec(1, partition="gpu", gpus=2)])
        report = audit_table(table, TINY)
        assert report.ok
        assert report.summary() == {}

    def test_unknown_partition(self):
        table = JobTable.from_records([rec(0, partition="quantum")])
        report = audit_table(table, TINY)
        assert not report.ok
        assert len(report.of_kind(AuditIssueKind.UNKNOWN_PARTITION)) == 1

    def test_oversized_allocation(self):
        table = JobTable.from_records([rec(0, cores=64)])
        report = audit_table(table, TINY)
        assert report.of_kind(AuditIssueKind.OVERSIZED_ALLOCATION)

    def test_gpu_on_cpu_partition(self):
        # 4 gpus on the gpu-less cpu partition: flagged as both oversized
        # (capacity 0) and wrong-partition.
        table = JobTable.from_records([rec(0, partition="cpu", gpus=4)])
        report = audit_table(table, TINY)
        assert report.of_kind(AuditIssueKind.GPU_ON_CPU_PARTITION)

    def test_walltime_overrun(self):
        table = JobTable.from_records([rec(0, runtime_h=2.0, req_walltime=3600.0)])
        report = audit_table(table, TINY)
        assert report.of_kind(AuditIssueKind.WALLTIME_OVERRUN)

    def test_zero_limit_not_flagged(self):
        table = JobTable.from_records([rec(0, runtime_h=2.0, req_walltime=0.0)])
        report = audit_table(table, TINY)
        assert not report.of_kind(AuditIssueKind.WALLTIME_OVERRUN)

    def test_implausible_runtime(self):
        table = JobTable.from_records(
            [rec(0, runtime_h=31 * 24.0, req_walltime=32 * 24 * 3600.0)]
        )
        report = audit_table(table, TINY)
        assert report.of_kind(AuditIssueKind.IMPLAUSIBLE_RUNTIME)

    def test_simulated_output_is_clean(self, study):
        report = audit_table(study.telemetry, study.cluster)
        assert report.ok, report.summary()
