"""Tests for diurnal/weekly arrival structure."""

import numpy as np
import pytest

from repro.cluster import WorkloadModel, WorkloadParams, arrival_profile
from repro.cluster.records import JobRecord, JobState, JobTable
from repro.cluster.workload import DAY, WEEK, diurnal_intensity


class TestDiurnalIntensity:
    def test_weekly_mean_is_one(self):
        t = np.linspace(0, WEEK, 7 * 24 * 60, endpoint=False)
        assert diurnal_intensity(t).mean() == pytest.approx(1.0, abs=0.01)

    def test_afternoon_beats_night(self):
        afternoon = diurnal_intensity(np.array([15.0 * 3600.0]))[0]
        night = diurnal_intensity(np.array([3.0 * 3600.0]))[0]
        assert afternoon > 2.0 * night

    def test_weekend_quieter(self):
        monday_noon = diurnal_intensity(np.array([12.0 * 3600.0]))[0]
        saturday_noon = diurnal_intensity(np.array([5 * DAY + 12.0 * 3600.0]))[0]
        assert saturday_noon == pytest.approx(0.4 * monday_noon)

    def test_nonnegative(self):
        t = np.linspace(0, WEEK, 1000)
        assert (diurnal_intensity(t) >= 0).all()


class TestDiurnalWorkload:
    @pytest.fixture(scope="class")
    def jobs(self):
        params = WorkloadParams(months=2, jobs_per_day=200, diurnal=True)
        return WorkloadModel(params).generate(np.random.default_rng(6))

    def test_total_volume_preserved(self, jobs):
        flat = WorkloadModel(
            WorkloadParams(months=2, jobs_per_day=200, diurnal=False)
        ).generate(np.random.default_rng(6))
        assert len(jobs) == pytest.approx(len(flat), rel=0.1)

    def test_afternoon_peak_in_submissions(self, jobs):
        hours = np.array([(j.submit % DAY) / 3600.0 for j in jobs])
        afternoon = ((hours >= 13) & (hours < 17)).sum()
        night = ((hours >= 1) & (hours < 5)).sum()
        assert afternoon > 1.8 * night

    def test_weekday_beats_weekend(self, jobs):
        weekday = np.array([(j.submit % WEEK) / DAY for j in jobs])
        weekday_rate = (weekday < 5).sum() / 5.0
        weekend_rate = (weekday >= 5).sum() / 2.0
        assert weekday_rate > 1.5 * weekend_rate


class TestArrivalProfile:
    def make_table(self, submit_hours):
        records = []
        for i, h in enumerate(submit_hours):
            submit = h * 3600.0
            records.append(
                JobRecord(i, "u", "f", "cpu", submit, submit, submit + 60.0, 1, 0,
                          JobState.COMPLETED)
            )
        return JobTable.from_records(records)

    def test_hourly_binning(self):
        table = self.make_table([0.5, 0.9, 14.2, 14.8, 14.9])
        profile = arrival_profile(table)
        assert profile["hourly"][0] == 2
        assert profile["hourly"][14] == 3
        assert profile["hourly"].sum() == 5

    def test_weekly_binning(self):
        # 30h = Tuesday (day 1), 150h = Sunday (day 6).
        table = self.make_table([30.0, 150.0])
        profile = arrival_profile(table)
        assert profile["weekly"][1] == 1
        assert profile["weekly"][6] == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            arrival_profile(JobTable.empty())

    def test_diurnal_profile_visible_in_schedule(self):
        params = WorkloadParams(months=1, jobs_per_day=150, diurnal=True)
        jobs = WorkloadModel(params).generate(np.random.default_rng(4))
        from repro.cluster import simulate_schedule

        table = simulate_schedule(jobs, rng=np.random.default_rng(0)).table
        profile = arrival_profile(table)
        assert profile["hourly"][14] > profile["hourly"][3]
