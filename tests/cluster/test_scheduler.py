"""Tests for the FCFS + EASY backfill scheduler simulator."""

import numpy as np
import pytest

from repro.cluster import (
    ClusterConfig,
    JobState,
    Partition,
    SubmittedJob,
    WorkloadModel,
    WorkloadParams,
    simulate_schedule,
)

TINY = ClusterConfig(
    "tiny",
    (
        Partition("cpu", nodes=1, cores_per_node=8),
        Partition("gpu", nodes=1, cores_per_node=8, gpus_per_node=2),
        Partition("serial", nodes=1, cores_per_node=8),
    ),
)


def job(i, submit=0.0, cores=1, gpus=0, runtime=100.0, walltime=None, partition="cpu"):
    return SubmittedJob(
        job_id=i,
        user=f"u{i}",
        field="physics",
        partition=partition,
        submit=submit,
        cores=cores,
        gpus=gpus,
        runtime=runtime,
        requested_walltime=walltime if walltime is not None else runtime * 2,
    )


def run(jobs, cluster=TINY, **kw):
    kw.setdefault("failure_rate", 0.0)
    kw.setdefault("cancel_rate", 0.0)
    kw.setdefault("timeout_rate", 0.0)
    return simulate_schedule(jobs, cluster, rng=np.random.default_rng(0), **kw)


class TestBasicScheduling:
    def test_empty_input(self):
        result = run([])
        assert len(result.table) == 0

    def test_single_job_starts_immediately(self):
        result = run([job(0, submit=50.0)])
        r = result.table.record(0)
        assert r.start == pytest.approx(50.0)
        assert r.end == pytest.approx(150.0)
        assert r.state is JobState.COMPLETED

    def test_all_jobs_accounted(self):
        jobs = [job(i, submit=float(i)) for i in range(100)]
        result = run(jobs)
        assert len(result.table) == 100
        assert sorted(result.table.job_id.tolist()) == list(range(100))

    def test_fifo_when_saturated(self):
        # 8-core node; three 8-core jobs must run strictly in sequence.
        jobs = [job(i, submit=0.0, cores=8, runtime=100.0) for i in range(3)]
        result = run(jobs)
        starts = sorted(result.table.start.tolist())
        assert starts == pytest.approx([0.0, 100.0, 200.0])

    def test_parallel_when_capacity_allows(self):
        jobs = [job(i, cores=4, runtime=100.0) for i in range(2)]
        result = run(jobs)
        assert result.table.start.tolist() == [0.0, 0.0]

    def test_gpus_constrain(self):
        jobs = [
            job(0, cores=1, gpus=2, runtime=100.0, partition="gpu"),
            job(1, cores=1, gpus=1, runtime=100.0, partition="gpu"),
        ]
        result = run(jobs)
        r1 = result.table.record(1)
        assert r1.start == pytest.approx(100.0)  # had to wait for both GPUs

    def test_partitions_independent(self):
        jobs = [
            job(0, cores=8, runtime=1000.0, partition="cpu"),
            job(1, cores=8, runtime=10.0, partition="serial", submit=1.0),
        ]
        result = run(jobs)
        assert result.table.record(1).start == pytest.approx(1.0)

    def test_unknown_partition_rejected(self):
        with pytest.raises(ValueError):
            run([job(0, partition="quantum")])

    def test_oversized_job_rejected(self):
        with pytest.raises(ValueError):
            run([job(0, cores=9)])


class TestBackfill:
    def make_backfill_scenario(self):
        """Wide job blocks; a short narrow job can slip in ahead of it."""
        return [
            job(0, submit=0.0, cores=6, runtime=1000.0, walltime=1000.0),
            # Head of queue: needs all 8 cores, must wait until t=1000.
            job(1, submit=1.0, cores=8, runtime=500.0, walltime=500.0),
            # Short narrow job: fits in the 2 spare cores and finishes
            # (walltime 400) before the head's reservation at t=1000.
            job(2, submit=2.0, cores=2, runtime=300.0, walltime=400.0),
        ]

    def test_easy_backfills_short_job(self):
        result = run(self.make_backfill_scenario(), backfill=True)
        r2 = result.table.record(2)
        assert r2.start == pytest.approx(2.0)
        assert result.backfilled == 1
        # Head must still start exactly at its reservation.
        assert result.table.record(1).start == pytest.approx(1000.0)

    def test_no_backfill_waits(self):
        result = run(self.make_backfill_scenario(), backfill=False)
        r2 = result.table.record(2)
        assert r2.start >= 1000.0
        assert result.backfilled == 0

    def test_backfill_never_delays_head(self):
        # A long narrow job must NOT backfill (walltime 5000 > shadow 1000)
        # unless it fits the spare cores; at 3 cores > 2 spare it must wait.
        jobs = [
            job(0, submit=0.0, cores=6, runtime=1000.0, walltime=1000.0),
            job(1, submit=1.0, cores=8, runtime=500.0, walltime=500.0),
            job(2, submit=2.0, cores=3, runtime=4000.0, walltime=5000.0),
        ]
        result = run(jobs, backfill=True)
        assert result.table.record(1).start == pytest.approx(1000.0)
        assert result.table.record(2).start >= 1000.0

    def test_spare_resource_backfill(self):
        # Long narrow job CAN backfill when it fits the head's spare cores.
        jobs = [
            job(0, submit=0.0, cores=6, runtime=1000.0, walltime=1000.0),
            job(1, submit=1.0, cores=6, runtime=500.0, walltime=500.0),
            job(2, submit=2.0, cores=2, runtime=4000.0, walltime=5000.0),
        ]
        result = run(jobs, backfill=True)
        assert result.table.record(2).start == pytest.approx(2.0)

    def test_backfill_improves_throughput(self):
        params = WorkloadParams(months=1, jobs_per_day=500)
        jobs = WorkloadModel(params).generate(np.random.default_rng(4))
        with_bf = simulate_schedule(jobs, rng=np.random.default_rng(0), backfill=True)
        without = simulate_schedule(jobs, rng=np.random.default_rng(0), backfill=False)
        assert with_bf.backfilled > 0
        assert with_bf.table.wait.mean() <= without.table.wait.mean() + 1e-6


class TestTerminalStates:
    def test_all_completed_when_rates_zero(self):
        jobs = [job(i, submit=float(i)) for i in range(50)]
        result = run(jobs)
        assert set(result.table.state.tolist()) == {"COMPLETED"}

    def test_states_assigned_at_requested_rates(self):
        jobs = [job(i, submit=float(i), runtime=1000.0) for i in range(3000)]
        result = simulate_schedule(
            jobs,
            TINY,
            rng=np.random.default_rng(8),
            failure_rate=0.10,
            cancel_rate=0.05,
            timeout_rate=0.03,
        )
        states = result.table.state.tolist()
        n = len(states)
        assert states.count("FAILED") / n == pytest.approx(0.10, abs=0.02)
        assert states.count("CANCELLED") / n == pytest.approx(0.05, abs=0.02)
        assert states.count("TIMEOUT") / n == pytest.approx(0.03, abs=0.015)

    def test_failed_jobs_run_shorter(self):
        jobs = [job(i, submit=float(i) * 1e4, runtime=1000.0) for i in range(2000)]
        result = simulate_schedule(
            jobs, TINY, rng=np.random.default_rng(9), failure_rate=0.5,
            cancel_rate=0.0, timeout_rate=0.0,
        )
        failed = result.table.mask(result.table.state == "FAILED")
        done = result.table.mask(result.table.state == "COMPLETED")
        assert failed.runtime.mean() < done.runtime.mean()

    def test_determinism(self):
        jobs = [job(i, submit=float(i)) for i in range(200)]
        a = simulate_schedule(jobs, TINY, rng=np.random.default_rng(3))
        b = simulate_schedule(jobs, TINY, rng=np.random.default_rng(3))
        assert a.table.start.tolist() == b.table.start.tolist()
        assert a.table.state.tolist() == b.table.state.tolist()


class TestConservation:
    def test_capacity_never_exceeded(self):
        """At any event instant, running cores must fit the partition."""
        params = WorkloadParams(months=1, jobs_per_day=300)
        jobs = WorkloadModel(params).generate(np.random.default_rng(12))
        result = simulate_schedule(jobs, rng=np.random.default_rng(0))
        from repro.cluster.partitions import DEFAULT_CLUSTER

        for pname in result.table.partitions():
            part = result.table.by_partition(pname)
            cap = DEFAULT_CLUSTER[pname].total_cores
            gcap = DEFAULT_CLUSTER[pname].total_gpus
            # Sweep events: +cores at start, -cores at end.
            times = np.concatenate([part.start, part.end])
            deltas = np.concatenate([part.cores, -part.cores]).astype(float)
            gdeltas = np.concatenate([part.gpus, -part.gpus]).astype(float)
            # Ends sort before starts at the same instant (free then allocate):
            # negative deltas first at equal times.
            order = np.lexsort((deltas, times))
            running = np.cumsum(deltas[order])
            grunning = np.cumsum(gdeltas[order])
            assert running.max() <= cap + 1e-6, pname
            assert grunning.max() <= gcap + 1e-6, pname

    def test_waits_nonnegative(self):
        params = WorkloadParams(months=1, jobs_per_day=200)
        jobs = WorkloadModel(params).generate(np.random.default_rng(13))
        result = simulate_schedule(jobs, rng=np.random.default_rng(0))
        assert (result.table.wait >= -1e-9).all()
