"""Tests for resource allocators and the scheduler options that use them."""

import numpy as np
import pytest

from repro.cluster import (
    ClusterConfig,
    Partition,
    SubmittedJob,
    WorkloadModel,
    WorkloadParams,
    simulate_schedule,
)
from repro.cluster.allocation import NodeGranularAllocator, PooledAllocator


class TestPooledAllocator:
    def test_allocate_release_cycle(self):
        alloc = PooledAllocator(64, 4)
        assert alloc.fits(64, 4)
        token = alloc.allocate(40, 2)
        assert alloc.free_cores == 24 and alloc.free_gpus == 2
        assert not alloc.fits(30, 0)
        alloc.release(token)
        assert alloc.free_cores == 64 and alloc.free_gpus == 4

    def test_over_allocate_raises(self):
        alloc = PooledAllocator(8, 0)
        with pytest.raises(RuntimeError):
            alloc.allocate(9, 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            PooledAllocator(0, 0)


class TestNodeGranularAllocator:
    def test_sub_node_first_fit(self):
        alloc = NodeGranularAllocator(nodes=2, cores_per_node=8, gpus_per_node=0)
        t1 = alloc.allocate(5, 0)
        t2 = alloc.allocate(5, 0)  # must go to the second node
        assert alloc.free_cores == 6
        assert not alloc.fits(4, 0)  # 3+3 free, but no single node has 4
        assert alloc.fits(3, 0)
        alloc.release(t1)
        assert alloc.fits(8, 0)
        alloc.release(t2)

    def test_whole_node_placement(self):
        alloc = NodeGranularAllocator(nodes=4, cores_per_node=8, gpus_per_node=0)
        token = alloc.allocate(16, 0)  # 2 whole nodes
        assert alloc.free_cores == 16
        # A 16-core job still fits (2 full nodes left); a 24-core one doesn't.
        assert alloc.fits(16, 0)
        assert not alloc.fits(24, 0)
        alloc.release(token)
        assert alloc.fits(32, 0)

    def test_fragmentation_blocks_wide_jobs(self):
        """The phenomenon the pooled model cannot express."""
        alloc = NodeGranularAllocator(nodes=4, cores_per_node=8, gpus_per_node=0)
        # 5-core jobs cannot share a node (3 left), so each takes its own.
        tokens = [alloc.allocate(5, 0) for _ in range(4)]
        assert alloc.free_cores == 12
        assert not alloc.fits(16, 0)  # needs 2 *full* nodes; none exist
        alloc.release(tokens[0])
        alloc.release(tokens[1])
        assert alloc.fits(16, 0)

    def test_gpu_sub_node(self):
        alloc = NodeGranularAllocator(nodes=2, cores_per_node=8, gpus_per_node=4)
        alloc.allocate(2, 3)
        # 1 GPU left on node 0, 4 on node 1: a 2-GPU job must use node 1.
        token = alloc.allocate(2, 2)
        assert token[1] == 1  # placed on node 1
        assert not alloc.fits(1, 3)

    def test_gpu_whole_node(self):
        alloc = NodeGranularAllocator(nodes=2, cores_per_node=8, gpus_per_node=4)
        alloc.allocate(8, 8)  # needs both nodes (8 GPUs)
        assert alloc.free_gpus == 0
        assert not alloc.fits(1, 0)

    def test_best_fit_reduces_fragmentation(self):
        alloc = NodeGranularAllocator(nodes=2, cores_per_node=8, gpus_per_node=0)
        alloc.allocate(6, 0)  # node 0 has 2 free
        alloc.allocate(2, 0)  # best-fit: should land on node 0, not node 1
        assert alloc.node_free_cores.tolist() == [0, 8]

    def test_validation(self):
        with pytest.raises(ValueError):
            NodeGranularAllocator(0, 8, 0)


TINY = ClusterConfig(
    "tiny",
    (
        Partition("cpu", nodes=4, cores_per_node=8),
        Partition("gpu", nodes=1, cores_per_node=8, gpus_per_node=2),
        Partition("serial", nodes=1, cores_per_node=8),
    ),
)


def job(i, submit=0.0, cores=1, runtime=100.0, walltime=None, user=None):
    return SubmittedJob(
        job_id=i, user=user or f"u{i}", field="physics", partition="cpu",
        submit=submit, cores=cores, gpus=0, runtime=runtime,
        requested_walltime=walltime or runtime * 2,
    )


def run(jobs, **kw):
    kw.setdefault("failure_rate", 0.0)
    kw.setdefault("cancel_rate", 0.0)
    kw.setdefault("timeout_rate", 0.0)
    return simulate_schedule(jobs, TINY, rng=np.random.default_rng(0), **kw)


class TestNodeGranularScheduling:
    def test_wide_job_blocked_by_fragmentation(self):
        # Three 5-core jobs occupy three nodes (5 > the 3 cores a shared
        # node would have left), leaving 17 pooled-free cores but only ONE
        # full node. Pooled scheduling starts the 16-core (2-node) job
        # immediately; node-granular must wait for a node to drain.
        jobs = [job(i, submit=0.0, cores=5, runtime=500.0) for i in range(3)]
        jobs.append(job(3, submit=1.0, cores=16, runtime=100.0))
        pooled = run(jobs, node_granular=False)
        granular = run(jobs, node_granular=True)
        assert pooled.table.record(3).start == pytest.approx(1.0)
        assert granular.table.record(3).start >= 500.0

    def test_all_jobs_complete(self):
        params = WorkloadParams(months=1, jobs_per_day=80)
        stream = WorkloadModel(params).generate(np.random.default_rng(2))
        result = simulate_schedule(
            stream, rng=np.random.default_rng(0), node_granular=True
        )
        assert len(result.table) == len(stream)
        assert (result.table.wait >= 0).all()


class TestFairshare:
    def test_light_user_jumps_queue(self):
        # Hog saturates the machine, then hog and newcomer queue together:
        # fairshare must start the newcomer first once capacity frees.
        jobs = [job(0, submit=0.0, cores=32, runtime=100.0, user="hog")]
        jobs.append(job(1, submit=1.0, cores=32, runtime=100.0, user="hog"))
        jobs.append(job(2, submit=2.0, cores=32, runtime=100.0, user="newcomer"))
        fifo = run(jobs, priority="fifo", backfill=False)
        fair = run(jobs, priority="fairshare", backfill=False)
        # FIFO: hog's second job runs before the newcomer.
        assert fifo.table.record(1).start < fifo.table.record(2).start
        # Fairshare: newcomer overtakes.
        assert fair.table.record(2).start < fair.table.record(1).start

    def test_usage_decays(self):
        from repro.cluster.scheduler import _FairshareLedger

        ledger = _FairshareLedger(halflife=100.0)
        ledger.charge("u", 1000.0, now=0.0)
        assert ledger.usage("u", 0.0) == pytest.approx(1000.0)
        assert ledger.usage("u", 100.0) == pytest.approx(500.0)
        assert ledger.usage("u", 300.0) == pytest.approx(125.0)
        assert ledger.usage("stranger", 50.0) == 0.0

    def test_bad_priority_rejected(self):
        with pytest.raises(ValueError):
            run([job(0)], priority="random")

    def test_bad_halflife_rejected(self):
        with pytest.raises(ValueError):
            run([job(0)], priority="fairshare", fairshare_halflife=0.0)

    def test_fairshare_spreads_service(self):
        """Under contention, fairshare narrows the wait gap between a heavy
        user and light users."""
        jobs = []
        jid = 0
        for k in range(30):
            jobs.append(job(jid, submit=k * 10.0, cores=16, runtime=400.0, user="whale"))
            jid += 1
        for k in range(10):
            jobs.append(job(jid, submit=50.0 + k * 30.0, cores=16, runtime=400.0, user=f"minnow{k}"))
            jid += 1
        fifo = run(jobs, priority="fifo", backfill=False)
        fair = run(jobs, priority="fairshare", backfill=False)

        def mean_wait(result, prefix):
            mask = np.array([u.startswith(prefix) for u in result.table.user])
            return result.table.wait[mask].mean()

        gap_fifo = mean_wait(fifo, "minnow") - mean_wait(fifo, "whale")
        gap_fair = mean_wait(fair, "minnow") - mean_wait(fair, "whale")
        assert gap_fair < gap_fifo
