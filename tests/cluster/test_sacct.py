"""Tests for sacct-format I/O."""

import io

import numpy as np
import pytest

from repro.cluster import JobRecord, JobState, JobTable, parse_sacct, write_sacct
from repro.cluster.sacct import SacctFormatError


def make_table():
    return JobTable.from_records(
        [
            JobRecord(0, "astro001", "astrophysics", "cpu", 0.0, 10.0, 3610.0, 128, 0, JobState.COMPLETED),
            JobRecord(1, "neur003", "neuroscience", "gpu", 5.0, 500.0, 7700.0, 16, 2, JobState.FAILED),
            JobRecord(2, "bio0012", "biology", "serial", 9.0, 9.0, 100.0, 1, 0, JobState.CANCELLED),
        ]
    )


class TestRoundTrip:
    def test_string_round_trip(self):
        table = make_table()
        buf = io.StringIO()
        write_sacct(table, buf)
        parsed = parse_sacct(buf.getvalue())
        assert len(parsed) == 3
        for i in range(3):
            assert parsed.record(i) == table.record(i)

    def test_file_round_trip(self, tmp_path):
        table = make_table()
        path = tmp_path / "jobs.sacct"
        write_sacct(table, path)
        parsed = parse_sacct(path)
        assert [r for r in parsed] == [r for r in table]

    def test_gpu_tres_round_trip(self):
        buf = io.StringIO()
        write_sacct(make_table(), buf)
        text = buf.getvalue()
        assert "gres/gpu=2" in text
        parsed = parse_sacct(text)
        assert parsed.record(1).gpus == 2

    def test_empty_table(self):
        buf = io.StringIO()
        write_sacct(JobTable.empty(), buf)
        parsed = parse_sacct(buf.getvalue())
        assert len(parsed) == 0

    def test_large_round_trip(self):
        rng = np.random.default_rng(0)
        records = []
        for i in range(500):
            submit = float(rng.uniform(0, 1e6))
            start = submit + float(rng.uniform(0, 1e3))
            records.append(
                JobRecord(
                    i, f"u{i%17}", "physics", "cpu", submit, start,
                    start + float(rng.uniform(60, 1e4)),
                    int(rng.integers(1, 100)), int(rng.integers(0, 4)),
                    JobState.COMPLETED,
                )
            )
        table = JobTable.from_records(records)
        parsed = parse_sacct_roundtrip(table)
        assert len(parsed) == 500
        np.testing.assert_allclose(parsed.cores, table.cores)
        np.testing.assert_allclose(parsed.submit, table.submit, atol=1e-3)


def parse_sacct_roundtrip(table):
    buf = io.StringIO()
    write_sacct(table, buf)
    return parse_sacct(buf.getvalue())


class TestErrors:
    def test_empty_input(self):
        with pytest.raises(SacctFormatError):
            parse_sacct(io.StringIO(""))

    def test_bad_header(self):
        with pytest.raises(SacctFormatError):
            parse_sacct("NotAHeader|x\n1|2\n")

    def test_wrong_field_count(self):
        text = "JobID|User|Account|Partition|Submit|Start|End|AllocCPUS|AllocTRES|Timelimit|State\n1|2|3\n"
        with pytest.raises(SacctFormatError):
            parse_sacct(text)

    def test_bad_state(self):
        text = (
            "JobID|User|Account|Partition|Submit|Start|End|AllocCPUS|AllocTRES|Timelimit|State\n"
            "1|u|f|cpu|0.0|1.0|2.0|4|cpu=4|100|EXPLODED\n"
        )
        with pytest.raises(SacctFormatError):
            parse_sacct(text)

    def test_bad_gpu_value(self):
        text = (
            "JobID|User|Account|Partition|Submit|Start|End|AllocCPUS|AllocTRES|Timelimit|State\n"
            "1|u|f|gpu|0.0|1.0|2.0|4|cpu=4,gres/gpu=two|100|COMPLETED\n"
        )
        with pytest.raises(SacctFormatError):
            parse_sacct(text)

    def test_bad_times_surface_line_number(self):
        text = (
            "JobID|User|Account|Partition|Submit|Start|End|AllocCPUS|AllocTRES|Timelimit|State\n"
            "1|u|f|cpu|5.0|1.0|2.0|4|cpu=4|100|COMPLETED\n"
        )
        with pytest.raises(SacctFormatError, match="line 2"):
            parse_sacct(text)

    def test_blank_lines_skipped(self):
        text = (
            "JobID|User|Account|Partition|Submit|Start|End|AllocCPUS|AllocTRES|Timelimit|State\n"
            "\n"
            "1|u|f|cpu|0.0|1.0|2.0|4|cpu=4|100|COMPLETED\n"
            "\n"
        )
        assert len(parse_sacct(text)) == 1
