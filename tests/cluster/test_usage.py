"""Tests for usage aggregation."""

import numpy as np
import pytest

from repro.cluster import (
    MONTH_SECONDS,
    JobRecord,
    JobState,
    JobTable,
    cpu_hours_by_field_month,
    gpu_hours_monthly,
    job_width_distribution,
    monthly_growth_rate,
    runtime_distribution_by_field,
    user_concentration,
    utilization_by_partition,
    wait_stats_by_partition,
)
from repro.cluster.partitions import ClusterConfig, Partition
from repro.cluster.usage import width_class


def rec(i, field="physics", user="u0", partition="cpu", month=0, cores=10,
        gpus=0, runtime_h=1.0, wait=0.0):
    submit = month * MONTH_SECONDS + 1000.0
    start = submit + wait
    return JobRecord(
        job_id=i, user=user, field=field, partition=partition,
        submit=submit, start=start, end=start + runtime_h * 3600.0,
        cores=cores, gpus=gpus, state=JobState.COMPLETED,
    )


class TestCpuHoursByFieldMonth:
    def test_basic_attribution(self):
        table = JobTable.from_records(
            [
                rec(0, field="physics", month=0, cores=10, runtime_h=2.0),
                rec(1, field="physics", month=1, cores=5, runtime_h=1.0),
                rec(2, field="biology", month=0, cores=2, runtime_h=3.0),
            ]
        )
        result = cpu_hours_by_field_month(table)
        assert result["physics"].tolist() == pytest.approx([20.0, 5.0])
        assert result["biology"].tolist() == pytest.approx([6.0, 0.0])

    def test_empty_table(self):
        assert cpu_hours_by_field_month(JobTable.empty()) == {}

    def test_arrays_cover_same_months(self):
        table = JobTable.from_records([rec(0, month=0), rec(1, month=5)])
        result = cpu_hours_by_field_month(table)
        assert all(len(v) == 6 for v in result.values())


class TestGpuHoursMonthly:
    def test_attribution(self):
        table = JobTable.from_records(
            [
                rec(0, partition="gpu", month=0, gpus=2, runtime_h=10.0),
                rec(1, partition="gpu", month=2, gpus=4, runtime_h=1.0),
            ]
        )
        series = gpu_hours_monthly(table)
        assert series.tolist() == pytest.approx([20.0, 0.0, 4.0])

    def test_empty(self):
        assert gpu_hours_monthly(JobTable.empty()).size == 0


class TestMonthlyGrowthRate:
    def test_exact_exponential(self):
        series = 100.0 * 1.05 ** np.arange(12)
        assert monthly_growth_rate(series) == pytest.approx(0.05, abs=1e-9)

    def test_flat_series(self):
        assert monthly_growth_rate(np.full(10, 7.0)) == pytest.approx(0.0, abs=1e-12)

    def test_zero_months_excluded(self):
        series = np.array([0.0, 100.0, 110.0, 0.0, 133.1])
        rate = monthly_growth_rate(series)
        assert rate > 0.0

    def test_insufficient_data(self):
        with pytest.raises(ValueError):
            monthly_growth_rate(np.array([0.0, 5.0]))


class TestWidthDistribution:
    def test_width_class_labels(self):
        assert width_class(1) == "1"
        assert width_class(8) == "2-8"
        assert width_class(64) == "9-64"
        assert width_class(512) == "65-512"
        assert width_class(4096) == ">512"
        with pytest.raises(ValueError):
            width_class(0)

    def test_cdf_and_weighted_share(self):
        table = JobTable.from_records(
            [
                rec(0, cores=1, runtime_h=1.0),   # 1 cpu-h
                rec(1, cores=1, runtime_h=1.0),   # 1 cpu-h
                rec(2, cores=512, runtime_h=1.0),  # 512 cpu-h
            ]
        )
        dist = job_width_distribution(table)
        assert dist.cdf[-1] == pytest.approx(1.0)
        # Most *jobs* are width 1, but most *cycles* go to the wide job.
        assert dist.weighted_share["1"] == pytest.approx(2.0 / 514.0)
        assert dist.weighted_share["65-512"] == pytest.approx(512.0 / 514.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            job_width_distribution(JobTable.empty())


class TestWaitStats:
    def test_per_partition_medians(self):
        table = JobTable.from_records(
            [
                rec(0, partition="cpu", wait=3600.0),
                rec(1, partition="cpu", wait=7200.0),
                rec(2, partition="gpu", gpus=1, wait=0.0),
            ]
        )
        stats = wait_stats_by_partition(table)
        assert stats["cpu"]["median_h"] == pytest.approx(1.5)
        assert stats["gpu"]["median_h"] == 0.0
        assert stats["cpu"]["n"] == 2

    def test_width_class_breakdown_present(self):
        table = JobTable.from_records(
            [rec(0, cores=1, wait=100.0), rec(1, cores=256, wait=7200.0)]
        )
        stats = wait_stats_by_partition(table)["cpu"]
        assert "median_h[1]" in stats
        assert "median_h[65-512]" in stats
        assert stats["median_h[65-512]"] > stats["median_h[1]"]


class TestRuntimeDistribution:
    def test_histograms_share_bins(self):
        table = JobTable.from_records(
            [rec(0, field="physics"), rec(1, field="biology", runtime_h=10.0)]
        )
        result = runtime_distribution_by_field(table)
        bins = result.pop("__bins__")
        for counts in result.values():
            assert counts.sum() == 1
            assert counts.size == bins.size - 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            runtime_distribution_by_field(JobTable.empty())


class TestUtilization:
    CLUSTER = ClusterConfig("t", (Partition("cpu", nodes=1, cores_per_node=10),))

    def test_exact_utilization(self):
        # One job using all 10 cores for half of a 2-hour window.
        table = JobTable.from_records([
            JobRecord(0, "u", "f", "cpu", 0.0, 0.0, 3600.0, 10, 0, JobState.COMPLETED)
        ])
        util = utilization_by_partition(table, self.CLUSTER, 7200.0)
        assert util["cpu"] == pytest.approx(0.5)

    def test_overhanging_job_clipped(self):
        table = JobTable.from_records([
            JobRecord(0, "u", "f", "cpu", 0.0, 0.0, 1e6, 10, 0, JobState.COMPLETED)
        ])
        util = utilization_by_partition(table, self.CLUSTER, 3600.0)
        assert util["cpu"] == pytest.approx(1.0)

    def test_empty_partition_zero(self):
        util = utilization_by_partition(JobTable.empty(), self.CLUSTER, 3600.0)
        assert util["cpu"] == 0.0

    def test_bad_window(self):
        with pytest.raises(ValueError):
            utilization_by_partition(JobTable.empty(), self.CLUSTER, 0.0)


class TestUserConcentration:
    def test_equal_users_low_gini(self):
        table = JobTable.from_records(
            [rec(i, user=f"u{i}", cores=10, runtime_h=1.0) for i in range(20)]
        )
        result = user_concentration(table)
        assert result["gini"] == pytest.approx(0.0, abs=1e-9)
        assert result["n_users"] == 20

    def test_dominant_user_high_gini(self):
        records = [rec(0, user="whale", cores=500, runtime_h=100.0)]
        records += [rec(i, user=f"u{i}", cores=1, runtime_h=0.1) for i in range(1, 30)]
        result = user_concentration(JobTable.from_records(records))
        assert result["gini"] > 0.9
        assert result["top10_share"] > 0.95

    def test_gpu_resource(self):
        table = JobTable.from_records(
            [rec(0, user="a", gpus=2, runtime_h=1.0), rec(1, user="b", gpus=2, runtime_h=1.0)]
        )
        result = user_concentration(table, resource="gpu")
        assert result["n_users"] == 2

    def test_unknown_resource(self):
        with pytest.raises(ValueError):
            user_concentration(JobTable.from_records([rec(0)]), resource="ram")

    def test_no_gpu_consumption(self):
        with pytest.raises(ValueError):
            user_concentration(JobTable.from_records([rec(0)]), resource="gpu")

    def test_empty_table(self):
        with pytest.raises(ValueError):
            user_concentration(JobTable.empty())
