"""Queue-order invariants for node-granular fairshare without backfill.

The ablation grid exercises ``node_granular=True`` + ``priority="fairshare"``
+ ``backfill=False`` together; these tests pin the queue discipline that
combination must honor: strict head-of-line blocking (no job overtakes the
queue head), decayed-usage ordering (light users first), and whole-node
placement for multi-node jobs.
"""

import numpy as np

from repro.cluster import (
    ClusterConfig,
    Partition,
    SubmittedJob,
    simulate_schedule,
)

ONE_NODE = ClusterConfig("one-node", (Partition("cpu", nodes=1, cores_per_node=8),))
TWO_NODES = ClusterConfig("two-nodes", (Partition("cpu", nodes=2, cores_per_node=4),))

KW = dict(node_granular=True, priority="fairshare", backfill=False)


def job(i, *, user=None, submit=0.0, cores=1, runtime=100.0, walltime=None):
    return SubmittedJob(
        job_id=i,
        user=user if user is not None else f"u{i}",
        field="physics",
        partition="cpu",
        submit=submit,
        cores=cores,
        gpus=0,
        runtime=runtime,
        requested_walltime=walltime if walltime is not None else runtime * 2,
    )


def run(jobs, cluster=ONE_NODE, **kw):
    kw.setdefault("failure_rate", 0.0)
    kw.setdefault("cancel_rate", 0.0)
    kw.setdefault("timeout_rate", 0.0)
    return simulate_schedule(jobs, cluster, rng=np.random.default_rng(0), **kw)


def starts(result):
    table = result.table
    return {int(j): float(s) for j, s in zip(table.job_id, table.start)}


class TestHeadOfLineBlocking:
    def test_small_job_cannot_overtake_blocked_head(self):
        # job0 holds 7 of 8 cores until t=100; job1 (full node) heads the
        # queue; job2 (1 core) physically fits the free core right away and
        # would backfill under EASY — but with backfill off it must not
        # overtake the blocked head.
        jobs = [
            job(0, submit=0.0, cores=7, runtime=100.0),
            job(1, submit=10.0, cores=8, runtime=50.0),
            job(2, submit=20.0, cores=1, runtime=10.0),
        ]
        result = run(jobs, **KW)
        s = starts(result)
        assert result.backfilled == 0
        assert s[1] == 100.0
        assert s[2] == 150.0  # only after the head job finished

    def test_same_stream_backfills_when_enabled(self):
        # Contrast case: with EASY on, the short job jumps the blocked head.
        jobs = [
            job(0, submit=0.0, cores=7, runtime=100.0),
            job(1, submit=10.0, cores=8, runtime=50.0),
            job(2, submit=20.0, cores=1, runtime=10.0),
        ]
        result = run(jobs, node_granular=True, priority="fairshare", backfill=True)
        s = starts(result)
        assert result.backfilled == 1
        assert s[2] == 20.0

    def test_backfill_counter_stays_zero_under_load(self):
        # A saturating stream with plenty of EASY opportunities must never
        # report a backfilled job when backfill is off.
        jobs = [
            job(i, submit=float(i), cores=8 if i % 3 == 0 else 1, runtime=30.0)
            for i in range(60)
        ]
        result = run(jobs, **KW)
        assert result.backfilled == 0
        assert len(result.table) == 60


class TestFairshareOrdering:
    def test_light_user_overtakes_heavy_user(self):
        # "heavy" is charged 800 core-seconds at t=0; when the node frees at
        # t=100 the pending queue is reordered and "light" (zero usage)
        # starts first despite submitting later.
        jobs = [
            job(0, user="heavy", submit=0.0, cores=8, runtime=100.0),
            job(1, user="heavy", submit=10.0, cores=8, runtime=10.0),
            job(2, user="light", submit=20.0, cores=8, runtime=10.0),
        ]
        result = run(jobs, **KW)
        s = starts(result)
        assert s[2] == 100.0
        assert s[1] == 110.0

    def test_fifo_tie_break_on_equal_usage(self):
        # All-distinct users with no prior usage tie at zero decayed usage,
        # so fairshare must fall back to (submit, job_id) order — the table
        # must match a plain FIFO run exactly.
        jobs = [
            job(i, submit=float(5 * i), cores=(i % 4) * 2 + 1, runtime=40.0)
            for i in range(30)
        ]
        fair = run(jobs, **KW)
        fifo = run(jobs, node_granular=True, priority="fifo", backfill=False)
        np.testing.assert_array_equal(fair.table.job_id, fifo.table.job_id)
        np.testing.assert_array_equal(fair.table.start, fifo.table.start)
        np.testing.assert_array_equal(fair.table.end, fifo.table.end)


class TestNodeGranularPlacement:
    def test_multinode_job_waits_for_whole_nodes(self):
        # One core busy on one node leaves 7 cores free across two nodes,
        # but a 2-node job needs both nodes *fully* free: it starts only
        # when the 1-core job releases its node.
        jobs = [
            job(0, submit=0.0, cores=1, runtime=50.0),
            job(1, submit=1.0, cores=8, runtime=10.0),
        ]
        result = run(jobs, cluster=TWO_NODES, **KW)
        s = starts(result)
        assert s[0] == 0.0
        assert s[1] == 50.0

    def test_pooled_counters_would_start_earlier(self):
        # Same stream under pooled allocation fragments nothing — the wide
        # job can never fit 8 cores into 7 free, so it also waits; but a
        # 7-core job shows the difference.
        jobs = [
            job(0, submit=0.0, cores=1, runtime=50.0),
            job(1, submit=1.0, cores=7, runtime=10.0),
        ]
        granular = run(jobs, cluster=TWO_NODES, **KW)
        pooled = run(
            jobs, cluster=TWO_NODES, node_granular=False, priority="fairshare", backfill=False
        )
        assert starts(granular)[1] == 50.0  # no single node has 7 free cores
        assert starts(pooled)[1] == 1.0  # pooled counters see 7 free cores
