"""Property-based scheduler invariants over random small workloads."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import (
    ClusterConfig,
    Partition,
    SubmittedJob,
    simulate_schedule,
)

TINY = ClusterConfig(
    "tiny",
    (
        Partition("cpu", nodes=2, cores_per_node=8),
        Partition("gpu", nodes=1, cores_per_node=8, gpus_per_node=2),
        Partition("serial", nodes=1, cores_per_node=4),
    ),
)

_PART_LIMITS = {"cpu": (16, 0), "gpu": (8, 2), "serial": (4, 0)}


@st.composite
def job_lists(draw):
    n = draw(st.integers(min_value=1, max_value=25))
    jobs = []
    for i in range(n):
        partition = draw(st.sampled_from(list(_PART_LIMITS)))
        max_cores, max_gpus = _PART_LIMITS[partition]
        cores = draw(st.integers(min_value=1, max_value=max_cores))
        gpus = draw(st.integers(min_value=0, max_value=max_gpus))
        runtime = draw(st.floats(min_value=1.0, max_value=5000.0))
        submit = draw(st.floats(min_value=0.0, max_value=20000.0))
        walltime_pad = draw(st.floats(min_value=1.0, max_value=3.0))
        jobs.append(
            SubmittedJob(
                job_id=i,
                user=f"u{i % 4}",
                field="physics",
                partition=partition,
                submit=submit,
                cores=cores,
                gpus=gpus,
                runtime=runtime,
                requested_walltime=runtime * walltime_pad,
            )
        )
    return jobs


def _capacity_never_exceeded(table, cluster):
    for pname in table.partitions():
        part = table.by_partition(pname)
        cap = cluster[pname].total_cores
        gcap = cluster[pname].total_gpus
        times = np.concatenate([part.start, part.end])
        deltas = np.concatenate([part.cores, -part.cores]).astype(float)
        gdeltas = np.concatenate([part.gpus, -part.gpus]).astype(float)
        # Releases sort before starts at the same instant (the simulator
        # frees completed jobs before starting new ones at an event time).
        order = np.lexsort((deltas, times))
        assert np.cumsum(deltas[order]).max() <= cap + 1e-6
        if gcap or gdeltas.any():
            assert np.cumsum(gdeltas[order]).max() <= gcap + 1e-6


@settings(max_examples=40, deadline=None)
@given(jobs=job_lists(), backfill=st.booleans(), node_granular=st.booleans())
def test_property_scheduler_invariants(jobs, backfill, node_granular):
    """All jobs complete, waits are non-negative, capacity is conserved —
    for every combination of backfill and allocation model."""
    result = simulate_schedule(
        jobs,
        TINY,
        rng=np.random.default_rng(0),
        backfill=backfill,
        node_granular=node_granular,
        failure_rate=0.0,
        cancel_rate=0.0,
        timeout_rate=0.0,
    )
    table = result.table
    assert len(table) == len(jobs)
    assert (table.wait >= -1e-9).all()
    assert (table.runtime > 0).all()
    _capacity_never_exceeded(table, TINY)


@settings(max_examples=25, deadline=None)
@given(jobs=job_lists(), priority=st.sampled_from(["fifo", "fairshare"]))
def test_property_priority_modes_complete(jobs, priority):
    result = simulate_schedule(
        jobs,
        TINY,
        rng=np.random.default_rng(1),
        priority=priority,
        failure_rate=0.0,
        cancel_rate=0.0,
        timeout_rate=0.0,
    )
    assert sorted(result.table.job_id.tolist()) == sorted(j.job_id for j in jobs)
    _capacity_never_exceeded(result.table, TINY)


@settings(max_examples=20, deadline=None)
@given(jobs=job_lists())
def test_property_no_backfill_is_fifo_per_partition(jobs):
    """Without backfill, start order within a partition never inverts
    submission order by more than ties allow."""
    result = simulate_schedule(
        jobs,
        TINY,
        rng=np.random.default_rng(2),
        backfill=False,
        failure_rate=0.0,
        cancel_rate=0.0,
        timeout_rate=0.0,
    )
    for pname in result.table.partitions():
        part = result.table.by_partition(pname)
        order_by_submit = np.lexsort((part.job_id, part.submit))
        starts_in_submit_order = part.start[order_by_submit]
        assert (np.diff(starts_in_submit_order) >= -1e-9).all()
