"""Dtype and invariant tests for the dictionary-encoded column blocks.

The columnar tentpole's contract: every :class:`Categorical` stored in a
:class:`JobTable` is *canonical* — int32 codes into a sorted category
tuple containing exactly the labels present — and that form is preserved
by every transform (filter, merge, pickle round trip). Canonical form is
what makes two value-equal tables pickle byte-identically regardless of
how they were built, which the audit subsystem's structural digests rely
on.
"""

import pickle

import numpy as np
import pytest

from repro.audit.digests import structural_digest
from repro.cluster.records import Categorical, JobRecord, JobState, JobTable


def make_records(n=12):
    users = ["u2", "u0", "u1"]
    fields = ["physics", "biology"]
    parts = ["gpu", "cpu"]
    states = [JobState.COMPLETED, JobState.FAILED, JobState.COMPLETED, JobState.TIMEOUT]
    return [
        JobRecord(
            job_id=i,
            user=users[i % len(users)],
            field=fields[i % len(fields)],
            partition=parts[i % len(parts)],
            submit=float(i),
            start=float(i) + 1.0,
            end=float(i) + 10.0,
            cores=1 + i % 4,
            gpus=i % 2,
            state=states[i % len(states)],
            req_walltime=100.0,
        )
        for i in range(n)
    ]


class TestCategoricalInvariants:
    def test_codes_dtype_and_immutability(self):
        block = Categorical.from_values(["b", "a", "b"])
        assert block.codes.dtype == np.int32
        assert not block.codes.flags.writeable
        with pytest.raises(ValueError):
            block.codes[0] = 1

    def test_codes_round_trip(self):
        values = ["gpu", "cpu", "gpu", "serial", "cpu"]
        block = Categorical.from_values(values)
        assert block.categories == ("cpu", "gpu", "serial")
        assert block.to_objects().tolist() == values
        assert [block.categories[c] for c in block.codes] == values

    def test_canonical_sorts_and_drops_unused_labels(self):
        # Unsorted table with an unreferenced label: canonical() must
        # remap to sorted present-only categories without changing values.
        raw = Categorical(np.array([2, 0, 2], dtype=np.int32), ("zeta", "unused", "alpha"))
        canon = raw.canonical()
        assert canon.categories == ("alpha", "zeta")
        assert canon.to_objects().tolist() == ["alpha", "zeta", "alpha"]
        assert canon.canonical() is canon

    def test_canonical_rejects_out_of_range_codes(self):
        with pytest.raises(ValueError, match="out of range"):
            Categorical(np.array([0, 3], dtype=np.int32), ("a", "b")).canonical()

    def test_canonical_rejects_duplicate_labels(self):
        with pytest.raises(ValueError, match="duplicate"):
            Categorical(np.array([0, 1], dtype=np.int32), ("a", "a")).canonical()

    def test_take_compacts_categories(self):
        block = Categorical.from_values(["cpu", "gpu", "serial", "gpu"])
        picked = block.take(np.array([True, True, False, True]))
        assert picked.categories == ("cpu", "gpu")
        assert picked.to_objects().tolist() == ["cpu", "gpu", "gpu"]
        # All-kept selections reuse the category table untouched.
        kept = block.take(np.arange(4))
        assert kept.categories == block.categories

    def test_take_empty_selection(self):
        block = Categorical.from_values(["a", "b"])
        empty = block.take(np.zeros(2, dtype=bool))
        assert len(empty) == 0 and empty.categories == ()

    def test_merge_unions_categories(self):
        a = Categorical.from_values(["cpu", "gpu"])
        b = Categorical.from_values(["serial", "cpu"])
        merged = Categorical.merge([a, b])
        assert merged.categories == ("cpu", "gpu", "serial")
        assert merged.to_objects().tolist() == ["cpu", "gpu", "serial", "cpu"]

    def test_lookup_helpers(self):
        block = Categorical.from_values(["cpu", "gpu", "cpu"])
        assert block.code_of("cpu") == 0
        assert block.code_of("nope") == -1
        assert block.mask_eq("cpu").tolist() == [True, False, True]
        assert block.mask_eq("nope").tolist() == [False, False, False]
        assert block.counts().tolist() == [2, 1]

    def test_pickle_round_trip_is_canonical_and_equal(self):
        block = Categorical.from_values(["b", "a", "b"])
        clone = pickle.loads(pickle.dumps(block))
        assert clone == block
        assert clone.codes.dtype == np.int32
        assert not clone.codes.flags.writeable
        assert clone.canonical() is clone


class TestJobTableColumnBlocks:
    def test_from_records_and_columnar_constructors_agree(self):
        records = make_records()
        from_records = JobTable.from_records(records)
        columnar = JobTable(
            job_id=from_records.job_id,
            user=from_records.cat("user"),
            field=from_records.cat("field"),
            partition=from_records.cat("partition"),
            submit=from_records.submit,
            start=from_records.start,
            end=from_records.end,
            cores=from_records.cores,
            gpus=from_records.gpus,
            state=from_records.cat("state"),
            req_walltime=from_records.req_walltime,
        )
        for column in ("user", "field", "partition", "state"):
            assert columnar.cat(column) == from_records.cat(column)
        assert [r for r in columnar] == records

    def test_object_properties_match_codes(self):
        table = JobTable.from_records(make_records())
        for column in ("user", "field", "partition", "state"):
            block = table.cat(column)
            objects = getattr(table, column)
            assert objects.dtype == object
            assert objects.tolist() == [block.categories[c] for c in block.codes]

    def test_factorize_reads_the_stored_block(self):
        table = JobTable.from_records(make_records())
        codes, labels = table.factorize("field")
        assert codes is table.field_codes
        assert labels == sorted(set(table.field.tolist()))

    def test_filtering_preserves_canonical_category_tables(self):
        table = JobTable.from_records(make_records())
        gpu_only = table.mask(table.partition_codes == table.cat("partition").code_of("gpu"))
        assert gpu_only.partitions() == ("gpu",)
        for column in ("user", "field", "state"):
            block = gpu_only.cat(column)
            assert block.categories == tuple(sorted(set(block.to_objects().tolist())))
            assert block.canonical() is block

    def test_state_mask_matches_object_comparison(self):
        table = JobTable.from_records(make_records())
        for state in JobState:
            np.testing.assert_array_equal(
                table.state_mask(state), table.state == state.value
            )

    def test_concat_unions_category_tables(self):
        records = make_records()
        left = JobTable.from_records(records[:6])
        right = JobTable.from_records(
            [
                JobRecord(
                    job_id=100 + i,
                    user="extra-user",
                    field="geology",
                    partition="bigmem",
                    submit=0.0,
                    start=1.0,
                    end=2.0,
                    cores=1,
                    gpus=0,
                    state=JobState.COMPLETED,
                )
                for i in range(3)
            ]
        )
        both = left.concat(right)
        assert len(both) == 9
        assert "bigmem" in both.partitions()
        assert both.user.tolist() == left.user.tolist() + right.user.tolist()


class TestPickleByteIdentity:
    def test_construction_path_does_not_change_pickled_bytes(self):
        records = make_records()
        from_records = JobTable.from_records(records)
        # A sliced table takes a completely different construction path
        # (take() compaction); rebuilt over the same rows it must pickle
        # to the same bytes as a direct from_records build.
        everything = from_records.mask(np.ones(len(from_records), dtype=bool))
        assert pickle.dumps(from_records) == pickle.dumps(everything)

    def test_pickled_tables_rehydrate_to_identical_digests(self):
        table = JobTable.from_records(make_records())
        clone = pickle.loads(pickle.dumps(table))
        assert structural_digest(clone) == structural_digest(table)
        # Touching caches (derived columns, object materializations) on
        # one copy must not perturb its digest.
        _ = clone.cpu_hours, clone.user, clone.by_partition("gpu")
        assert structural_digest(clone) == structural_digest(table)

    def test_digest_unchanged_by_filter_then_rebuild(self):
        table = JobTable.from_records(make_records())
        half = table.mask(table.job_id < 6)
        rebuilt = JobTable.from_records([table.record(i) for i in range(6)])
        assert structural_digest(half) == structural_digest(rebuilt)
        assert pickle.dumps(half) == pickle.dumps(rebuilt)
