"""Tests for what-if capacity replays."""

import math

import numpy as np
import pytest

from repro.cluster import (
    WorkloadModel,
    WorkloadParams,
    compare_what_if,
    scaled_partition,
)
from repro.cluster.partitions import ClusterConfig, DEFAULT_CLUSTER, Partition


class TestScaledPartition:
    def test_scales_nodes_only(self):
        doubled = scaled_partition(DEFAULT_CLUSTER, "gpu", 2.0)
        assert doubled["gpu"].nodes == 2 * DEFAULT_CLUSTER["gpu"].nodes
        assert doubled["gpu"].cores_per_node == DEFAULT_CLUSTER["gpu"].cores_per_node
        assert doubled["cpu"].nodes == DEFAULT_CLUSTER["cpu"].nodes
        assert "gpux2" in doubled.name

    def test_rounds_to_at_least_one_node(self):
        tiny = scaled_partition(DEFAULT_CLUSTER, "bigmem", 0.01)
        assert tiny["bigmem"].nodes == 1

    def test_validation(self):
        with pytest.raises(KeyError):
            scaled_partition(DEFAULT_CLUSTER, "quantum", 2.0)
        with pytest.raises(ValueError):
            scaled_partition(DEFAULT_CLUSTER, "gpu", 0.0)


@pytest.fixture(scope="module")
def contended_jobs():
    # Push the GPU partition hard so capacity changes matter.
    params = WorkloadParams(
        months=2, jobs_per_day=300, gpu_base_scale=3.5, gpu_growth_per_month=0.0
    )
    return WorkloadModel(params).generate(np.random.default_rng(3))


class TestCompareWhatIf:
    def test_doubling_gpu_reduces_gpu_waits(self, contended_jobs):
        outcomes = compare_what_if(
            contended_jobs,
            {
                "baseline": DEFAULT_CLUSTER,
                "gpu x2": scaled_partition(DEFAULT_CLUSTER, "gpu", 2.0),
            },
        )
        base = outcomes["baseline"]
        doubled = outcomes["gpu x2"]
        assert base.gpu_mean_wait_h > 0.05  # contention exists
        assert doubled.gpu_mean_wait_h < base.gpu_mean_wait_h * 0.5

    def test_scaling_cpu_leaves_gpu_waits_alone(self, contended_jobs):
        outcomes = compare_what_if(
            contended_jobs,
            {
                "baseline": DEFAULT_CLUSTER,
                "cpu x2": scaled_partition(DEFAULT_CLUSTER, "cpu", 2.0),
            },
        )
        assert outcomes["cpu x2"].gpu_mean_wait_h == pytest.approx(
            outcomes["baseline"].gpu_mean_wait_h, rel=1e-6
        )

    def test_same_seed_same_outcome(self, contended_jobs):
        a = compare_what_if(contended_jobs, {"b": DEFAULT_CLUSTER}, seed=1)
        b = compare_what_if(contended_jobs, {"b": DEFAULT_CLUSTER}, seed=1)
        assert a["b"] == b["b"]

    def test_no_scenarios_rejected(self, contended_jobs):
        with pytest.raises(ValueError):
            compare_what_if(contended_jobs, {})

    def test_scenario_without_gpu_jobs_gives_nan(self):
        params = WorkloadParams(months=1, jobs_per_day=20)
        jobs = [
            j
            for j in WorkloadModel(params).generate(np.random.default_rng(0))
            if j.partition != "gpu"
        ]
        outcomes = compare_what_if(jobs, {"s": DEFAULT_CLUSTER})
        assert math.isnan(outcomes["s"].gpu_mean_wait_h)
