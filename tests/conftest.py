"""Shared fixtures: one small study reused across analysis/report tests."""

import pytest

from repro.core import build_default_study


@pytest.fixture(scope="session")
def study():
    """A compact but fully-featured study (both cohorts + telemetry)."""
    return build_default_study(
        seed=20240101, n_baseline=150, n_current=180, months=4, jobs_per_day=150
    )
