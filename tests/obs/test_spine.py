"""The cross-process trace/metrics spine: segments, merge, determinism.

Covers the tentpole's acceptance shape: a 4-worker fleet with one
externally joined ``repro worker`` produces ONE merged Perfetto timeline
containing spans from every worker pid, and the *normalized* exports and
registry renderings stay byte-identical across repeated runs and across
executor modes.
"""

import json
import subprocess
import sys
import threading
import time
from pathlib import Path

from repro.core.trace import Tracer
from repro.obs.registry import MetricsRegistry, registry_from_metrics
from repro.obs.spine import WorkerObs, load_segments, merge_segments, obs_dir

# Import the dist fixtures by their *package* path: the run spec pickles
# this suite's step functions, and an externally joined `repro worker`
# interpreter must be able to resolve their __module__.
sys.path.insert(0, str(Path(__file__).resolve().parents[2]))
from tests.dist.conftest import (  # noqa: E402
    FAST,
    assert_no_residue,
    make_pipeline,
)

#: FAST, minus the aggressive lease/heartbeat timings: spine tests assert
#: exact task counts, so a slow CI box must not trigger spurious
#: reassignments (each of which re-executes a task on another worker).
CALM = dict(
    FAST, lease_ttl=5.0, heartbeat_interval=0.05, poll_interval=0.005
)


class TestWorkerObs:
    def test_flush_writes_cumulative_segment(self, tmp_path):
        obs_dir(tmp_path).mkdir()
        obs = WorkerObs(tmp_path, "w0")
        obs.record_task("gen", 1, "ok", 1, 10.0, 10.5)
        assert obs.flush()
        obs.record_task("double", 1, "retried", 2, 10.5, 11.0)
        assert obs.flush()
        segments = load_segments(tmp_path)
        assert len(segments) == 1
        seg = segments[0]
        assert seg["worker"] == "w0"
        assert seg["pid"] > 0
        names = [s["name"] for s in seg["spans"]]
        assert names == ["task:gen", "task:double", "worker:w0"]
        reg = MetricsRegistry.from_snapshot(seg["registry"])
        assert reg.value("repro_steps_total", outcome="ok") == 1
        assert reg.value("repro_steps_total", outcome="retried") == 1
        assert reg.histogram_count("repro_step_wall_seconds") == 2

    def test_flush_fails_open_when_run_dir_gone(self, tmp_path):
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        obs_dir(run_dir).mkdir()
        obs = WorkerObs(run_dir, "w0")
        import shutil

        shutil.rmtree(run_dir)
        assert not obs.flush()  # degraded, never raised
        assert not run_dir.exists()  # and never resurrected the run dir

    def test_torn_segment_skipped(self, tmp_path):
        obs_dir(tmp_path).mkdir()
        obs = WorkerObs(tmp_path, "w0")
        obs.flush()
        (obs_dir(tmp_path) / "w1.segment.json").write_text("{torn", encoding="utf-8")
        segments = load_segments(tmp_path)
        assert [s["worker"] for s in segments] == ["w0"]


class TestMergeSegments:
    def test_spans_land_on_worker_lanes_with_pids(self, tmp_path):
        obs_dir(tmp_path).mkdir()
        tracer = Tracer()
        for wid, step in (("w0", "gen"), ("w1", "double")):
            obs = WorkerObs(tmp_path, wid)
            obs.record_task(step, 1, "ok", 1, tracer.epoch + 0.1, tracer.epoch + 0.2)
            obs.flush()
        stats = merge_segments(tmp_path, tracer=tracer)
        assert set(stats["workers"]) == {"w0", "w1"}
        raw = tracer.to_perfetto()
        lanes = {
            e["tid"]: e["args"]["worker_pid"]
            for e in raw["traceEvents"]
            if e.get("cat") == "wtask"
        }
        assert set(lanes) == {"dist:w0", "dist:w1"}
        assert all(pid > 0 for pid in lanes.values())
        merged = MetricsRegistry.from_snapshot(stats["registry"])
        assert merged.value("repro_steps_total", outcome="ok") == 2

    def test_skewed_clock_clamped_to_run_start(self, tmp_path):
        obs_dir(tmp_path).mkdir()
        tracer = Tracer()
        obs = WorkerObs(tmp_path, "w0")
        obs.record_task("gen", 1, "ok", 1, tracer.epoch - 100.0, tracer.epoch - 99.0)
        obs.flush()
        merge_segments(tmp_path, tracer=tracer)
        span = next(s for s in tracer.spans if s.cat == "wtask")
        assert span.start >= 0.0
        assert span.end >= span.start

    def test_merge_without_tracer_still_folds_registry(self, tmp_path):
        obs_dir(tmp_path).mkdir()
        obs = WorkerObs(tmp_path, "w0")
        obs.record_task("gen", 1, "ok", 1, 1.0, 2.0)
        obs.flush()
        stats = merge_segments(tmp_path)
        assert stats["workers"]["w0"] > 0
        reg = MetricsRegistry.from_snapshot(stats["registry"])
        assert reg.value("repro_steps_total", outcome="ok") == 1


class TestFleetSpine:
    def _run(self, tmp_path, name):
        tracer = Tracer()
        pipeline = make_pipeline(tmp_path / name)
        pipeline.run(executor="dist", backend_options=dict(CALM), trace=tracer)
        return tracer, pipeline.last_metrics

    def test_backend_stats_carries_fleet_registry(self, tmp_path):
        _, metrics = self._run(tmp_path, "a")
        stats = metrics.backend_stats
        assert set(stats["worker_pids"]) == {"w0", "w1", "w2", "w3"}
        reg = MetricsRegistry.from_snapshot(stats["registry"])
        # 4 steps ran exactly once, fleet-wide (CALM timings: no
        # spurious reassignment duplicating work).
        assert reg.value("repro_steps_total", outcome="ok") == 4
        assert reg.histogram_count("repro_step_wall_seconds") == 4
        assert_no_residue(tmp_path / "a")

    def test_every_worker_pid_in_merged_timeline(self, tmp_path):
        tracer, metrics = self._run(tmp_path, "a")
        raw = tracer.to_perfetto()
        lifecycle_pids = {
            e["args"]["worker_pid"]
            for e in raw["traceEvents"]
            if e.get("cat") == "worker"
        }
        # Even a worker that never won an assignment shows up via its
        # lifecycle span, carrying its real pid.
        assert lifecycle_pids == set(metrics.backend_stats["worker_pids"].values())
        assert len(lifecycle_pids) == 4

    def test_registry_render_excluded_from_metrics_render(self, tmp_path):
        _, metrics = self._run(tmp_path, "a")
        text = metrics.render()
        assert "registry" not in text
        assert "worker_pids" not in text

    def test_normalized_export_deterministic_across_runs(self, tmp_path):
        a, _ = self._run(tmp_path, "a")
        b, _ = self._run(tmp_path, "b")
        assert json.dumps(a.to_perfetto(normalize=True), sort_keys=True) == json.dumps(
            b.to_perfetto(normalize=True), sort_keys=True
        )

    def test_normalized_export_drops_spine_spans(self, tmp_path):
        tracer, _ = self._run(tmp_path, "a")
        cats = {e.get("cat") for e in tracer.to_perfetto(normalize=True)["traceEvents"]}
        assert "wtask" not in cats
        assert "worker" not in cats


class TestCrossExecutorDeterminism:
    def test_normalized_registry_rendering_identical_across_modes(self, tmp_path):
        """The PR-5 promise extended to the registry: sequential, thread,
        process, and dist runs of the same DAG produce byte-identical
        *normalized* registry renderings."""
        renderings = {}
        for mode in ("sequential", "thread", "process", "dist"):
            pipeline = make_pipeline(tmp_path / mode)
            if mode == "dist":
                pipeline.run(executor="dist", backend_options=dict(CALM))
                snap = pipeline.last_metrics.backend_stats["registry"]
                registry = MetricsRegistry.from_snapshot(snap)
            else:
                pipeline.run(executor=mode, max_workers=2)
                registry = registry_from_metrics(pipeline.last_metrics)
            renderings[mode] = registry.to_text(normalize=True)
        assert len(set(renderings.values())) == 1, renderings


class TestExternalJoinAcceptance:
    def test_external_worker_spans_in_single_merged_export(self, tmp_path):
        """The acceptance run: 4 workers, three forked by the test, one
        joined via the ``repro worker`` CLI — one merged Perfetto export
        with spans from every worker pid."""
        import multiprocessing

        from repro.dist.worker import worker_main

        opts = dict(CALM)
        opts.update(workers=4, spawn_workers=False, lease_ttl=10.0)
        tracer = Tracer()
        pipeline = make_pipeline(tmp_path / "fleet")
        box = {}

        def coordinate():
            try:
                box["results"] = pipeline.run(
                    executor="dist", backend_options=opts, trace=tracer
                )
            except BaseException as exc:
                box["error"] = exc

        thread = threading.Thread(target=coordinate)
        thread.start()
        procs = []
        try:
            dist_root = tmp_path / "fleet" / "cache" / ".dist"
            deadline = time.monotonic() + 10.0
            run_dir = None
            while time.monotonic() < deadline:
                run_dirs = list(dist_root.glob("*")) if dist_root.exists() else []
                if run_dirs:
                    run_dir = run_dirs[0]
                    break
                time.sleep(0.02)
            assert run_dir is not None, "coordinator never published a run dir"

            # External worker first: it pays interpreter startup, and the
            # tiny DAG must not drain (ending the run and sweeping the
            # run dir) before it has even joined. Its initial spine flush
            # doubles as the join signal.
            external = subprocess.Popen(
                [
                    sys.executable, "-m", "repro.cli", "worker",
                    "--dir", str(run_dir),
                    "--id", "w3",
                    "--join-timeout", "10",
                ],
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
                cwd=str(tmp_path),
                env=_pythonpath_env(),
            )
            segment = run_dir / "obs" / "w3.segment.json"
            deadline = time.monotonic() + 15.0
            while time.monotonic() < deadline and not segment.exists():
                time.sleep(0.02)
            assert segment.exists(), "external worker never flushed its segment"

            ctx = multiprocessing.get_context("fork")
            for wid in ("w0", "w1", "w2"):
                proc = ctx.Process(
                    target=worker_main, args=(str(run_dir), wid), daemon=True
                )
                proc.start()
                procs.append(proc)
            _, external_err = external.communicate(timeout=60)
            assert external.returncode == 0, external_err
        finally:
            thread.join(timeout=60)
            for proc in procs:
                proc.join(timeout=10)
        assert not thread.is_alive(), "coordinator hung"
        assert "error" not in box, box.get("error")

        stats = pipeline.last_metrics.backend_stats
        pids = stats["worker_pids"]
        assert set(pids) == {"w0", "w1", "w2", "w3"}
        raw = tracer.to_perfetto()
        lifecycle_pids = {
            e["args"]["worker_pid"]
            for e in raw["traceEvents"]
            if e.get("cat") == "worker"
        }
        assert lifecycle_pids == set(pids.values())
        assert len(lifecycle_pids) == 4  # four distinct real processes
        # The externally joined worker is a distinct pid from the forked
        # three (it came from a whole separate interpreter).
        reg = MetricsRegistry.from_snapshot(stats["registry"])
        assert reg.value("repro_steps_total", outcome="ok") == 4
        assert_no_residue(tmp_path / "fleet")


def _pythonpath_env():
    import os

    env = dict(os.environ)
    repo = Path(__file__).resolve().parents[2]
    extra = [str(repo / "src"), str(repo)]
    if env.get("PYTHONPATH"):
        extra.append(env["PYTHONPATH"])
    env["PYTHONPATH"] = os.pathsep.join(extra)
    return env
