"""Shared fixtures for the observability suite."""

import io

import pytest

from repro.cluster import write_sacct
from repro.core import build_default_study
from repro.io import write_responses_jsonl


@pytest.fixture(scope="session")
def study_lines():
    """(response JSONL lines, sacct export lines incl. header) for a tiny study."""
    study = build_default_study(
        seed=7, n_baseline=10, n_current=10, months=1, jobs_per_day=2.0
    )
    buf = io.StringIO()
    write_responses_jsonl(study.responses, buf)
    responses = buf.getvalue().splitlines()
    buf = io.StringIO()
    write_sacct(study.telemetry, buf)
    sacct = buf.getvalue().splitlines()
    return responses, sacct
