"""The mergeable metrics registry + the shared Prometheus writer/validator.

The registry's contract is the tentpole's foundation: snapshots are pure
data, merge is associative and commutative, and the *normalized* text
rendering is byte-deterministic across executor modes — so merging
per-worker snapshots in any order must yield byte-identical renderings.
"""

import math
import random

import pytest

from repro.core.trace import Tracer
from repro.obs.promfmt import PromWriter, escape_label, validate_prometheus
from repro.obs.registry import (
    MetricsRegistry,
    merge_snapshots,
    registry_from_metrics,
)


class TestCounters:
    def test_accumulates_per_label_set(self):
        reg = MetricsRegistry()
        reg.inc("repro_steps_total", outcome="ok")
        reg.inc("repro_steps_total", 2, outcome="ok")
        reg.inc("repro_steps_total", outcome="failed")
        assert reg.value("repro_steps_total", outcome="ok") == 3
        assert reg.value("repro_steps_total", outcome="failed") == 1
        assert reg.value("repro_steps_total", outcome="never") == 0

    def test_negative_increment_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match=">= 0"):
            reg.inc("repro_steps_total", -1)

    def test_gauge_overwrites(self):
        reg = MetricsRegistry()
        reg.set_gauge("repro_queue_depth", 5)
        reg.set_gauge("repro_queue_depth", 2)
        assert reg.value("repro_queue_depth") == 2


class TestHistograms:
    def test_percentiles_within_bucket_tolerance(self):
        reg = MetricsRegistry()
        values = [0.001 * i for i in range(1, 101)]  # 1ms .. 100ms
        for v in values:
            reg.observe("repro_request_seconds", v)
        # Log buckets at base 2**0.125 are ~9% wide; the rank-selected
        # upper bound must bracket the exact percentile from above.
        for q in (50, 95, 99):
            exact = values[math.ceil(q / 100 * len(values)) - 1]
            got = reg.percentile("repro_request_seconds", q)
            assert exact <= got <= exact * 2 ** 0.125 * 1.001

    def test_percentile_clamped_to_observed_max(self):
        reg = MetricsRegistry()
        reg.observe("repro_request_seconds", 0.5)
        assert reg.percentile("repro_request_seconds", 99) == 0.5

    def test_percentile_none_when_empty(self):
        reg = MetricsRegistry()
        assert reg.percentile("repro_request_seconds", 99) is None
        assert reg.percentiles("repro_request_seconds") == {
            "p50": None,
            "p95": None,
            "p99": None,
        }

    def test_count_and_merge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.observe("repro_step_wall_seconds", 0.01)
        b.observe("repro_step_wall_seconds", 5.0)
        b.observe("repro_step_wall_seconds", 0.02)
        a.merge(b)
        assert a.histogram_count("repro_step_wall_seconds") == 3
        assert a.percentile("repro_step_wall_seconds", 99) == 5.0


def _worker_snapshots(n=6):
    """Per-worker snapshots shaped like real spine segments."""
    snapshots = []
    for i in range(n):
        reg = MetricsRegistry()
        for j in range(i + 1):
            reg.inc("repro_steps_total", outcome="ok" if j % 2 else "retried")
            reg.observe("repro_step_wall_seconds", 0.001 * (i + 1) * (j + 1))
        reg.set_gauge("repro_worker_up", 1000 + i, worker=f"w{i}")
        reg.set_gauge("repro_worker_tasks", i + 1, worker=f"w{i}")
        snapshots.append(reg.snapshot())
    return snapshots


class TestMergeDeterminism:
    def test_merge_semantics(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("repro_steps_total", 2, outcome="ok")
        b.inc("repro_steps_total", 3, outcome="ok")
        a.set_gauge("repro_queue_depth", 1)
        b.set_gauge("repro_queue_depth", 4)
        a.merge(b.snapshot())
        assert a.value("repro_steps_total", outcome="ok") == 5  # counters add
        assert a.value("repro_queue_depth") == 4  # gauges take the max

    def test_any_merge_order_yields_byte_identical_renderings(self):
        """The property the coordinator relies on: per-worker snapshots
        merged in any order produce byte-identical text, raw and
        normalized both."""
        snapshots = _worker_snapshots()
        reference = MetricsRegistry.from_snapshot(merge_snapshots(snapshots))
        ref_raw = reference.to_text()
        ref_norm = reference.to_text(normalize=True)
        rng = random.Random(7)
        for _ in range(10):
            shuffled = list(snapshots)
            rng.shuffle(shuffled)
            merged = MetricsRegistry.from_snapshot(merge_snapshots(shuffled))
            assert merged.to_text() == ref_raw
            assert merged.to_text(normalize=True) == ref_norm

    def test_merge_is_associative(self):
        s = _worker_snapshots(3)
        left = MetricsRegistry.from_snapshot(s[0])
        left.merge(s[1])
        left.merge(s[2])
        inner = MetricsRegistry.from_snapshot(s[1])
        inner.merge(s[2])
        right = MetricsRegistry.from_snapshot(s[0])
        right.merge(inner)
        assert left.to_text() == right.to_text()

    def test_snapshot_round_trips(self):
        reg = MetricsRegistry.from_snapshot(merge_snapshots(_worker_snapshots()))
        clone = MetricsRegistry.from_snapshot(reg.snapshot())
        assert clone.to_text() == reg.to_text()
        assert clone.snapshot() == reg.snapshot()


class TestNormalizedRendering:
    def test_gauges_dropped_histograms_count_only(self):
        reg = MetricsRegistry()
        reg.set_gauge("repro_worker_up", 4242, worker="w0")
        reg.observe("repro_step_wall_seconds", 0.123)
        reg.inc("repro_steps_total", outcome="ok")
        norm = reg.to_text(normalize=True)
        assert "repro_worker_up" not in norm  # per-run identity dropped
        assert "4242" not in norm
        assert "repro_step_wall_seconds_count 1" in norm
        assert "repro_step_wall_seconds_bucket" not in norm  # timing dropped
        assert 'repro_steps_total{outcome="ok"} 1' in norm

    def test_raw_rendering_keeps_everything(self):
        reg = MetricsRegistry()
        reg.set_gauge("repro_worker_up", 4242, worker="w0")
        reg.observe("repro_step_wall_seconds", 0.123)
        raw = reg.to_text()
        assert 'repro_worker_up{worker="w0"} 4242' in raw
        assert 'le="+Inf"' in raw
        assert "repro_step_wall_seconds_sum" in raw


class TestRegistryFromMetrics:
    def test_builds_cross_mode_families(self):
        from repro.core.pipeline import ArtifactCache, Pipeline, PipelineStep

        def gen(inputs):
            return [1, 2, 3]

        def double(inputs):
            return [x * 2 for x in inputs["gen"]]

        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            pipe = Pipeline(
                [
                    PipelineStep("gen", gen),
                    PipelineStep("double", double, depends_on=("gen",)),
                ],
                ArtifactCache(tmp),
            )
            pipe.run()
            reg = registry_from_metrics(pipe.last_metrics)
        assert reg.value("repro_steps_total", outcome="ok") == 2
        assert reg.histogram_count("repro_step_wall_seconds") == 2


class TestPrometheusFormat:
    def test_registry_text_passes_shared_validator(self):
        reg = MetricsRegistry.from_snapshot(merge_snapshots(_worker_snapshots()))
        assert validate_prometheus(reg.to_text()) == []
        assert validate_prometheus(reg.to_text(normalize=True)) == []

    def test_tracer_exposition_passes_shared_validator(self):
        tracer = Tracer()
        tracer.instant("cache.miss", "cache", step="gen")
        tracer.add_span("step:gen", "step", 0.0, 0.01, step="gen", wall=0.01)
        assert validate_prometheus(tracer.to_prometheus()) == []

    def test_help_and_type_lines_emitted(self):
        reg = MetricsRegistry()
        reg.inc("repro_steps_total", outcome="ok")
        text = reg.to_text()
        lines = text.splitlines()
        assert "# HELP repro_steps_total Steps executed, by outcome." in lines
        assert "# TYPE repro_steps_total counter" in lines
        assert lines.index(
            "# HELP repro_steps_total Steps executed, by outcome."
        ) < lines.index("# TYPE repro_steps_total counter")

    def test_tracer_emits_help_lines(self):
        tracer = Tracer()
        tracer.instant("cache.miss", "cache")
        text = tracer.to_prometheus()
        assert "# HELP repro_events_total" in text
        assert text.endswith("\n")

    def test_label_escaping_round_trips(self):
        reg = MetricsRegistry()
        reg.inc("repro_events_total", event='quo"te\\slash\nnewline')
        text = reg.to_text()
        assert '\\"' in text and "\\\\" in text and "\\n" in text
        assert "\nnewline" not in text  # the newline never lands literally
        assert validate_prometheus(text) == []

    def test_escape_label(self):
        assert escape_label('a"b') == 'a\\"b'
        assert escape_label("a\\b") == "a\\\\b"
        assert escape_label("a\nb") == "a\\nb"

    def test_validator_flags_malformed_text(self):
        assert validate_prometheus("repro_x 1") != []  # missing newline
        problems = validate_prometheus(
            "# TYPE repro_x counter\n# HELP repro_x late\nrepro_x 1\n"
        )
        assert any("HELP" in p for p in problems)
        assert validate_prometheus("# TYPE repro_x zigzag\nrepro_x 1\n") != []
        # Both of our writers always declare TYPE; bare samples are flagged.
        assert any("no TYPE" in p for p in validate_prometheus("repro_x 1\n"))
        assert any(
            "negative counter" in p
            for p in validate_prometheus(
                "# HELP repro_x x\n# TYPE repro_x counter\nrepro_x -3\n"
            )
        )

    def test_writer_validator_round_trip(self):
        w = PromWriter()
        w.family("repro_demo_total", "counter", "A demo.")
        w.sample("repro_demo_total", {"step": 'we"ird\\'}, "3")
        assert validate_prometheus(w.render()) == []
