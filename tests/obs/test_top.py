"""``repro top``: the disk-state dashboard and its CLI round-trip."""

import io
import json

from repro.cli import main
from repro.dist.heartbeats import HeartbeatWriter
from repro.obs.spine import WorkerObs, obs_dir
from repro.obs.top import latest_run_dir, render_top
from repro.serve import ServeConfig, StudyService


def make_service(root, lines, **config):
    config.setdefault("months", 1)
    config.setdefault("experiments", ("X1",))
    svc = StudyService(root, ServeConfig(**config))
    responses, sacct = lines
    svc.ingest("responses", responses, batch="r0")
    svc.ingest("sacct", sacct, batch="s0")
    return svc


class TestRenderTop:
    def test_nothing_to_watch(self):
        frame = render_top()
        assert "nothing to watch" in frame
        assert frame.endswith("\n")

    def test_serve_section_without_status(self, tmp_path):
        frame = render_top(serve_root=tmp_path)
        assert "== serve:" in frame
        assert "no status.json" in frame

    def test_serve_section_full(self, tmp_path, study_lines):
        (tmp_path / "slo.json").write_text(
            json.dumps({"p99_latency_seconds": 60.0})
        )
        svc = make_service(tmp_path, study_lines)
        svc.refresh()
        for _ in range(3):
            svc.request("X1")
        svc._write_status()
        svc.close()
        frame = render_top(serve_root=tmp_path)
        assert "mode serving" in frame
        assert "admission: waiting 0" in frame
        assert "breaker open: none" in frame
        # The latency line comes from the metrics ring, out of process.
        assert "latency: p50" in frame and "(n=3)" in frame
        assert "slo: ok" in frame

    def test_serve_section_slo_none_declared(self, tmp_path, study_lines):
        svc = make_service(tmp_path, study_lines)
        svc.refresh()
        svc._write_status()
        svc.close()
        assert "slo: none declared" in render_top(serve_root=tmp_path)

    def test_fleet_section_from_disk_state(self, tmp_path):
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        obs_dir(run_dir).mkdir()
        hb = HeartbeatWriter(run_dir / "heartbeats" / "w0.hb", interval=60.0)
        hb.beat()
        hb.stop()
        obs = WorkerObs(run_dir, "w0")
        obs.record_task("gen", 1, "ok", 1, 10.0, 10.5)
        obs.flush()
        frame = render_top(dist_dir=run_dir)
        assert "== fleet:" in frame
        assert "w0 pid" in frame
        assert "assignments: none" in frame
        assert "spine: w0 1 task(s)" in frame
        assert "step wall: p50" in frame and "(n=1)" in frame

    def test_fleet_section_swept_run_dir(self, tmp_path):
        frame = render_top(dist_dir=tmp_path / "gone")
        assert "run dir gone" in frame


class TestLatestRunDir:
    def test_none_without_runs(self, tmp_path):
        assert latest_run_dir(tmp_path) is None
        (tmp_path / ".dist").mkdir()
        assert latest_run_dir(tmp_path) is None

    def test_picks_most_recent(self, tmp_path):
        import os

        dist = tmp_path / ".dist"
        for name, age in (("older", 100.0), ("newer", 0.0)):
            d = dist / name
            d.mkdir(parents=True)
            import time

            stamp = time.time() - age
            os.utime(d, (stamp, stamp))
        assert latest_run_dir(tmp_path).name == "newer"


class TestTopCLI:
    def test_once_round_trip(self, tmp_path, study_lines):
        svc = make_service(tmp_path, study_lines)
        svc.refresh()
        svc._write_status()
        svc.close()
        out = io.StringIO()
        code = main(["top", "--once", "--root", str(tmp_path)], out=out)
        assert code == 0
        assert "repro top —" in out.getvalue()
        assert "mode serving" in out.getvalue()

    def test_cache_root_without_runs_is_usage_error(self, tmp_path):
        out = io.StringIO()
        code = main(
            ["top", "--once", "--cache-root", str(tmp_path)], out=out
        )
        assert code == 2
        assert "no .dist run dirs" in out.getvalue()

    def test_cache_root_resolves_latest_run(self, tmp_path):
        run_dir = tmp_path / ".dist" / "r1"
        run_dir.mkdir(parents=True)
        obs_dir(run_dir).mkdir()
        obs = WorkerObs(run_dir, "w0")
        obs.flush()
        out = io.StringIO()
        code = main(["top", "--once", "--cache-root", str(tmp_path)], out=out)
        assert code == 0
        assert "== fleet:" in out.getvalue()
        assert "spine: w0 0 task(s)" in out.getvalue()
