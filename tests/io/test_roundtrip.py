"""Round-trip and error tests for response serialization."""

import io

import numpy as np
import pytest

from repro.core import build_instrument, profile_2024
from repro.io import (
    ResponseIOError,
    read_responses_csv,
    read_responses_jsonl,
    write_responses_csv,
    write_responses_jsonl,
)
from repro.survey import Response, ResponseSet
from repro.synth import generate_cohort


@pytest.fixture(scope="module")
def questionnaire():
    return build_instrument()


@pytest.fixture(scope="module")
def responses(questionnaire):
    return generate_cohort(profile_2024(), questionnaire, 60, np.random.default_rng(21))


def answers_normalized(response_set):
    """Answers with multi-selects sorted, for order-insensitive comparison."""
    out = []
    for r in response_set:
        answers = {}
        for k, v in r.answers.items():
            answers[k] = sorted(v) if isinstance(v, list) else v
        out.append((r.respondent_id, r.cohort, answers))
    return out


class TestJsonlRoundTrip:
    def test_buffer_round_trip(self, questionnaire, responses):
        buf = io.StringIO()
        write_responses_jsonl(responses, buf)
        parsed = read_responses_jsonl(questionnaire, buf.getvalue())
        assert answers_normalized(parsed) == answers_normalized(responses)

    def test_file_round_trip(self, questionnaire, responses, tmp_path):
        path = tmp_path / "responses.jsonl"
        write_responses_jsonl(responses, path)
        parsed = read_responses_jsonl(questionnaire, path)
        assert len(parsed) == len(responses)

    def test_empty_set(self, questionnaire):
        buf = io.StringIO()
        write_responses_jsonl(ResponseSet(questionnaire, []), buf)
        parsed = read_responses_jsonl(questionnaire, io.StringIO(buf.getvalue()))
        assert len(parsed) == 0

    def test_numeric_types_preserved(self, questionnaire):
        rs = ResponseSet(
            questionnaire,
            [Response("r1", "2024", {"years_programming": 7, "expertise": 4})],
        )
        buf = io.StringIO()
        write_responses_jsonl(rs, buf)
        back = read_responses_jsonl(questionnaire, buf.getvalue())
        assert back[0].get("years_programming") == 7
        assert back[0].get("expertise") == 4


class TestJsonlErrors:
    def test_invalid_json(self, questionnaire):
        with pytest.raises(ResponseIOError, match="line 1"):
            read_responses_jsonl(questionnaire, io.StringIO("{not json}\n"))

    def test_missing_fields(self, questionnaire):
        with pytest.raises(ResponseIOError, match="respondent_id"):
            read_responses_jsonl(questionnaire, io.StringIO('{"cohort": "x", "answers": {}}\n'))

    def test_unknown_key(self, questionnaire):
        line = '{"respondent_id": "r", "cohort": "c", "answers": {"nope": "x"}}\n'
        with pytest.raises(ResponseIOError, match="nope"):
            read_responses_jsonl(questionnaire, io.StringIO(line))

    def test_wrong_type_for_multiselect(self, questionnaire):
        line = '{"respondent_id": "r", "cohort": "c", "answers": {"languages": "python"}}\n'
        with pytest.raises(ResponseIOError, match="languages"):
            read_responses_jsonl(questionnaire, io.StringIO(line))

    def test_wrong_type_for_likert(self, questionnaire):
        line = '{"respondent_id": "r", "cohort": "c", "answers": {"expertise": "high"}}\n'
        with pytest.raises(ResponseIOError):
            read_responses_jsonl(questionnaire, io.StringIO(line))

    def test_non_object_line(self, questionnaire):
        with pytest.raises(ResponseIOError):
            read_responses_jsonl(questionnaire, io.StringIO("[1, 2]\n"))


class TestCsvRoundTrip:
    def test_buffer_round_trip(self, questionnaire, responses):
        buf = io.StringIO()
        write_responses_csv(responses, buf)
        parsed = read_responses_csv(questionnaire, buf.getvalue())
        # CSV cannot represent an empty-list answer distinct from missing,
        # and the generator never produces empty multi-selects, so the
        # round trip is exact here.
        assert answers_normalized(parsed) == answers_normalized(responses)

    def test_file_round_trip(self, questionnaire, responses, tmp_path):
        path = tmp_path / "responses.csv"
        write_responses_csv(responses, path)
        parsed = read_responses_csv(questionnaire, path)
        assert len(parsed) == len(responses)

    def test_missing_cells_stay_missing(self, questionnaire):
        rs = ResponseSet(questionnaire, [Response("r1", "2024", {"field": "physics"})])
        buf = io.StringIO()
        write_responses_csv(rs, buf)
        back = read_responses_csv(questionnaire, buf.getvalue())
        assert back[0].answered("field")
        assert not back[0].answered("languages")

    def test_numeric_coercion(self, questionnaire):
        rs = ResponseSet(
            questionnaire,
            [Response("r1", "2024", {"years_programming": 12, "expertise": 3})],
        )
        buf = io.StringIO()
        write_responses_csv(rs, buf)
        back = read_responses_csv(questionnaire, buf.getvalue())
        assert back[0].get("years_programming") == 12
        assert back[0].get("expertise") == 3


class TestCsvErrors:
    def test_empty_input(self, questionnaire):
        with pytest.raises(ResponseIOError):
            read_responses_csv(questionnaire, io.StringIO(""))

    def test_header_mismatch(self, questionnaire):
        with pytest.raises(ResponseIOError, match="header"):
            read_responses_csv(questionnaire, io.StringIO("a,b,c\n1,2,3\n"))

    def test_cell_count_mismatch(self, questionnaire):
        buf = io.StringIO()
        write_responses_csv(ResponseSet(questionnaire, []), buf)
        bad = buf.getvalue() + "r1,2024\n"
        with pytest.raises(ResponseIOError, match="row 2"):
            read_responses_csv(questionnaire, bad)

    def test_bad_likert_cell(self, questionnaire):
        buf = io.StringIO()
        write_responses_csv(
            ResponseSet(questionnaire, [Response("r1", "2024", {"expertise": 3})]), buf
        )
        corrupted = buf.getvalue().replace(",3,", ",three,")
        with pytest.raises(ResponseIOError):
            read_responses_csv(questionnaire, corrupted)


from hypothesis import given, settings, strategies as st


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000), n=st.integers(min_value=1, max_value=25))
def test_property_jsonl_roundtrip_any_seed(seed, n):
    """Any generated response set survives a JSONL round trip exactly."""
    import numpy as np

    questionnaire = build_instrument()
    rs = generate_cohort(profile_2024(), questionnaire, n, np.random.default_rng(seed))
    buf = io.StringIO()
    write_responses_jsonl(rs, buf)
    parsed = read_responses_jsonl(questionnaire, buf.getvalue())
    assert answers_normalized(parsed) == answers_normalized(rs)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000), n=st.integers(min_value=1, max_value=25))
def test_property_csv_roundtrip_any_seed(seed, n):
    """Any generated response set survives a CSV round trip exactly."""
    import numpy as np

    questionnaire = build_instrument()
    rs = generate_cohort(profile_2024(), questionnaire, n, np.random.default_rng(seed))
    buf = io.StringIO()
    write_responses_csv(rs, buf)
    parsed = read_responses_csv(questionnaire, buf.getvalue())
    assert answers_normalized(parsed) == answers_normalized(rs)
