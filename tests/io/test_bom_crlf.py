"""Windows-origin encoding noise: UTF-8 BOM and CRLF line endings.

Both operational readers must treat a leading BOM and ``\\r\\n`` endings as
encoding noise — parsed through cleanly, never surfaced as a
:class:`~repro.io.errors.SkippedRow` even in tolerant mode.
"""

import io

import numpy as np
import pytest

from repro.cluster import parse_sacct
from repro.cluster.sacct import _HEADER
from repro.core import build_instrument, profile_2024
from repro.io import SkippedRow, read_responses_jsonl, write_responses_jsonl
from repro.synth import generate_cohort

BOM = "\ufeff"


@pytest.fixture(scope="module")
def questionnaire():
    return build_instrument()


@pytest.fixture(scope="module")
def responses(questionnaire):
    return generate_cohort(profile_2024(), questionnaire, 40, np.random.default_rng(7))


def respondent_ids(response_set):
    return [r.respondent_id for r in response_set]


def windowsify(text: str) -> str:
    """Re-encode clean output the way a Windows tool would have written it."""
    return BOM + text.replace("\n", "\r\n")


class TestJsonlBomCrlf:
    def jsonl_text(self, responses) -> str:
        buffer = io.StringIO()
        write_responses_jsonl(responses, buffer)
        return buffer.getvalue()

    @pytest.mark.parametrize("mode", ["raise", "skip"])
    def test_bom_and_crlf_parse_cleanly(self, questionnaire, responses, mode):
        dirty = windowsify(self.jsonl_text(responses))
        skipped: list[SkippedRow] = []
        rs = read_responses_jsonl(
            questionnaire, dirty, on_bad_rows=mode, skipped=skipped
        )
        assert respondent_ids(rs) == respondent_ids(responses)
        assert skipped == []  # encoding noise is not a skippable row

    def test_bom_only_file(self, questionnaire, responses, tmp_path):
        path = tmp_path / "responses.jsonl"
        path.write_text(BOM + self.jsonl_text(responses), encoding="utf-8")
        rs = read_responses_jsonl(questionnaire, path)
        assert respondent_ids(rs) == respondent_ids(responses)

    def test_bom_before_single_object_literal(self, questionnaire):
        # The literal-vs-path sniffer must see through the BOM too.
        literal = BOM + '{"respondent_id": "r1", "cohort": "2024", "answers": {}}'
        rs = read_responses_jsonl(questionnaire, literal)
        assert respondent_ids(rs) == ["r1"]

    def test_crlf_with_real_bad_row_counts_only_the_bad_row(
        self, questionnaire, responses
    ):
        lines = self.jsonl_text(responses).splitlines()
        lines.insert(1, "not json at all")
        dirty = windowsify("\n".join(lines) + "\n")
        skipped: list[SkippedRow] = []
        rs = read_responses_jsonl(
            questionnaire, dirty, on_bad_rows="skip", skipped=skipped
        )
        assert respondent_ids(rs) == respondent_ids(responses)
        assert [s.lineno for s in skipped] == [2]


class TestSacctBomCrlf:
    def sacct_text(self) -> str:
        rows = [
            "7|alice|bio|cpu|0.000|1.000|2.000|4|cpu=4|100|COMPLETED",
            "8|bob|phys|gpu|0.000|1.000|3.000|8|cpu=8,gres/gpu=2|200|COMPLETED",
        ]
        return _HEADER + "\n" + "\n".join(rows) + "\n"

    @pytest.mark.parametrize("mode", ["raise", "skip"])
    def test_bom_and_crlf_parse_cleanly(self, mode):
        skipped: list[SkippedRow] = []
        table = parse_sacct(
            windowsify(self.sacct_text()), on_bad_rows=mode, skipped=skipped
        )
        assert len(table) == 2
        assert skipped == []

    def test_bom_header_recognized_as_literal_source(self):
        # The path-vs-literal sniffer keys on the header; a BOM before it
        # must not demote the text to "path that does not exist".
        table = parse_sacct(windowsify(self.sacct_text()))
        assert list(table.job_id) == [7, 8]

    def test_bom_crlf_file_roundtrip(self, tmp_path):
        path = tmp_path / "jobs.sacct"
        path.write_text(windowsify(self.sacct_text()), encoding="utf-8")
        table = parse_sacct(path)
        assert len(table) == 2
        assert list(table.gpus) == [0, 2]

    def test_crlf_with_real_bad_row_counts_only_the_bad_row(self):
        dirty = windowsify(
            self.sacct_text() + "9|short|row\n"
        )
        skipped: list[SkippedRow] = []
        table = parse_sacct(dirty, on_bad_rows="skip", skipped=skipped)
        assert len(table) == 2
        assert [s.lineno for s in skipped] == [4]
