"""Tests for transparent gzip I/O."""

import gzip

import numpy as np
import pytest

from repro.cluster import parse_sacct, write_sacct
from repro.core import build_instrument, profile_2024
from repro.io import read_responses_jsonl, write_responses_jsonl
from repro.synth import generate_cohort

from tests.cluster.test_sacct import make_table


class TestSacctGzip:
    def test_round_trip(self, tmp_path):
        table = make_table()
        path = tmp_path / "jobs.sacct.gz"
        write_sacct(table, path)
        # Actually compressed on disk.
        raw = path.read_bytes()
        assert raw[:2] == b"\x1f\x8b"
        parsed = parse_sacct(path)
        assert [r for r in parsed] == [r for r in table]

    def test_smaller_than_plain(self, tmp_path):
        table = make_table()
        plain = tmp_path / "jobs.sacct"
        packed = tmp_path / "jobs.sacct.gz"
        write_sacct(table, plain)
        write_sacct(table, packed)
        parsed = parse_sacct(packed)
        assert len(parsed) == len(table)


class TestJsonlGzip:
    def test_round_trip(self, tmp_path):
        questionnaire = build_instrument()
        responses = generate_cohort(
            profile_2024(), questionnaire, 25, np.random.default_rng(0)
        )
        path = tmp_path / "responses.jsonl.gz"
        write_responses_jsonl(responses, path)
        assert path.read_bytes()[:2] == b"\x1f\x8b"
        parsed = read_responses_jsonl(questionnaire, path)
        assert len(parsed) == 25
        assert parsed[0].respondent_id == responses[0].respondent_id

    def test_manual_gzip_readable(self, tmp_path):
        questionnaire = build_instrument()
        responses = generate_cohort(
            profile_2024(), questionnaire, 5, np.random.default_rng(1)
        )
        path = tmp_path / "responses.jsonl.gz"
        write_responses_jsonl(responses, path)
        with gzip.open(path, "rt", encoding="utf-8") as fh:
            lines = fh.readlines()
        assert len(lines) == 5


class TestCsvGzip:
    def test_round_trip(self, tmp_path):
        from repro.io import read_responses_csv, write_responses_csv

        questionnaire = build_instrument()
        responses = generate_cohort(
            profile_2024(), questionnaire, 15, np.random.default_rng(4)
        )
        path = tmp_path / "responses.csv.gz"
        write_responses_csv(responses, path)
        assert path.read_bytes()[:2] == b"\x1f\x8b"
        parsed = read_responses_csv(questionnaire, path)
        assert len(parsed) == 15
