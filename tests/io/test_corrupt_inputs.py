"""Corrupt-input robustness: dirty rows, truncated gzip, damaged cache.

Covers the tolerant-reader mode (``on_bad_rows="skip"``) of both operational
readers and the self-healing behaviour of :class:`ArtifactCache` when entries
are corrupted or files vanish mid-operation.
"""

import gzip
import os
import threading

import numpy as np
import pytest

from repro.cluster import parse_sacct, write_sacct
from repro.cluster.sacct import SacctFormatError, _HEADER
from repro.core import build_instrument, profile_2024
from repro.core.pipeline import ArtifactCache
from repro.io import ResponseIOError, SkippedRow, read_responses_jsonl, write_responses_jsonl
from repro.synth import generate_cohort

from tests.cluster.test_sacct import make_table

GOOD_ROW = "7|alice|bio|cpu|0.000|1.000|2.000|4|cpu=4|100|COMPLETED"


def sacct_text(*rows: str) -> str:
    return _HEADER + "\n" + "\n".join(rows) + "\n"


def truncate(path, fraction: float) -> None:
    blob = path.read_bytes()
    path.write_bytes(blob[: int(len(blob) * fraction)])


class TestSacctDirtyRows:
    @pytest.mark.parametrize(
        "bad_row, match",
        [
            ("9|short|row", "expected 11 fields"),
            ("9|u|bio|cpu|0.0|1.0|2.0|4|cpu=4,gres/gpu=oops|100|COMPLETED", "gres/gpu"),
            ("9|u|bio|cpu|0.0|1.0|2.0|four|cpu=4|100|COMPLETED", "line 3"),
            ("9|u|bio|cpu|0.0|1.0|2.0|4|cpu=4|100|EXPLODED", "line 3"),
        ],
        ids=["short-row", "bad-tres", "bad-cpus", "bad-state"],
    )
    def test_strict_raises(self, bad_row, match):
        with pytest.raises(SacctFormatError, match=match):
            parse_sacct(sacct_text(GOOD_ROW, bad_row))

    @pytest.mark.parametrize(
        "bad_row",
        [
            "9|short|row",
            "9|u|bio|cpu|0.0|1.0|2.0|4|cpu=4,gres/gpu=oops|100|COMPLETED",
            "9|u|bio|cpu|0.0|1.0|2.0|four|cpu=4|100|COMPLETED",
            "9|u|bio|cpu|0.0|1.0|2.0|4|cpu=4|100|EXPLODED",
        ],
        ids=["short-row", "bad-tres", "bad-cpus", "bad-state"],
    )
    def test_skip_tolerates_and_records_lineno(self, bad_row):
        skipped: list[SkippedRow] = []
        table = parse_sacct(
            sacct_text(GOOD_ROW, bad_row, GOOD_ROW.replace("7|", "8|")),
            on_bad_rows="skip",
            skipped=skipped,
        )
        assert len(table) == 2
        assert [s.lineno for s in skipped] == [3]
        assert skipped[0].reason

    def test_skip_mode_still_rejects_foreign_header(self):
        with pytest.raises(SacctFormatError, match="header"):
            parse_sacct("NotAHeader|At|All\n" + GOOD_ROW + "\n", on_bad_rows="skip")

    def test_skip_mode_still_rejects_empty_input(self):
        import io

        with pytest.raises(SacctFormatError, match="empty"):
            parse_sacct(io.StringIO(""), on_bad_rows="skip")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="on_bad_rows"):
            parse_sacct(sacct_text(GOOD_ROW), on_bad_rows="ignore")

    def test_skipped_list_optional(self):
        table = parse_sacct(sacct_text(GOOD_ROW, "9|bad"), on_bad_rows="skip")
        assert len(table) == 1


class TestSacctTruncatedGzip:
    def make_gz(self, tmp_path, n=400):
        table = make_table()
        path = tmp_path / "jobs.sacct.gz"
        rows = [GOOD_ROW.replace("7|alice", f"{i}|alice") for i in range(1, n + 1)]
        with gzip.open(path, "wt", encoding="utf-8") as fh:
            fh.write(sacct_text(*rows))
        return path

    def test_strict_raises_format_error(self, tmp_path):
        path = self.make_gz(tmp_path)
        truncate(path, 0.6)
        with pytest.raises(SacctFormatError, match="unreadable"):
            parse_sacct(path)

    def test_skip_salvages_prefix(self, tmp_path):
        path = self.make_gz(tmp_path)
        truncate(path, 0.6)
        skipped: list[SkippedRow] = []
        table = parse_sacct(path, on_bad_rows="skip", skipped=skipped)
        assert len(table) > 0
        assert skipped[-1].lineno == -1
        assert "tail" in skipped[-1].reason

    def test_truncated_before_header_fatal_even_in_skip(self, tmp_path):
        path = self.make_gz(tmp_path)
        # Keep only a sliver: the gzip member dies before the header line.
        path.write_bytes(path.read_bytes()[:20])
        with pytest.raises(SacctFormatError):
            parse_sacct(path, on_bad_rows="skip")


class TestJsonlDirtyRows:
    @pytest.fixture()
    def questionnaire(self):
        return build_instrument()

    def test_strict_raises(self, questionnaire):
        text = '{"respondent_id": "r1", "cohort": "2024", "answers": {}}\nnot json\n'
        with pytest.raises(ResponseIOError, match="line 2"):
            read_responses_jsonl(questionnaire, text)

    def test_skip_tolerates_mixed_garbage(self, questionnaire):
        lines = [
            '{"respondent_id": "r1", "cohort": "2024", "answers": {}}',
            "not json",
            "[1, 2, 3]",
            '{"cohort": "2024", "answers": {}}',
            '{"respondent_id": "r2", "cohort": "2024", "answers": {"no_such_q": 1}}',
            '{"respondent_id": "r3", "cohort": "2024", "answers": {}}',
        ]
        skipped: list[SkippedRow] = []
        rs = read_responses_jsonl(
            questionnaire, "\n".join(lines) + "\n", on_bad_rows="skip", skipped=skipped
        )
        assert [r.respondent_id for r in rs] == ["r1", "r3"]
        assert [s.lineno for s in skipped] == [2, 3, 4, 5]

    def test_truncated_gzip_skip_salvages_prefix(self, questionnaire, tmp_path):
        responses = generate_cohort(
            profile_2024(), questionnaire, 200, np.random.default_rng(0)
        )
        path = tmp_path / "responses.jsonl.gz"
        write_responses_jsonl(responses, path)
        truncate(path, 0.5)
        with pytest.raises(ResponseIOError, match="unreadable"):
            read_responses_jsonl(questionnaire, path)
        skipped: list[SkippedRow] = []
        rs = read_responses_jsonl(questionnaire, path, on_bad_rows="skip", skipped=skipped)
        assert 0 < len(rs) < 200
        assert skipped[-1].lineno == -1

    def test_unknown_mode_rejected(self, questionnaire):
        with pytest.raises(ValueError, match="on_bad_rows"):
            read_responses_jsonl(questionnaire, "{}\n", on_bad_rows="lenient")


class TestCacheCorruption:
    def test_corrupt_entry_evicted_and_recomputed(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("k", {"v": 1})
        assert cache.corrupt_entry("k")
        assert cache.get("k") is None  # corrupt blob treated as a miss
        assert not cache._path("k").exists()  # and evicted from disk
        value, was_cached = cache.get_or_compute("k", lambda: {"v": 2})
        assert value == {"v": 2} and not was_cached
        assert cache.get("k") == {"v": 2}

    def test_corrupt_entry_on_missing_key_is_noop(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        assert not cache.corrupt_entry("ghost")

    def test_concurrent_readers_of_corrupt_entry(self, tmp_path):
        """Many threads hitting a corrupt entry all recover without errors."""
        cache = ArtifactCache(tmp_path)
        cache.put("k", "good")
        cache.corrupt_entry("k")
        computes = []
        lock = threading.Lock()

        def compute():
            with lock:
                computes.append(1)
            return "healed"

        results = [None] * 16
        errors = []

        def reader(i):
            try:
                value, _ = cache.get_or_compute("k", compute)
                results[i] = value
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=reader, args=(i,)) for i in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert results == ["healed"] * 16
        # Usually exactly one thread recomputes (single-flight), but a
        # reader that loaded the corrupt bytes *before* the healed publish
        # may evict the fresh entry and recompute — benign duplicate work
        # (the value is deterministic and republished), never corruption.
        assert 1 <= sum(computes) <= 16
        assert cache.get("k") == "healed"

    def test_put_failure_leaves_no_temp_file(self, tmp_path, monkeypatch):
        cache = ArtifactCache(tmp_path)
        cache.put("seed", 1)  # create the directory

        def boom(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", boom)
        # A failed cache write degrades (False + put_errors) instead of
        # raising — the run must survive a full disk.
        assert cache.put("k", "value") is False
        monkeypatch.undo()
        assert cache.put_errors == 1
        assert "disk full" in cache.last_put_error
        assert list(tmp_path.glob("*.tmp")) == []
        assert cache.get("k") is None

    def test_clear_tolerates_concurrent_unlink(self, tmp_path, monkeypatch):
        cache = ArtifactCache(tmp_path)
        cache.put("a", 1)
        ghost = cache._path("ghost")
        real_glob = type(tmp_path).glob

        def glob_with_ghost(self, pattern):
            paths = list(real_glob(self, pattern))
            if pattern == "*.pkl":
                paths.append(ghost)  # scanned, then unlinked by "someone else"
            return iter(paths)

        monkeypatch.setattr(type(tmp_path), "glob", glob_with_ghost)
        cache.clear()  # must not raise on the vanished entry
        monkeypatch.undo()
        assert cache.get("a") is None
        assert cache.hits == 0 and cache.misses == 1
