"""Cross-process FileLock tests: exclusion, crashed holders, stale reclaim."""

import multiprocessing
import os
import signal
import time

import pytest

from repro.io.locks import (
    OWNER_RECORD_WIDTH,
    FileLock,
    LockTimeout,
    local_host,
    owner_record,
    parse_owner_record,
    pid_alive,
)

mp = multiprocessing.get_context("fork")


def hold_lock(path, backend, acquired, release):
    lock = FileLock(path, backend=backend)
    lock.acquire()
    acquired.set()
    release.wait(timeout=30)
    lock.release()


class TestPidAlive:
    def test_own_pid(self):
        assert pid_alive(os.getpid())

    def test_dead_pid(self):
        child = mp.Process(target=lambda: None)
        child.start()
        child.join()
        assert not pid_alive(child.pid)

    def test_non_positive(self):
        assert not pid_alive(0)
        assert not pid_alive(-1)


@pytest.mark.parametrize("backend", ["fcntl", "pidfile"])
class TestFileLock:
    def test_acquire_release_context_manager(self, tmp_path, backend):
        lock = FileLock(tmp_path / "x.lock", backend=backend)
        assert not lock.locked
        with lock:
            assert lock.locked
        assert not lock.locked

    def test_reacquire_while_held_raises(self, tmp_path, backend):
        with FileLock(tmp_path / "x.lock", backend=backend) as lock:
            with pytest.raises(RuntimeError, match="already held"):
                lock.acquire()

    def test_excludes_other_process(self, tmp_path, backend):
        path = tmp_path / "x.lock"
        acquired, release = mp.Event(), mp.Event()
        holder = mp.Process(target=hold_lock, args=(path, backend, acquired, release))
        holder.start()
        try:
            assert acquired.wait(timeout=10)
            waiter = FileLock(path, backend=backend, poll_interval=0.005)
            with pytest.raises(LockTimeout, match="could not acquire"):
                waiter.acquire(timeout=0.15)
            release.set()
            holder.join(timeout=10)
            waiter.acquire(timeout=5)
            waiter.release()
        finally:
            release.set()
            holder.join(timeout=10)

    def test_killed_holder_does_not_wedge_later_runs(self, tmp_path, backend):
        path = tmp_path / "x.lock"
        acquired, release = mp.Event(), mp.Event()
        holder = mp.Process(target=hold_lock, args=(path, backend, acquired, release))
        holder.start()
        assert acquired.wait(timeout=10)
        os.kill(holder.pid, signal.SIGKILL)
        holder.join(timeout=10)
        # fcntl: the kernel released the flock at process death.
        # pidfile: the waiter detects the dead holder pid and reclaims.
        lock = FileLock(path, backend=backend, poll_interval=0.005)
        lock.acquire(timeout=5)
        lock.release()


class TestPidfileStaleness:
    def test_dead_pid_is_reclaimed(self, tmp_path):
        path = tmp_path / "x.lock"
        child = mp.Process(target=lambda: None)
        child.start()
        child.join()
        path.write_text(f"{child.pid}\n")
        lock = FileLock(path, backend="pidfile", poll_interval=0.005)
        lock.acquire(timeout=5)
        lock.release()
        assert lock.reclaimed_stale == 1

    def test_live_pid_is_respected(self, tmp_path):
        path = tmp_path / "x.lock"
        path.write_text(f"{os.getpid()}\n")  # alive, and not us-as-holder instance
        lock = FileLock(path, backend="pidfile", poll_interval=0.005)
        with pytest.raises(LockTimeout):
            lock.acquire(timeout=0.1)
        assert lock.reclaimed_stale == 0

    def test_torn_lock_file_reclaimed_after_grace(self, tmp_path):
        path = tmp_path / "x.lock"
        path.write_text("garbage-not-a-pid")
        lock = FileLock(
            path, backend="pidfile", poll_interval=0.005, stale_grace=0.05
        )
        start = time.monotonic()
        lock.acquire(timeout=5)
        lock.release()
        assert time.monotonic() - start >= 0.05
        assert lock.reclaimed_stale == 1

    def test_backend_validation(self, tmp_path):
        with pytest.raises(ValueError, match="backend"):
            FileLock(tmp_path / "x.lock", backend="hope")


class TestOwnerRecord:
    def test_fixed_width_and_round_trip(self):
        rec = owner_record()
        assert len(rec) == OWNER_RECORD_WIDTH
        assert rec.endswith(b"\n")
        assert parse_owner_record(rec) == (os.getpid(), local_host())

    def test_legacy_bare_pid_parses_with_empty_host(self):
        assert parse_owner_record(b"12345\n") == (12345, "")
        assert parse_owner_record(f"{12345:>19}\n".encode()) == (12345, "")

    def test_torn_record_is_none(self):
        assert parse_owner_record(b"") is None
        assert parse_owner_record(b"garbage host\n") is None


class TestHostGuardedReclaim:
    """Pid collisions across hosts must never free a live remote holder."""

    def test_remote_host_lock_with_dead_local_pid_not_reclaimed(self, tmp_path):
        # A pid that is dead *here* but recorded by another host: liveness
        # cannot be probed remotely, so the lock must be treated as held.
        child = multiprocessing.get_context("fork").Process(target=lambda: None)
        child.start()
        child.join()
        assert not pid_alive(child.pid)
        path = tmp_path / "x.lock"
        path.write_bytes(owner_record(pid=child.pid, host="other-host.example"))
        lock = FileLock(path, backend="pidfile", poll_interval=0.005)
        with pytest.raises(LockTimeout, match="other-host.example"):
            lock.acquire(timeout=0.15)
        assert lock.reclaimed_stale == 0
        assert path.exists()

    def test_remote_host_lock_with_colliding_live_pid_not_reclaimed(self, tmp_path):
        # The reverse collision: the remote holder's pid happens to name a
        # live process here. Still held — host identity decides, not pid.
        path = tmp_path / "x.lock"
        path.write_bytes(owner_record(pid=os.getpid(), host="other-host.example"))
        lock = FileLock(path, backend="pidfile", poll_interval=0.005)
        with pytest.raises(LockTimeout):
            lock.acquire(timeout=0.1)
        assert lock.reclaimed_stale == 0

    def test_local_host_dead_pid_still_reclaimed(self, tmp_path):
        child = multiprocessing.get_context("fork").Process(target=lambda: None)
        child.start()
        child.join()
        path = tmp_path / "x.lock"
        path.write_bytes(owner_record(pid=child.pid, host=local_host()))
        lock = FileLock(path, backend="pidfile", poll_interval=0.005)
        lock.acquire(timeout=5)
        lock.release()
        assert lock.reclaimed_stale == 1

    def test_fcntl_metadata_records_host(self, tmp_path):
        path = tmp_path / "x.lock"
        with FileLock(path, backend="fcntl"):
            assert parse_owner_record(path.read_bytes()) == (
                os.getpid(),
                local_host(),
            )
