"""Tests for the canonical instrument."""

import pytest

from repro.core import build_instrument
from repro.core.instrument import LANGUAGES, ML_FRAMEWORKS, PARALLEL_MODES
from repro.survey import MultiChoiceQuestion, SingleChoiceQuestion
from repro.survey.codebook import build_codebook


class TestBuildInstrument:
    def test_constructs(self):
        q = build_instrument()
        assert len(q) == 26

    def test_fresh_object_each_call(self):
        assert build_instrument() is not build_instrument()

    def test_core_items_present(self):
        q = build_instrument()
        for key in (
            "field",
            "languages",
            "uses_parallelism",
            "uses_gpu",
            "uses_ml",
            "vcs",
            "data_scale",
            "stack_description",
        ):
            assert key in q

    def test_option_constants_wired(self):
        q = build_instrument()
        assert q["languages"].options == LANGUAGES
        assert q["parallel_modes"].options == PARALLEL_MODES
        assert q["ml_frameworks"].options == ML_FRAMEWORKS

    def test_skip_logic_gates(self):
        q = build_instrument()
        shown = q.applicable_keys({"uses_parallelism": "no", "uses_cluster": "no", "uses_ml": "no"})
        assert "parallel_modes" not in shown
        assert "scheduler" not in shown
        assert "ml_frameworks" not in shown

    def test_all_questions_in_sections(self):
        q = build_instrument()
        in_sections = {k for s in q.sections for k in s.question_keys}
        assert in_sections == set(q.keys)

    def test_languages_require_at_least_one(self):
        q = build_instrument()
        lang = q["languages"]
        assert isinstance(lang, MultiChoiceQuestion)
        assert lang.min_selected == 1

    def test_scheduler_allows_writein(self):
        q = build_instrument()
        sched = q["scheduler"]
        assert isinstance(sched, SingleChoiceQuestion)
        assert sched.allow_other

    def test_codebook_builds(self):
        cb = build_codebook(build_instrument())
        assert len(cb) == 26
        assert "gated_by" not in cb["field"].render()
