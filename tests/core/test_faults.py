"""Chaos suite: deterministic fault injection against the pipeline.

The acceptance bar (ISSUE PR 3): under a seeded :class:`FaultPlan` injecting
one transient failure per step, a retried run must produce artifacts
byte-identical to a fault-free run in every executor mode; a permanent
mid-DAG fault under ``keep_going`` must complete every non-downstream step.
"""

import time

import pytest

from repro.core.faults import FaultEvent, FaultPlan, FaultSpec, InjectedFault
from repro.core.pipeline import (
    ArtifactCache,
    Pipeline,
    PipelineStep,
    RetryPolicy,
)

from tests.core.test_pipeline_retry import FAST_RETRY, _combine, _double, _source, _triple

MODES = ["sequential", "thread", "process"]


def diamond(cache=None, **kwargs):
    return Pipeline(
        [
            PipelineStep("a", _source, params={"value": 2}),
            PipelineStep("b", _double, depends_on=("a",)),
            PipelineStep("c", _triple, depends_on=("a",)),
            PipelineStep("d", _combine, depends_on=("b", "c")),
        ],
        cache,
        **kwargs,
    )


ALL_STEPS = ["a", "b", "c", "d"]


def artifact_bytes(root):
    """{cache key: artifact bytes} for every entry in a disk cache dir."""
    return {p.stem: p.read_bytes() for p in root.glob("*.pkl")}


class TestFaultSpec:
    def test_validation(self):
        with pytest.raises(ValueError, match="kind"):
            FaultSpec("s", kind="explode")
        with pytest.raises(ValueError, match="hang_seconds"):
            FaultSpec("s", kind="hang", hang_seconds=-1.0)
        with pytest.raises(ValueError, match="1-based"):
            FaultSpec("s", attempts=(0,))

    def test_fires_on(self):
        transient = FaultSpec("s")  # default: first attempt only
        assert transient.fires_on(1) and not transient.fires_on(2)
        permanent = FaultSpec("s", attempts=())
        assert all(permanent.fires_on(n) for n in range(1, 10))
        second_only = FaultSpec("s", attempts=(2,))
        assert not second_only.fires_on(1) and second_only.fires_on(2)


class TestFaultPlan:
    def test_fire_raises_and_records(self):
        plan = FaultPlan.transient_errors(["x"])
        with pytest.raises(InjectedFault, match="step 'x' \\(attempt 1\\)"):
            plan.fire("x", 1)
        plan.fire("x", 2)  # transient: second attempt clean
        plan.fire("y", 1)  # unnamed step: no-op
        assert plan.events == (FaultEvent("x", "error", 1),)
        assert plan.fired("x") == 1 and plan.fired("y") == 0

    def test_transient_errors_multiple_failures(self):
        plan = FaultPlan.transient_errors(["x"], failures_per_step=2)
        for attempt in (1, 2):
            with pytest.raises(InjectedFault):
                plan.fire("x", attempt)
        plan.fire("x", 3)
        with pytest.raises(ValueError, match="failures_per_step"):
            FaultPlan.transient_errors(["x"], failures_per_step=0)

    def test_random_is_seed_deterministic(self):
        a = FaultPlan.random(ALL_STEPS, seed=11, rate=0.5)
        b = FaultPlan.random(ALL_STEPS, seed=11, rate=0.5)
        assert [s.step for s in a.specs] == [s.step for s in b.specs]
        assert FaultPlan.random(ALL_STEPS, seed=1, rate=0.0).specs == ()
        assert len(FaultPlan.random(ALL_STEPS, seed=1, rate=1.0).specs) == len(ALL_STEPS)
        with pytest.raises(ValueError, match="rate"):
            FaultPlan.random(ALL_STEPS, seed=1, rate=1.5)

    def test_reset_clears_events(self):
        plan = FaultPlan.transient_errors(["x"])
        with pytest.raises(InjectedFault):
            plan.fire("x", 1)
        plan.reset()
        assert plan.events == ()
        with pytest.raises(InjectedFault):  # specs unchanged: fires again
            plan.fire("x", 1)


class TestChaosByteIdentity:
    """Transient faults + retries must not change what lands on disk."""

    @pytest.mark.parametrize("executor", MODES)
    def test_one_transient_failure_per_step(self, executor, tmp_path):
        clean_dir = tmp_path / "clean"
        chaos_dir = tmp_path / "chaos"

        clean = diamond(ArtifactCache(clean_dir))
        clean_results = clean.run(executor=executor, max_workers=2)

        plan = FaultPlan.transient_errors(ALL_STEPS, failures_per_step=1, seed=3)
        chaos = diamond(ArtifactCache(chaos_dir), default_retry=FAST_RETRY)
        chaos_results = chaos.run(executor=executor, max_workers=2, fault_plan=plan)

        assert chaos_results == clean_results
        # Every step failed once and recovered on retry.
        report = chaos.last_report
        assert report.ok
        assert set(report.retried) == set(ALL_STEPS)
        assert report.total_attempts == 2 * len(ALL_STEPS)
        assert plan.fired("a", "error") == 1
        # Same keys, byte-identical artifacts.
        clean_bytes = artifact_bytes(clean_dir)
        chaos_bytes = artifact_bytes(chaos_dir)
        assert set(clean_bytes) == set(chaos_bytes) == set(clean.keys().values())
        assert clean_bytes == chaos_bytes

    @pytest.mark.parametrize("executor", MODES)
    def test_empty_plan_is_a_noop(self, executor, tmp_path):
        clean = diamond(ArtifactCache(tmp_path / "clean"))
        clean.run(executor=executor, max_workers=2)
        noop = diamond(ArtifactCache(tmp_path / "noop"), default_retry=FAST_RETRY)
        noop.run(executor=executor, max_workers=2, fault_plan=FaultPlan())
        assert noop.last_report.ok
        assert noop.last_report.retried == ()
        assert artifact_bytes(tmp_path / "clean") == artifact_bytes(tmp_path / "noop")


class TestChaosKeepGoing:
    """Permanent mid-DAG fault: everything not downstream still completes."""

    @pytest.mark.parametrize("executor", MODES)
    def test_permanent_fault_isolates_subtree(self, executor, tmp_path):
        plan = FaultPlan([FaultSpec("b", attempts=())])
        pipeline = diamond(ArtifactCache(tmp_path), default_retry=FAST_RETRY)
        results = pipeline.run(
            executor=executor, max_workers=2, on_error="keep_going", fault_plan=plan
        )
        assert set(results) == {"a", "c"}
        report = pipeline.last_report
        assert report.failed == ("b",)
        assert report.skipped == ("d",)
        assert report.outcome("b").attempts == FAST_RETRY.max_attempts
        # Completed branches are cached; a fault-free rerun heals the rest.
        healed = diamond(ArtifactCache(tmp_path)).run(executor=executor, max_workers=2)
        assert healed["d"] == {"v": 10}


class TestChaosCorruptCache:
    def test_corrupt_entry_recomputed_next_run(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        plan = FaultPlan([FaultSpec("b", kind="corrupt_cache", attempts=(1,))])
        first = diamond(cache)
        first_results = first.run(executor="sequential", fault_plan=plan)
        assert plan.fired("b", "corrupt_cache") == 1

        # Second run: b's entry is garbage -> evicted and recomputed; the
        # other three steps come straight from cache.
        second = diamond(cache)
        second_results = second.run(executor="sequential")
        assert second_results == first_results
        report = second.last_report
        assert report.outcome("b").status == "ok"
        assert {n: report.outcome(n).status for n in ("a", "c", "d")} == {
            "a": "cached", "c": "cached", "d": "cached",
        }

        # Third run: fully healed.
        third = diamond(cache)
        third.run(executor="sequential")
        assert third.last_report.counts() == {"cached": 4}

    def test_corrupt_cache_fires_only_on_planned_attempt(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        plan = FaultPlan([FaultSpec("b", kind="corrupt_cache", attempts=(2,))])
        diamond(cache).run(executor="sequential", fault_plan=plan)
        assert plan.fired("b", "corrupt_cache") == 0  # first publish: not planned
        assert diamond(cache).run(executor="sequential")["d"] == {"v": 10}


class TestChaosHang:
    @pytest.mark.parametrize("executor", ["sequential", "thread"])
    def test_hang_with_timeout_times_out_fast(self, executor):
        plan = FaultPlan([FaultSpec("c", kind="hang", hang_seconds=60.0)])
        pipeline = diamond(default_timeout=0.05)
        t0 = time.perf_counter()
        results = pipeline.run(
            executor=executor, max_workers=2, on_error="keep_going", fault_plan=plan
        )
        assert time.perf_counter() - t0 < 10.0  # hang capped at the deadline
        assert set(results) == {"a", "b"}
        assert pipeline.last_report.outcome("c").status == "timeout"

    def test_hang_without_timeout_just_sleeps(self):
        plan = FaultPlan([FaultSpec("c", kind="hang", hang_seconds=0.02)])
        pipeline = diamond()
        results = pipeline.run(executor="sequential", fault_plan=plan)
        assert results["d"] == {"v": 10}
        assert plan.fired("c", "hang") == 1


class TestChaosRandomPlan:
    def test_seeded_random_chaos_recovers(self, tmp_path):
        plan = FaultPlan.random(ALL_STEPS, seed=20240807, rate=0.75)
        sabotaged = {s.step for s in plan.specs}
        assert sabotaged  # this seed picks at least one step
        clean = diamond(ArtifactCache(tmp_path / "clean"))
        clean.run(executor="sequential")
        chaos = diamond(ArtifactCache(tmp_path / "chaos"), default_retry=FAST_RETRY)
        chaos.run(executor="sequential", fault_plan=plan)
        assert chaos.last_report.ok
        assert set(chaos.last_report.retried) == sabotaged
        assert artifact_bytes(tmp_path / "clean") == artifact_bytes(tmp_path / "chaos")
