"""Shared CLI logging: verbosity mapping, run-id tagging, kv rendering."""

import io
import logging

import pytest

from repro.core.logging import (
    LOGGER_NAME,
    get_logger,
    kv,
    set_run_id,
    setup_cli_logging,
    verbosity_to_level,
)


@pytest.fixture(autouse=True)
def _reset_logging_state():
    yield
    set_run_id(None)
    logger = logging.getLogger(LOGGER_NAME)
    for handler in list(logger.handlers):
        if not isinstance(handler, logging.NullHandler):
            logger.removeHandler(handler)
    logger.addHandler(logging.NullHandler())
    logger.setLevel(logging.NOTSET)


class TestKv:
    def test_fields_render_sorted(self):
        assert kv("run.start", workers=2, executor="thread") == (
            "run.start executor=thread workers=2"
        )

    def test_floats_render_compactly(self):
        assert kv("step.done", wall=0.123456789) == "step.done wall=0.123457"
        assert kv("tick", t=2.0) == "tick t=2"

    def test_no_fields_is_just_the_event(self):
        assert kv("run.end") == "run.end"


class TestVerbosity:
    @pytest.mark.parametrize(
        ("verbosity", "level"),
        [
            (-2, logging.ERROR),
            (-1, logging.ERROR),
            (0, logging.WARNING),
            (1, logging.INFO),
            (2, logging.DEBUG),
            (3, logging.DEBUG),
        ],
    )
    def test_mapping(self, verbosity, level):
        assert verbosity_to_level(verbosity) == level


class TestSetup:
    def test_lines_carry_level_and_run_id(self):
        stream = io.StringIO()
        logger = setup_cli_logging(1, stream=stream)
        logger.info(kv("run.start", workers=2))
        set_run_id("run-123")
        logger.info("tagged")
        set_run_id(None)
        logger.info("untagged")
        lines = stream.getvalue().splitlines()
        assert "INFO [-] repro: run.start workers=2" in lines[0]
        assert "[run-123]" in lines[1]
        assert "[-]" in lines[2]

    def test_reconfiguration_replaces_handler(self):
        first, second = io.StringIO(), io.StringIO()
        setup_cli_logging(1, stream=first)
        logger = setup_cli_logging(1, stream=second)
        assert len(logger.handlers) == 1
        logger.info("only once")
        assert first.getvalue() == ""
        assert second.getvalue().count("only once") == 1

    def test_quiet_suppresses_warnings(self):
        stream = io.StringIO()
        logger = setup_cli_logging(-1, stream=stream)
        logger.warning("should not appear")
        logger.error("should appear")
        assert "should not appear" not in stream.getvalue()
        assert "should appear" in stream.getvalue()

    def test_child_loggers_share_the_configuration(self):
        stream = io.StringIO()
        setup_cli_logging(1, stream=stream)
        get_logger("repro.core.pipeline").info("from a module")
        assert "repro.core.pipeline: from a module" in stream.getvalue()


class TestGetLogger:
    def test_nests_external_names_under_repro(self):
        assert get_logger("somewhere.else").name == "repro.somewhere.else"
        assert get_logger("repro.core.trace").name == "repro.core.trace"
        assert get_logger().name == "repro"

    def test_import_side_effect_registers_null_handler(self):
        # Importing the package must never let records fall through to
        # logging's last-resort stderr handler.
        root = logging.getLogger(LOGGER_NAME)
        assert any(isinstance(h, logging.NullHandler) for h in root.handlers)
