"""Tests for post-stratified trend estimation."""

import numpy as np
import pytest

from repro.core import (
    TrendEngine,
    WeightedTrendEngine,
    build_instrument,
    make_cohort_weights,
    population_field_shares,
    profile_2011,
    profile_2024,
)
from repro.survey import Response, ResponseSet
from repro.synth import generate_study


@pytest.fixture(scope="module")
def responses():
    return generate_study(
        {"2011": (profile_2011(), 200), "2024": (profile_2024(), 250)},
        build_instrument(),
        seed=31,
    )


TARGETS = {"field": population_field_shares()}


class TestMakeCohortWeights:
    def test_mean_one(self, responses):
        weights = make_cohort_weights(responses.by_cohort("2024"), TARGETS)
        assert weights.mean() == pytest.approx(1.0)
        assert (weights > 0).all()

    def test_hits_population_margins(self, responses):
        cohort = responses.by_cohort("2024")
        weights = make_cohort_weights(cohort, TARGETS)
        fields = cohort.column("field")
        targets = population_field_shares()
        total = weights.sum()
        for field_name, share in targets.items():
            mask = np.array([f == field_name for f in fields])
            if mask.any():
                achieved = weights[mask].sum() / total
                assert achieved == pytest.approx(share, abs=0.02)

    def test_missing_margin_respondents_get_unit_weight(self):
        q = build_instrument()
        rs = ResponseSet(
            q,
            [
                Response("a", "2024", {"field": "physics"}),
                Response("b", "2024", {"field": "biology"}),
                Response("c", "2024", {}),  # no field answer
            ],
        )
        weights = make_cohort_weights(rs, {"field": {"physics": 0.5, "biology": 0.5}})
        assert weights.shape == (3,)
        assert weights[2] == pytest.approx(weights.mean() / weights.mean())

    def test_empty_cohort_rejected(self):
        q = build_instrument()
        with pytest.raises(ValueError):
            make_cohort_weights(ResponseSet(q, []), TARGETS)

    def test_no_margins_rejected(self, responses):
        with pytest.raises(ValueError):
            make_cohort_weights(responses.by_cohort("2024"), {})


class TestWeightedTrendEngine:
    def test_weighted_close_to_raw_for_balanced_sample(self, responses):
        # The generator samples fields at population shares, so weighting
        # should barely move the estimates.
        raw = TrendEngine(responses).yes_no_trend("uses_gpu")
        weighted = WeightedTrendEngine(responses, TARGETS).yes_no_trend("uses_gpu")
        assert weighted.current.estimate == pytest.approx(raw.current.estimate, abs=0.06)
        assert weighted.baseline.estimate == pytest.approx(raw.baseline.estimate, abs=0.06)

    def test_weighting_corrects_oversampled_field(self):
        """Oversampling a GPU-heavy field inflates the raw estimate; the
        weighted estimate must pull it back toward the population value."""
        q = build_instrument()
        responses = []
        i = 0
        # Population: 50/50 physics/biology. Sample: 80 physics, 20 biology.
        # Physics all use GPUs; biology none.
        for field_name, n, gpu in (("physics", 80, "yes"), ("biology", 20, "no")):
            for _ in range(n):
                for cohort in ("2011", "2024"):
                    responses.append(
                        Response(
                            f"r{i}", cohort, {"field": field_name, "uses_gpu": gpu}
                        )
                    )
                    i += 1
        rs = ResponseSet(q, responses)
        targets = {"field": {"physics": 0.5, "biology": 0.5}}
        raw = TrendEngine(rs).yes_no_trend("uses_gpu")
        weighted = WeightedTrendEngine(rs, targets).yes_no_trend("uses_gpu")
        assert raw.current.estimate == pytest.approx(0.8)
        assert weighted.current.estimate == pytest.approx(0.5, abs=0.02)

    def test_effective_sample_size_shrinks_trials(self):
        """Weighted trials (ESS) never exceed raw n."""
        q = build_instrument()
        responses = []
        for i, field_name in enumerate(["physics"] * 90 + ["biology"] * 10):
            for cohort in ("2011", "2024"):
                responses.append(
                    Response(f"r{i}-{cohort}", cohort, {"field": field_name, "uses_gpu": "no"})
                )
        rs = ResponseSet(q, responses)
        weighted = WeightedTrendEngine(
            rs, {"field": {"physics": 0.5, "biology": 0.5}}
        ).yes_no_trend("uses_gpu")
        assert weighted.n_current < 100

    def test_weights_for_lookup(self, responses):
        engine = WeightedTrendEngine(responses, TARGETS)
        assert engine.weights_for("2024").shape == (250,)
        with pytest.raises(KeyError):
            engine.weights_for("1999")

    def test_multi_choice_weighted(self, responses):
        engine = WeightedTrendEngine(responses, TARGETS)
        table = engine.multi_choice_trend("languages")
        python = table["python"]
        assert python.delta > 0.35  # the headline survives weighting

    def test_trend_direction_stable_under_weighting(self, responses):
        raw = TrendEngine(responses).multi_choice_trend("languages")
        weighted = WeightedTrendEngine(responses, TARGETS).multi_choice_trend("languages")
        for label in ("python", "matlab", "fortran"):
            assert np.sign(raw[label].delta) == np.sign(weighted[label].delta)
