"""Tracing: deterministic export, span semantics, critical path, Prometheus.

The load-bearing guarantee mirrors the executor-equivalence property the
parallel suite pins down: the *normalized* trace export is byte-identical
across sequential, thread, and process execution of the same DAG, so a
trace diff in CI can only mean the DAG (or its outcomes) changed — never
that the scheduler interleaved differently.
"""

import json

import pytest

from repro.core import ArtifactCache, Pipeline, PipelineStep
from repro.core.journal import RunJournal, load_resume_state
from repro.core.trace import (
    TraceError,
    Tracer,
    analyze_perfetto,
    critical_path,
    current_tracer,
    instant,
    validate_perfetto,
)


def _source(inputs):
    return [1, 2, 3]


def _double(inputs, **params):
    return [x * 2 for x in inputs["src"]]


def _total(inputs, **params):
    return sum(inputs["dbl"])


def _steps():
    """A three-step chain; module-level fns so the process pool can pickle."""
    return [
        PipelineStep(name="src", fn=_source),
        PipelineStep(name="dbl", fn=_double, depends_on=("src",)),
        PipelineStep(name="tot", fn=_total, depends_on=("dbl",)),
    ]


def _traced_run(executor, **run_kwargs):
    tracer = Tracer()
    pipeline = Pipeline(_steps(), ArtifactCache())
    pipeline.run(executor=executor, max_workers=2, trace=tracer, **run_kwargs)
    return tracer


def _export_bytes(tracer):
    return json.dumps(
        tracer.to_perfetto(normalize=True), sort_keys=True, separators=(",", ":")
    ).encode()


def _spans(tracer, cat):
    return [
        e
        for e in tracer.to_perfetto()["traceEvents"]
        if e.get("ph") == "X" and e.get("cat") == cat
    ]


class TestDeterministicExport:
    def test_byte_identical_across_executors(self):
        exports = {
            executor: _export_bytes(_traced_run(executor))
            for executor in ("sequential", "thread", "process")
        }
        assert exports["sequential"] == exports["thread"] == exports["process"]

    def test_byte_identical_across_repeat_runs(self):
        assert _export_bytes(_traced_run("thread")) == _export_bytes(
            _traced_run("thread")
        )

    def test_export_is_valid_perfetto(self, tmp_path):
        tracer = _traced_run("sequential")
        assert validate_perfetto(tracer.to_perfetto()) == []
        assert validate_perfetto(tracer.to_perfetto(normalize=True)) == []
        path = tracer.write_perfetto(tmp_path / "trace.json")
        assert validate_perfetto(json.loads(path.read_text())) == []

    def test_normalized_export_strips_timing(self):
        data = _traced_run("thread").to_perfetto(normalize=True)
        for event in data["traceEvents"]:
            assert event["ts"] == 0 and event["pid"] == 0
            if event["ph"] == "X":
                assert event["dur"] == 0
            for key in ("wall", "compute", "queue_wait", "worker", "run_id"):
                assert key not in (event.get("args") or {})

    def test_validate_flags_malformed_events(self):
        problems = validate_perfetto(
            {"traceEvents": [{"name": "x", "ph": "X", "ts": 0, "pid": 0}]}
        )
        assert problems  # missing tid (and dur)
        assert validate_perfetto({"events": []})  # no traceEvents at all


class TestSpanContent:
    def test_step_spans_cover_outcomes_and_keys(self):
        tracer = _traced_run("sequential")
        steps = {e["args"]["step"]: e["args"] for e in _spans(tracer, "step")}
        assert set(steps) == {"src", "dbl", "tot"}
        for args in steps.values():
            assert args["outcome"] == "ok"
            assert args["attempts"] == 1
            assert args["key"]
            assert args["queue_wait"] >= 0.0 and args["compute"] >= 0.0
        assert steps["dbl"]["deps"] == ["src"]

    def test_run_span_carries_run_id_and_mode(self):
        tracer = _traced_run("thread")
        (run,) = _spans(tracer, "run")
        assert run["args"]["run_id"]
        assert run["args"]["executor"] == "thread"
        assert run["args"]["workers"] == 2

    def test_attempt_spans_parent_step_spans(self):
        tracer = _traced_run("sequential")
        attempts = _spans(tracer, "attempt")
        assert {e["args"]["step"] for e in attempts} == {"src", "dbl", "tot"}
        assert all(e["args"]["ok"] is True for e in attempts)

    def test_warm_cache_marks_spans_cached(self):
        cache = ArtifactCache()
        Pipeline(_steps(), cache).run(max_workers=1)
        tracer = Tracer()
        Pipeline(_steps(), cache).run(max_workers=1, trace=tracer)
        outcomes = {e["args"]["step"]: e["args"]["outcome"] for e in _spans(tracer, "step")}
        assert outcomes == {"src": "cached", "dbl": "cached", "tot": "cached"}
        hits = [
            e
            for e in tracer.to_perfetto()["traceEvents"]
            if e.get("ph") == "i" and e["name"] == "cache.hit"
        ]
        assert len(hits) == 3

    def test_cold_cache_emits_miss_and_put_instants(self):
        tracer = _traced_run("sequential")
        instants = [
            e["name"] for e in tracer.to_perfetto()["traceEvents"] if e.get("ph") == "i"
        ]
        assert instants.count("cache.miss") == 3
        assert instants.count("cache.put") == 3


class TestDisabledPath:
    def test_untraced_run_records_no_tracer(self):
        pipeline = Pipeline(_steps(), ArtifactCache())
        pipeline.run(max_workers=1)
        assert pipeline.last_trace is None

    def test_no_ambient_tracer_during_untraced_run(self):
        seen = []

        def probe(inputs):
            seen.append(current_tracer())
            return 1

        Pipeline([PipelineStep(name="probe", fn=probe)], ArtifactCache()).run(
            max_workers=1
        )
        assert seen == [None]

    def test_module_instant_is_noop_without_tracer(self):
        assert current_tracer() is None
        instant("orphan", "test", detail=1)  # must not raise or buffer anywhere

    def test_trace_true_constructs_tracer(self):
        pipeline = Pipeline(_steps(), ArtifactCache())
        pipeline.run(max_workers=1, trace=True)
        assert isinstance(pipeline.last_trace, Tracer)
        assert _spans(pipeline.last_trace, "step")


class TestReplayedSpans:
    def test_resumed_steps_trace_as_replayed_with_zero_attempts(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        journal_dir = tmp_path / "journals"
        with RunJournal.open(journal_dir) as journal:
            Pipeline(_steps(), cache).run(max_workers=1, journal=journal, trace=True)
            run_id = journal.run_id
        state = load_resume_state(journal_dir, run_id)

        tracer = Tracer()
        resumed = Pipeline(_steps(), cache)
        resumed.run(max_workers=1, resume=state, trace=tracer)
        steps = {e["args"]["step"]: e["args"] for e in _spans(tracer, "step")}
        assert {args["outcome"] for args in steps.values()} == {"replayed"}
        assert {args["attempts"] for args in steps.values()} == {0}
        (run,) = _spans(tracer, "run")
        assert run["args"]["resumed_from"] == run_id

    def test_replayed_export_normalizes_identically_across_executors(self, tmp_path):
        exports = {}
        for executor in ("sequential", "thread"):
            root = tmp_path / executor
            cache = ArtifactCache(root / "cache")
            with RunJournal.open(root / "journals") as journal:
                Pipeline(_steps(), cache).run(max_workers=1, journal=journal)
                run_id = journal.run_id
            state = load_resume_state(root / "journals", run_id)
            tracer = Tracer()
            Pipeline(_steps(), cache).run(
                resume=state, trace=tracer, executor=executor, max_workers=2
            )
            exports[executor] = _export_bytes(tracer)
        assert exports["sequential"] == exports["thread"]


class TestCriticalPath:
    DIAMOND = [
        ("a", (), 1.0),
        ("b", ("a",), 2.0),
        ("c", ("a",), 0.5),
        ("d", ("b", "c"), 1.0),
    ]

    def test_diamond_path_and_length(self):
        result = critical_path(self.DIAMOND, wall=4.0, workers=2)
        assert result.path == ("a", "b", "d")
        assert result.length == pytest.approx(4.0)
        assert result.total_work == pytest.approx(4.5)
        assert result.max_speedup == pytest.approx(4.5 / 4.0)

    def test_slack_is_zero_on_path_and_positive_off(self):
        result = critical_path(self.DIAMOND)
        slack = {s.name: s.slack for s in result.steps}
        assert slack["a"] == slack["b"] == slack["d"] == pytest.approx(0.0)
        # Longest path through c is a(1.0) + c(0.5) + d(1.0) = 2.5 of 4.0.
        assert slack["c"] == pytest.approx(1.5)
        on_path = {s.name for s in result.steps if s.on_critical_path}
        assert on_path == {"a", "b", "d"}

    def test_parallel_efficiency_capped_at_one(self):
        result = critical_path(self.DIAMOND, wall=1.0, workers=1)
        assert result.parallel_efficiency == 1.0
        relaxed = critical_path(self.DIAMOND, wall=4.5, workers=2)
        assert 0.0 < relaxed.parallel_efficiency <= 1.0

    def test_render_mentions_path_and_efficiency(self):
        text = critical_path(self.DIAMOND, wall=4.0, workers=2).render()
        assert "critical path: 3 step(s)" in text
        assert "-> b" in text and "slack" in text

    def test_unknown_dependency_raises(self):
        with pytest.raises(TraceError, match="unknown"):
            critical_path([("a", ("ghost",), 1.0)])

    def test_cycle_raises(self):
        with pytest.raises(TraceError, match="cycle"):
            critical_path([("a", ("b",), 1.0), ("b", ("a",), 1.0)])

    def test_empty_and_duplicate_raise(self):
        with pytest.raises(TraceError, match="no steps"):
            critical_path([])
        with pytest.raises(TraceError, match="duplicate"):
            critical_path([("a", (), 1.0), ("a", (), 2.0)])

    def test_analyze_perfetto_round_trip(self, tmp_path):
        tracer = _traced_run("thread")
        result = analyze_perfetto(tracer.to_perfetto())
        assert result.path == ("src", "dbl", "tot")
        assert result.workers == 2
        path = tracer.write_perfetto(tmp_path / "trace.json")
        reloaded = analyze_perfetto(json.loads(path.read_text()))
        assert reloaded.path == result.path
        assert reloaded.length == pytest.approx(result.length)

    def test_analyze_rejects_traces_without_steps(self):
        with pytest.raises(TraceError, match="no step spans"):
            analyze_perfetto({"traceEvents": []})
        with pytest.raises(TraceError, match="traceEvents"):
            analyze_perfetto({})


class TestPrometheusExport:
    def test_families_and_counts(self):
        tracer = _traced_run("sequential")
        text = tracer.to_prometheus()
        assert "# TYPE repro_run_wall_seconds gauge" in text
        assert 'repro_run_steps_total{outcome="ok"} 3' in text
        assert 'repro_step_attempts_total{step="dbl"} 1' in text
        assert 'repro_events_total{event="cache.miss"} 3' in text
        assert text.endswith("\n")

    def test_deterministic_label_order(self):
        first = _traced_run("sequential").to_prometheus().splitlines()
        second = _traced_run("sequential").to_prometheus().splitlines()

        def strip(lines):
            # Drop measured values and the per-run id label; what must be
            # stable is the family/label ordering itself.
            return [line.split(" ")[0].split('{run=')[0] for line in lines]

        assert strip(first) == strip(second)


class TestResourceProbe:
    def test_resource_spans_record_deltas(self):
        tracer = Tracer(resources=True)
        Pipeline(_steps(), ArtifactCache()).run(max_workers=1, trace=tracer)
        steps = _spans(tracer, "step")
        assert steps
        for event in steps:
            # rss_kb may be absent if the platform lacks getrusage, but
            # when present it must be a non-negative delta.
            rss = event["args"].get("rss_kb")
            assert rss is None or rss >= 0

    def test_resource_args_normalize_away(self):
        tracer = Tracer(resources=True)
        Pipeline(_steps(), ArtifactCache()).run(max_workers=1, trace=tracer)
        plain = Tracer()
        Pipeline(_steps(), ArtifactCache()).run(max_workers=1, trace=plain)
        assert _export_bytes(tracer) == _export_bytes(plain)
