"""Parallel DAG executor: determinism, scheduling, and single-flight.

The core guarantee is that executor choice is unobservable in the results:
for any valid step DAG, parallel execution returns the same context dict
(same values, same iteration order) and addresses the same cache keys as
sequential execution, including under ``force=True`` and warm caches. The
property-based suite drives that over arbitrary seeded topologies.
"""

import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ArtifactCache, Pipeline, PipelineStep
from repro.core.pipeline import PipelineError


def _combine(context, **params):
    """Deterministic, order-sensitive function of declared inputs + params.

    Module-level so the process executor can pickle it.
    """
    acc = tuple(sorted(context.items()))
    return (params.get("salt", 0), acc)


def _make_dag(n_steps: int, edge_bits: int, salts: tuple[int, ...]) -> list[PipelineStep]:
    """Decode a DAG from drawn integers: step i may depend on any j < i."""
    steps = []
    bit = 0
    for i in range(n_steps):
        deps = []
        for j in range(i):
            if (edge_bits >> bit) & 1:
                deps.append(f"s{j}")
            bit += 1
        steps.append(
            PipelineStep(
                name=f"s{i}",
                fn=_combine,
                params={"salt": salts[i % len(salts)] + i},
                depends_on=tuple(deps),
            )
        )
    return steps


@st.composite
def dags(draw):
    n = draw(st.integers(min_value=1, max_value=8))
    edge_bits = draw(st.integers(min_value=0, max_value=2 ** (n * (n - 1) // 2) - 1))
    salts = tuple(draw(st.lists(st.integers(0, 99), min_size=1, max_size=4)))
    return _make_dag(n, edge_bits, salts)


class TestParallelMatchesSequential:
    @settings(max_examples=30, deadline=None)
    @given(dags())
    def test_same_context_and_keys(self, steps):
        seq_pipe = Pipeline(steps, ArtifactCache())
        par_pipe = Pipeline(steps, ArtifactCache())
        seq = seq_pipe.run(max_workers=1)
        par = par_pipe.run(max_workers=4, executor="thread")
        assert seq == par
        assert list(seq) == list(par)  # same iteration order
        assert seq_pipe.keys() == par_pipe.keys()

    @settings(max_examples=15, deadline=None)
    @given(dags())
    def test_force_true_equivalent(self, steps):
        cache = ArtifactCache()
        pipe = Pipeline(steps, cache)
        first = pipe.run(max_workers=4, executor="thread")
        forced = pipe.run(force=True, max_workers=4, executor="thread")
        sequential_forced = Pipeline(steps, ArtifactCache()).run(force=True, max_workers=1)
        assert first == forced == sequential_forced

    @settings(max_examples=15, deadline=None)
    @given(dags())
    def test_warm_cache_equivalent(self, steps):
        cache = ArtifactCache()
        cold = Pipeline(steps, cache).run(max_workers=1)
        warm_pipe = Pipeline(steps, cache)
        warm = warm_pipe.run(max_workers=4, executor="thread")
        assert cold == warm
        assert warm_pipe.last_metrics.steps_cached == len(steps)

    def test_process_executor_matches_sequential(self):
        # One fixed diamond through the real process pool (hypothesis would
        # spawn a pool per example, which is needlessly slow).
        steps = _make_dag(5, edge_bits=0b1011011, salts=(3, 7))
        seq = Pipeline(steps, ArtifactCache()).run(max_workers=1)
        par = Pipeline(steps, ArtifactCache()).run(max_workers=2, executor="process")
        assert seq == par


class TestScheduling:
    def test_independent_steps_overlap(self):
        """Two sleep steps on two workers finish in ~one sleep, not two."""
        barrier = threading.Barrier(2, timeout=5)

        def mk(name):
            def fn(context):
                barrier.wait()  # only passes if both steps run concurrently
                return name

            return PipelineStep(name=name, fn=fn)

        pipe = Pipeline([mk("a"), mk("b")])
        out = pipe.run(max_workers=2, executor="thread")
        assert out == {"a": "a", "b": "b"}

    def test_dependency_order_respected(self):
        seen = []
        lock = threading.Lock()

        def mk(name, deps=()):
            def fn(context):
                with lock:
                    seen.append(name)
                return name

            return PipelineStep(name=name, fn=fn, depends_on=tuple(deps))

        Pipeline(
            [mk("a"), mk("b"), mk("c", ("a", "b")), mk("d", ("c",))]
        ).run(max_workers=4, executor="thread")
        assert seen.index("c") > seen.index("a")
        assert seen.index("c") > seen.index("b")
        assert seen.index("d") > seen.index("c")

    def test_step_error_propagates(self):
        def boom(context):
            raise ValueError("step exploded")

        steps = [
            PipelineStep(name="ok", fn=lambda context: 1),
            PipelineStep(name="bad", fn=boom),
        ]
        with pytest.raises(ValueError, match="step exploded"):
            Pipeline(steps).run(max_workers=2, executor="thread")

    def test_none_result_rejected_parallel(self):
        steps = [
            PipelineStep(name="a", fn=lambda context: 1),
            PipelineStep(name="none", fn=lambda context: None),
        ]
        with pytest.raises(PipelineError, match="returned None"):
            Pipeline(steps).run(max_workers=2, executor="thread")

    def test_unknown_executor_rejected(self):
        pipe = Pipeline([PipelineStep(name="a", fn=lambda context: 1)])
        with pytest.raises(PipelineError, match="unknown executor"):
            pipe.run(executor="gpu")

    def test_bad_worker_count_rejected(self):
        pipe = Pipeline([PipelineStep(name="a", fn=lambda context: 1)])
        with pytest.raises(PipelineError, match="max_workers"):
            pipe.run(max_workers=0)


class TestSingleFlight:
    def test_concurrent_get_or_compute_computes_once(self):
        cache = ArtifactCache()
        computes = []

        def slow():
            computes.append(1)
            time.sleep(0.05)
            return "value"

        results = []
        threads = [
            threading.Thread(target=lambda: results.append(cache.get_or_compute("k", slow)))
            for _ in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(computes) == 1
        assert {value for value, _ in results} == {"value"}
        assert sum(1 for _, cached in results if not cached) == 1

    def test_concurrent_pipelines_share_one_compute(self):
        cache = ArtifactCache()
        computes = []

        def fn(context):
            computes.append(1)
            time.sleep(0.05)
            return 42

        def run():
            Pipeline([PipelineStep(name="gen", fn=fn)], cache).run()

        threads = [threading.Thread(target=run) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(computes) == 1  # three pipelines rode the first's flight


class TestMetrics:
    def test_metrics_recorded_per_step(self):
        steps = _make_dag(4, edge_bits=0b000111, salts=(1,))
        pipe = Pipeline(steps, ArtifactCache())
        pipe.run(max_workers=2, executor="thread")
        metrics = pipe.last_metrics
        assert metrics.mode == "thread"
        assert metrics.max_workers == 2
        assert {m.name for m in metrics.steps} == {s.name for s in steps}
        assert metrics.steps_run == len(steps)
        assert metrics.steps_cached == 0
        assert metrics.wall_seconds > 0.0
        assert 0.0 <= metrics.worker_utilization() <= 1.0

    def test_cached_steps_counted(self):
        cache = ArtifactCache()
        steps = _make_dag(3, edge_bits=0b011, salts=(5,))
        Pipeline(steps, cache).run(max_workers=1)
        pipe = Pipeline(steps, cache)
        pipe.run(max_workers=1)
        assert pipe.last_metrics.steps_cached == 3
        assert pipe.last_metrics.steps_run == 0
        assert pipe.last_metrics.mode == "sequential"

    def test_render_mentions_every_step(self):
        pipe = Pipeline(_make_dag(3, edge_bits=0, salts=(2,)), ArtifactCache())
        pipe.run(max_workers=2, executor="thread")
        text = pipe.last_metrics.render()
        for name in ("s0", "s1", "s2"):
            assert name in text
