"""Unit tests for the durable run journal (segments, torn tails, resume state)."""

import json
import os

import pytest

from repro.core.journal import (
    JOURNAL_SUFFIX,
    JournalError,
    RunJournal,
    compact,
    latest_run_id,
    load_resume_state,
    new_run_id,
    read_journal,
)


def write_run(journal_dir, run_id=None, outcomes=(("a", "ok"), ("b", "ok")), end=True):
    """Journal one synthetic run; returns its run id."""
    with RunJournal.open(journal_dir, run_id) as journal:
        journal.run_start({name: f"key-{name}" for name, _ in outcomes}, executor="sequential")
        for name, outcome in outcomes:
            journal.step_start(name, f"key-{name}")
            journal.step_done(name, f"key-{name}", outcome, 1)
        if end:
            journal.run_end({"ok": len(outcomes)}, 0.01)
        return journal.run_id


class TestRunJournal:
    def test_records_round_trip(self, tmp_path):
        rid = write_run(tmp_path)
        segment = tmp_path / f"w{os.getpid()}{JOURNAL_SUFFIX}"
        assert segment.is_file()
        records, torn = read_journal(segment)
        assert not torn
        assert [r["event"] for r in records] == [
            "run_start", "step_start", "step_done",
            "step_start", "step_done", "run_end",
        ]
        assert all(r["run"] == rid for r in records)

    def test_segment_is_shared_across_runs_in_one_process(self, tmp_path):
        first = write_run(tmp_path)
        second = write_run(tmp_path)
        assert first != second
        segments = list(tmp_path.glob(f"*{JOURNAL_SUFFIX}"))
        assert len(segments) == 1  # one inode per writer, not per run
        assert load_resume_state(tmp_path, first).finished
        assert load_resume_state(tmp_path, second).finished

    def test_unavailable_directory_degrades(self, tmp_path):
        target = tmp_path / "not-a-dir"
        target.write_text("file in the way")
        journal = RunJournal.open(target)
        assert journal.unavailable
        assert journal.error is not None
        assert journal.step_start("a", "k") is False  # no-op, never raises
        journal.close()

    def test_fsync_mode_validation(self, tmp_path):
        with pytest.raises(ValueError, match="fsync"):
            RunJournal(tmp_path / "x.journal", new_run_id(), fsync="sometimes")

    def test_reopen_heals_torn_tail(self, tmp_path):
        rid = write_run(tmp_path)
        segment = tmp_path / f"w{os.getpid()}{JOURNAL_SUFFIX}"
        with open(segment, "ab") as fh:
            fh.write(b'{"event":"step_done","run":"x"')  # torn, no newline
        _, torn = read_journal(segment)
        assert torn
        follow_up = write_run(tmp_path)
        records, torn = read_journal(segment)
        assert torn  # the torn line itself is still dropped...
        assert any(  # ...but the next run's records parse cleanly after it
            r["event"] == "run_start" and r["run"] == follow_up for r in records
        )
        assert load_resume_state(tmp_path, rid).finished


class TestReadJournal:
    def test_unterminated_tail_is_dropped(self, tmp_path):
        path = tmp_path / "j.journal"
        path.write_bytes(b'{"event":"run_start","run":"r"}\n{"event":"step_')
        records, torn = read_journal(path)
        assert torn
        assert [r["event"] for r in records] == ["run_start"]

    def test_binary_garbage_line_is_dropped(self, tmp_path):
        path = tmp_path / "j.journal"
        path.write_bytes(b'{"event":"run_start","run":"r"}\n\x00\xff\xfe\n{"event":"run_end","run":"r"}\n')
        records, torn = read_journal(path)
        assert torn
        assert [r["event"] for r in records] == ["run_start", "run_end"]

    def test_blank_lines_are_not_torn(self, tmp_path):
        path = tmp_path / "j.journal"
        path.write_bytes(b'\n{"event":"run_start","run":"r"}\n\n')
        records, torn = read_journal(path)
        assert not torn and len(records) == 1


class TestLoadResumeState:
    def test_completed_frontier(self, tmp_path):
        rid = write_run(tmp_path, outcomes=(("a", "ok"), ("b", "cached")), end=False)
        state = load_resume_state(tmp_path, rid)
        assert state.run_id == rid
        assert state.completed == {"a": "key-a", "b": "key-b"}
        assert state.interrupted and not state.finished

    def test_failed_step_is_not_replayable(self, tmp_path):
        rid = write_run(tmp_path, outcomes=(("a", "ok"), ("b", "failed")), end=False)
        state = load_resume_state(tmp_path, rid)
        assert state.completed == {"a": "key-a"}
        assert state.outcomes["b"] == "failed"

    def test_later_failure_pops_earlier_completion(self, tmp_path):
        rid = write_run(
            tmp_path, outcomes=(("a", "ok"), ("a", "failed")), end=False
        )
        state = load_resume_state(tmp_path, rid)
        assert "a" not in state.completed

    def test_cache_unavailable_step_is_not_replayable(self, tmp_path):
        with RunJournal.open(tmp_path) as journal:
            journal.run_start({"a": "key-a"})
            journal.step_done("a", "key-a", "ok", 1, cache_unavailable=True)
            rid = journal.run_id
        state = load_resume_state(tmp_path, rid)
        assert state.completed == {}  # computed but never persisted

    def test_unknown_run_raises(self, tmp_path):
        write_run(tmp_path)
        with pytest.raises(JournalError, match="no journal records"):
            load_resume_state(tmp_path, "no-such-run")

    def test_directory_without_run_id_raises(self, tmp_path):
        write_run(tmp_path)
        with pytest.raises(JournalError, match="run_id"):
            load_resume_state(tmp_path)

    def test_single_file_defaults_to_most_recent_run(self, tmp_path):
        write_run(tmp_path)
        last = write_run(tmp_path)
        segment = tmp_path / f"w{os.getpid()}{JOURNAL_SUFFIX}"
        assert load_resume_state(segment).run_id == last


class TestLatestRunId:
    def test_most_recent_start_wins_across_segments(self, tmp_path):
        write_run(tmp_path)
        # A second "writer" segment, as another process would leave behind.
        other = tmp_path / "w99999.journal"
        other.write_text(
            json.dumps({"event": "run_start", "run": "zz-later", "ts": 9.9e12}) + "\n"
        )
        assert latest_run_id(tmp_path) == "zz-later"

    def test_empty_directory(self, tmp_path):
        assert latest_run_id(tmp_path) is None
        assert latest_run_id(tmp_path / "missing") is None


class TestRotation:
    def test_size_threshold_rotates_to_archive_segments(self, tmp_path):
        with RunJournal.open(tmp_path, rotate_bytes=256) as journal:
            journal.run_start({f"s{i}": f"key-{i}" for i in range(20)})
            for i in range(20):
                journal.step_start(f"s{i}", f"key-{i}")
                journal.step_done(f"s{i}", f"key-{i}", "ok", 1)
            journal.run_end({"ok": 20}, 0.01)
            rid = journal.run_id
            assert journal.rotations >= 1
        segments = list(tmp_path.glob(f"*{JOURNAL_SUFFIX}"))
        assert len(segments) == journal.rotations + 1  # archives + live tail
        # Every record survives across the rotation boundary...
        events = []
        for segment in sorted(segments):
            records, torn = read_journal(segment)
            assert not torn
            events.extend(r["event"] for r in records)
        assert events.count("step_done") == 20
        # ...and resume sees the run whole.
        assert load_resume_state(tmp_path, rid).finished

    def test_invalid_rotate_bytes(self, tmp_path):
        with pytest.raises(ValueError, match="rotate_bytes"):
            RunJournal(tmp_path / "x.journal", new_run_id(), rotate_bytes=0)

    def test_no_rotation_below_threshold(self, tmp_path):
        with RunJournal.open(tmp_path, rotate_bytes=1 << 20) as journal:
            journal.run_start({"a": "k"})
            journal.step_done("a", "k", "ok", 1)
            journal.run_end({"ok": 1}, 0.01)
        assert journal.rotations == 0
        assert len(list(tmp_path.glob(f"*{JOURNAL_SUFFIX}"))) == 1


class TestCompact:
    def test_drops_older_runs_keeps_latest(self, tmp_path):
        old = write_run(tmp_path)
        latest = write_run(tmp_path)
        stats = compact(tmp_path)
        assert stats["kept_run"] == latest
        assert stats["dropped_records"] > 0
        segment = tmp_path / f"w{os.getpid()}{JOURNAL_SUFFIX}"
        records, torn = read_journal(segment)
        assert not torn
        assert all(r["run"] == latest for r in records)
        assert old not in {r["run"] for r in records}

    def test_resume_after_compaction_unaffected(self, tmp_path):
        write_run(tmp_path)  # an old, finished run to drop
        rid = write_run(
            tmp_path, outcomes=(("a", "ok"), ("b", "cached")), end=False
        )
        before = load_resume_state(tmp_path, rid)
        compact(tmp_path)
        after = load_resume_state(tmp_path, rid)
        assert after.run_id == before.run_id == rid
        assert after.completed == before.completed == {"a": "key-a", "b": "key-b"}
        assert after.interrupted and not after.finished
        assert latest_run_id(tmp_path) == rid

    def test_removes_segments_with_only_stale_runs(self, tmp_path):
        # Archive segments full of an old run's records disappear entirely.
        with RunJournal.open(tmp_path, rotate_bytes=200) as journal:
            journal.run_start({f"s{i}": f"k{i}" for i in range(15)})
            for i in range(15):
                journal.step_done(f"s{i}", f"k{i}", "ok", 1)
            journal.run_end({"ok": 15}, 0.01)
        latest = write_run(tmp_path)
        n_before = len(list(tmp_path.glob(f"*{JOURNAL_SUFFIX}")))
        stats = compact(tmp_path)
        n_after = len(list(tmp_path.glob(f"*{JOURNAL_SUFFIX}")))
        assert n_before > 1
        assert stats["removed_segments"] >= 1
        assert n_after < n_before
        assert load_resume_state(tmp_path, latest).finished

    def test_explicit_keep_run(self, tmp_path):
        keep = write_run(tmp_path)
        write_run(tmp_path)
        compact(tmp_path, keep_run_id=keep)
        segment = tmp_path / f"w{os.getpid()}{JOURNAL_SUFFIX}"
        records, _ = read_journal(segment)
        assert {r["run"] for r in records} == {keep}

    def test_empty_directory_is_a_noop(self, tmp_path):
        stats = compact(tmp_path)
        assert stats["segments"] == 0
        assert stats["dropped_records"] == 0
