"""Retry, timeout, and keep-going semantics of the pipeline executor."""

import time

import pytest

from repro.core.faults import FaultPlan, FaultSpec, InjectedFault
from repro.core.pipeline import (
    NO_RETRY,
    ArtifactCache,
    Pipeline,
    PipelineError,
    PipelineStep,
    RetryPolicy,
    StepTimeout,
)

# Step functions are module-level so process-mode workers can unpickle them.


def _source(inputs, *, value=1):
    return {"v": value}


def _double(inputs):
    return {"v": inputs["a"]["v"] * 2}


def _triple(inputs):
    return {"v": inputs["a"]["v"] * 3}


def _combine(inputs):
    return {"v": inputs["b"]["v"] + inputs["c"]["v"]}


def _sleeper(inputs, *, seconds=5.0):
    time.sleep(seconds)
    return {"v": 1}


def diamond(cache=None, **pipeline_kwargs):
    """a -> (b, c) -> d."""
    return Pipeline(
        [
            PipelineStep("a", _source, params={"value": 2}),
            PipelineStep("b", _double, depends_on=("a",)),
            PipelineStep("c", _triple, depends_on=("a",)),
            PipelineStep("d", _combine, depends_on=("b", "c")),
        ],
        cache,
        **pipeline_kwargs,
    )


FAST_RETRY = RetryPolicy(max_attempts=3, backoff_base=0.0, jitter=0.0)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(PipelineError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(PipelineError, match="backoff_factor"):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(PipelineError, match="jitter"):
            RetryPolicy(jitter=-0.1)
        with pytest.raises(PipelineError, match="non-negative"):
            RetryPolicy(backoff_base=-1.0)

    def test_delay_deterministic(self):
        policy = RetryPolicy(backoff_base=0.1, jitter=0.2, seed=7)
        assert policy.delay("step", 1) == policy.delay("step", 1)
        assert policy.delay("step", 1) != policy.delay("step", 2)
        assert policy.delay("step", 1) != policy.delay("other", 1)
        assert policy.delay("step", 1) != RetryPolicy(
            backoff_base=0.1, jitter=0.2, seed=8
        ).delay("step", 1)

    def test_delay_bounds(self):
        policy = RetryPolicy(
            backoff_base=0.1, backoff_factor=2.0, max_backoff=0.3, jitter=0.5
        )
        for attempt in range(1, 8):
            d = policy.delay("s", attempt)
            base = min(0.1 * 2.0 ** (attempt - 1), 0.3)
            assert base <= d <= base * 1.5

    def test_no_jitter_is_exact_backoff(self):
        policy = RetryPolicy(backoff_base=0.25, backoff_factor=2.0, jitter=0.0)
        assert policy.delay("s", 1) == 0.25
        assert policy.delay("s", 2) == 0.5

    def test_retryable_filter(self):
        policy = RetryPolicy(retryable=(ValueError,))
        assert policy.retries(ValueError("x"))
        assert not policy.retries(TypeError("x"))
        # Default retries any Exception, including timeouts.
        assert RetryPolicy().retries(StepTimeout("t"))

    def test_no_retry_sentinel(self):
        assert NO_RETRY.max_attempts == 1
        assert NO_RETRY.delay("s", 1) == 0.0


class TestRetryExecution:
    def test_transient_failure_recovers(self):
        plan = FaultPlan.transient_errors(["b"])
        pipeline = diamond(default_retry=FAST_RETRY)
        results = pipeline.run(executor="sequential", fault_plan=plan)
        assert results["d"] == {"v": 10}
        report = pipeline.last_report
        assert report.ok
        assert report.retried == ("b",)
        assert report.outcome("b").attempts == 2
        assert report.outcome("a").attempts == 1

    def test_exhausted_attempts_raise(self):
        plan = FaultPlan([FaultSpec("b", attempts=())])  # permanent
        pipeline = diamond(default_retry=FAST_RETRY)
        with pytest.raises(InjectedFault):
            pipeline.run(executor="sequential", fault_plan=plan)
        outcome = pipeline.last_report.outcome("b")
        assert outcome.status == "failed"
        assert outcome.attempts == 3
        assert "InjectedFault" in outcome.error
        assert plan.fired("b", "error") == 3

    def test_non_retryable_fails_immediately(self):
        plan = FaultPlan([FaultSpec("b", attempts=())])
        pipeline = diamond(
            default_retry=RetryPolicy(
                max_attempts=5, backoff_base=0.0, jitter=0.0, retryable=(KeyError,)
            )
        )
        with pytest.raises(InjectedFault):
            pipeline.run(executor="sequential", fault_plan=plan)
        assert pipeline.last_report.outcome("b").attempts == 1

    def test_step_policy_overrides_default(self):
        steps = [
            PipelineStep("a", _source, params={"value": 2}),
            PipelineStep("b", _double, depends_on=("a",), retry=NO_RETRY),
        ]
        pipeline = Pipeline(steps, default_retry=FAST_RETRY)
        plan = FaultPlan.transient_errors(["b"])
        with pytest.raises(InjectedFault):
            pipeline.run(executor="sequential", fault_plan=plan)
        assert pipeline.last_report.outcome("b").attempts == 1

    def test_flaky_function_without_fault_plan(self):
        calls = []

        def flaky(inputs):
            calls.append(1)
            if len(calls) < 3:
                raise OSError("transient")
            return {"v": 42}

        pipeline = Pipeline(
            [PipelineStep("only", flaky)],
            default_retry=RetryPolicy(max_attempts=4, backoff_base=0.0, jitter=0.0),
        )
        results = pipeline.run(executor="sequential")
        assert results == {"only": {"v": 42}}
        assert pipeline.last_report.outcome("only").status == "retried"
        assert pipeline.last_report.outcome("only").attempts == 3

    def test_retry_settings_do_not_change_cache_keys(self):
        plain = diamond()
        tolerant = diamond(default_retry=FAST_RETRY, default_timeout=30.0)
        assert plain.keys() == tolerant.keys()


class TestKeepGoing:
    @pytest.mark.parametrize("executor", ["sequential", "thread"])
    def test_failure_isolates_subtree(self, executor):
        plan = FaultPlan([FaultSpec("b", attempts=())])
        pipeline = diamond()
        results = pipeline.run(
            executor=executor, max_workers=2, on_error="keep_going", fault_plan=plan
        )
        # a and the independent branch c complete; b failed; d skipped.
        assert set(results) == {"a", "c"}
        assert results["c"] == {"v": 6}
        report = pipeline.last_report
        assert report.failed == ("b",)
        assert report.skipped == ("d",)
        assert not report.ok
        assert "upstream failed" in report.outcome("d").error
        assert report.outcome("d").attempts == 0

    def test_root_failure_skips_everything_downstream(self):
        plan = FaultPlan([FaultSpec("a", attempts=())])
        pipeline = diamond()
        results = pipeline.run(
            executor="sequential", on_error="keep_going", fault_plan=plan
        )
        assert results == {}
        report = pipeline.last_report
        assert report.failed == ("a",)
        assert set(report.skipped) == {"b", "c", "d"}

    def test_raise_mode_still_populates_report(self):
        plan = FaultPlan([FaultSpec("c", attempts=())])
        pipeline = diamond()
        with pytest.raises(InjectedFault):
            pipeline.run(executor="sequential", on_error="raise", fault_plan=plan)
        report = pipeline.last_report
        assert report is not None
        assert "c" in report
        assert report.outcome("c").status == "failed"

    def test_unknown_on_error_rejected(self):
        with pytest.raises(PipelineError, match="on_error"):
            diamond().run(on_error="ignore")

    def test_keep_going_failed_step_not_cached(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        plan = FaultPlan([FaultSpec("b", attempts=())])
        pipeline = diamond(cache)
        pipeline.run(executor="sequential", on_error="keep_going", fault_plan=plan)
        # A rerun without the fault computes b (nothing poisoned the cache).
        rerun = diamond(cache)
        results = rerun.run(executor="sequential")
        assert results["d"] == {"v": 10}
        assert rerun.last_report.outcome("b").status == "ok"
        assert rerun.last_report.outcome("a").status == "cached"


class TestTimeouts:
    def test_cooperative_timeout_sequential(self):
        plan = FaultPlan([FaultSpec("b", kind="hang", hang_seconds=30.0)])
        pipeline = diamond(default_timeout=0.05)
        t0 = time.perf_counter()
        with pytest.raises(StepTimeout):
            pipeline.run(executor="sequential", fault_plan=plan)
        # The injected hang is capped near the deadline, not slept in full.
        assert time.perf_counter() - t0 < 5.0
        assert pipeline.last_report.outcome("b").status == "timeout"

    def test_timeout_retry_recovers_transient_hang(self):
        plan = FaultPlan([FaultSpec("b", kind="hang", hang_seconds=30.0, attempts=(1,))])
        pipeline = diamond(
            default_timeout=0.05,
            default_retry=RetryPolicy(max_attempts=2, backoff_base=0.0, jitter=0.0),
        )
        results = pipeline.run(executor="sequential", fault_plan=plan)
        assert results["d"] == {"v": 10}
        assert pipeline.last_report.outcome("b").status == "retried"

    def test_keep_going_classifies_timeout(self):
        plan = FaultPlan([FaultSpec("c", kind="hang", hang_seconds=30.0)])
        pipeline = diamond(default_timeout=0.05)
        results = pipeline.run(
            executor="sequential", on_error="keep_going", fault_plan=plan
        )
        assert set(results) == {"a", "b"}
        assert pipeline.last_report.outcome("c").status == "timeout"
        assert pipeline.last_report.skipped == ("d",)

    def test_process_mode_hard_kills_wedged_step(self):
        steps = [
            PipelineStep("slow", _sleeper, params={"seconds": 30.0}, timeout=0.3),
            PipelineStep("fast", _source, params={"value": 7}),
        ]
        pipeline = Pipeline(steps)
        t0 = time.perf_counter()
        results = pipeline.run(
            executor="process", max_workers=2, on_error="keep_going"
        )
        elapsed = time.perf_counter() - t0
        # The wedged worker is killed at the deadline, not after 30s.
        assert elapsed < 10.0
        assert set(results) == {"fast"}
        outcome = pipeline.last_report.outcome("slow")
        assert outcome.status == "timeout"
        assert "killed" in outcome.error

    def test_invalid_default_timeout_rejected(self):
        with pytest.raises(PipelineError, match="default_timeout"):
            diamond(default_timeout=0.0)


class TestRunWithReport:
    def test_returns_results_and_report(self):
        pipeline = diamond()
        results, report = pipeline.run_with_report(executor="sequential")
        assert results["d"] == {"v": 10}
        assert report.ok
        assert report is pipeline.last_report
        assert report.counts() == {"ok": 4}

    def test_cached_rerun_reports_cached(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        diamond(cache).run(executor="sequential")
        pipeline = diamond(cache)
        _, report = pipeline.run_with_report(executor="sequential")
        assert report.ok
        assert report.counts() == {"cached": 4}
        assert report.total_attempts == 0

    def test_render_mentions_failures(self):
        plan = FaultPlan([FaultSpec("b", attempts=())])
        pipeline = diamond()
        pipeline.run(executor="sequential", on_error="keep_going", fault_plan=plan)
        text = pipeline.last_report.render()
        assert "failed=1" in text and "skipped_upstream=1" in text
        assert "b: failed" in text
        metrics_text = pipeline.last_metrics.render()
        assert "1 failed" in metrics_text and "1 skipped" in metrics_text
