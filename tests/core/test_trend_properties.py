"""Property tests: structural invariants of the trend engine."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import TrendEngine, build_instrument
from repro.survey import Response, ResponseSet


def make_responses(flags_2011, flags_2024):
    """Binary uses_gpu answers from two lists of booleans."""
    q = build_instrument()
    responses = []
    i = 0
    for cohort, flags in (("2011", flags_2011), ("2024", flags_2024)):
        for flag in flags:
            responses.append(
                Response(f"r{i}", cohort, {"uses_gpu": "yes" if flag else "no"})
            )
            i += 1
    return ResponseSet(q, responses)


FLAGS = st.lists(st.booleans(), min_size=2, max_size=60)


@settings(max_examples=40, deadline=None)
@given(a=FLAGS, b=FLAGS)
def test_property_delta_matches_proportions(a, b):
    engine = TrendEngine(make_responses(a, b))
    row = engine.yes_no_trend("uses_gpu")
    p_a = sum(a) / len(a)
    p_b = sum(b) / len(b)
    assert row.baseline.estimate == pytest.approx(p_a)
    assert row.current.estimate == pytest.approx(p_b)
    assert row.delta == pytest.approx(p_b - p_a)
    assert row.n_baseline == len(a) and row.n_current == len(b)


@settings(max_examples=40, deadline=None)
@given(a=FLAGS, b=FLAGS)
def test_property_estimates_inside_intervals(a, b):
    row = TrendEngine(make_responses(a, b)).yes_no_trend("uses_gpu")
    assert row.baseline.low <= row.baseline.estimate <= row.baseline.high
    assert row.current.low <= row.current.estimate <= row.current.high
    assert 0.0 <= row.p_value <= 1.0


@settings(max_examples=30, deadline=None)
@given(a=FLAGS, b=FLAGS)
def test_property_swapping_cohorts_negates_delta(a, b):
    rs = make_responses(a, b)
    forward = TrendEngine(rs, "2011", "2024").yes_no_trend("uses_gpu")
    backward = TrendEngine(rs, "2024", "2011").yes_no_trend("uses_gpu")
    assert forward.delta == pytest.approx(-backward.delta)
    assert forward.p_value == pytest.approx(backward.p_value)
    assert forward.effect_h == pytest.approx(-backward.effect_h)


@settings(max_examples=25, deadline=None)
@given(a=FLAGS, b=FLAGS)
def test_property_response_order_irrelevant(a, b):
    rs = make_responses(a, b)
    shuffled = ResponseSet(
        rs.questionnaire, list(reversed(list(rs.responses)))
    )
    row_a = TrendEngine(rs).yes_no_trend("uses_gpu")
    row_b = TrendEngine(shuffled).yes_no_trend("uses_gpu")
    assert row_a.delta == pytest.approx(row_b.delta)
    assert row_a.p_value == pytest.approx(row_b.p_value)
