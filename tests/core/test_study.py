"""Tests for Study and the default study builder."""

import numpy as np
import pytest

from repro.core import Study, StudyError, build_default_study, build_instrument
from repro.core.calibration import profile_2024
from repro.cluster import JobTable
from repro.cluster.partitions import DEFAULT_CLUSTER
from repro.synth import generate_cohort


@pytest.fixture(scope="module")
def small_study():
    # Small window keeps the suite fast while exercising every component.
    return build_default_study(seed=5, n_baseline=60, n_current=80, months=2, jobs_per_day=120)


class TestBuildDefaultStudy:
    def test_components_present(self, small_study):
        assert len(small_study.baseline) == 60
        assert len(small_study.current) == 80
        assert len(small_study.telemetry) > 1000
        assert small_study.window_seconds == pytest.approx(2 * 30 * 86400)

    def test_deterministic(self):
        a = build_default_study(seed=9, n_baseline=20, n_current=20, months=1, jobs_per_day=50)
        b = build_default_study(seed=9, n_baseline=20, n_current=20, months=1, jobs_per_day=50)
        assert [dict(r.answers) for r in a.responses] == [
            dict(r.answers) for r in b.responses
        ]
        assert a.telemetry.start.tolist() == b.telemetry.start.tolist()

    def test_seed_changes_data(self):
        a = build_default_study(seed=1, n_baseline=20, n_current=20, months=1, jobs_per_day=50)
        b = build_default_study(seed=2, n_baseline=20, n_current=20, months=1, jobs_per_day=50)
        assert a.telemetry.start.tolist() != b.telemetry.start.tolist()

    def test_bad_sizes_rejected(self):
        with pytest.raises(StudyError):
            build_default_study(n_baseline=0)

    def test_validation_report_ok(self, small_study):
        assert small_study.validation_report().ok

    def test_telemetry_fields_overlap_survey_fields(self, small_study):
        survey_fields = {r.get("field") for r in small_study.responses}
        telemetry_fields = set(small_study.telemetry.fields())
        assert telemetry_fields <= survey_fields | {None}


class TestStudyValidation:
    def test_missing_cohort_rejected(self):
        q = build_instrument()
        only_2024 = generate_cohort(profile_2024(), q, 10, np.random.default_rng(0))
        with pytest.raises(StudyError):
            Study(
                responses=only_2024,
                telemetry=JobTable.empty(),
                cluster=DEFAULT_CLUSTER,
                window_seconds=100.0,
            )

    def test_bad_window_rejected(self, small_study):
        with pytest.raises(StudyError):
            Study(
                responses=small_study.responses,
                telemetry=small_study.telemetry,
                cluster=small_study.cluster,
                window_seconds=0.0,
            )
