"""Two concurrent report pipelines over one cache directory.

The cross-process guarantee under test (satellite of the crash-safety
tentpole): per-entry advisory file locks make the shared disk cache
single-flight *across processes* — every step is computed exactly once
between the two runs (the losing lock-waiter observes the winner's
published value), artifacts are never torn, and both processes finish
with outputs byte-identical to an isolated single-process run.
"""

import hashlib
import multiprocessing
import os
import pickle

from repro.core.pipeline import ArtifactCache
from repro.report.experiments import report_pipeline

mp = multiprocessing.get_context("fork")

# Trimmed study + two experiments: the full DAG shape (study stages
# fan out into experiment steps) at a fraction of the full runtime.
PIPELINE_KWARGS = dict(
    experiment_ids=["T1", "F1"],
    months=2,
    jobs_per_day=60.0,
    n_current=80,
)


def make_pipeline(cache_dir):
    return report_pipeline(cache=ArtifactCache(cache_dir), **PIPELINE_KWARGS)


def digest_results(results):
    # One pickle round trip first: a freshly computed object and its
    # cache-loaded copy are equal but not byte-equal on the *first* dumps
    # (set ordering, flattened memo refs); after one round trip the
    # representation is canonical and byte-stable.
    return {
        name: hashlib.sha256(
            pickle.dumps(pickle.loads(pickle.dumps(value)))
        ).hexdigest()
        for name, value in results.items()
    }


def run_report(cache_dir, barrier, out_q):
    pipeline = make_pipeline(cache_dir)
    barrier.wait(timeout=60)  # maximize overlap: both runs start together
    results, report = pipeline.run_with_report(executor="sequential")
    computed = tuple(o.name for o in report.outcomes if o.status == "ok")
    out_q.put((os.getpid(), digest_results(results), computed, report.ok))


def test_concurrent_processes_share_one_cache(tmp_path):
    cache_dir = tmp_path / "cache"
    barrier = mp.Barrier(2)
    out_q = mp.Queue()
    workers = [
        mp.Process(target=run_report, args=(cache_dir, barrier, out_q))
        for _ in range(2)
    ]
    for proc in workers:
        proc.start()
    outputs = [out_q.get(timeout=120) for _ in workers]
    for proc in workers:
        proc.join(timeout=30)
        assert proc.exitcode == 0

    (_, digests_a, computed_a, ok_a), (_, digests_b, computed_b, ok_b) = outputs
    assert ok_a and ok_b

    # Byte-identical outputs: across the two concurrent runs, and against
    # an isolated single-process run on a fresh cache.
    assert digests_a == digests_b
    baseline = make_pipeline(tmp_path / "baseline-cache")
    assert digests_a == digest_results(baseline.run(executor="sequential"))

    # No duplicate computation: per-entry file locks make each step's
    # compute single-flight across processes — the loser re-checks under
    # the lock and takes the winner's published artifact.
    all_steps = {step.name for step in baseline.steps}
    assert not (set(computed_a) & set(computed_b))
    assert set(computed_a) | set(computed_b) == all_steps

    # No torn artifacts: no stranded temp files, and every published
    # entry decodes cleanly from its protocol-5 container.
    assert not list(cache_dir.glob("*.tmp"))
    entries = list(cache_dir.glob("*.pkl"))
    assert len(entries) == len(all_steps)
    reader = ArtifactCache(cache_dir, locking=False)
    for path in entries:
        assert reader.peek(path.name.removesuffix(".pkl")) is not None
        # Each published entry is byte-identical to the isolated run's:
        # fsync-then-rename publication is all-or-nothing even with two
        # writers racing on the directory.
        assert path.read_bytes() == (
            tmp_path / "baseline-cache" / path.name
        ).read_bytes()

    # No wedged locks: a later run over the same cache replays everything.
    _, report = make_pipeline(cache_dir).run_with_report(executor="sequential")
    assert report.ok
    assert all(o.status == "cached" for o in report.outcomes)
