"""Tests for the cached study pipeline and the robustness harness."""

import pytest

from repro.analysis import HEADLINE_CLAIMS, headline_robustness
from repro.core import ArtifactCache, Study, run_cached_study, study_pipeline

FAST = dict(
    seed=9, n_baseline=25, n_current=30, months=1, jobs_per_day=40
)


class TestStudyPipeline:
    def test_produces_a_study(self):
        study = run_cached_study(**FAST)
        assert isinstance(study, Study)
        assert len(study.baseline) == 25
        assert len(study.telemetry) > 100

    def test_matches_reruns(self):
        cache = ArtifactCache()
        a = study_pipeline(cache=cache, **FAST).run()["study"]
        b = study_pipeline(cache=cache, **FAST).run()["study"]
        assert a.telemetry.start.tolist() == b.telemetry.start.tolist()
        assert cache.hits >= 4  # second run fully cached

    def test_survey_change_keeps_schedule_cached(self):
        cache = ArtifactCache()
        study_pipeline(cache=cache, **FAST).run()
        hits_before = cache.hits
        params = dict(FAST, n_current=35)
        study_pipeline(cache=cache, **params).run()
        # workload + schedule cached; survey + study recomputed.
        assert cache.hits == hits_before + 2

    def test_backfill_change_keeps_survey_and_workload_cached(self):
        cache = ArtifactCache()
        study_pipeline(cache=cache, **FAST).run()
        hits_before = cache.hits
        study_pipeline(cache=cache, backfill=False, **FAST).run()
        assert cache.hits == hits_before + 2  # survey + workload cached

    def test_months_change_reruns_schedule(self):
        cache = ArtifactCache()
        study_pipeline(cache=cache, **FAST).run()
        hits_before = cache.hits
        params = dict(FAST, months=2)
        study_pipeline(cache=cache, **params).run()
        assert cache.hits == hits_before + 1  # only survey cached


class TestHeadlineRobustness:
    @pytest.fixture(scope="class")
    def results(self):
        return headline_robustness(
            seeds=[1, 2, 3], n_baseline=100, n_current=120
        )

    def test_all_claims_scored(self, results):
        assert len(results) == len(HEADLINE_CLAIMS)
        for r in results:
            assert r.n_seeds == 3
            assert 0 <= r.direction_held <= 3
            assert r.significant <= r.direction_held

    def test_strong_claims_always_hold(self, results):
        by_claim = {r.claim: r for r in results}
        for claim in ("python use rises", "GPU use rises", "ML use rises",
                      "git becomes default"):
            assert by_claim[claim].direction_rate == 1.0, claim
            assert by_claim[claim].significance_rate == 1.0, claim

    def test_directions_match_mean_deltas(self, results):
        by_claim = {r.claim: r for r in results}
        assert by_claim["python use rises"].mean_delta > 0.3
        assert by_claim["matlab use falls"].mean_delta < 0.0
        assert by_claim["fortran use falls"].mean_delta < 0.0

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            headline_robustness(seeds=[])
