"""Shared-memory result transport: edge cases and lifecycle guarantees.

The zero-copy tentpole's failure contract: a worker SIGKILLed
mid-transfer must not leak ``/dev/shm`` segments past run end, non-numpy
payloads must ride the inline fallback (never a second serialization),
and the sequential/thread executors must never touch the shm layer at
all.
"""

import multiprocessing
import os
import signal

import numpy as np
import pytest

from repro.core import shm
from repro.core.pipeline import ArtifactCache, Pipeline, PipelineStep

mp = multiprocessing.get_context("fork")


def segments(prefix):
    return [n for n in os.listdir("/dev/shm") if n.startswith(prefix)]


requires_shm = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="no /dev/shm on this platform"
)


class TestEnvelopes:
    def test_non_numpy_payload_falls_back_inline(self):
        prefix = shm.run_prefix()
        value = {"rows": [1, 2, 3], "label": "survey"}
        envelope = shm.encode_result(value, prefix)
        assert envelope[0] == "inline"
        assert shm.decode_result(envelope) == value
        assert not segments(prefix)

    def test_small_arrays_stay_inline(self):
        prefix = shm.run_prefix()
        value = np.arange(16, dtype=np.float64)
        envelope = shm.encode_result(value, prefix)
        assert envelope[0] == "inline"
        np.testing.assert_array_equal(shm.decode_result(envelope), value)
        assert not segments(prefix)

    @requires_shm
    def test_large_arrays_ride_shared_memory(self):
        prefix = shm.run_prefix()
        value = {"telemetry": np.arange(300_000, dtype=np.float64)}
        envelope = shm.encode_result(value, prefix)
        assert envelope[0] == "shm"
        assert segments(prefix)  # segment alive until the consumer decodes
        decoded = shm.decode_result(envelope)
        np.testing.assert_array_equal(decoded["telemetry"], value["telemetry"])
        # Rehydrated arrays are writable, like an in-band unpickle's.
        decoded["telemetry"][0] = -1.0
        # decode released the segment: consuming the handle transfers and
        # ends ownership.
        assert not segments(prefix)

    def test_threshold_is_tunable(self):
        prefix = shm.run_prefix()
        value = np.arange(64, dtype=np.float64)
        envelope = shm.encode_result(value, prefix, threshold=8)
        try:
            assert envelope[0] == "shm"
        finally:
            shm.sweep(prefix)

    def test_malformed_envelope_rejected(self):
        with pytest.raises(ValueError, match="envelope"):
            shm.decode_result(("bogus", None))
        with pytest.raises(ValueError, match="envelope"):
            shm.decode_result(42)


def _encode_then_die(prefix, ready):
    # Simulates a worker killed after publishing its segment but before
    # the coordinator consumed the handle: the envelope is lost, the
    # segment survives as an orphan.
    shm.encode_result({"weights": np.ones(200_000)}, prefix)
    ready.set()
    os.kill(os.getpid(), signal.SIGKILL)


@requires_shm
class TestLeakRecovery:
    def test_sigkill_mid_transfer_leaks_nothing_after_sweep(self):
        prefix = shm.run_prefix()
        ready = mp.Event()
        worker = mp.Process(target=_encode_then_die, args=(prefix, ready))
        worker.start()
        assert ready.wait(timeout=30)
        worker.join(timeout=30)
        assert worker.exitcode == -signal.SIGKILL
        # The orphan exists — and run-end sweep removes exactly it.
        orphans = segments(prefix)
        assert len(orphans) == 1
        assert shm.sweep(prefix) == orphans
        assert not segments(prefix)

    def test_sweep_stale_removes_dead_pid_segments_only(self):
        # A segment whose embedded creator pid is dead is unconsumable.
        probe = mp.Process(target=os._exit, args=(0,))
        probe.start()
        probe.join()
        dead_pid = probe.pid
        live_prefix = shm.run_prefix()  # embeds our own (live) pid
        from multiprocessing import shared_memory

        dead_name = f"repro-shm-{dead_pid}-deadbeef-00000001"
        live_name = f"{live_prefix}-00000001"
        for name in (dead_name, live_name):
            seg = shared_memory.SharedMemory(name=name, create=True, size=64)
            shm._untrack(seg.name)
            seg.close()
        try:
            removed = shm.sweep_stale()
            assert dead_name in removed
            assert live_name not in removed
            assert segments(live_prefix) == [live_name]
        finally:
            shm.sweep(live_prefix)
            shm.sweep(dead_name)


def _big_array_step(context):
    return {"telemetry": np.arange(400_000, dtype=np.float64)}


def _sum_step(context):
    return float(context["gen"]["telemetry"].sum())


def make_pipeline(cache=None):
    return Pipeline(
        [
            PipelineStep(name="gen", fn=_big_array_step, params={}),
            PipelineStep(name="reduce", fn=_sum_step, params={}, depends_on=("gen",)),
        ],
        cache if cache is not None else ArtifactCache(),
    )


class TestExecutorIntegration:
    @pytest.mark.parametrize("executor", ["sequential", "thread"])
    def test_in_process_executors_bypass_shm(self, executor, monkeypatch):
        # If sequential/thread ever routed results through the transport,
        # these poisoned entry points would detonate.
        def boom(*args, **kwargs):  # pragma: no cover - must never run
            raise AssertionError("shm transport touched by in-process executor")

        monkeypatch.setattr(shm, "encode_result", boom)
        monkeypatch.setattr(shm, "decode_result", boom)
        results = make_pipeline().run(executor=executor)
        assert results["reduce"] == float(np.arange(400_000, dtype=np.float64).sum())

    @requires_shm
    def test_process_executor_round_trips_and_sweeps(self):
        before = segments("repro-shm-")
        results = make_pipeline().run(executor="process", max_workers=2)
        assert results["reduce"] == float(np.arange(400_000, dtype=np.float64).sum())
        np.testing.assert_array_equal(
            results["gen"]["telemetry"], np.arange(400_000, dtype=np.float64)
        )
        # Run end leaves no new segments behind.
        assert segments("repro-shm-") == before
