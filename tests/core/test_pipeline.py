"""Tests for the caching pipeline."""

import pytest

from repro.core import ArtifactCache, Pipeline, PipelineStep
from repro.core.pipeline import PipelineError


def counting_step(name, calls, value=1, params=None, depends_on=()):
    def fn(context, **kw):
        calls.append(name)
        upstream = sum(context[d] for d in depends_on)
        return value + upstream + sum(kw.values())

    return PipelineStep(name=name, fn=fn, params=params or {}, depends_on=depends_on)


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(PipelineError):
            Pipeline([])

    def test_duplicate_names_rejected(self):
        calls = []
        with pytest.raises(PipelineError):
            Pipeline([counting_step("a", calls), counting_step("a", calls)])

    def test_forward_dependency_rejected(self):
        calls = []
        with pytest.raises(PipelineError):
            Pipeline(
                [
                    counting_step("a", calls, depends_on=("b",)),
                    counting_step("b", calls),
                ]
            )


class TestExecution:
    def test_values_flow(self):
        calls = []
        p = Pipeline(
            [
                counting_step("gen", calls, value=10),
                counting_step("analyze", calls, value=1, depends_on=("gen",)),
            ]
        )
        out = p.run()
        assert out["gen"] == 10
        assert out["analyze"] == 11

    def test_cache_prevents_recompute(self):
        calls = []
        cache = ArtifactCache()
        steps = [counting_step("gen", calls, value=5)]
        Pipeline(steps, cache).run()
        Pipeline(steps, cache).run()
        assert calls == ["gen"]
        assert cache.hits == 1 and cache.misses == 1

    def test_force_bypasses_cache(self):
        calls = []
        cache = ArtifactCache()
        steps = [counting_step("gen", calls)]
        Pipeline(steps, cache).run()
        Pipeline(steps, cache).run(force=True)
        assert calls == ["gen", "gen"]

    def test_param_change_invalidates(self):
        calls = []
        cache = ArtifactCache()
        Pipeline([counting_step("gen", calls, params={"seed": 1})], cache).run()
        Pipeline([counting_step("gen", calls, params={"seed": 2})], cache).run()
        assert calls == ["gen", "gen"]

    def test_upstream_change_invalidates_downstream(self):
        calls = []
        cache = ArtifactCache()

        def build(seed):
            return [
                counting_step("gen", calls, params={"seed": seed}),
                counting_step("analyze", calls, depends_on=("gen",)),
            ]

        Pipeline(build(1), cache).run()
        Pipeline(build(2), cache).run()
        assert calls.count("analyze") == 2

    def test_downstream_change_keeps_upstream_cached(self):
        calls = []
        cache = ArtifactCache()

        def build(k):
            return [
                counting_step("gen", calls),
                counting_step("analyze", calls, params={"k": k}, depends_on=("gen",)),
            ]

        Pipeline(build(1), cache).run()
        Pipeline(build(2), cache).run()
        assert calls.count("gen") == 1
        assert calls.count("analyze") == 2

    def test_none_result_rejected(self):
        step = PipelineStep(name="bad", fn=lambda context: None)
        with pytest.raises(PipelineError):
            Pipeline([step]).run()


class TestDiskCache:
    def test_persists_across_instances(self, tmp_path):
        calls = []
        steps = [counting_step("gen", calls, value=3)]
        Pipeline(steps, ArtifactCache(tmp_path)).run()
        out = Pipeline(steps, ArtifactCache(tmp_path)).run()
        assert out["gen"] == 3
        assert calls == ["gen"]

    def test_clear(self, tmp_path):
        calls = []
        steps = [counting_step("gen", calls)]
        cache = ArtifactCache(tmp_path)
        Pipeline(steps, cache).run()
        cache.clear()
        Pipeline(steps, cache).run()
        assert calls == ["gen", "gen"]

    def test_get_miss_returns_none(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        assert cache.get("nope") is None
        assert cache.misses == 1
