"""Tests for the caching pipeline."""

import pytest

from repro.core import ArtifactCache, Pipeline, PipelineStep
from repro.core.pipeline import PipelineError


def counting_step(name, calls, value=1, params=None, depends_on=()):
    def fn(context, **kw):
        calls.append(name)
        upstream = sum(context[d] for d in depends_on)
        return value + upstream + sum(kw.values())

    return PipelineStep(name=name, fn=fn, params=params or {}, depends_on=depends_on)


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(PipelineError):
            Pipeline([])

    def test_duplicate_names_rejected(self):
        calls = []
        with pytest.raises(PipelineError):
            Pipeline([counting_step("a", calls), counting_step("a", calls)])

    def test_forward_dependency_rejected(self):
        calls = []
        with pytest.raises(PipelineError):
            Pipeline(
                [
                    counting_step("a", calls, depends_on=("b",)),
                    counting_step("b", calls),
                ]
            )


class TestExecution:
    def test_values_flow(self):
        calls = []
        p = Pipeline(
            [
                counting_step("gen", calls, value=10),
                counting_step("analyze", calls, value=1, depends_on=("gen",)),
            ]
        )
        out = p.run()
        assert out["gen"] == 10
        assert out["analyze"] == 11

    def test_cache_prevents_recompute(self):
        calls = []
        cache = ArtifactCache()
        steps = [counting_step("gen", calls, value=5)]
        Pipeline(steps, cache).run()
        Pipeline(steps, cache).run()
        assert calls == ["gen"]
        assert cache.hits == 1 and cache.misses == 1

    def test_force_bypasses_cache(self):
        calls = []
        cache = ArtifactCache()
        steps = [counting_step("gen", calls)]
        Pipeline(steps, cache).run()
        Pipeline(steps, cache).run(force=True)
        assert calls == ["gen", "gen"]

    def test_param_change_invalidates(self):
        calls = []
        cache = ArtifactCache()
        Pipeline([counting_step("gen", calls, params={"seed": 1})], cache).run()
        Pipeline([counting_step("gen", calls, params={"seed": 2})], cache).run()
        assert calls == ["gen", "gen"]

    def test_upstream_change_invalidates_downstream(self):
        calls = []
        cache = ArtifactCache()

        def build(seed):
            return [
                counting_step("gen", calls, params={"seed": seed}),
                counting_step("analyze", calls, depends_on=("gen",)),
            ]

        Pipeline(build(1), cache).run()
        Pipeline(build(2), cache).run()
        assert calls.count("analyze") == 2

    def test_downstream_change_keeps_upstream_cached(self):
        calls = []
        cache = ArtifactCache()

        def build(k):
            return [
                counting_step("gen", calls),
                counting_step("analyze", calls, params={"k": k}, depends_on=("gen",)),
            ]

        Pipeline(build(1), cache).run()
        Pipeline(build(2), cache).run()
        assert calls.count("gen") == 1
        assert calls.count("analyze") == 2

    def test_none_result_rejected(self):
        step = PipelineStep(name="bad", fn=lambda context: None)
        with pytest.raises(PipelineError):
            Pipeline([step]).run()


class TestFnIdentity:
    """The cache key must include the step function's identity (qualname +
    code hash): same-named steps with different bodies may not collide."""

    def test_different_fn_same_name_invalidates(self):
        cache = ArtifactCache()

        def v1(context):
            return "first"

        def v2(context):
            return "second"

        assert Pipeline([PipelineStep(name="gen", fn=v1)], cache).run()["gen"] == "first"
        # Regression: before fn identity entered the key, this returned the
        # stale "first" from v1's cache entry.
        assert Pipeline([PipelineStep(name="gen", fn=v2)], cache).run()["gen"] == "second"

    def test_same_qualname_different_code_invalidates(self):
        cache = ArtifactCache()

        def make(version):
            if version == 1:
                def fn(context):
                    return "v1"
            else:
                def fn(context):
                    return "v2"
            return fn

        assert Pipeline([PipelineStep(name="gen", fn=make(1))], cache).run()["gen"] == "v1"
        assert Pipeline([PipelineStep(name="gen", fn=make(2))], cache).run()["gen"] == "v2"

    def test_identical_factory_closures_share_key(self):
        # Closures minted twice from one factory have the same code object,
        # so re-building the pipeline still hits the cache.
        cache = ArtifactCache()
        calls = []
        Pipeline([counting_step("gen", calls, value=3)], cache).run()
        out = Pipeline([counting_step("gen", calls, value=3)], cache).run()
        assert out["gen"] == 3
        assert calls == ["gen"]

    def test_fingerprint_stable_for_same_fn(self):
        from repro.core.pipeline import fingerprint_callable

        def fn(context):
            return [1, (2, "x")]

        assert fingerprint_callable(fn) == fingerprint_callable(fn)


class TestCorruptCache:
    """Corrupt or truncated disk entries are misses, not crashes."""

    def test_garbage_bytes_is_miss_and_evicted(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("k", {"a": 1})
        path = tmp_path / "k.pkl"
        path.write_bytes(b"these are not pickle bytes")
        assert cache.get("k") is None
        assert cache.misses == 1
        assert not path.exists()  # bad entry dropped

    def test_truncated_pickle_is_miss(self, tmp_path):
        import pickle

        cache = ArtifactCache(tmp_path)
        blob = pickle.dumps(list(range(1000)), protocol=pickle.HIGHEST_PROTOCOL)
        (tmp_path / "k.pkl").write_bytes(blob[: len(blob) // 2])
        assert cache.get("k") is None
        assert not (tmp_path / "k.pkl").exists()

    def test_pipeline_recovers_from_corrupt_entry(self, tmp_path):
        calls = []
        steps = [counting_step("gen", calls, value=9)]
        cache = ArtifactCache(tmp_path)
        Pipeline(steps, cache).run()
        [entry] = list(tmp_path.glob("*.pkl"))
        entry.write_bytes(b"\x80garbage")
        out = Pipeline(steps, ArtifactCache(tmp_path)).run()
        assert out["gen"] == 9
        assert calls == ["gen", "gen"]  # recomputed, no crash

    def test_put_is_atomic_no_temp_left_behind(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("k", {"x": 2})
        assert [p.name for p in tmp_path.iterdir()] == ["k.pkl"]
        assert cache.get("k") == {"x": 2}


class TestDiskCache:
    def test_persists_across_instances(self, tmp_path):
        calls = []
        steps = [counting_step("gen", calls, value=3)]
        Pipeline(steps, ArtifactCache(tmp_path)).run()
        out = Pipeline(steps, ArtifactCache(tmp_path)).run()
        assert out["gen"] == 3
        assert calls == ["gen"]

    def test_clear(self, tmp_path):
        calls = []
        steps = [counting_step("gen", calls)]
        cache = ArtifactCache(tmp_path)
        Pipeline(steps, cache).run()
        cache.clear()
        Pipeline(steps, cache).run()
        assert calls == ["gen", "gen"]

    def test_get_miss_returns_none(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        assert cache.get("nope") is None
        assert cache.misses == 1
