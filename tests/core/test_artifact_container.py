"""The protocol-5 out-of-band artifact container.

Covers the cache-put no-copy satellite: publishing a large columnar
artifact must stream array bodies straight from their source buffers —
never a second in-memory copy of the payload — plus the container's
decode contract (legacy plain-pickle fallback, corruption handling, and
memory/disk byte agreement).
"""

import pickle
import tracemalloc

import numpy as np
import pytest

from repro.cluster.records import JobState, JobTable
from repro.core.pipeline import (
    _ARTIFACT_MAGIC,
    ArtifactCache,
    _decode_artifact,
    _encode_artifact,
)


def big_table(n=500_000):
    ids = np.arange(n, dtype=np.int64)
    submit = ids.astype(float)
    return JobTable(
        job_id=ids,
        user=np.full(n, "u0", dtype=object),
        field=np.full(n, "physics", dtype=object),
        partition=np.full(n, "cpu", dtype=object),
        submit=submit,
        start=submit + 1.0,
        end=submit + 10.0,
        cores=np.ones(n, dtype=np.int64),
        gpus=np.zeros(n, dtype=np.int64),
        state=np.full(n, JobState.COMPLETED.value, dtype=object),
        req_walltime=np.full(n, 100.0),
    )


def payload_bytes(table):
    total = 0
    for name in ("job_id", "submit", "start", "end", "cores", "gpus", "req_walltime"):
        total += getattr(table, name).nbytes
    for name in ("user", "field", "partition", "state"):
        total += table.cat(name).codes.nbytes
    return total


class TestNoCopyPut:
    def test_disk_put_streams_without_copying_payload(self, tmp_path):
        table = big_table()
        nbytes = payload_bytes(table)
        assert nbytes > 20 * 1024 * 1024  # the regression needs real volume
        cache = ArtifactCache(tmp_path)
        tracemalloc.start()
        try:
            assert cache.put("table", table)
            peak = tracemalloc.get_traced_memory()[1]
        finally:
            tracemalloc.stop()
        # Out-of-band frames are written straight from the column buffers;
        # a serializer that copied the payload (in-band pickle, joined
        # blob) would peak at >= nbytes here.
        assert peak < nbytes * 0.2, f"put copied the payload: peak {peak} of {nbytes}"
        loaded = cache.peek("table")
        np.testing.assert_array_equal(loaded.job_id, table.job_id)

    def test_round_trip_preserves_bytes_and_writability(self, tmp_path):
        table = big_table(1000)
        cache = ArtifactCache(tmp_path)
        cache.put("t", table)
        loaded = cache.peek("t")
        assert pickle.dumps(loaded) == pickle.dumps(table)
        # Rehydrated buffers must behave like an in-band unpickle's: the
        # container decoder hands out writable bytearray-backed frames.
        loaded.job_id[0] = -1
        assert loaded.job_id[0] == -1


class TestContainerCodec:
    def test_memory_and_disk_encodings_agree(self, tmp_path):
        value = {"telemetry": np.arange(100_000, dtype=np.float64), "label": "x"}
        memory = ArtifactCache()
        disk = ArtifactCache(tmp_path)
        memory.put("k", value)
        disk.put("k", value)
        assert memory.entry_bytes("k") == (tmp_path / "k.pkl").read_bytes()

    def test_container_magic_present(self):
        blob = _encode_artifact({"v": 1})
        assert blob.startswith(_ARTIFACT_MAGIC)
        assert _decode_artifact(blob) == {"v": 1}

    def test_legacy_plain_pickle_blobs_still_decode(self, tmp_path):
        value = {"rows": [1, 2, 3]}
        (tmp_path / "old.pkl").write_bytes(
            pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        )
        cache = ArtifactCache(tmp_path, locking=False)
        assert cache.peek("old") == value

    def test_truncated_container_treated_as_corrupt_miss(self, tmp_path):
        value = {"telemetry": np.arange(50_000, dtype=np.float64)}
        cache = ArtifactCache(tmp_path)
        cache.put("k", value)
        path = tmp_path / "k.pkl"
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        assert cache.peek("k") is None  # decoded as corrupt...
        assert not path.exists()  # ...and evicted

    @pytest.mark.parametrize("damage", [b"", b"\x80garbage", _ARTIFACT_MAGIC + b"\x00"])
    def test_decoder_raises_on_damage(self, damage):
        with pytest.raises(Exception):
            _decode_artifact(damage)

    def test_trailing_garbage_rejected(self):
        blob = _encode_artifact({"v": 1}) + b"extra"
        with pytest.raises(ValueError, match="trailing"):
            _decode_artifact(blob)
