"""Tests for the trend engine."""

import numpy as np
import pytest

from repro.core import TrendEngine, build_instrument, profile_2011, profile_2024
from repro.survey import Response, ResponseSet
from repro.synth import generate_study


@pytest.fixture(scope="module")
def responses():
    return generate_study(
        {"2011": (profile_2011(), 250), "2024": (profile_2024(), 250)},
        build_instrument(),
        seed=17,
    )


@pytest.fixture(scope="module")
def engine(responses):
    return TrendEngine(responses)


class TestConstruction:
    def test_requires_cohorts(self, responses):
        with pytest.raises(ValueError):
            TrendEngine(responses, baseline_cohort="1999")

    def test_cohort_split(self, engine):
        assert len(engine.baseline) == 250
        assert len(engine.current) == 250


class TestYesNoTrend:
    def test_ml_adoption_rises(self, engine):
        row = engine.yes_no_trend("uses_ml")
        assert row.delta > 0.3
        assert row.significant(0.001)
        assert row.current.estimate > row.baseline.estimate

    def test_row_structure(self, engine):
        row = engine.yes_no_trend("uses_gpu")
        assert row.n_baseline > 0 and row.n_current > 0
        assert row.baseline.low <= row.baseline.estimate <= row.baseline.high
        assert row.effect_h != 0.0
        assert row.adjusted_p is None

    def test_label_override(self, engine):
        assert engine.yes_no_trend("uses_ml", label="ML").label == "ML"


class TestSingleChoiceTrend:
    def test_git_rises(self, engine):
        row = engine.single_choice_trend("vcs", "git")
        assert row.delta > 0.4
        assert row.significant(1e-6)

    def test_unknown_option_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.single_choice_trend("vcs", "cvs")

    def test_writein_allowed_for_other(self, engine):
        # scheduler allows write-ins, so arbitrary option labels are legal.
        row = engine.single_choice_trend("scheduler", "flux")
        assert row.baseline.estimate == 0.0

    def test_wrong_kind_rejected(self, engine):
        with pytest.raises(TypeError):
            engine.single_choice_trend("languages", "python")


class TestMultiChoiceTrend:
    def test_language_table(self, engine):
        table = engine.multi_choice_trend("languages")
        assert len(table) == 11
        python = table["python"]
        fortran = table["fortran"]
        assert python.delta > 0.35
        assert fortran.delta < 0.0

    def test_unknown_label_lookup(self, engine):
        table = engine.multi_choice_trend("languages")
        with pytest.raises(KeyError):
            table["cobol"]

    def test_wrong_kind_rejected(self, engine):
        with pytest.raises(TypeError):
            engine.multi_choice_trend("vcs")

    def test_sorted_by_delta(self, engine):
        table = engine.multi_choice_trend("languages").sorted_by_delta()
        deltas = [abs(r.delta) for r in table]
        assert deltas == sorted(deltas, reverse=True)


class TestSingleChoiceTable:
    def test_vcs_family(self, engine):
        table = engine.single_choice_table("vcs")
        assert {r.label for r in table} == {"none", "git", "svn", "mercurial", "other"}

    def test_estimates_sum_to_one_per_cohort(self, engine):
        table = engine.single_choice_table("training")
        assert sum(r.baseline.estimate for r in table) == pytest.approx(1.0)
        assert sum(r.current.estimate for r in table) == pytest.approx(1.0)


class TestCorrection:
    def test_adjusted_p_filled(self, engine):
        table = engine.multi_choice_trend("languages").corrected("holm")
        assert all(r.adjusted_p is not None for r in table)
        assert all(r.adjusted_p >= r.p_value - 1e-12 for r in table)
        assert table.correction == "holm"

    def test_unknown_method(self, engine):
        with pytest.raises(ValueError):
            engine.multi_choice_trend("languages").corrected("xyz")

    def test_significance_uses_adjusted(self, engine):
        table = engine.multi_choice_trend("languages")
        raw = table["javascript"]
        adj = table.corrected("bonferroni")["javascript"]
        # With 11 comparisons a borderline raw p should weaken.
        if 0.004 < raw.p_value < 0.05:
            assert not adj.significant(0.05) or adj.adjusted_p < 0.05


class TestDegenerateCohorts:
    def test_empty_answer_cohort_rejected(self):
        q = build_instrument()
        responses = ResponseSet(
            q,
            [
                Response("a", "2011", {"uses_ml": "yes"}),
                Response("b", "2024", {}),  # never answered uses_ml
            ],
        )
        engine = TrendEngine(responses)
        with pytest.raises(ValueError):
            engine.yes_no_trend("uses_ml")
