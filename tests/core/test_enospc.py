"""Disk-exhaustion chaos: cache and journal writes fail, the run keeps going."""

import pytest

from repro.core.faults import FaultPlan, FaultSpec, JournalDiskFull
from repro.core.journal import RunJournal
from repro.core.pipeline import ArtifactCache, Pipeline, PipelineStep


def make_pipeline(cache_dir):
    cache = ArtifactCache(cache_dir)
    return Pipeline(
        [
            PipelineStep("gen", lambda inputs: list(range(6))),
            PipelineStep(
                "double",
                lambda inputs: [r * 2 for r in inputs["gen"]],
                depends_on=("gen",),
            ),
            PipelineStep(
                "total",
                lambda inputs: sum(inputs["double"]),
                depends_on=("double",),
            ),
        ],
        cache,
    )


class TestCacheEnospc:
    def test_run_completes_with_cache_unavailable_flag(self, tmp_path):
        pipeline = make_pipeline(tmp_path / "cache")
        plan = FaultPlan([FaultSpec(step="double", kind="enospc")])
        results, report = pipeline.run_with_report(
            executor="sequential", fault_plan=plan
        )
        assert results["total"] == 30  # value survives in memory
        assert report.ok
        assert report.cache_unavailable == ("double",)
        assert plan.fired("double", "enospc") == 1
        assert pipeline.cache.put_errors == 1
        assert "space" in (pipeline.cache.last_put_error or "")

    def test_unpersisted_step_recomputes_next_run(self, tmp_path):
        pipeline = make_pipeline(tmp_path / "cache")
        plan = FaultPlan([FaultSpec(step="double", kind="enospc")])
        pipeline.run(executor="sequential", fault_plan=plan)
        # Fresh pipeline, same cache dir: the degraded step's artifact never
        # hit disk, so it recomputes; its neighbours replay from cache.
        fresh = make_pipeline(tmp_path / "cache")
        results, report = fresh.run_with_report(executor="sequential")
        assert results["total"] == 30
        assert report.outcome("gen").status == "cached"
        assert report.outcome("double").status == "ok"
        assert not report.cache_unavailable

    def test_arm_enospc_skips_cache_served_steps(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        plan = FaultPlan([FaultSpec(step="x", kind="enospc")])
        # A step expected to come from cache must not leave a failure armed
        # that would fire on some unrelated later write.
        assert plan.arm_enospc(cache, "x", "key", will_compute=False) is False
        assert cache.put("key", 1) is True
        assert plan.arm_enospc(cache, "x", "key", will_compute=True) is True
        assert cache.put("key", 2) is False
        assert cache.put_errors == 1


class TestJournalEnospc:
    def test_journal_disk_full_degrades_but_run_completes(self, tmp_path):
        pipeline = make_pipeline(tmp_path / "cache")
        journal = RunJournal.open(tmp_path / "journals")
        journal.chaos = JournalDiskFull(after_records=2)
        try:
            results, report = pipeline.run_with_report(
                executor="sequential", journal=journal
            )
        finally:
            journal.close()
        assert results["total"] == 30
        assert report.ok
        assert journal.unavailable
        assert "space" in (journal.error or "")
        assert pipeline.last_metrics.journal_unavailable

    def test_degraded_journal_records_stop_but_never_raise(self, tmp_path):
        journal = RunJournal.open(tmp_path / "journals")
        journal.chaos = JournalDiskFull(after_records=0)
        try:
            assert journal.run_start({"a": "k"}) is False
            assert journal.unavailable
            # Every later record is a silent no-op.
            assert journal.step_start("a", "k") is False
            assert journal.run_end({"ok": 1}, 0.01) is False
        finally:
            journal.close()
