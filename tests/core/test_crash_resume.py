"""Crash-resume chaos: SIGKILL at every (step, event) coordinate, then resume.

The invariant under test is the tentpole's contract: a run interrupted at
*any* journal coordinate — before a record, after it, or mid-record (torn
write) — resumes to results byte-identical to an uninterrupted run,
replaying journaled-and-cached steps without re-executing them.

"Byte-identical" is asserted per artifact: the aggregate results dict is
a fresh object graph either way (replayed values are unpickled copies),
so cross-step pickle memoization would differ even for identical values.
"""

import pickle

import pytest

from repro.core.faults import CrashPoint, crash_coordinates, run_until_crash
from repro.core.journal import RunJournal, load_resume_state
from repro.core.pipeline import ArtifactCache, Pipeline, PipelineStep

STEP_NAMES = ("gen", "double", "stats", "merge")


# Module-level step functions so the pipeline survives pickling into a
# process-pool executor inside the crash child.
def _gen(inputs):
    return {"rows": list(range(8))}


def _double(inputs, **params):
    return [r * 2 for r in inputs["gen"]["rows"]]


def _stats(inputs, **params):
    return {"total": sum(inputs["gen"]["rows"])}


def _merge(inputs, **params):
    return {"doubled": inputs["double"], "total": inputs["stats"]["total"]}


def make_factory(tmp_path):
    def factory():
        cache = ArtifactCache(tmp_path / "cache")
        return Pipeline(
            [
                PipelineStep("gen", _gen),
                PipelineStep("double", _double, depends_on=("gen",)),
                PipelineStep("stats", _stats, depends_on=("gen",)),
                PipelineStep("merge", _merge, depends_on=("double", "stats")),
            ],
            cache,
        )

    return factory


def uninterrupted_results(tmp_path):
    pipeline = make_factory(tmp_path / "baseline")()
    return pipeline.run(executor="sequential")


def assert_artifacts_identical(results, expected):
    assert set(results) == set(expected)
    for name in expected:
        assert pickle.dumps(results[name]) == pickle.dumps(expected[name]), name


def crash_then_resume(tmp_path, point, run_kwargs=None):
    """Kill a child at ``point``, resume in this process, return the report."""
    factory = make_factory(tmp_path)
    journal_dir = tmp_path / "journals"
    run_id, exitcode = run_until_crash(
        factory, journal_dir, point, run_kwargs=run_kwargs
    )
    assert exitcode == -9, f"child survived crash point {point}"
    state = load_resume_state(journal_dir, run_id)
    assert state.interrupted
    pipeline = factory()
    with RunJournal.open(journal_dir) as journal:
        results, report = pipeline.run_with_report(
            executor="sequential", journal=journal, resume=state
        )
    return state, results, report


class TestCrashMatrixSequential:
    @pytest.mark.parametrize(
        "point",
        crash_coordinates(STEP_NAMES),
        ids=lambda p: f"{p.step}-{p.event}-{p.mode}",
    )
    def test_resume_is_byte_identical(self, tmp_path, point):
        expected = uninterrupted_results(tmp_path)
        state, results, report = crash_then_resume(tmp_path, point)
        assert_artifacts_identical(results, expected)
        assert report.ok
        # Every step the journal proved complete-and-cached was replayed,
        # not re-executed; everything else ran normally.
        assert set(report.replayed) == set(state.completed)
        assert report.replayed_from_journal == len(state.completed)
        for name in STEP_NAMES:
            if name in state.completed:
                assert report.outcome(name).attempts == 0


class TestCrashOtherExecutors:
    @pytest.mark.parametrize("step", STEP_NAMES)
    def test_thread_executor(self, tmp_path, step):
        expected = uninterrupted_results(tmp_path)
        _, results, report = crash_then_resume(
            tmp_path,
            CrashPoint(step, "step_done", "before"),
            run_kwargs={"executor": "thread", "max_workers": 2},
        )
        assert_artifacts_identical(results, expected)
        assert report.ok

    @pytest.mark.parametrize(
        "point",
        [
            CrashPoint("gen", "step_done", "after"),
            CrashPoint("double", "step_start", "before"),
            CrashPoint("stats", "step_done", "torn"),
            CrashPoint("merge", "step_done", "before"),
        ],
        ids=lambda p: f"{p.step}-{p.event}-{p.mode}",
    )
    def test_process_executor(self, tmp_path, point):
        expected = uninterrupted_results(tmp_path)
        _, results, report = crash_then_resume(
            tmp_path, point, run_kwargs={"executor": "process", "max_workers": 2}
        )
        assert_artifacts_identical(results, expected)
        assert report.ok


class TestResumeSemantics:
    def test_resume_reports_prior_run_id(self, tmp_path):
        state, _, report = crash_then_resume(
            tmp_path, CrashPoint("stats", "step_start", "before")
        )
        assert report.resumed and report.resumed_from == state.run_id

    def test_resume_with_stale_key_recomputes(self, tmp_path):
        factory = make_factory(tmp_path)
        journal_dir = tmp_path / "journals"
        run_id, _ = run_until_crash(
            factory, journal_dir, CrashPoint("merge", "step_start", "before")
        )
        state = load_resume_state(journal_dir, run_id)
        assert "double" in state.completed
        # A changed step definition changes the cache key: the journal's
        # completion record no longer matches and must NOT be replayed.
        cache = ArtifactCache(tmp_path / "cache")
        changed = Pipeline(
            [
                PipelineStep("gen", _gen),
                PipelineStep("double", _double, params={"v": 2}, depends_on=("gen",)),
                PipelineStep("stats", _stats, depends_on=("gen",)),
                PipelineStep("merge", _merge, depends_on=("double", "stats")),
            ],
            cache,
        )
        _, report = changed.run_with_report(executor="sequential", resume=state)
        assert report.ok
        assert "double" not in report.replayed

    def test_resume_from_evicted_cache_recomputes(self, tmp_path):
        factory = make_factory(tmp_path)
        journal_dir = tmp_path / "journals"
        run_id, _ = run_until_crash(
            factory, journal_dir, CrashPoint("merge", "step_start", "before")
        )
        state = load_resume_state(journal_dir, run_id)
        pipeline = factory()
        pipeline.cache.clear()  # journal says done, but the artifacts are gone
        expected = uninterrupted_results(tmp_path)
        results, report = pipeline.run_with_report(
            executor="sequential", resume=state
        )
        assert_artifacts_identical(results, expected)
        assert report.ok and not report.replayed  # everything re-executed
