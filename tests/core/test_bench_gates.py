"""Unit tests for the benchmark trajectory gates (synthetic records, no timing)."""

import json

import pytest

from repro.core.bench import (
    append_run,
    check_audit_overhead,
    check_journal_overhead,
    check_metrics_overhead,
    check_regression,
    check_retry_overhead,
    check_serve_latency,
    check_serve_overhead,
    check_trace_overhead,
    latest_run,
    load_runs,
)


def record(scale="quick", label="run", **benchmarks):
    return {
        "label": label,
        "scale": scale,
        "created": "2026-08-07T00:00:00Z",
        "machine": {"platform": "test"},
        "repeats": 2,
        "benchmarks": benchmarks,
    }


def sim(seconds):
    return {"seconds": seconds, "runs": [seconds]}


def overhead_entry(plain, wrapper):
    tolerant = plain + wrapper
    return {
        "seconds": tolerant,
        "runs": [tolerant],
        "detail": {
            "plain_seconds": plain,
            "wrapper_seconds": wrapper,
            "overhead": wrapper / plain,
        },
    }


class TestCheckRegression:
    def test_within_tolerance_passes(self, tmp_path):
        path = tmp_path / "BENCH.json"
        append_run(path, record(simulate_schedule=sim(1.0)))
        ok, msg = check_regression(record(simulate_schedule=sim(1.2)), path)
        assert ok and "120%" in msg

    def test_regression_fails(self, tmp_path):
        path = tmp_path / "BENCH.json"
        append_run(path, record(simulate_schedule=sim(1.0)))
        ok, _ = check_regression(record(simulate_schedule=sim(1.3)), path)
        assert not ok

    def test_missing_scale_passes_vacuously(self, tmp_path):
        path = tmp_path / "BENCH.json"
        append_run(path, record(scale="full", simulate_schedule=sim(1.0)))
        ok, msg = check_regression(record(scale="quick", simulate_schedule=sim(9.0)), path)
        assert ok and "skipping" in msg

    def test_latest_same_scale_run_is_baseline(self, tmp_path):
        path = tmp_path / "BENCH.json"
        append_run(path, record(label="old", simulate_schedule=sim(9.0)))
        append_run(path, record(label="new", simulate_schedule=sim(1.0)))
        assert latest_run(load_runs(path), "quick")["label"] == "new"
        ok, _ = check_regression(record(simulate_schedule=sim(1.3)), path)
        assert not ok  # compared against the 1.0s run, not the 9.0s one

    def test_rejects_non_trajectory_file(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(ValueError, match="trajectory"):
            check_regression(record(simulate_schedule=sim(1.0)), path)


class TestCheckRetryOverhead:
    def test_small_overhead_passes(self):
        ok, msg = check_retry_overhead(
            record(retry_overhead=overhead_entry(plain=0.02, wrapper=0.0001))
        )
        assert ok and "+0.5%" in msg

    def test_large_overhead_fails(self):
        ok, msg = check_retry_overhead(
            record(retry_overhead=overhead_entry(plain=0.02, wrapper=0.001))
        )
        assert not ok and "+5.0%" in msg

    def test_negative_overhead_passes(self):
        ok, _ = check_retry_overhead(
            record(retry_overhead=overhead_entry(plain=0.02, wrapper=-0.0001))
        )
        assert ok

    def test_custom_limit(self):
        entry = overhead_entry(plain=0.02, wrapper=0.001)
        ok, _ = check_retry_overhead(record(retry_overhead=entry), max_overhead=0.10)
        assert ok
        with pytest.raises(ValueError, match="max_overhead"):
            check_retry_overhead(record(retry_overhead=entry), max_overhead=-1.0)

    def test_missing_benchmark_passes_vacuously(self):
        ok, msg = check_retry_overhead(record(simulate_schedule=sim(1.0)))
        assert ok and "skipping" in msg


class TestCheckJournalOverhead:
    def test_small_overhead_passes(self):
        ok, msg = check_journal_overhead(
            record(journal_overhead=overhead_entry(plain=0.02, wrapper=0.0002))
        )
        assert ok and "+1.0%" in msg

    def test_large_overhead_fails(self):
        ok, msg = check_journal_overhead(
            record(journal_overhead=overhead_entry(plain=0.02, wrapper=0.001))
        )
        assert not ok and "+5.0%" in msg and "limit +2%" in msg

    def test_custom_limit(self):
        entry = overhead_entry(plain=0.02, wrapper=0.001)
        ok, _ = check_journal_overhead(record(journal_overhead=entry), max_overhead=0.10)
        assert ok
        with pytest.raises(ValueError, match="max_overhead"):
            check_journal_overhead(record(journal_overhead=entry), max_overhead=-1.0)

    def test_missing_benchmark_passes_vacuously(self):
        ok, msg = check_journal_overhead(record(simulate_schedule=sim(1.0)))
        assert ok and "skipping" in msg


class TestCheckTraceOverhead:
    def test_small_overhead_passes(self):
        ok, msg = check_trace_overhead(
            record(trace_overhead=overhead_entry(plain=0.02, wrapper=0.0004))
        )
        assert ok and "+2.0%" in msg

    def test_large_overhead_fails(self):
        ok, msg = check_trace_overhead(
            record(trace_overhead=overhead_entry(plain=0.02, wrapper=0.001))
        )
        assert not ok and "+5.0%" in msg and "limit +3%" in msg

    def test_negative_overhead_passes(self):
        ok, _ = check_trace_overhead(
            record(trace_overhead=overhead_entry(plain=0.02, wrapper=-0.0001))
        )
        assert ok

    def test_custom_limit(self):
        entry = overhead_entry(plain=0.02, wrapper=0.001)
        ok, _ = check_trace_overhead(record(trace_overhead=entry), max_overhead=0.10)
        assert ok
        with pytest.raises(ValueError, match="max_overhead"):
            check_trace_overhead(record(trace_overhead=entry), max_overhead=-1.0)

    def test_missing_benchmark_passes_vacuously(self):
        ok, msg = check_trace_overhead(record(simulate_schedule=sim(1.0)))
        assert ok and "skipping" in msg


class TestCheckAuditOverhead:
    def test_small_overhead_passes(self):
        ok, msg = check_audit_overhead(
            record(audit_overhead=overhead_entry(plain=0.02, wrapper=0.0006))
        )
        assert ok and "+3.0%" in msg

    def test_large_overhead_fails(self):
        ok, msg = check_audit_overhead(
            record(audit_overhead=overhead_entry(plain=0.02, wrapper=0.002))
        )
        assert not ok and "+10.0%" in msg and "limit +5%" in msg

    def test_negative_overhead_passes(self):
        ok, _ = check_audit_overhead(
            record(audit_overhead=overhead_entry(plain=0.02, wrapper=-0.0001))
        )
        assert ok

    def test_custom_limit(self):
        entry = overhead_entry(plain=0.02, wrapper=0.002)
        ok, _ = check_audit_overhead(record(audit_overhead=entry), max_overhead=0.20)
        assert ok
        with pytest.raises(ValueError, match="max_overhead"):
            check_audit_overhead(record(audit_overhead=entry), max_overhead=-1.0)

    def test_missing_benchmark_passes_vacuously(self):
        ok, msg = check_audit_overhead(record(simulate_schedule=sim(1.0)))
        assert ok and "skipping" in msg


def serve_entry(plain, wrapper, refresh):
    ingest = plain + wrapper
    return {
        "seconds": ingest,
        "runs": [ingest],
        "detail": {
            "plain_seconds": plain,
            "refresh_seconds": refresh,
            "rows": 1000,
            "wrapper_seconds": wrapper,
            "overhead": wrapper / refresh,
        },
    }


class TestCheckServeOverhead:
    def test_small_overhead_passes(self):
        ok, msg = check_serve_overhead(
            record(serve_ingest_overhead=serve_entry(0.002, 0.004, refresh=0.4))
        )
        assert ok and "+1.0%" in msg and "of refresh" in msg

    def test_large_overhead_fails(self):
        ok, msg = check_serve_overhead(
            record(serve_ingest_overhead=serve_entry(0.002, 0.08, refresh=0.4))
        )
        assert not ok and "+20.0%" in msg and "limit +10%" in msg

    def test_custom_limit(self):
        entry = serve_entry(0.002, 0.08, refresh=0.4)
        ok, _ = check_serve_overhead(
            record(serve_ingest_overhead=entry), max_overhead=0.30
        )
        assert ok
        with pytest.raises(ValueError, match="max_overhead"):
            check_serve_overhead(
                record(serve_ingest_overhead=entry), max_overhead=-1.0
            )

    def test_missing_benchmark_passes_vacuously(self):
        ok, msg = check_serve_overhead(record(simulate_schedule=sim(1.0)))
        assert ok and "skipping" in msg


def metrics_entry(cycle, instrument, request_us=20, publish_us=700):
    return {
        "seconds": cycle,
        "runs": [cycle],
        "detail": {
            "requests": 50,
            "request_us": request_us,
            "publish_us": publish_us,
            "instrument_seconds": instrument,
            "overhead": instrument / cycle,
        },
    }


class TestCheckMetricsOverhead:
    def test_small_overhead_passes(self):
        ok, msg = check_metrics_overhead(
            record(metrics_overhead=metrics_entry(0.1, 0.001))
        )
        assert ok and "+1.0%" in msg and "us/request" in msg

    def test_large_overhead_fails(self):
        ok, msg = check_metrics_overhead(
            record(metrics_overhead=metrics_entry(0.1, 0.01))
        )
        assert not ok and "+10.0%" in msg and "limit +3%" in msg

    def test_custom_limit(self):
        entry = metrics_entry(0.1, 0.01)
        ok, _ = check_metrics_overhead(
            record(metrics_overhead=entry), max_overhead=0.15
        )
        assert ok
        with pytest.raises(ValueError, match="max_overhead"):
            check_metrics_overhead(
                record(metrics_overhead=entry), max_overhead=-1.0
            )

    def test_missing_benchmark_passes_vacuously(self):
        ok, msg = check_metrics_overhead(record(simulate_schedule=sim(1.0)))
        assert ok and "skipping" in msg


def latency_entry(p50, p95, p99, requests=400, shed_rate=1.0):
    return {
        "seconds": 0.01,
        "runs": [0.01],
        "detail": {
            "threads": 4,
            "requests": requests,
            "p50": p50,
            "p95": p95,
            "p99": p99,
            "shed_rate": shed_rate,
        },
    }


class TestCheckServeLatency:
    def test_fast_p99_passes(self):
        ok, msg = check_serve_latency(
            record(serve_latency=latency_entry(0.0001, 0.0005, 0.002))
        )
        assert ok and "p99 2.00ms" in msg and "limit 500ms" in msg

    def test_slow_p99_fails(self):
        ok, msg = check_serve_latency(
            record(serve_latency=latency_entry(0.01, 0.2, 0.9))
        )
        assert not ok and "p99 900.00ms" in msg

    def test_custom_limit(self):
        entry = latency_entry(0.01, 0.2, 0.9)
        ok, _ = check_serve_latency(record(serve_latency=entry), max_p99=1.0)
        assert ok
        with pytest.raises(ValueError, match="max_p99"):
            check_serve_latency(record(serve_latency=entry), max_p99=0.0)

    def test_missing_benchmark_passes_vacuously(self):
        ok, msg = check_serve_latency(record(simulate_schedule=sim(1.0)))
        assert ok and "skipping" in msg

    def test_no_requests_passes_vacuously(self):
        ok, msg = check_serve_latency(
            record(serve_latency=latency_entry(None, None, None))
        )
        assert ok and "no requests" in msg


def sweep_record(points, fit, label="run"):
    return record(
        scale="full-sweep",
        label=label,
        scale_sweep={
            "seconds": sum(p["total_seconds"] for p in points),
            "runs": [p["total_seconds"] for p in points],
            "detail": {
                "base_months": 3,
                "base_jobs_per_day": 400.0,
                "factors": [p["scale_factor"] for p in points],
                "points": points,
                "fit": fit,
            },
        },
    )


def sweep_point(factor, total, rss):
    return {
        "scale_factor": factor,
        "jobs": 1000 * factor,
        "simulate_seconds": total * 0.9,
        "analysis_seconds": total * 0.1,
        "total_seconds": total,
        "max_rss_kb": rss,
    }


class TestFitScalingExponent:
    def test_linear_fits_one(self):
        from repro.core.bench import fit_scaling_exponent

        assert fit_scaling_exponent([1, 10, 100], [0.1, 1.0, 10.0]) == pytest.approx(1.0)

    def test_quadratic_fits_two(self):
        from repro.core.bench import fit_scaling_exponent

        assert fit_scaling_exponent([1, 10, 100], [0.1, 10.0, 1000.0]) == pytest.approx(2.0)

    def test_needs_two_points(self):
        from repro.core.bench import fit_scaling_exponent

        with pytest.raises(ValueError, match=">= 2"):
            fit_scaling_exponent([1], [0.1])

    def test_zero_wall_clamped_not_crashing(self):
        from repro.core.bench import fit_scaling_exponent

        exponent = fit_scaling_exponent([1, 10], [0.0, 1.0])
        assert exponent > 0


class TestCheckScaleSweep:
    def test_sublinear_sweep_passes(self):
        from repro.core.bench import check_scale_sweep

        points = [sweep_point(1, 0.2, 100_000), sweep_point(10, 2.2, 300_000)]
        fit = {"total_exponent": 1.04, "rss_exponent": 0.48}
        ok, msg = check_scale_sweep(sweep_record(points, fit))
        assert ok and "1.040" in msg and "wall ratio" in msg

    def test_superlinear_wall_fails(self):
        from repro.core.bench import check_scale_sweep

        points = [sweep_point(1, 0.2, 100_000), sweep_point(10, 6.0, 300_000)]
        ok, msg = check_scale_sweep(sweep_record(points, {"total_exponent": 1.48, "rss_exponent": 0.4}))
        assert not ok and "1.480" in msg

    def test_rss_blowup_fails_even_with_linear_wall(self):
        from repro.core.bench import check_scale_sweep

        points = [sweep_point(1, 0.2, 100_000), sweep_point(10, 2.0, 3_000_000)]
        ok, _ = check_scale_sweep(sweep_record(points, {"total_exponent": 1.0, "rss_exponent": 1.48}))
        assert not ok

    def test_custom_limits(self):
        from repro.core.bench import check_scale_sweep

        rec = sweep_record(
            [sweep_point(1, 0.2, 100_000), sweep_point(10, 6.0, 300_000)],
            {"total_exponent": 1.48, "rss_exponent": 0.4},
        )
        ok, _ = check_scale_sweep(rec, max_exponent=1.6)
        assert ok
        with pytest.raises(ValueError, match="positive"):
            check_scale_sweep(rec, max_exponent=-1.0)

    def test_missing_sweep_passes_vacuously(self):
        from repro.core.bench import check_scale_sweep

        ok, msg = check_scale_sweep(record(simulate_schedule=sim(1.0)))
        assert ok and "skipping" in msg

    def test_missing_rss_gate_is_skipped(self):
        from repro.core.bench import check_scale_sweep

        points = [sweep_point(1, 0.2, 0), sweep_point(10, 2.0, 0)]
        for p in points:
            del p["max_rss_kb"]
        ok, msg = check_scale_sweep(sweep_record(points, {"total_exponent": 1.0}))
        assert ok and "rss" not in msg


class TestRecordScaleFactor:
    def test_explicit_field_wins(self):
        from repro.core.bench import record_scale_factor

        rec = record(simulate_schedule=sim(1.0))
        rec["scale_factor"] = 2.5
        assert record_scale_factor(rec) == 2.5

    def test_legacy_records_resolve_via_scale_name(self):
        from repro.core.bench import record_scale_factor

        assert record_scale_factor(record(scale="full")) == 1.0
        assert record_scale_factor(record(scale="quick")) == 0.1

    def test_unknown_scale_defaults_to_one(self):
        from repro.core.bench import record_scale_factor

        assert record_scale_factor(record(scale="mystery")) == 1.0


class TestTiledJobs:
    def test_tiling_multiplies_volume_with_unique_ids(self):
        from repro.cluster import WorkloadModel, WorkloadParams
        from repro.core.bench import _tiled_jobs

        import numpy as np

        params = WorkloadParams(months=1, jobs_per_day=30.0)
        base = WorkloadModel(params).generate(np.random.default_rng(0))
        tiled = _tiled_jobs(base, 3, params.window_seconds)
        assert len(tiled) == 3 * len(base)
        ids = [j.job_id for j in tiled]
        assert len(set(ids)) == len(ids)
        # Tile 2 replays tile 1's dynamics exactly one window later.
        offset = tiled[len(base)].submit - tiled[0].submit
        assert offset == pytest.approx(params.window_seconds)
        assert tiled[len(base)].runtime == tiled[0].runtime

    def test_single_tile_is_identity(self):
        from repro.cluster import WorkloadModel, WorkloadParams
        from repro.core.bench import _tiled_jobs

        import numpy as np

        params = WorkloadParams(months=1, jobs_per_day=30.0)
        base = WorkloadModel(params).generate(np.random.default_rng(0))
        assert _tiled_jobs(base, 1, params.window_seconds) == base
