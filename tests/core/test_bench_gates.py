"""Unit tests for the benchmark trajectory gates (synthetic records, no timing)."""

import json

import pytest

from repro.core.bench import (
    append_run,
    check_audit_overhead,
    check_journal_overhead,
    check_regression,
    check_retry_overhead,
    check_trace_overhead,
    latest_run,
    load_runs,
)


def record(scale="quick", label="run", **benchmarks):
    return {
        "label": label,
        "scale": scale,
        "created": "2026-08-07T00:00:00Z",
        "machine": {"platform": "test"},
        "repeats": 2,
        "benchmarks": benchmarks,
    }


def sim(seconds):
    return {"seconds": seconds, "runs": [seconds]}


def overhead_entry(plain, wrapper):
    tolerant = plain + wrapper
    return {
        "seconds": tolerant,
        "runs": [tolerant],
        "detail": {
            "plain_seconds": plain,
            "wrapper_seconds": wrapper,
            "overhead": wrapper / plain,
        },
    }


class TestCheckRegression:
    def test_within_tolerance_passes(self, tmp_path):
        path = tmp_path / "BENCH.json"
        append_run(path, record(simulate_schedule=sim(1.0)))
        ok, msg = check_regression(record(simulate_schedule=sim(1.2)), path)
        assert ok and "120%" in msg

    def test_regression_fails(self, tmp_path):
        path = tmp_path / "BENCH.json"
        append_run(path, record(simulate_schedule=sim(1.0)))
        ok, _ = check_regression(record(simulate_schedule=sim(1.3)), path)
        assert not ok

    def test_missing_scale_passes_vacuously(self, tmp_path):
        path = tmp_path / "BENCH.json"
        append_run(path, record(scale="full", simulate_schedule=sim(1.0)))
        ok, msg = check_regression(record(scale="quick", simulate_schedule=sim(9.0)), path)
        assert ok and "skipping" in msg

    def test_latest_same_scale_run_is_baseline(self, tmp_path):
        path = tmp_path / "BENCH.json"
        append_run(path, record(label="old", simulate_schedule=sim(9.0)))
        append_run(path, record(label="new", simulate_schedule=sim(1.0)))
        assert latest_run(load_runs(path), "quick")["label"] == "new"
        ok, _ = check_regression(record(simulate_schedule=sim(1.3)), path)
        assert not ok  # compared against the 1.0s run, not the 9.0s one

    def test_rejects_non_trajectory_file(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(ValueError, match="trajectory"):
            check_regression(record(simulate_schedule=sim(1.0)), path)


class TestCheckRetryOverhead:
    def test_small_overhead_passes(self):
        ok, msg = check_retry_overhead(
            record(retry_overhead=overhead_entry(plain=0.02, wrapper=0.0001))
        )
        assert ok and "+0.5%" in msg

    def test_large_overhead_fails(self):
        ok, msg = check_retry_overhead(
            record(retry_overhead=overhead_entry(plain=0.02, wrapper=0.001))
        )
        assert not ok and "+5.0%" in msg

    def test_negative_overhead_passes(self):
        ok, _ = check_retry_overhead(
            record(retry_overhead=overhead_entry(plain=0.02, wrapper=-0.0001))
        )
        assert ok

    def test_custom_limit(self):
        entry = overhead_entry(plain=0.02, wrapper=0.001)
        ok, _ = check_retry_overhead(record(retry_overhead=entry), max_overhead=0.10)
        assert ok
        with pytest.raises(ValueError, match="max_overhead"):
            check_retry_overhead(record(retry_overhead=entry), max_overhead=-1.0)

    def test_missing_benchmark_passes_vacuously(self):
        ok, msg = check_retry_overhead(record(simulate_schedule=sim(1.0)))
        assert ok and "skipping" in msg


class TestCheckJournalOverhead:
    def test_small_overhead_passes(self):
        ok, msg = check_journal_overhead(
            record(journal_overhead=overhead_entry(plain=0.02, wrapper=0.0002))
        )
        assert ok and "+1.0%" in msg

    def test_large_overhead_fails(self):
        ok, msg = check_journal_overhead(
            record(journal_overhead=overhead_entry(plain=0.02, wrapper=0.001))
        )
        assert not ok and "+5.0%" in msg and "limit +2%" in msg

    def test_custom_limit(self):
        entry = overhead_entry(plain=0.02, wrapper=0.001)
        ok, _ = check_journal_overhead(record(journal_overhead=entry), max_overhead=0.10)
        assert ok
        with pytest.raises(ValueError, match="max_overhead"):
            check_journal_overhead(record(journal_overhead=entry), max_overhead=-1.0)

    def test_missing_benchmark_passes_vacuously(self):
        ok, msg = check_journal_overhead(record(simulate_schedule=sim(1.0)))
        assert ok and "skipping" in msg


class TestCheckTraceOverhead:
    def test_small_overhead_passes(self):
        ok, msg = check_trace_overhead(
            record(trace_overhead=overhead_entry(plain=0.02, wrapper=0.0004))
        )
        assert ok and "+2.0%" in msg

    def test_large_overhead_fails(self):
        ok, msg = check_trace_overhead(
            record(trace_overhead=overhead_entry(plain=0.02, wrapper=0.001))
        )
        assert not ok and "+5.0%" in msg and "limit +3%" in msg

    def test_negative_overhead_passes(self):
        ok, _ = check_trace_overhead(
            record(trace_overhead=overhead_entry(plain=0.02, wrapper=-0.0001))
        )
        assert ok

    def test_custom_limit(self):
        entry = overhead_entry(plain=0.02, wrapper=0.001)
        ok, _ = check_trace_overhead(record(trace_overhead=entry), max_overhead=0.10)
        assert ok
        with pytest.raises(ValueError, match="max_overhead"):
            check_trace_overhead(record(trace_overhead=entry), max_overhead=-1.0)

    def test_missing_benchmark_passes_vacuously(self):
        ok, msg = check_trace_overhead(record(simulate_schedule=sim(1.0)))
        assert ok and "skipping" in msg


class TestCheckAuditOverhead:
    def test_small_overhead_passes(self):
        ok, msg = check_audit_overhead(
            record(audit_overhead=overhead_entry(plain=0.02, wrapper=0.0006))
        )
        assert ok and "+3.0%" in msg

    def test_large_overhead_fails(self):
        ok, msg = check_audit_overhead(
            record(audit_overhead=overhead_entry(plain=0.02, wrapper=0.002))
        )
        assert not ok and "+10.0%" in msg and "limit +5%" in msg

    def test_negative_overhead_passes(self):
        ok, _ = check_audit_overhead(
            record(audit_overhead=overhead_entry(plain=0.02, wrapper=-0.0001))
        )
        assert ok

    def test_custom_limit(self):
        entry = overhead_entry(plain=0.02, wrapper=0.002)
        ok, _ = check_audit_overhead(record(audit_overhead=entry), max_overhead=0.20)
        assert ok
        with pytest.raises(ValueError, match="max_overhead"):
            check_audit_overhead(record(audit_overhead=entry), max_overhead=-1.0)

    def test_missing_benchmark_passes_vacuously(self):
        ok, msg = check_audit_overhead(record(simulate_schedule=sim(1.0)))
        assert ok and "skipping" in msg
