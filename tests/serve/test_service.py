"""StudyService behavior: incremental dirtiness, shedding, quarantine,
read-only degradation, drain, and restart warm-up."""

import pytest

from repro.core.faults import (
    FaultPlan,
    FaultSpec,
    PoisonRows,
    SkewedClock,
    WALDiskFull,
)
from repro.serve import (
    ServeConfig,
    ServiceDraining,
    ServiceReadOnly,
    StudyService,
)


def make_service(root, lines, *, ingest=True, **config):
    config.setdefault("months", 1)
    config.setdefault("experiments", ("X1",))
    svc = StudyService(root, ServeConfig(**config))
    if ingest:
        responses, sacct = lines
        svc.ingest("responses", responses, batch="r0")
        svc.ingest("sacct", sacct, batch="s0")
    return svc


class TestIncremental:
    def test_first_refresh_builds_everything(self, tmp_path, study_lines):
        svc = make_service(tmp_path, study_lines)
        result = svc.refresh()
        assert result.ran and result.reason == "refreshed"
        assert not result.failed
        assert {o.name: o.status for o in result.report.outcomes} == {
            "responses": "ok", "telemetry": "ok", "study": "ok", "exp:X1": "ok",
        }
        svc.close()

    def test_clean_refresh_is_a_noop(self, tmp_path, study_lines):
        svc = make_service(tmp_path, study_lines)
        svc.refresh()
        result = svc.refresh()
        assert not result.ran and result.reason == "clean"
        svc.close()

    def test_appended_responses_recompute_only_their_subtree(
        self, tmp_path, study_lines
    ):
        responses, sacct = study_lines
        svc = make_service(tmp_path, (responses[:-4], sacct))
        svc.refresh()
        svc.ingest("responses", responses, batch="r0")  # 4 fresh rows
        assert svc.dirty
        result = svc.refresh()
        statuses = {o.name: o.status for o in result.report.outcomes}
        # The untouched feed must never recompute — cached or replayed only.
        assert statuses["telemetry"] in ("cached", "replayed")
        assert statuses["responses"] == "ok"
        assert statuses["study"] == "ok"
        assert statuses["exp:X1"] == "ok"
        svc.close()

    def test_appended_sacct_leaves_responses_cached(self, tmp_path, study_lines):
        responses, sacct = study_lines
        svc = make_service(tmp_path, (responses, sacct[:40]))
        svc.refresh()
        svc.ingest("sacct", sacct, batch="s0")
        result = svc.refresh()
        statuses = {o.name: o.status for o in result.report.outcomes}
        assert statuses["responses"] in ("cached", "replayed")
        assert statuses["telemetry"] == "ok"
        svc.close()

    def test_waiting_for_data(self, tmp_path, study_lines):
        responses, _ = study_lines
        svc = make_service(tmp_path, study_lines, ingest=False)
        svc.ingest("responses", responses, batch="r0")
        result = svc.refresh()
        assert not result.ran and result.reason == "waiting_for_data"
        svc.close()


class TestRequests:
    def test_fresh_after_refresh(self, tmp_path, study_lines):
        svc = make_service(tmp_path, study_lines)
        svc.refresh()
        res = svc.request("X1")
        assert res.status == "fresh" and res.behind == 0
        assert res.artifact is not None
        svc.close()

    def test_request_refreshes_inline_when_dirty(self, tmp_path, study_lines):
        svc = make_service(tmp_path, study_lines)
        res = svc.request("X1")  # nothing built yet: request drives the build
        assert res.status == "fresh"
        assert svc.admission.stats()["admitted"] == 1
        svc.close()

    def test_unknown_experiment_raises(self, tmp_path, study_lines):
        svc = make_service(tmp_path, study_lines, ingest=False)
        with pytest.raises(KeyError, match="unknown experiment"):
            svc.request("nope")
        svc.close()

    def test_deadline_shedding_serves_last_good_stale(self, tmp_path, study_lines):
        responses, sacct = study_lines
        svc = make_service(tmp_path, (responses[:-4], sacct))
        svc.refresh()
        svc.ingest("responses", responses, batch="r0")
        svc.last_refresh_seconds = 10.0  # pretend refreshes are slow
        res = svc.request("X1", deadline=0.01)
        assert res.status == "stale" and res.reason == "deadline"
        assert res.artifact is not None and res.behind == 4
        assert svc.admission.stats()["shed_deadline"] == 1
        # Without a deadline the same request waits and gets fresh.
        res = svc.request("X1")
        assert res.status == "fresh"
        svc.close()

    def test_queue_full_sheds(self, tmp_path, study_lines):
        responses, sacct = study_lines
        svc = make_service(tmp_path, (responses[:-4], sacct), queue_size=1)
        svc.refresh()
        svc.ingest("responses", responses, batch="r0")
        with svc.admission.admit():  # someone else holds the only slot
            res = svc.request("X1")
        assert res.status == "stale" and res.reason == "queue_full"
        assert svc.admission.stats()["shed_queue_full"] == 1
        svc.close()


class TestBreaker:
    def test_failing_experiment_is_quarantined_and_served_stale(
        self, tmp_path, study_lines
    ):
        responses, sacct = study_lines
        svc = make_service(
            tmp_path, (responses[:-4], sacct), breaker_threshold=2
        )
        svc.refresh()  # last-good artifact exists
        poison = FaultPlan([FaultSpec(step="exp:X1", kind="error", attempts=())])
        for _ in range(2):
            result = svc.refresh(force=True, fault_plan=poison)
            assert "exp:X1" in result.failed
        assert "exp:X1" in svc.breaker.open_steps(svc.status()["cycle"])
        svc.ingest("responses", responses, batch="r0")  # artifact is now behind
        result = svc.refresh()
        assert "exp:X1" in result.excluded  # the rest of the study refreshed
        res = svc.request("X1")
        assert res.status == "stale" and res.reason == "quarantined"
        assert res.artifact is not None and res.behind > 0
        svc.close()

    def test_trial_after_cooldown_recovers(self, tmp_path, study_lines):
        svc = make_service(
            tmp_path, study_lines, breaker_threshold=1, breaker_cooldown=1
        )
        svc.refresh()
        poison = FaultPlan([FaultSpec(step="exp:X1", kind="error", attempts=())])
        svc.refresh(force=True, fault_plan=poison)  # opens the breaker
        excluded_once = svc.refresh(force=True)
        assert "exp:X1" in excluded_once.excluded  # cooldown holds
        trial = svc.refresh(force=True)  # cooldown elapsed: trial runs clean
        assert "exp:X1" not in trial.excluded
        assert svc.request("X1").status == "fresh"
        assert svc.breaker.open_steps(svc.status()["cycle"]) == []
        svc.close()

    def test_quarantined_feed_is_pinned_to_last_good_chunk(
        self, tmp_path, study_lines
    ):
        responses, sacct = study_lines
        svc = make_service(
            tmp_path,
            (responses, sacct[:40]),
            breaker_threshold=1,
            breaker_cooldown=8,
        )
        svc.refresh()
        committed = dict(svc._committed)
        svc.ingest("sacct", sacct, batch="s0")
        poison = FaultPlan([FaultSpec(step="telemetry", kind="error", attempts=())])
        result = svc.refresh(fault_plan=poison)
        assert "telemetry" in result.failed
        # Next cycle: the poisoned feed pins to its last committed chunk,
        # so the rest of the study still refreshes on sane input.
        result = svc.refresh(force=True)
        assert "telemetry" in result.pinned
        statuses = {o.name: o.status for o in result.report.outcomes}
        assert statuses["study"] == "ok"
        assert svc._committed["sacct"] == committed["sacct"]  # frontier held back
        svc.close()

    def test_breaker_state_survives_restart(self, tmp_path, study_lines):
        svc = make_service(tmp_path, study_lines, breaker_threshold=1)
        svc.refresh()
        poison = FaultPlan([FaultSpec(step="exp:X1", kind="error", attempts=())])
        svc.refresh(force=True, fault_plan=poison)
        open_before = svc.breaker.open_steps(svc._cycle)
        svc.close()
        again = StudyService(
            tmp_path, ServeConfig(months=1, experiments=("X1",), breaker_threshold=1)
        )
        assert again.breaker.open_steps(again._cycle) == open_before == ["exp:X1"]
        again.close()


class TestReadOnlyDegradation:
    def test_enospc_on_ingest_degrades_to_read_only_serving(
        self, tmp_path, study_lines
    ):
        responses, sacct = study_lines
        svc = make_service(tmp_path, study_lines)
        svc.refresh()
        svc.wal.chaos = WALDiskFull(after_records=0)
        with pytest.raises(ServiceReadOnly):
            svc.ingest("responses", ["{}"], batch="r9")
        assert svc.read_only and svc.mode == "read_only"
        # Serving survives: STALE answers from the last-good artifact.
        res = svc.request("X1")
        assert res.ok and res.artifact is not None
        # Recompute is refused (it would race the failing disk).
        assert svc.refresh().reason == "read_only"
        # Further ingestion is refused without touching the dead WAL.
        with pytest.raises(ServiceReadOnly):
            svc.ingest("sacct", sacct, batch="s9")
        assert svc.status()["mode"] == "read_only"
        svc.drain()  # clean exit path still works
        svc.close()

    def test_restart_after_enospc_recovers(self, tmp_path, study_lines):
        svc = make_service(tmp_path, study_lines)
        svc.refresh()
        svc.wal.chaos = WALDiskFull(after_records=0)
        with pytest.raises(ServiceReadOnly):
            svc.ingest("responses", ["{}"], batch="r9")
        svc.close()
        again = StudyService(tmp_path, ServeConfig(months=1, experiments=("X1",)))
        assert not again.read_only  # space came back; the WAL reopens clean
        receipt = again.ingest("responses", ['{"x": 1}'], batch="r9")
        assert receipt.accepted == 1
        again.close()


class TestDrain:
    def test_drain_refuses_rows_but_keeps_serving(self, tmp_path, study_lines):
        responses, sacct = study_lines
        svc = make_service(tmp_path, (responses[:-4], sacct))
        svc.refresh()
        svc.ingest("responses", responses, batch="r0")  # arrives, never refreshed
        svc.drain()
        assert svc.mode == "draining"
        with pytest.raises(ServiceDraining):
            svc.ingest("responses", ["{}"])
        assert svc.refresh().reason == "draining"
        res = svc.request("X1")  # behind the frontier, and no recompute allowed
        assert res.status == "stale" and res.reason == "draining"
        assert res.behind == 4
        svc.drain()  # idempotent
        svc.close()


class TestObservability:
    def test_poison_rows_surface_as_skip_counters(self, tmp_path, study_lines):
        responses, sacct = study_lines
        garbage = PoisonRows(count=2).rows("responses")
        svc = make_service(tmp_path, (responses + garbage, sacct))
        result = svc.refresh()
        assert not result.failed  # tolerant readers absorb the poison
        status = svc.status()
        assert status["skipped_rows"].get("read_responses_jsonl", 0) >= 2
        prom = svc.tracer.to_prometheus()
        assert "repro_skipped_rows_total" in prom
        assert 'reader="read_responses_jsonl"' in prom
        svc.close()

    def test_clock_skew_never_goes_negative(self, tmp_path, study_lines):
        clock = SkewedClock(jumps={3: -1000.0, 6: 2000.0})
        svc = StudyService(
            tmp_path, ServeConfig(months=1, experiments=("X1",)), clock=clock
        )
        responses, sacct = study_lines
        svc.ingest("responses", responses, batch="r0")
        svc.ingest("sacct", sacct, batch="s0")
        svc.refresh()
        for _ in range(6):
            status = svc.status()
            assert status["uptime_seconds"] >= 0.0
            assert status["staleness_seconds"] is None or (
                status["staleness_seconds"] >= 0.0
            )
        # Breaker cooldowns count cycles, so skew cannot wedge quarantine.
        assert svc.breaker.open_steps(svc._cycle) == []
        svc.close()

    def test_status_json_is_written_and_readable(self, tmp_path, study_lines):
        from repro.serve import read_status

        svc = make_service(tmp_path, study_lines)
        svc.refresh()
        status = read_status(tmp_path)
        assert status is not None
        assert status["mode"] == "serving" and status["ready"] is True
        assert status["wal"]["rows"]["responses"] > 0
        assert read_status(tmp_path / "nope") is None
        svc.close()


class TestRestart:
    def test_restart_rewarms_from_cache_without_recompute(
        self, tmp_path, study_lines
    ):
        svc = make_service(tmp_path, study_lines)
        svc.refresh()
        svc.drain()
        svc.close()
        again = StudyService(tmp_path, ServeConfig(months=1, experiments=("X1",)))
        result = again.refresh()  # warm-up cycle: everything replays
        statuses = {o.name: o.status for o in result.report.outcomes}
        assert all(s in ("cached", "replayed") for s in statuses.values()), statuses
        assert again.request("X1").status == "fresh"
        again.close()
