"""Unit tests for the durable ingest WAL (append, dedupe, heal, rotate)."""

import json

import pytest

from repro.serve.wal import (
    IngestWAL,
    WALError,
    WALUnavailable,
    parse_chunk,
    snapshot_rows,
)

ROWS = [f'{{"row": {i}}}' for i in range(8)]


class TestAppend:
    def test_round_trip(self, tmp_path):
        with IngestWAL(tmp_path) as wal:
            receipt = wal.append("responses", ROWS)
            assert receipt.accepted == len(ROWS)
            assert receipt.deduped == 0
            assert (receipt.first_seq, receipt.last_seq) == (0, len(ROWS) - 1)
            assert wal.count("responses") == len(ROWS)
            assert wal.rows("responses") == ROWS
            assert wal.count("sacct") == 0

    def test_blank_lines_and_crlf_are_normalized(self, tmp_path):
        with IngestWAL(tmp_path) as wal:
            receipt = wal.append("responses", ["a\r\n", "", "b\n", "   "])
            assert receipt.accepted == 2
            assert wal.rows("responses") == ["a", "b"]

    def test_unknown_kind_rejected(self, tmp_path):
        with IngestWAL(tmp_path) as wal:
            with pytest.raises(WALError, match="kind"):
                wal.append("telemetry", ROWS)  # step name, not a WAL kind

    def test_kinds_are_independent_streams(self, tmp_path):
        with IngestWAL(tmp_path) as wal:
            wal.append("responses", ROWS[:3])
            wal.append("sacct", ROWS[3:])
            assert wal.rows("responses") == ROWS[:3]
            assert wal.rows("sacct") == ROWS[3:]


class TestBatchDedupe:
    def test_full_resend_is_absorbed(self, tmp_path):
        with IngestWAL(tmp_path) as wal:
            wal.append("responses", ROWS, batch="b1")
            receipt = wal.append("responses", ROWS, batch="b1")
            assert receipt.accepted == 0
            assert receipt.deduped == len(ROWS)
            assert wal.count("responses") == len(ROWS)

    def test_partial_resend_appends_only_the_tail(self, tmp_path):
        with IngestWAL(tmp_path) as wal:
            wal.append("responses", ROWS[:5], batch="b1")
            receipt = wal.append("responses", ROWS, batch="b1")
            assert receipt.accepted == 3
            assert receipt.deduped == 5
            assert wal.rows("responses") == ROWS

    def test_dedupe_survives_restart(self, tmp_path):
        with IngestWAL(tmp_path) as wal:
            wal.append("responses", ROWS[:5], batch="b1")
        with IngestWAL(tmp_path) as wal:
            receipt = wal.append("responses", ROWS, batch="b1")
            assert receipt.deduped == 5
            assert wal.rows("responses") == ROWS

    def test_same_batch_id_on_different_kinds_is_distinct(self, tmp_path):
        with IngestWAL(tmp_path) as wal:
            wal.append("responses", ROWS[:2], batch="x")
            receipt = wal.append("sacct", ROWS[:2], batch="x")
            assert receipt.accepted == 2

    def test_unbatched_appends_never_dedupe(self, tmp_path):
        with IngestWAL(tmp_path) as wal:
            wal.append("responses", ROWS[:2])
            wal.append("responses", ROWS[:2])
            assert wal.count("responses") == 4


class TestChunks:
    def test_chunk_token_tracks_content(self, tmp_path):
        with IngestWAL(tmp_path) as wal:
            empty = wal.chunk("responses")
            wal.append("responses", ROWS[:4])
            first = wal.chunk("responses")
            wal.append("responses", ROWS[4:])
            second = wal.chunk("responses")
        assert empty != first != second
        assert parse_chunk(first)[0] == 4
        assert parse_chunk(second)[0] == 8

    def test_chunk_is_a_pure_function_of_the_rows(self, tmp_path):
        with IngestWAL(tmp_path / "a") as one:
            one.append("responses", ROWS, batch="b1")
            chunk_a = one.chunk("responses")
        with IngestWAL(tmp_path / "b") as two:
            two.append("responses", ROWS[:3], batch="b1")
            two.append("responses", ROWS, batch="b1")  # crash-retry shape
            chunk_b = two.chunk("responses")
        assert chunk_a == chunk_b

    def test_snapshot_rows_pins_the_prefix(self, tmp_path):
        with IngestWAL(tmp_path) as wal:
            wal.append("responses", ROWS[:4])
            chunk = wal.chunk("responses")
            wal.append("responses", ROWS[4:])  # arrives after the key was cut
        assert snapshot_rows(tmp_path, "responses", chunk) == ROWS[:4]

    def test_snapshot_rows_rejects_digest_mismatch(self, tmp_path):
        with IngestWAL(tmp_path) as wal:
            wal.append("responses", ROWS[:4])
            count, _ = parse_chunk(wal.chunk("responses"))
        with pytest.raises(WALError, match="do not match chunk"):
            snapshot_rows(tmp_path, "responses", f"{count}:{'0' * 16}")


class TestRecovery:
    def test_restart_replays_everything(self, tmp_path):
        with IngestWAL(tmp_path) as wal:
            wal.append("responses", ROWS[:5])
            wal.append("sacct", ROWS[5:])
            chunk = wal.chunk("responses")
        with IngestWAL(tmp_path) as wal:
            assert wal.rows("responses") == ROWS[:5]
            assert wal.rows("sacct") == ROWS[5:]
            assert wal.chunk("responses") == chunk

    def test_torn_tail_is_healed_on_reopen(self, tmp_path):
        with IngestWAL(tmp_path) as wal:
            wal.append("responses", ROWS)
        segment = sorted(tmp_path.glob("seg-*.wal"))[-1]
        raw = segment.read_bytes()
        segment.write_bytes(raw[:-10])  # torn mid-record, no trailing newline
        with IngestWAL(tmp_path) as wal:
            assert wal.healed_bytes > 0
            assert wal.count("responses") == len(ROWS) - 1
            # The heal truncated the file, so the next append starts clean.
            wal.append("responses", [ROWS[-1]])
            assert wal.rows("responses") == ROWS
        with IngestWAL(tmp_path) as wal:
            assert wal.healed_bytes == 0  # second reopen finds a clean log

    def test_poison_line_is_counted_and_skipped(self, tmp_path):
        with IngestWAL(tmp_path) as wal:
            wal.append("responses", ROWS[:3])
        segment = sorted(tmp_path.glob("seg-*.wal"))[-1]
        raw = segment.read_bytes()
        lines = raw.split(b"\n")
        lines[1] = b"\x80\x81 not json"  # interior corruption, not a tail
        segment.write_bytes(b"\n".join(lines))
        with IngestWAL(tmp_path) as wal:
            assert wal.poison_lines == 1
            assert wal.count("responses") == 2

    def test_rotation_spreads_segments_and_replays_in_order(self, tmp_path):
        with IngestWAL(tmp_path, rotate_bytes=128) as wal:
            for i, row in enumerate(ROWS):
                wal.append("responses", [row], batch=f"b{i}")
        segments = sorted(tmp_path.glob("seg-*.wal"))
        assert len(segments) > 1
        with IngestWAL(tmp_path) as wal:
            assert wal.rows("responses") == ROWS
            assert wal.stats()["segments"] == len(segments)


class TestDegradation:
    def test_oserror_disables_the_wal(self, tmp_path):
        def chaos(kind, data, fd):
            raise OSError(28, "injected: no space left on device")

        with IngestWAL(tmp_path) as wal:
            wal.append("responses", ROWS[:2])
            wal.chaos = chaos
            with pytest.raises(WALUnavailable):
                wal.append("responses", ROWS[2:4])
            assert wal.unavailable
            assert "space" in (wal.error or "")
            wal.chaos = None
            with pytest.raises(WALUnavailable):  # stays down until reopen
                wal.append("responses", ROWS[4:6])
            # Reads still serve the durable prefix.
            assert wal.count("responses") == 2

    def test_read_only_open_never_writes(self, tmp_path):
        with IngestWAL(tmp_path) as wal:
            wal.append("responses", ROWS)
        segment = sorted(tmp_path.glob("seg-*.wal"))[-1]
        raw = segment.read_bytes()
        segment.write_bytes(raw[:-10])  # torn tail
        ro = IngestWAL(tmp_path, read_only=True)
        assert segment.read_bytes() == raw[:-10]  # no heal, no truncate
        with pytest.raises(WALUnavailable):
            ro.append("responses", ["x"])
        ro.close()


class TestStats:
    def test_stats_shape(self, tmp_path):
        with IngestWAL(tmp_path) as wal:
            wal.append("responses", ROWS[:3])
            stats = wal.stats()
        assert stats["rows"] == {"responses": 3, "sacct": 0}
        assert stats["segments"] == 1
        assert stats["unavailable"] is False
        json.dumps(stats)  # status.json embeds this verbatim
