"""The serve chaos matrix: SIGKILL at every (ingest|recompute, event)
coordinate, restart, and converge to artifacts byte-identical to a clean
from-scratch rebuild of the same row set.

Each coordinate forks a child (own process group), lets it run the
service with a kill switch armed on the WAL (ingest side) or the refresh
journal (recompute side), reaps the SIGKILL, then restarts the service on
the surviving root. The client re-sends its batches (same batch ids — the
dedupe absorbs whatever was already durable), one refresh converges, and
the served artifact must render byte-identically to a pristine service
in a fresh root fed the identical rows.
"""

import multiprocessing
import os
import signal
import time

import pytest

from repro.audit.digests import render_artifact
from repro.core.faults import (
    CrashPoint,
    IngestCrashPoint,
    WALKillSwitch,
    JournalKillSwitch,
    ingest_crash_coordinates,
    serve_crash_coordinates,
)
from repro.serve import ServeConfig, StudyService

CONFIG = dict(months=1, experiments=("X1",))

SERVE_STEPS = ("responses", "telemetry", "study", "exp:X1")


def _ingest_all(svc, lines):
    responses, sacct = lines
    svc.ingest("responses", responses, batch="r0")
    svc.ingest("sacct", sacct, batch="s0")


def _reap(proc, timeout=60.0):
    """Poll the child's exitcode (join would block on inherited pipes)."""
    deadline = time.monotonic() + timeout
    while proc.exitcode is None and time.monotonic() < deadline:
        time.sleep(0.01)
    if proc.exitcode is None:  # pragma: no cover - hung child safety net
        proc.kill()
        proc.join(5.0)
    try:
        os.killpg(proc.pid, signal.SIGKILL)
    except (ProcessLookupError, PermissionError, OSError):
        pass
    return proc.exitcode


def _crash_ingest_child(root, lines, point):  # pragma: no cover - SIGKILLed
    os.setpgrp()
    svc = StudyService(root, ServeConfig(**CONFIG))
    svc.wal.chaos = WALKillSwitch(point)
    _ingest_all(svc, lines)
    os.kill(os.getpid(), signal.SIGKILL)  # coordinate never matched: die anyway


def _crash_refresh_child(root, lines, point):  # pragma: no cover - SIGKILLed
    os.setpgrp()
    svc = StudyService(root, ServeConfig(**CONFIG))
    _ingest_all(svc, lines)
    svc.journal_chaos = JournalKillSwitch(point)
    svc.refresh()
    os.kill(os.getpid(), signal.SIGKILL)  # coordinate never matched: die anyway


def _converge(root, lines):
    """Restart on the crashed root, re-send every batch, refresh once."""
    svc = StudyService(root, ServeConfig(**CONFIG))
    _ingest_all(svc, lines)  # same batch ids: dedupe absorbs the durable prefix
    result = svc.refresh()
    assert result.ran and not result.failed, result
    res = svc.request("X1")
    assert res.status == "fresh", res
    rendered = render_artifact(res.artifact)
    chunks = {k: svc.wal.chunk(k) for k in ("responses", "sacct")}
    svc.close()
    return rendered, chunks


@pytest.fixture(scope="module")
def clean_build(tmp_path_factory, study_lines):
    """The from-scratch reference: fresh root, all rows, one refresh."""
    root = tmp_path_factory.mktemp("clean")
    svc = StudyService(root, ServeConfig(**CONFIG))
    _ingest_all(svc, study_lines)
    svc.refresh()
    res = svc.request("X1")
    assert res.status == "fresh"
    rendered = render_artifact(res.artifact)
    chunks = {k: svc.wal.chunk(k) for k in ("responses", "sacct")}
    svc.close()
    return rendered, chunks


def _run_crashed(target, root, lines, point):
    ctx = multiprocessing.get_context("fork")
    proc = ctx.Process(target=target, args=(root, lines, point), daemon=False)
    proc.start()
    exitcode = _reap(proc)
    assert exitcode == -signal.SIGKILL, f"child exited {exitcode}, expected SIGKILL"
    return exitcode


class TestKillMidIngest:
    @pytest.mark.parametrize(
        "point",
        ingest_crash_coordinates(kinds=("responses", "sacct"), rows=(0, 3)),
        ids=lambda p: f"{p.kind}-row{p.row}-{p.mode}",
    )
    def test_sigkill_mid_ingest_converges_byte_identical(
        self, tmp_path, study_lines, clean_build, point
    ):
        _run_crashed(_crash_ingest_child, tmp_path, study_lines, point)
        rendered, chunks = _converge(tmp_path, study_lines)
        assert chunks == clean_build[1]  # same rows, same order, no dupes
        assert rendered == clean_build[0]

    def test_torn_wal_tail_is_healed_on_restart(self, tmp_path, study_lines):
        point = IngestCrashPoint(kind="responses", row=2, mode="torn")
        _run_crashed(_crash_ingest_child, tmp_path, study_lines, point)
        svc = StudyService(tmp_path, ServeConfig(**CONFIG))
        assert svc.wal.healed_bytes > 0  # the half-written record was dropped
        assert svc.wal.count("responses") == 2
        svc.close()


class TestKillMidRecompute:
    @pytest.mark.parametrize(
        "point",
        serve_crash_coordinates(SERVE_STEPS),
        ids=lambda p: f"{p.step}-{p.event}-{p.mode}",
    )
    def test_sigkill_mid_refresh_converges_byte_identical(
        self, tmp_path, study_lines, clean_build, point
    ):
        _run_crashed(_crash_refresh_child, tmp_path, study_lines, point)
        rendered, chunks = _converge(tmp_path, study_lines)
        assert chunks == clean_build[1]
        assert rendered == clean_build[0]

    def test_resume_replays_the_completed_prefix(self, tmp_path, study_lines):
        # Crash after the study published: the restarted refresh must not
        # recompute the feeds (journal resume + cache replay carry them).
        point = CrashPoint(step="study", event="step_done", mode="after")
        _run_crashed(_crash_refresh_child, tmp_path, study_lines, point)
        svc = StudyService(tmp_path, ServeConfig(**CONFIG))
        _ingest_all(svc, study_lines)
        result = svc.refresh()
        statuses = {o.name: o.status for o in result.report.outcomes}
        for name in ("responses", "telemetry", "study"):
            assert statuses[name] in ("cached", "replayed"), statuses
        svc.close()
