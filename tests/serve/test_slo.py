"""Serve-tier SLOs: policy loading, registry judging, the status fold,
the ``--status`` breach/stale exit paths, and the metrics ring."""

import io
import json
import os
import time

from repro.cli import EXIT_PARTIAL, main
from repro.obs.registry import MetricsRegistry
from repro.obs.ring import MetricsRing, read_ring_snapshot
from repro.obs.slo import SLOPolicy, evaluate_slo, load_slo
from repro.serve import ServeConfig, StudyService


def make_service(root, lines, *, ingest=True, **config):
    config.setdefault("months", 1)
    config.setdefault("experiments", ("X1",))
    svc = StudyService(root, ServeConfig(**config))
    if ingest:
        responses, sacct = lines
        svc.ingest("responses", responses, batch="r0")
        svc.ingest("sacct", sacct, batch="s0")
    return svc


def probe(root):
    out = io.StringIO()
    code = main(["serve", "--root", str(root), "--status"], out=out)
    return code, out.getvalue()


class TestLoadSlo:
    def test_valid_policy(self, tmp_path):
        (tmp_path / "slo.json").write_text(
            json.dumps({"p99_latency_seconds": 0.25, "max_behind_rows": 500})
        )
        policy = load_slo(tmp_path)
        assert policy.p99_latency_seconds == 0.25
        assert policy.max_behind_rows == 500
        assert policy.max_shed_rate is None

    def test_absent_file_is_no_policy(self, tmp_path):
        assert load_slo(tmp_path) is None

    def test_malformed_json_degrades_to_no_policy(self, tmp_path):
        (tmp_path / "slo.json").write_text("{oops")
        assert load_slo(tmp_path) is None

    def test_non_dict_and_empty_are_no_policy(self, tmp_path):
        (tmp_path / "slo.json").write_text("[1, 2]")
        assert load_slo(tmp_path) is None
        (tmp_path / "slo.json").write_text(json.dumps({"unknown_key": 1}))
        assert load_slo(tmp_path) is None

    def test_non_numeric_objective_ignored(self, tmp_path):
        (tmp_path / "slo.json").write_text(
            json.dumps({"p99_latency_seconds": "fast", "max_behind_rows": 10})
        )
        policy = load_slo(tmp_path)
        assert policy.p99_latency_seconds is None
        assert policy.max_behind_rows == 10


class TestEvaluateSlo:
    def test_p99_vacuous_without_observations(self):
        verdict = evaluate_slo(SLOPolicy(p99_latency_seconds=0.01), MetricsRegistry())
        assert verdict["ok"]
        assert verdict["checks"]["p99_latency_seconds"]["actual"] is None

    def test_p99_breach(self):
        reg = MetricsRegistry()
        reg.observe("repro_request_seconds", 0.5)
        verdict = evaluate_slo(SLOPolicy(p99_latency_seconds=0.01), reg)
        assert not verdict["ok"]
        assert not verdict["checks"]["p99_latency_seconds"]["ok"]

    def test_behind_rows_breach(self):
        reg = MetricsRegistry()
        reg.set_gauge("repro_staleness_rows_behind", 100)
        verdict = evaluate_slo(SLOPolicy(max_behind_rows=50), reg)
        assert not verdict["ok"]
        assert verdict["checks"]["max_behind_rows"]["actual"] == 100

    def test_shed_rate_math(self):
        reg = MetricsRegistry()
        reg.inc("repro_requests_total", 10)
        reg.inc("repro_shed_total", 2, reason="queue_full")
        reg.inc("repro_shed_total", 1, reason="deadline")
        verdict = evaluate_slo(SLOPolicy(max_shed_rate=0.25), reg)
        check = verdict["checks"]["max_shed_rate"]
        assert check["actual"] == 0.3
        assert not verdict["ok"]
        assert evaluate_slo(SLOPolicy(max_shed_rate=0.3), reg)["ok"]

    def test_shed_rate_vacuous_without_requests(self):
        verdict = evaluate_slo(SLOPolicy(max_shed_rate=0.0), MetricsRegistry())
        assert verdict["ok"]
        assert verdict["checks"]["max_shed_rate"]["actual"] == 0.0


class TestStatusFold:
    def test_loose_slo_reports_ok_and_probe_exits_clean(
        self, tmp_path, study_lines
    ):
        (tmp_path / "slo.json").write_text(
            json.dumps({"p99_latency_seconds": 60.0, "max_behind_rows": 1e9})
        )
        svc = make_service(tmp_path, study_lines)
        svc.refresh()
        svc.request("X1")
        svc._write_status()
        svc.close()
        code, text = probe(tmp_path)
        assert code == 0, text
        status = json.loads(text)
        assert status["slo"] == "ok"
        assert status["slo_detail"]["p99_latency_seconds"]["ok"]

    def test_tightened_slo_breaches_and_probe_exits_3(
        self, tmp_path, study_lines
    ):
        """The acceptance path: tighten slo.json until --status exits 3."""
        svc = make_service(tmp_path, study_lines)
        svc.refresh()
        svc.request("X1")
        # Redeclare *after* the service started: the policy is re-read on
        # every cycle, so no restart is needed for it to take effect.
        (tmp_path / "slo.json").write_text(
            json.dumps({"p99_latency_seconds": 1e-12})
        )
        svc._write_status()
        svc.close()
        code, text = probe(tmp_path)
        assert code == EXIT_PARTIAL
        body, trailer = text.rsplit("}\n", 1)
        assert json.loads(body + "}")["slo"] == "breached"
        assert "slo: breached (p99_latency_seconds)" in trailer

    def test_cli_one_shot_persists_post_request_verdict(
        self, tmp_path, study_lines
    ):
        """Pure-CLI breach path: a tight slo.json declared before a
        one-shot --request run must land as "breached" in status.json
        (the final publish sees the request's latency), so the next
        --status probe exits 3 with no library calls in between."""
        responses, sacct = study_lines
        data = tmp_path / "data"
        data.mkdir()
        (data / "responses.jsonl").write_text("\n".join(responses) + "\n")
        (data / "accounting.sacct").write_text("\n".join(sacct) + "\n")
        root = tmp_path / "svc"
        root.mkdir()
        (root / "slo.json").write_text(json.dumps({"p99_latency_seconds": 1e-12}))
        out = io.StringIO()
        code = main(
            [
                "serve", "--root", str(root), "--months", "1",
                "--experiments", "X1",
                "--ingest-responses", str(data / "responses.jsonl"),
                "--ingest-sacct", str(data / "accounting.sacct"),
                "--refresh", "--request", "X1",
            ],
            out=out,
        )
        assert code == 0, out.getvalue()
        code, text = probe(root)
        assert code == EXIT_PARTIAL
        assert "slo: breached (p99_latency_seconds)" in text

    def test_no_policy_means_slo_null(self, tmp_path, study_lines):
        svc = make_service(tmp_path, study_lines)
        svc.refresh()
        svc._write_status()
        svc.close()
        code, text = probe(tmp_path)
        assert code == 0
        assert json.loads(text)["slo"] is None


class TestStaleProbe:
    def test_old_status_under_declared_interval_exits_3(
        self, tmp_path, study_lines
    ):
        svc = make_service(tmp_path, study_lines, status_interval=0.1)
        svc.refresh()
        svc._write_status()
        svc.close()
        stamp = time.time() - 100.0
        os.utime(tmp_path / "status.json", (stamp, stamp))
        code, text = probe(tmp_path)
        assert code == EXIT_PARTIAL
        assert "stale probe" in text and "wedged" in text

    def test_fresh_status_is_clean(self, tmp_path, study_lines):
        svc = make_service(tmp_path, study_lines, status_interval=0.1)
        svc.refresh()
        svc._write_status()
        svc.close()
        code, text = probe(tmp_path)
        assert code == 0
        assert "stale probe" not in text

    def test_one_shot_service_declares_no_interval(self, tmp_path, study_lines):
        """Without --loop there is no cadence promise, so an old
        status.json is just an idle service, not a wedged one."""
        svc = make_service(tmp_path, study_lines)
        svc.refresh()
        svc._write_status()
        svc.close()
        assert json.loads(
            (tmp_path / "status.json").read_text()
        )["refresh_interval_seconds"] is None
        stamp = time.time() - 100.0
        os.utime(tmp_path / "status.json", (stamp, stamp))
        code, text = probe(tmp_path)
        assert code == 0
        assert "stale probe" not in text


class TestServiceRegistry:
    def test_requests_land_in_histogram_and_ring(self, tmp_path, study_lines):
        svc = make_service(tmp_path, study_lines)
        svc.refresh()
        for _ in range(5):
            svc.request("X1")
        assert svc.registry.histogram_count("repro_request_seconds") == 5
        assert svc.registry.value("repro_requests_total") == 5
        svc._write_status()
        svc.close()
        snap = read_ring_snapshot(tmp_path)
        assert snap is not None
        reg = MetricsRegistry.from_snapshot(snap)
        assert reg.histogram_count("repro_request_seconds") == 5

    def test_deadline_shed_counts(self, tmp_path, study_lines):
        responses, sacct = study_lines
        svc = make_service(tmp_path, (responses[:-4], sacct))
        svc.refresh()
        svc.ingest("responses", responses, batch="r1")  # dirty again
        result = svc.request("X1", deadline=1e-9)
        assert result.reason == "deadline"
        assert svc.registry.value("repro_shed_total", reason="deadline") == 1
        svc.close()

    def test_metrics_disabled_leaves_no_surface(self, tmp_path, study_lines):
        svc = make_service(tmp_path, study_lines, metrics=False)
        svc.refresh()
        svc.request("X1")
        svc._write_status()
        svc.close()
        assert svc.registry is None
        assert read_ring_snapshot(tmp_path) is None


class TestMetricsRing:
    def test_rotation_is_bounded(self, tmp_path):
        ring = MetricsRing(tmp_path / "metrics", rotate_bytes=200, keep=2)
        reg = MetricsRegistry()
        reg.inc("repro_requests_total", 1)
        for _ in range(20):
            assert ring.publish(reg.snapshot(), reg.to_text())
        rotated = ring.rotated_files()
        assert 1 <= len(rotated) <= 2  # pruned down to keep
        assert ring.current.exists() or rotated
        # Every frame header carries its sequence number.
        assert "# frame" in (
            rotated[-1].read_text() if rotated else ring.current.read_text()
        )

    def test_snapshot_is_atomic_latest(self, tmp_path):
        ring = MetricsRing(tmp_path / "metrics")
        reg = MetricsRegistry()
        reg.inc("repro_requests_total", 7)
        ring.publish(reg.snapshot(), reg.to_text())
        snap = read_ring_snapshot(tmp_path)
        assert MetricsRegistry.from_snapshot(snap).value("repro_requests_total") == 7

    def test_read_absent_ring_is_none(self, tmp_path):
        assert read_ring_snapshot(tmp_path) is None
