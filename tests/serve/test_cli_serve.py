"""``repro serve`` CLI: exit-code contract, probes, and graceful drain."""

import io
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import EXIT_PARTIAL, main
from repro.serve import read_status


@pytest.fixture()
def data_dir(tmp_path, study_lines):
    responses, sacct = study_lines
    d = tmp_path / "data"
    d.mkdir()
    (d / "responses.jsonl").write_text("\n".join(responses) + "\n")
    (d / "accounting.sacct").write_text("\n".join(sacct) + "\n")
    return d


def serve(*argv):
    out = io.StringIO()
    code = main(["serve", *argv], out=out)
    return code, out.getvalue()


class TestExitCodes:
    def test_status_without_a_service_is_2(self, tmp_path):
        code, text = serve("--root", str(tmp_path / "nope"), "--status")
        assert code == 2 and "no service status" in text

    def test_ingest_refresh_request_is_clean(self, tmp_path, data_dir):
        root = tmp_path / "svc"
        code, text = serve(
            "--root", str(root), "--months", "1", "--experiments", "X1",
            "--ingest-responses", str(data_dir / "responses.jsonl"),
            "--ingest-sacct", str(data_dir / "accounting.sacct"),
            "--refresh", "--request", "X1",
        )
        assert code == 0, text
        assert "ingested" in text and "refreshed" in text
        assert "[FRESH]" in text

    def test_status_probe_after_serving_is_clean(self, tmp_path, data_dir):
        root = tmp_path / "svc"
        serve(
            "--root", str(root), "--months", "1", "--experiments", "X1",
            "--ingest-responses", str(data_dir / "responses.jsonl"),
            "--ingest-sacct", str(data_dir / "accounting.sacct"), "--refresh",
        )
        code, text = serve("--root", str(root), "--status")
        assert code == 0
        assert json.loads(text)["mode"] == "serving"

    def test_request_before_any_build_is_degraded(self, tmp_path):
        code, text = serve(
            "--root", str(tmp_path / "svc"), "--months", "1",
            "--experiments", "X1", "--request", "X1",
        )
        assert code == EXIT_PARTIAL
        assert "[UNAVAILABLE]" in text

    def test_unknown_experiment_is_usage_error(self, tmp_path):
        code, text = serve(
            "--root", str(tmp_path / "svc"), "--months", "1", "--request", "ZZ9"
        )
        assert code == 2 and "unknown experiment" in text

    def test_missing_ingest_file_is_usage_error(self, tmp_path):
        code, text = serve(
            "--root", str(tmp_path / "svc"), "--months", "1",
            "--ingest-responses", str(tmp_path / "missing.jsonl"),
        )
        assert code == 2

    def test_reingest_same_files_dedupes(self, tmp_path, data_dir):
        root = tmp_path / "svc"
        args = (
            "--root", str(root), "--months", "1", "--experiments", "X1",
            "--ingest-responses", str(data_dir / "responses.jsonl"),
        )
        serve(*args)
        code, text = serve(*args)  # the default batch id is the file path
        assert code == 0
        assert "ingested 0 responses row(s)" in text


class TestDrain:
    def test_sigterm_drains_and_exits_zero(self, tmp_path, data_dir):
        root = tmp_path / "svc"
        serve(  # warm the root first so the loop has artifacts to hold
            "--root", str(root), "--months", "1", "--experiments", "X1",
            "--ingest-responses", str(data_dir / "responses.jsonl"),
            "--ingest-sacct", str(data_dir / "accounting.sacct"), "--refresh",
        )
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve", "--root", str(root),
                "--months", "1", "--experiments", "X1",
                "--loop", "60", "--interval", "0.2",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        # Wait until the child's refresh loop has republished the status
        # snapshot: its pid with nonzero uptime proves a loop cycle ran, and
        # the SIGTERM handler is installed before the first cycle. A fixed
        # sleep flakes on loaded machines — the signal lands during
        # interpreter startup and kills via the default disposition (-15).
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            status = read_status(root)
            if (
                status is not None
                and status.get("pid") == proc.pid
                and status.get("uptime_seconds", 0.0) > 0.5
            ):
                break
            assert proc.poll() is None, proc.communicate()[0]
            time.sleep(0.05)
        else:  # pragma: no cover - safety net
            proc.kill()
            pytest.fail("loop process never republished its status snapshot")
        proc.send_signal(signal.SIGTERM)
        try:
            stdout, _ = proc.communicate(timeout=30)
        except subprocess.TimeoutExpired:  # pragma: no cover - safety net
            proc.kill()
            raise
        assert proc.returncode == 0, stdout
        assert "drained" in stdout
        status = json.loads((root / "status.json").read_text())
        assert status["mode"] == "draining"
        # The drained root restarts clean and serves immediately.
        code, text = serve(
            "--root", str(root), "--months", "1", "--experiments", "X1",
            "--request", "X1",
        )
        assert code == 0 and "[FRESH]" in text
