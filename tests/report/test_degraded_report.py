"""Graceful degradation of the report when experiments fail.

Process-mode workers re-import the registry, so these tests sabotage
experiments via monkeypatch and run the sequential/thread executors, where
the patched registry is visible.
"""

import io

import pytest

from repro.cli import EXIT_PARTIAL, main
from repro.report.document import build_report
from repro.report.experiments import (
    EXPERIMENTS,
    Experiment,
    run_all_experiments_with_metrics,
)


def _broken(study):
    raise RuntimeError("synthetic experiment failure")


@pytest.fixture()
def broken_t8(monkeypatch):
    original = EXPERIMENTS["T8"]
    monkeypatch.setitem(
        EXPERIMENTS,
        "T8",
        Experiment("T8", original.title, original.kind, _broken, original.description),
    )
    return original


class TestRunAllKeepGoing:
    def test_failed_experiment_dropped_and_recorded(self, study, broken_t8):
        artifacts, metrics = run_all_experiments_with_metrics(
            study, executor="sequential", on_error="keep_going"
        )
        assert "T8" not in artifacts
        assert "T1" in artifacts and "F8" in artifacts
        assert metrics.steps_failed == 1
        (failed,) = [m for m in metrics.steps if m.outcome == "failed"]
        assert failed.name == "T8"
        assert "synthetic experiment failure" in failed.error

    def test_thread_mode_matches(self, study, broken_t8):
        artifacts, metrics = run_all_experiments_with_metrics(
            study, executor="thread", max_workers=2, on_error="keep_going"
        )
        assert "T8" not in artifacts
        assert metrics.steps_failed == 1

    def test_raise_mode_propagates(self, study, broken_t8):
        with pytest.raises(RuntimeError, match="synthetic"):
            run_all_experiments_with_metrics(
                study, executor="sequential", on_error="raise"
            )

    def test_unknown_on_error_rejected(self, study):
        with pytest.raises(ValueError, match="on_error"):
            run_all_experiments_with_metrics(study, on_error="ignore")


class TestDegradedDocument:
    def test_placeholder_section_rendered(self, study, broken_t8):
        sink = []
        text = build_report(
            study, executor="sequential", on_error="keep_going", metrics_out=sink
        )
        assert "DEGRADED REPORT" in text
        assert "1 experiment(s) failed to regenerate (T8)" in text
        assert f"### T8: {broken_t8.title} — UNAVAILABLE" in text
        assert "synthetic experiment failure" in text
        # The failed section keeps its slot; every other section renders.
        assert "<!-- experiment T8:" in text
        assert "T7: training background" in text
        assert "Appendix: data quality" in text
        assert sink[0].steps_failed == 1

    def test_clean_report_has_no_placeholder(self, study):
        text = build_report(study, executor="sequential", on_error="keep_going")
        assert "DEGRADED REPORT" not in text
        assert "UNAVAILABLE" not in text


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestCliKeepGoing:
    # Large enough that every experiment regenerates cleanly (a 1-month
    # telemetry window genuinely fails the growth-fit experiments, which
    # would make exit codes here ambiguous).
    SMALL = ("--seed", "3", "--baseline", "30", "--current", "40",
             "--months", "3", "--jobs-per-day", "40")

    def test_partial_report_exits_3(self, broken_t8):
        code, text = run_cli(
            "report", *self.SMALL, "--executor", "sequential", "--keep-going",
            "--timings",
        )
        assert code == EXIT_PARTIAL == 3
        assert "UNAVAILABLE" in text
        assert "warning: report degraded" in text and "T8" in text
        # --timings surfaces the structured outcome record.
        assert "run report:" in text and "T8: failed" in text

    def test_without_keep_going_failure_aborts(self, broken_t8):
        with pytest.raises(RuntimeError, match="synthetic"):
            run_cli("report", *self.SMALL, "--executor", "sequential")

    def test_clean_run_exits_0(self):
        code, text = run_cli(
            "report", *self.SMALL, "--executor", "sequential", "--keep-going"
        )
        assert code == 0
        assert "UNAVAILABLE" not in text
