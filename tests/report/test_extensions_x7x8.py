"""Tests for X7 (challenge topics) and X8 (waste/failures) experiments."""

import io

import pytest

from repro.cli import main
from repro.report import Table, run_experiment


class TestX7:
    @pytest.fixture(scope="class")
    def table(self, study):
        return run_experiment("X7", study)

    def test_structure(self, table, study):
        assert isinstance(table, Table)
        assert table.columns[0] == "topic"
        assert set(table.columns[1:]) == set(study.responses.cohorts)
        assert len(table.rows) >= 4

    def test_rows_sorted_by_total_prevalence(self, table):
        def total(row):
            return sum(int(cell.split(" ")[0]) for cell in row[1:] if cell != "-")

        totals = [total(r) for r in table.rows]
        assert totals == sorted(totals, reverse=True)

    def test_coding_coverage_noted(self, table):
        assert any("uncoded" in note for note in table.notes)


class TestX8:
    @pytest.fixture(scope="class")
    def table(self, study):
        return run_experiment("X8", study)

    def test_structure(self, table):
        quantities = table.column("quantity")
        assert quantities[0].startswith("wasted core-hours")
        assert any(q.startswith("failure rate:") for q in quantities)

    def test_waste_fraction_sane(self, table):
        # Terminal-state rates are 6+3+2 = 11% of jobs; waste in core-hours
        # should land in the single digits to low tens of percent.
        cell = table.rows[0][1]
        pct = float(cell.split("(")[1].rstrip("%)"))
        assert 1.0 < pct < 30.0


class TestAuditCli:
    def test_clean_accounting(self, tmp_path):
        out = io.StringIO()
        code = main(
            ["generate", "--seed", "5", "--baseline", "10", "--current", "10",
             "--months", "1", "--jobs-per-day", "30", "--out", str(tmp_path)],
            out=out,
        )
        assert code == 0
        out = io.StringIO()
        code = main(["audit", str(tmp_path / "accounting.sacct")], out=out)
        assert code == 0
        assert "accounting ok" in out.getvalue()

    def test_bad_accounting(self, tmp_path):
        path = tmp_path / "bad.sacct"
        path.write_text(
            "JobID|User|Account|Partition|Submit|Start|End|AllocCPUS|AllocTRES|Timelimit|State\n"
            "1|u|f|quantum|0.0|1.0|2.0|4|cpu=4|100|COMPLETED\n"
        )
        out = io.StringIO()
        code = main(["audit", str(path)], out=out)
        assert code == 1
        assert "unknown_partition" in out.getvalue()

    def test_missing_file(self, tmp_path):
        out = io.StringIO()
        code = main(["audit", str(tmp_path / "nope.sacct")], out=out)
        assert code == 2
