"""Tests for the report document generator and the CLI."""

import io

import pytest

from repro.cli import main
from repro.report.document import build_report


class TestBuildReport:
    @pytest.fixture(scope="class")
    def report_text(self, study):
        return build_report(study)

    def test_front_matter(self, report_text, study):
        assert report_text.startswith("# Computation for Research")
        assert f"{len(study.baseline)} respondents" in report_text
        assert str(len(study.telemetry)) in report_text

    def test_every_experiment_included(self, report_text):
        for eid in ("T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8",
                    "F1", "F2", "F3", "F4", "F5", "F6", "F7", "F8"):
            assert f"experiment {eid}:" in report_text

    def test_tables_render_markdown(self, report_text):
        assert "| practice | 2011 | 2024 | change | p (adj) |" in report_text

    def test_quality_appendix(self, report_text):
        assert "Appendix: data quality" in report_text
        assert "Kruskal-Wallis" in report_text

    def test_appendix_optional(self, study):
        without = build_report(study, include_quality_appendix=False)
        assert "Appendix: data quality" not in without


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestCli:
    SMALL = ("--seed", "3", "--baseline", "30", "--current", "40",
             "--months", "1", "--jobs-per-day", "40")

    def test_codebook(self):
        code, text = run_cli("codebook")
        assert code == 0
        assert "languages" in text and "Codebook" in text

    def test_experiment(self):
        code, text = run_cli("experiment", "t2", *self.SMALL)
        assert code == 0
        assert "T2: programming language use" in text

    def test_experiment_unknown(self):
        code, text = run_cli("experiment", "T99", *self.SMALL)
        assert code == 2
        assert "unknown experiment" in text

    def test_generate_and_validate(self, tmp_path):
        code, text = run_cli("generate", *self.SMALL, "--out", str(tmp_path))
        assert code == 0
        assert (tmp_path / "responses.jsonl").exists()
        assert (tmp_path / "accounting.sacct").exists()

        code, text = run_cli("validate", str(tmp_path / "responses.jsonl"))
        assert code == 0
        assert "ingest ok" in text

    def test_validate_missing_file(self, tmp_path):
        code, text = run_cli("validate", str(tmp_path / "nope.jsonl"))
        assert code == 2
        assert "error" in text

    def test_validate_fatal_issues(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"respondent_id": "r1", "cohort": "2024", '
            '"answers": {"expertise": 99}}\n'
        )
        code, text = run_cli("validate", str(path))
        assert code == 1
        assert "FATAL" in text

    def test_report_to_file(self, tmp_path):
        out_path = tmp_path / "report.md"
        # F5 (GPU growth) needs at least 3 telemetry months.
        code, text = run_cli(
            "report", "--seed", "3", "--baseline", "30", "--current", "40",
            "--months", "3", "--jobs-per-day", "40", "--out", str(out_path),
        )
        assert code == 0
        assert out_path.exists()
        assert "## Results" in out_path.read_text()

    def test_power_forward(self):
        code, text = run_cli("power", "--p1", "0.5", "--p2", "0.65",
                             "--n1", "170", "--n2", "170")
        assert code == 0
        assert "power" in text and "8" in text

    def test_power_required_n(self):
        code, text = run_cli("power", "--p1", "0.5", "--p2", "0.65")
        assert code == 0
        assert "need n=" in text

    def test_power_error(self):
        code, text = run_cli("power", "--p1", "0.5", "--p2", "0.5")
        assert code == 2

    def test_sacct_round_trip_via_files(self, tmp_path):
        from repro.cluster import parse_sacct

        run_cli("generate", *self.SMALL, "--out", str(tmp_path))
        table = parse_sacct(tmp_path / "accounting.sacct")
        assert len(table) > 100


class TestExperimentsListing:
    def test_lists_all_ids(self):
        code, text = run_cli("experiments")
        assert code == 0
        for eid in ("T1", "F8", "X1", "X10"):
            assert eid in text
        # Sorted numerically within each prefix: T2 before T10-style ids.
        lines = [l.split()[0] for l in text.strip().splitlines()]
        f_ids = [l for l in lines if l.startswith("F")]
        assert f_ids == sorted(f_ids, key=lambda s: int(s[1:]))


class TestRobustnessCli:
    def test_sweep_output(self):
        code, text = run_cli(
            "robustness", "--seeds", "2", "--baseline", "60", "--current", "80"
        )
        assert code == 0
        assert "python use rises" in text
        assert "direction 2/2" in text
        assert "weakest claim" in text
