"""Tests for extension experiments X1-X5."""

import numpy as np
import pytest

from repro.report import FigureSeries, Table, run_experiment


@pytest.fixture(scope="module")
def artifacts(study):
    return {eid: run_experiment(eid, study) for eid in ("X1", "X2", "X3", "X4", "X5")}


class TestX1WaitVsLoad:
    def test_structure(self, artifacts):
        fig = artifacts["X1"]
        assert isinstance(fig, FigureSeries)
        assert set(fig.series) == {"cpu", "gpu"}
        for load, wait in fig.series.values():
            assert (np.asarray(load) >= 0).all()
            assert (np.asarray(wait) >= 0).all()

    def test_load_below_ceiling(self, artifacts):
        load, _ = artifacts["X1"].series["cpu"]
        assert np.asarray(load).max() < 1.5  # offered load sane


class TestX2Panel:
    def test_rows(self, artifacts):
        table = artifacts["X2"]
        assert isinstance(table, Table)
        labels = table.column("practice")
        assert "machine learning" in labels
        assert "python" in labels

    def test_ml_adoption_significant(self, artifacts):
        table = artifacts["X2"]
        row = table.rows[list(table.column("practice")).index("machine learning")]
        assert "***" in row[-1]
        assert row[4].startswith("+")

    def test_fortran_declines(self, artifacts):
        table = artifacts["X2"]
        row = table.rows[list(table.column("practice")).index("fortran")]
        adopted, abandoned = int(row[2]), int(row[3])
        assert abandoned >= adopted

    def test_deterministic_across_runs(self, study):
        a = run_experiment("X2", study)
        b = run_experiment("X2", study)
        assert a.rows == b.rows


class TestX3WeightedVsRaw:
    def test_structure(self, artifacts):
        table = artifacts["X3"]
        assert len(table.rows) == 5
        assert "weighted" in table.columns

    def test_design_shift_small_for_representative_sample(self, artifacts):
        # The generator samples fields at population shares, so shifts
        # should be a few points at most.
        table = artifacts["X3"]
        for row in table.rows:
            shift = abs(float(row[3].removesuffix("pp")))
            assert shift < 10.0


class TestX4Rhythm:
    def test_structure(self, artifacts):
        fig = artifacts["X4"]
        hourly_x, hourly_y = fig.series["hourly"]
        assert hourly_x.shape == (24,)
        weekly_x, weekly_y = fig.series["weekly"]
        assert weekly_x.shape == (7,)

    def test_diurnal_pattern_visible(self, artifacts):
        _, hourly = artifacts["X4"].series["hourly"]
        assert hourly[14] > 1.5 * hourly[3]

    def test_weekend_dip(self, artifacts):
        _, weekly = artifacts["X4"].series["weekly"]
        weekday_mean = weekly[:5].mean()
        weekend_mean = weekly[5:].mean()
        assert weekday_mean > 1.5 * weekend_mean


class TestX5Walltime:
    def test_structure(self, artifacts):
        table = artifacts["X5"]
        assert table.rows[0][0] == "all partitions"
        assert len(table.rows) >= 3

    def test_users_over_request(self, artifacts):
        table = artifacts["X5"]
        median = float(table.rows[0][3])
        assert 0.1 < median < 0.9  # runtimes well under requests

    def test_quartiles_ordered(self, artifacts):
        for row in artifacts["X5"].rows:
            q25, q50, q75 = float(row[2]), float(row[3]), float(row[4])
            assert q25 <= q50 <= q75


class TestDocumentIncludesExtensions:
    def test_extensions_in_report(self, study):
        from repro.report import build_report

        text = build_report(study, include_quality_appendix=False)
        for eid in ("X1", "X2", "X3", "X4", "X5"):
            assert f"experiment {eid}:" in text
