"""CLI durability: ``repro report --durable``, ``--resume``, and interrupts.

The durable path renders the full report while leaving behind a journal +
cache that ``--resume`` recovers byte-for-byte — and a Ctrl-C must exit 130
with a usable resume hint, never a traceback.
"""

import io

import pytest

from repro.cli import EXIT_INTERRUPTED, main

# Smallest parameter set the *staged* study pipeline renders fully at
# (its stages draw from per-step seed streams, not build_default_study's).
SMALL = (
    "--seed", "3", "--baseline", "60", "--current", "80",
    "--months", "3", "--jobs-per-day", "60",
)


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestDurableReport:
    @pytest.fixture(scope="class")
    def durable_run(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("durable")
        report_path = root / "report.md"
        code, text = run_cli(
            "report", *SMALL,
            "--durable", str(root / "state"),
            "--out", str(report_path),
        )
        return root, report_path, code, text

    def test_exit_clean(self, durable_run):
        _, _, code, _ = durable_run
        assert code == 0

    def test_renders_full_document(self, durable_run):
        _, report_path, _, _ = durable_run
        text = report_path.read_text()
        assert "## Results" in text
        for eid in ("T1", "T8", "F1", "F8"):
            assert f"experiment {eid}:" in text

    def test_resume_latest_is_byte_identical(self, durable_run):
        root, report_path, _, _ = durable_run
        first = report_path.read_bytes()
        resumed_path = root / "resumed.md"
        code, text = run_cli(
            "report", *SMALL,
            "--durable", str(root / "state"),
            "--resume",  # bare flag means "latest"
            "--out", str(resumed_path),
            "--timings",
        )
        assert code == 0
        assert resumed_path.read_bytes() == first
        # --timings surfaces the durability telemetry: every step replayed
        # from the finished run's journal + cache, zero recomputed.
        assert "replayed" in text
        assert "resumed from" in text

    def test_journal_segment_exists(self, durable_run):
        root, _, _, _ = durable_run
        assert list((root / "state" / "journals").glob("*.journal"))


class TestResumeValidation:
    def test_resume_requires_durable(self):
        code, text = run_cli("report", *SMALL, "--resume", "some-run")
        assert code == 2
        assert "--resume requires --durable" in text

    def test_resume_latest_with_no_journals(self, tmp_path):
        code, text = run_cli(
            "report", *SMALL, "--durable", str(tmp_path / "state"), "--resume"
        )
        assert code == 2
        assert "no journals to resume" in text

    def test_resume_unknown_run_id(self, tmp_path):
        code, text = run_cli(
            "report", *SMALL,
            "--durable", str(tmp_path / "state"),
            "--resume", "not-a-run",
        )
        assert code == 2
        assert "error" in text


class TestKeyboardInterrupt:
    def test_durable_report_flushes_and_hints(self, tmp_path, monkeypatch):
        import repro.report.experiments as experiments

        class InterruptedPipeline:
            def run_with_report(self, **kwargs):
                raise KeyboardInterrupt

        monkeypatch.setattr(
            experiments, "report_pipeline", lambda *a, **k: InterruptedPipeline()
        )
        code, text = run_cli(
            "report", *SMALL, "--durable", str(tmp_path / "state")
        )
        assert code == EXIT_INTERRUPTED == 130
        assert "interrupted — resume with --resume" in text

    def test_plain_report_exits_130(self, monkeypatch):
        import repro.report.document as document

        def interrupted(*a, **k):
            raise KeyboardInterrupt

        monkeypatch.setattr(document, "build_report", interrupted)
        code, text = run_cli("report", *SMALL)
        assert code == EXIT_INTERRUPTED
        assert "interrupted" in text

    def test_bench_exits_130(self, monkeypatch):
        import repro.core.bench as bench

        def interrupted(*a, **k):
            raise KeyboardInterrupt

        monkeypatch.setattr(bench, "run_benchmarks", interrupted)
        code, text = run_cli("bench", "--scale", "quick")
        assert code == EXIT_INTERRUPTED
        assert "interrupted" in text
