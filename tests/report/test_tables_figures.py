"""Tests for the table and figure models."""

import numpy as np
import pytest

from repro.report import (
    FigureSeries,
    Table,
    ascii_bar_chart,
    fmt_ci,
    fmt_p,
    fmt_pct,
    significance_stars,
)


class TestFormatters:
    def test_fmt_pct(self):
        assert fmt_pct(0.1234) == "12.3%"
        assert fmt_pct(1.0, digits=0) == "100%"

    def test_fmt_ci(self):
        assert fmt_ci(0.1, 0.2) == "[10.0%, 20.0%]"

    def test_fmt_p(self):
        assert fmt_p(0.0001) == "<0.001"
        assert fmt_p(0.042) == "0.042"

    def test_stars(self):
        assert significance_stars(0.0001) == "***"
        assert significance_stars(0.005) == "**"
        assert significance_stars(0.03) == "*"
        assert significance_stars(0.2) == ""


class TestTable:
    def make(self):
        return Table(
            title="T0: demo",
            columns=("name", "value"),
            rows=(("a", "1"), ("b", "2")),
            notes=("a note",),
        )

    def test_shape_and_column(self):
        t = self.make()
        assert t.shape == (2, 2)
        assert t.column("value") == ("1", "2")
        with pytest.raises(KeyError):
            t.column("nope")

    def test_row_width_validated(self):
        with pytest.raises(ValueError):
            Table(title="x", columns=("a", "b"), rows=(("only-one",),))

    def test_no_columns_rejected(self):
        with pytest.raises(ValueError):
            Table(title="x", columns=(), rows=())

    def test_render_ascii(self):
        text = self.make().render_ascii()
        assert "T0: demo" in text
        assert "name" in text and "value" in text
        assert "note: a note" in text
        # Columns aligned: every data line same prefix width.
        lines = [l for l in text.splitlines() if l.startswith(("a", "b"))]
        assert len({l.index("1") for l in lines if "1" in l} | {l.index("2") for l in lines if "2" in l}) == 1

    def test_render_markdown(self):
        md = self.make().render_markdown()
        assert md.startswith("### T0: demo")
        assert "| name | value |" in md
        assert "| a | 1 |" in md
        assert "_a note_" in md


class TestFigureSeries:
    def make(self):
        x = np.arange(10, dtype=float)
        return FigureSeries(
            title="F0: demo",
            x_label="month",
            y_label="hours",
            series={"a": (x, x**2), "b": (x, x + 1)},
            notes=("fit note",),
        )

    def test_series_names(self):
        assert self.make().series_names == ("a", "b")

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            FigureSeries(title="x", x_label="x", y_label="y", series={})

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            FigureSeries(
                title="x",
                x_label="x",
                y_label="y",
                series={"a": (np.arange(3), np.arange(4))},
            )

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError):
            FigureSeries(
                title="x",
                x_label="x",
                y_label="y",
                series={"a": (np.array([]), np.array([]))},
            )

    def test_to_dict_round_trips_json(self):
        import json

        d = self.make().to_dict()
        parsed = json.loads(json.dumps(d))
        assert parsed["title"] == "F0: demo"
        assert parsed["series"]["a"]["y"][2] == 4.0

    def test_render_ascii(self):
        text = self.make().render_ascii(width=30, height=6)
        assert "F0: demo" in text
        assert "-- a" in text and "-- b" in text
        assert "*" in text

    def test_render_single_point(self):
        fig = FigureSeries(
            title="p",
            x_label="x",
            y_label="y",
            series={"only": (np.array([1.0]), np.array([2.0]))},
        )
        assert "single point" in fig.render_ascii()


class TestAsciiBarChart:
    def test_basic(self):
        chart = ascii_bar_chart(["py", "fortran"], [0.9, 0.3])
        lines = chart.splitlines()
        assert len(lines) == 2
        assert lines[0].count("#") > lines[1].count("#")

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            ascii_bar_chart([], [])
        with pytest.raises(ValueError):
            ascii_bar_chart(["a"], [-1.0])

    def test_all_zero(self):
        chart = ascii_bar_chart(["a"], [0.0])
        assert "a" in chart


class TestTableExports:
    def make(self):
        return Table(
            title="T0: demo",
            columns=("name", "value"),
            rows=(("a", "1"), ("b", "2")),
        )

    def test_to_csv(self):
        import csv
        import io

        text = self.make().to_csv()
        rows = list(csv.reader(io.StringIO(text)))
        assert rows == [["name", "value"], ["a", "1"], ["b", "2"]]

    def test_to_dict_json_safe(self):
        import json

        d = self.make().to_dict()
        parsed = json.loads(json.dumps(d))
        assert parsed["columns"] == ["name", "value"]
        assert parsed["rows"][1] == ["b", "2"]
