"""Tests for the SVG figure renderer."""

import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.report import FigureSeries, figure_to_svg, run_experiment

SVG_NS = "{http://www.w3.org/2000/svg}"


def parse(svg_text):
    return ET.fromstring(svg_text)


def make_figure(kind="line", n_series=2, n_points=12):
    x = np.arange(n_points, dtype=float)
    series = {
        f"s{i}": (x, (i + 1) * x + i) for i in range(n_series)
    }
    return FigureSeries(
        title="F0: svg demo",
        x_label="x axis",
        y_label="y axis",
        series=series,
        kind=kind,
        notes=("a note",),
    )


class TestFigureToSvg:
    def test_well_formed_xml(self):
        root = parse(figure_to_svg(make_figure()))
        assert root.tag == f"{SVG_NS}svg"
        assert root.get("width") == "640"

    def test_line_figure_has_polylines(self):
        root = parse(figure_to_svg(make_figure("line", n_series=3)))
        polylines = root.findall(f".//{SVG_NS}polyline")
        assert len(polylines) == 3
        # Each polyline has one coordinate pair per point.
        assert len(polylines[0].get("points").split()) == 12

    def test_scatter_figure_has_circles(self):
        root = parse(figure_to_svg(make_figure("scatter", n_series=2, n_points=7)))
        circles = root.findall(f".//{SVG_NS}circle")
        assert len(circles) == 14

    def test_bar_figure_has_rects(self):
        root = parse(figure_to_svg(make_figure("bar", n_series=2, n_points=5)))
        rects = root.findall(f".//{SVG_NS}rect")
        # background + plot frame + legend swatches (2) + 10 bars
        assert len(rects) >= 12

    def test_labels_and_notes_present(self):
        text = figure_to_svg(make_figure())
        assert "x axis" in text
        assert "y axis" in text
        assert "F0: svg demo" in text
        assert "a note" in text

    def test_escapes_special_characters(self):
        fig = FigureSeries(
            title="a < b & c",
            x_label="x",
            y_label="y",
            series={"s": (np.array([0.0, 1.0]), np.array([0.0, 1.0]))},
        )
        text = figure_to_svg(fig)
        assert "a &lt; b &amp; c" in text
        parse(text)  # still well-formed

    def test_coordinates_inside_viewport(self):
        root = parse(figure_to_svg(make_figure("scatter")))
        for circle in root.findall(f".//{SVG_NS}circle"):
            assert 0 <= float(circle.get("cx")) <= 640
            assert 0 <= float(circle.get("cy")) <= 360

    def test_constant_series_handled(self):
        fig = FigureSeries(
            title="flat", x_label="x", y_label="y",
            series={"s": (np.array([0.0, 1.0]), np.array([5.0, 5.0]))},
        )
        parse(figure_to_svg(fig))

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            figure_to_svg(make_figure(), width=100, height=50)

    def test_custom_size(self):
        root = parse(figure_to_svg(make_figure(), width=800, height=400))
        assert root.get("height") == "400"


class TestRealExperimentFigures:
    @pytest.mark.parametrize("eid", ["F1", "F3", "F4", "F5", "F8", "X1", "X4"])
    def test_every_figure_renders(self, study, eid):
        artifact = run_experiment(eid, study)
        root = parse(figure_to_svg(artifact))
        marks = (
            root.findall(f".//{SVG_NS}polyline")
            + root.findall(f".//{SVG_NS}circle")
            + root.findall(f".//{SVG_NS}rect")
        )
        assert len(marks) > 2
