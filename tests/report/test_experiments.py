"""Integration tests: every registered experiment regenerates from a study."""

import pytest

from repro.report import EXPERIMENTS, FigureSeries, Table, run_all_experiments, run_experiment


class TestRegistry:
    def test_core_and_extension_ids_registered(self):
        core = {
            "T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8",
            "F1", "F2", "F3", "F4", "F5", "F6", "F7", "F8",
        }
        extensions = {"X1", "X2", "X3", "X4", "X5", "X6", "X7", "X8", "X9", "X10"}
        assert set(EXPERIMENTS) == core | extensions

    def test_metadata_complete(self):
        for experiment in EXPERIMENTS.values():
            assert experiment.kind in ("table", "figure")
            assert experiment.title
            assert experiment.description

    def test_unknown_id(self, study):
        with pytest.raises(KeyError, match="T99"):
            run_experiment("T99", study)


@pytest.fixture(scope="module")
def artifacts(study):
    return run_all_experiments(study)


class TestAllExperimentsRun:
    def test_every_id_produced(self, artifacts):
        assert set(artifacts) == set(EXPERIMENTS)

    @pytest.mark.parametrize("eid", sorted(["T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8", "F6"]))
    def test_tables_render(self, artifacts, eid):
        art = artifacts[eid]
        assert isinstance(art, Table)
        text = art.render_ascii()
        assert art.title in text
        assert len(art.rows) >= 1
        md = art.render_markdown()
        assert md.startswith("###")

    @pytest.mark.parametrize("eid", ["F1", "F2", "F3", "F4", "F5", "F7", "F8"])
    def test_figures_export(self, artifacts, eid):
        art = artifacts[eid]
        assert isinstance(art, FigureSeries)
        d = art.to_dict()
        assert d["series"]
        assert art.render_ascii()


class TestHeadlineShapes:
    """The qualitative 'who wins' claims every artifact must reproduce."""

    def test_t2_python_top_in_2024(self, artifacts):
        t2 = artifacts["T2"]
        assert t2.rows[0][0] == "python"

    def test_f1_python_largest_change(self, artifacts):
        f1 = artifacts["F1"]
        assert f1.x_label.split(": ")[1].split(", ")[0] == "python"

    def test_t3_gpu_row_significant(self, artifacts):
        t3 = artifacts["T3"]
        gpu_row = next(r for r in t3.rows if r[0] == "uses_gpu")
        assert "***" in gpu_row[-1]
        assert gpu_row[3].startswith("+")

    def test_t4_pytorch_leads_tensorflow(self, artifacts):
        t4 = artifacts["T4"]
        labels = [r[0].strip() for r in t4.rows]
        assert labels.index("pytorch") < labels.index("tensorflow")

    def test_t5_has_all_partitions(self, artifacts, study):
        t5 = artifacts["T5"]
        assert set(t5.column("partition")) == set(study.telemetry.partitions())

    def test_t6_git_positive(self, artifacts):
        t6 = artifacts["T6"]
        git_row = next(r for r in t6.rows if r[0] == "uses git")
        assert git_row[3].startswith("+")

    def test_f5_growth_note(self, artifacts):
        f5 = artifacts["F5"]
        assert any("%/month" in note for note in f5.notes)

    def test_f4_wide_jobs_note(self, artifacts):
        f4 = artifacts["F4"]
        assert any("core-hours" in note for note in f4.notes)

    def test_f8_spearman_note(self, artifacts):
        f8 = artifacts["F8"]
        assert any("Spearman" in note for note in f8.notes)
