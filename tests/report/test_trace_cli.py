"""CLI surface of the tracing layer: ``repro trace`` and ``report --trace``."""

import io
import json

from repro.cli import main
from repro.core.trace import validate_perfetto


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


# Smallest parameter set the *staged* study pipeline renders fully at
# (its stages draw from per-step seed streams, not build_default_study's).
SMALL = ("--seed", "3", "--baseline", "60", "--current", "80",
         "--months", "3", "--jobs-per-day", "60")


class TestTraceCommand:
    def test_traced_build_prints_critical_path(self, tmp_path):
        trace_path = tmp_path / "trace.json"
        code, text = run_cli(
            "trace", *SMALL, "--executor", "thread", "--jobs", "2",
            "--out", str(trace_path), "--check-schema",
        )
        assert code == 0
        assert "trace schema ok" in text
        assert "critical path:" in text
        assert "parallel efficiency" in text
        assert "slack" in text
        data = json.loads(trace_path.read_text())
        assert validate_perfetto(data) == []
        cats = {e.get("cat") for e in data["traceEvents"]}
        assert {"run", "step"} <= cats

    def test_metrics_out_writes_prometheus(self, tmp_path):
        metrics_path = tmp_path / "metrics.prom"
        code, text = run_cli(
            "trace", *SMALL, "--executor", "sequential",
            "--metrics-out", str(metrics_path),
        )
        assert code == 0
        body = metrics_path.read_text()
        assert "# TYPE repro_run_wall_seconds gauge" in body
        assert 'repro_step_wall_seconds{step="study"}' in body

    def test_load_analyzes_existing_trace(self, tmp_path):
        trace_path = tmp_path / "trace.json"
        run_cli("trace", *SMALL, "--executor", "sequential", "--out", str(trace_path))
        code, text = run_cli(
            "trace", "--load", str(trace_path), "--check-schema", "--top", "3"
        )
        assert code == 0
        assert "trace schema ok" in text
        assert "critical path:" in text

    def test_load_missing_file_is_usage_error(self, tmp_path):
        code, text = run_cli("trace", "--load", str(tmp_path / "absent.json"))
        assert code == 2
        assert "error:" in text

    def test_load_invalid_trace_is_usage_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"traceEvents": [{"ph": "X"}]}))
        code, text = run_cli("trace", "--load", str(bad))
        assert code == 2
        assert "error:" in text

    def test_bad_jobs_rejected(self):
        code, text = run_cli("trace", *SMALL, "--jobs", "0")
        assert code == 2


class TestReportTrace:
    def test_report_trace_exports_and_summarizes(self, tmp_path):
        trace_path = tmp_path / "trace.json"
        report_path = tmp_path / "report.md"
        code, text = run_cli(
            "report", *SMALL, "--executor", "thread", "--jobs", "2",
            "--trace", str(trace_path), "--out", str(report_path),
        )
        assert code == 0
        assert f"wrote Perfetto trace to {trace_path}" in text
        assert "critical path:" in text
        assert report_path.exists()
        assert validate_perfetto(json.loads(trace_path.read_text())) == []

    def test_report_trace_composes_with_durable(self, tmp_path):
        trace_path = tmp_path / "trace.json"
        code, text = run_cli(
            "report", *SMALL, "--executor", "sequential",
            "--durable", str(tmp_path / "state"),
            "--trace", str(trace_path),
            "--out", str(tmp_path / "report.md"),
        )
        assert code == 0
        data = json.loads(trace_path.read_text())
        (run,) = [e for e in data["traceEvents"] if e.get("cat") == "run"]
        # Traced durable runs correlate the root span with the journal id.
        assert run["args"]["run_id"]


class TestVerbosityFlags:
    def test_every_subcommand_accepts_verbosity(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(["codebook", "-vv"])
        assert args.verbose == 2 and args.quiet == 0
        args = parser.parse_args(["power", "--p1", "0.1", "--p2", "0.2", "-q"])
        assert args.quiet == 1

    def test_verbose_report_logs_run_lifecycle_to_stderr(self, tmp_path, capsys):
        code, _ = run_cli(
            "report", *SMALL, "-v", "--executor", "sequential",
            "--trace", str(tmp_path / "t.json"),
            "--out", str(tmp_path / "r.md"),
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "run.start" in err and "run.end" in err
        assert "INFO" in err

    def test_bench_parser_has_trace_gate_flag(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["bench", "--max-trace-overhead", "0.05"])
        assert args.max_trace_overhead == 0.05
        args = build_parser().parse_args(["bench"])
        assert args.max_trace_overhead == 0.03
