"""Golden-artifact regression suite.

Regenerates every registered experiment from the same full-scale seeded
study that produced the checked-in ``artifacts/`` renderings (see
``examples/full_reproduction.py``) and asserts the text output matches
byte-for-byte. This pins the entire analysis stack — synthesis, scheduler
simulation, statistics, rendering — to a known-good output, so the parallel
executors (or any refactor) can never silently change results.

The comparison itself lives in :mod:`repro.audit.digests`
(``render_artifact``/``load_golden``/``compare_to_goldens``) and is shared
with the ``repro audit`` CLI, so this suite and the user-facing audit can
never disagree about what "byte-identical" means.

The study build dominates the cost (~25s), so everything shares one
module-scoped study; the artifact comparisons themselves are cheap.
"""

from pathlib import Path

import pytest

from repro.audit.digests import compare_to_goldens, golden_ids, load_golden, render_artifact
from repro.core import build_default_study
from repro.report import EXPERIMENTS, run_all_experiments

ARTIFACT_DIR = Path(__file__).resolve().parents[2] / "artifacts"

# Must mirror examples/full_reproduction.py, which wrote the goldens.
FULL_SCALE = dict(seed=888, n_baseline=120, n_current=300, months=24, jobs_per_day=450)

GOLDEN_IDS = golden_ids(ARTIFACT_DIR)


@pytest.fixture(scope="module")
def full_study():
    return build_default_study(**FULL_SCALE)


@pytest.fixture(scope="module")
def sequential_artifacts(full_study):
    return run_all_experiments(full_study, max_workers=1)


def test_goldens_exist_for_every_experiment():
    assert GOLDEN_IDS, f"no golden artifacts found under {ARTIFACT_DIR}"
    missing = sorted(set(EXPERIMENTS) - set(GOLDEN_IDS))
    assert not missing, f"experiments without golden artifacts: {missing}"


def test_no_orphan_goldens():
    orphans = sorted(set(GOLDEN_IDS) - set(EXPERIMENTS))
    assert not orphans, f"golden artifacts without a registered experiment: {orphans}"


@pytest.mark.parametrize("eid", GOLDEN_IDS)
def test_golden_artifact_byte_identical(sequential_artifacts, eid):
    golden = load_golden(ARTIFACT_DIR, eid)
    regenerated = render_artifact(sequential_artifacts[eid])
    assert regenerated == golden, (
        f"{eid} drifted from artifacts/{eid}.txt — if the change is "
        f"intentional, regenerate goldens with examples/full_reproduction.py"
    )


def test_compare_to_goldens_matches_per_id_checks(sequential_artifacts):
    results = compare_to_goldens(sequential_artifacts, ARTIFACT_DIR)
    assert sorted(results) == GOLDEN_IDS
    assert all(results.values()), [eid for eid, ok in results.items() if not ok]


def _rendered(artifacts):
    return {eid: artifact.render_ascii() for eid, artifact in artifacts.items()}


def test_thread_executor_byte_identical(full_study, sequential_artifacts):
    parallel = run_all_experiments(full_study, max_workers=4, executor="thread")
    assert list(parallel) == list(sequential_artifacts)
    assert _rendered(parallel) == _rendered(sequential_artifacts)


def test_process_executor_byte_identical(full_study, sequential_artifacts):
    parallel = run_all_experiments(full_study, max_workers=2, executor="process")
    assert list(parallel) == list(sequential_artifacts)
    assert _rendered(parallel) == _rendered(sequential_artifacts)
