"""Ablation benchmarks for the design choices DESIGN.md calls out.

* vectorized vs loop cross-tab engine;
* EASY backfill on vs off in the scheduler;
* Wilson (analytic) vs bootstrap proportion CIs;
* pipeline artifact caching on vs off;
* sequential vs parallel DAG execution and full-report fan-out.
"""

import os

import numpy as np
import pytest

from repro.analysis import crosstab, crosstab_loop
from repro.cluster import WorkloadModel, WorkloadParams, simulate_schedule
from repro.core import ArtifactCache, Pipeline, PipelineStep
from repro.report import run_all_experiments
from repro.stats import bootstrap_ci, wilson_interval


# -- cross-tab engine ---------------------------------------------------------


def bench_ablation_crosstab_vectorized(benchmark, study):
    ct = benchmark(crosstab, study.responses, "field")
    assert ct.n > 0


def bench_ablation_crosstab_loop(benchmark, study):
    ct = benchmark(crosstab_loop, study.responses, "field")
    assert ct.n > 0


# -- scheduler backfill ----------------------------------------------------------


@pytest.fixture(scope="module")
def submission_stream():
    params = WorkloadParams(months=1, jobs_per_day=400)
    return WorkloadModel(params).generate(np.random.default_rng(42))


def bench_ablation_backfill_on(benchmark, submission_stream):
    result = benchmark.pedantic(
        simulate_schedule,
        args=(submission_stream,),
        kwargs={"rng": np.random.default_rng(0), "backfill": True},
        rounds=3,
        iterations=1,
    )
    assert result.backfilled > 0


def bench_ablation_backfill_off(benchmark, submission_stream):
    result = benchmark.pedantic(
        simulate_schedule,
        args=(submission_stream,),
        kwargs={"rng": np.random.default_rng(0), "backfill": False},
        rounds=3,
        iterations=1,
    )
    assert result.backfilled == 0


# -- CI method -----------------------------------------------------------------


def bench_ablation_ci_wilson(benchmark):
    result = benchmark(wilson_interval, 42, 150)
    assert result.low < result.high


def bench_ablation_ci_bootstrap(benchmark):
    data = np.zeros(150)
    data[:42] = 1.0

    def run():
        return bootstrap_ci(data, np.mean, n_resamples=2000, rng=np.random.default_rng(0))

    result = benchmark(run)
    assert result.low < result.high


# -- pipeline caching ----------------------------------------------------------------


def _expensive_pipeline(cache):
    def generate(context, n):
        rng = np.random.default_rng(0)
        return rng.normal(size=n)

    def analyze(context):
        return float(np.mean(context["generate"]))

    return Pipeline(
        [
            PipelineStep(name="generate", fn=generate, params={"n": 2_000_000}),
            PipelineStep(name="analyze", fn=analyze, depends_on=("generate",)),
        ],
        cache,
    )


def bench_ablation_cache_cold(benchmark):
    def run():
        return _expensive_pipeline(ArtifactCache()).run()

    out = benchmark(run)
    assert "analyze" in out


def bench_ablation_cache_warm(benchmark):
    cache = ArtifactCache()
    _expensive_pipeline(cache).run()  # warm it once

    def run():
        return _expensive_pipeline(cache).run()

    out = benchmark(run)
    assert "analyze" in out


# -- DAG executor: sequential vs parallel ------------------------------------------


def _fanout_gen(context, n, seed):
    rng = np.random.default_rng(seed)
    return rng.normal(size=n)


def _fanout_reduce(context):
    return float(sum(np.mean(context[name]) for name in sorted(context)))


def _wide_pipeline(cache, lanes=4, n=1_000_000):
    # `lanes` independent generation steps feeding one reduction: the shape
    # where topological fan-out pays. Module-level fns keep it process-safe.
    steps = [
        PipelineStep(name=f"gen{i}", fn=_fanout_gen, params={"n": n, "seed": i})
        for i in range(lanes)
    ]
    steps.append(
        PipelineStep(
            name="reduce",
            fn=_fanout_reduce,
            depends_on=tuple(f"gen{i}" for i in range(lanes)),
        )
    )
    return Pipeline(steps, cache)


def bench_ablation_pipeline_sequential(benchmark):
    def run():
        return _wide_pipeline(ArtifactCache()).run(max_workers=1)

    out = benchmark(run)
    assert "reduce" in out


def bench_ablation_pipeline_parallel(benchmark):
    workers = max(2, os.cpu_count() or 1)

    def run():
        return _wide_pipeline(ArtifactCache()).run(max_workers=workers, executor="process")

    out = benchmark(run)
    assert "reduce" in out


# -- full-report regeneration: sequential vs parallel fan-out -------------------------


def bench_ablation_report_sequential(benchmark, study):
    artifacts = benchmark.pedantic(
        run_all_experiments,
        args=(study,),
        kwargs={"max_workers": 1},
        rounds=3,
        iterations=1,
    )
    assert len(artifacts) >= 16


def bench_ablation_report_parallel(benchmark, study):
    workers = max(2, os.cpu_count() or 1)
    artifacts = benchmark.pedantic(
        run_all_experiments,
        args=(study,),
        kwargs={"max_workers": workers, "executor": "process"},
        rounds=3,
        iterations=1,
    )
    assert len(artifacts) >= 16
