"""Standalone wall-clock benchmark report (the perf-trajectory harness).

Unlike the pytest-benchmark suites in this directory, this harness writes
the committed ``BENCH_*.json`` trajectory records (see
:mod:`repro.core.bench`). Run it directly::

    PYTHONPATH=src python benchmarks/bench_report.py --scale full \
        --label after --json BENCH_2.json

or use the equivalent CLI subcommand, ``repro bench``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path


def main(argv: list[str] | None = None) -> int:
    from repro.core.bench import (
        SCALES,
        append_run,
        check_regression,
        render_record,
        run_benchmarks,
    )

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=sorted(SCALES), default="full")
    parser.add_argument("--label", default="run")
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--json", type=Path, default=None, help="trajectory file to append to")
    parser.add_argument("--no-end-to-end", action="store_true")
    parser.add_argument("--check", type=Path, default=None, help="baseline trajectory to gate against")
    parser.add_argument("--max-regression", type=float, default=0.25)
    args = parser.parse_args(argv)

    record = run_benchmarks(
        scale=args.scale,
        label=args.label,
        repeats=args.repeats,
        end_to_end=not args.no_end_to_end,
    )
    print(render_record(record))
    if args.json is not None:
        append_run(args.json, record)
        print(f"appended run to {args.json}")
    if args.check is not None:
        ok, message = check_regression(record, args.check, max_regression=args.max_regression)
        print(("ok: " if ok else "REGRESSION: ") + message)
        return 0 if ok else 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
