"""Benchmarks for extension experiments (X1-X5) and the new substrates."""

import numpy as np
import pytest

from repro.cluster import WorkloadModel, WorkloadParams, simulate_schedule
from repro.core import build_instrument, profile_2011, profile_2024
from repro.report import run_experiment
from repro.report.document import build_report
from repro.synth import generate_panel


def bench_x1_wait_vs_load(benchmark, study):
    figure = benchmark(run_experiment, "X1", study)
    assert "cpu" in figure.series


def bench_x2_panel_adoption(benchmark, study):
    table = benchmark.pedantic(run_experiment, args=("X2", study), rounds=3, iterations=1)
    assert table.rows


def bench_x3_weighted_vs_raw(benchmark, study):
    table = benchmark(run_experiment, "X3", study)
    assert len(table.rows) == 5


def bench_x4_arrival_rhythm(benchmark, study):
    figure = benchmark(run_experiment, "X4", study)
    assert "hourly" in figure.series


def bench_x5_walltime_accuracy(benchmark, study):
    table = benchmark(run_experiment, "X5", study)
    assert table.rows


def bench_panel_generation_100(benchmark):
    questionnaire = build_instrument()
    a, b = profile_2011(), profile_2024()

    def run():
        return generate_panel(a, b, questionnaire, 100, np.random.default_rng(0))

    panel = benchmark(run)
    assert len(panel) == 100


@pytest.fixture(scope="module")
def contended_stream():
    params = WorkloadParams(months=1, jobs_per_day=450)
    return WorkloadModel(params).generate(np.random.default_rng(9))


def bench_ablation_node_granular(benchmark, contended_stream):
    result = benchmark.pedantic(
        simulate_schedule,
        args=(contended_stream,),
        kwargs={"rng": np.random.default_rng(0), "node_granular": True},
        rounds=3,
        iterations=1,
    )
    assert len(result.table) == len(contended_stream)


def bench_ablation_fairshare(benchmark, contended_stream):
    result = benchmark.pedantic(
        simulate_schedule,
        args=(contended_stream,),
        kwargs={"rng": np.random.default_rng(0), "priority": "fairshare"},
        rounds=3,
        iterations=1,
    )
    assert len(result.table) == len(contended_stream)


def bench_full_report(benchmark, study):
    text = benchmark.pedantic(build_report, args=(study,), rounds=2, iterations=1)
    assert "## Results" in text


def bench_x7_challenge_topics(benchmark, study):
    table = benchmark(run_experiment, "X7", study)
    assert table.rows


def bench_x8_waste_failures(benchmark, study):
    table = benchmark(run_experiment, "X8", study)
    assert table.rows


def bench_audit_table(benchmark, study):
    from repro.cluster import audit_table

    report = benchmark(audit_table, study.telemetry, study.cluster)
    assert report.ok


def bench_failure_bursts(benchmark, study):
    from repro.cluster import failure_bursts

    bursts = benchmark(failure_bursts, study.telemetry)
    assert isinstance(bursts, list)
