"""One benchmark per table and figure (see DESIGN.md experiment index).

Each bench regenerates the complete artifact — analysis plus formatting —
from the shared study, i.e. exactly what ``run_experiment(id, study)`` does.
"""

from repro.report import run_experiment


def bench_t1_demographics(benchmark, study):
    table = benchmark(run_experiment, "T1", study)
    assert table.rows


def bench_t2_languages(benchmark, study):
    table = benchmark(run_experiment, "T2", study)
    assert table.rows[0][0] == "python"


def bench_f1_language_trend(benchmark, study):
    figure = benchmark(run_experiment, "F1", study)
    assert "2024" in figure.series


def bench_t3_parallelism(benchmark, study):
    table = benchmark(run_experiment, "T3", study)
    assert any(r[0] == "uses_gpu" for r in table.rows)


def bench_f2_gpu_by_field(benchmark, study):
    figure = benchmark(run_experiment, "F2", study)
    assert "estimate" in figure.series


def bench_t4_ml_frameworks(benchmark, study):
    table = benchmark(run_experiment, "T4", study)
    assert table.rows


def bench_f3_cpu_hours(benchmark, study):
    figure = benchmark(run_experiment, "F3", study)
    assert "total" in figure.series


def bench_f4_job_width_cdf(benchmark, study):
    figure = benchmark(run_experiment, "F4", study)
    assert set(figure.series) == {"cpu", "gpu"}


def bench_t5_queue_wait(benchmark, study):
    table = benchmark(run_experiment, "T5", study)
    assert "partition" in table.columns


def bench_f5_gpu_growth(benchmark, study):
    figure = benchmark(run_experiment, "F5", study)
    assert "gpu_hours" in figure.series


def bench_t6_practices(benchmark, study):
    table = benchmark(run_experiment, "T6", study)
    assert len(table.rows) == 5


def bench_t7_training(benchmark, study):
    table = benchmark(run_experiment, "T7", study)
    assert table.rows


def bench_f6_tool_network(benchmark, study):
    table = benchmark(run_experiment, "F6", study)
    assert table.rows


def bench_f7_runtime_dist(benchmark, study):
    figure = benchmark(run_experiment, "F7", study)
    assert figure.series


def bench_t8_storage(benchmark, study):
    table = benchmark(run_experiment, "T8", study)
    assert table.rows


def bench_f8_concordance(benchmark, study):
    figure = benchmark(run_experiment, "F8", study)
    assert "fields" in figure.series
