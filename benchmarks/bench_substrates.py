"""Substrate throughput benchmarks: generation, scheduling, I/O, stats.

These quantify the cost of the expensive pipeline stages so regressions in
the simulator or generator show up even when per-experiment benches (which
reuse a prebuilt study) stay flat.
"""

import io

import numpy as np
import pytest

from repro.cluster import (
    WorkloadModel,
    WorkloadParams,
    parse_sacct,
    simulate_schedule,
    write_sacct,
)
from repro.core import build_instrument, profile_2024
from repro.io import read_responses_jsonl, write_responses_jsonl
from repro.stats import holm_bonferroni, rake_weights
from repro.synth import generate_cohort
from repro.text import extract_mentions


def bench_survey_generation_200(benchmark):
    questionnaire = build_instrument()
    profile = profile_2024()

    def run():
        return generate_cohort(profile, questionnaire, 200, np.random.default_rng(0))

    result = benchmark(run)
    assert len(result) == 200


def bench_workload_generation_1month(benchmark):
    params = WorkloadParams(months=1, jobs_per_day=400)

    def run():
        return WorkloadModel(params).generate(np.random.default_rng(0))

    jobs = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(jobs) > 5000


def bench_scheduler_1month(benchmark):
    params = WorkloadParams(months=1, jobs_per_day=400)
    jobs = WorkloadModel(params).generate(np.random.default_rng(0))

    def run():
        return simulate_schedule(jobs, rng=np.random.default_rng(0))

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(result.table) == len(jobs)


def bench_sacct_round_trip(benchmark, study):
    def run():
        buf = io.StringIO()
        write_sacct(study.telemetry, buf)
        return parse_sacct(buf.getvalue())

    table = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(table) == len(study.telemetry)


def bench_jsonl_round_trip(benchmark, study):
    questionnaire = study.responses.questionnaire

    def run():
        buf = io.StringIO()
        write_responses_jsonl(study.responses, buf)
        return read_responses_jsonl(questionnaire, buf.getvalue())

    result = benchmark(run)
    assert len(result) == len(study.responses)


def bench_mention_extraction(benchmark, study):
    result = benchmark(extract_mentions, study.current, "stack_description")
    assert result.n_documents > 0


def bench_holm_1000(benchmark):
    rng = np.random.default_rng(0)
    p = rng.uniform(size=1000)
    adjusted = benchmark(holm_bonferroni, p)
    assert adjusted.shape == (1000,)


def bench_raking_two_margins(benchmark):
    rng = np.random.default_rng(0)
    fields = rng.choice(["a", "b", "c", "d"], size=5000).tolist()
    stages = rng.choice(["x", "y", "z"], size=5000).tolist()
    targets = [
        {"a": 0.3, "b": 0.3, "c": 0.2, "d": 0.2},
        {"x": 0.5, "y": 0.3, "z": 0.2},
    ]

    def run():
        return rake_weights([fields, stages], targets)

    weights = benchmark(run)
    assert weights.shape == (5000,)
