"""Shared benchmark fixtures.

The study is generated once per session (generation itself is benchmarked
separately in bench_substrates); per-experiment benches then measure pure
analysis/render cost, which is what a user regenerating one table pays.
"""

import pytest

from repro.core import build_default_study


@pytest.fixture(scope="session")
def study():
    """Benchmark-scale study: both cohorts + a 6-month telemetry window."""
    return build_default_study(
        seed=2024, n_baseline=150, n_current=200, months=6, jobs_per_day=200
    )
