#!/usr/bin/env python
"""Text mining walkthrough: free-text answers -> tool co-mention network.

Run:
    python examples/text_mining.py

Mines the 2024 cohort's "describe your software stack" answers for tool
mentions, compares mention rates across cohorts, and builds the co-mention
network behind figure F6 — including its community structure ("the Python
data stack travels together").
"""

from repro.core import build_instrument, profile_2011, profile_2024
from repro.report import ascii_bar_chart
from repro.synth import generate_study
from repro.text import (
    ToolEntry,
    DEFAULT_LEXICON,
    build_cooccurrence_graph,
    cooccurrence_summary,
    extract_mentions,
)


def main() -> None:
    responses = generate_study(
        {"2011": (profile_2011(), 250), "2024": (profile_2024(), 250)},
        build_instrument(),
        seed=33,
    )

    # Sites can extend the lexicon for local tools; alias resolution is
    # automatic ("torch" -> pytorch, "sklearn" -> scikit-learn, ...).
    lexicon = DEFAULT_LEXICON.extended(
        [ToolEntry("paraview", "environment"), ToolEntry("dask", "hpc")]
    )

    by_cohort = {
        cohort: extract_mentions(responses.by_cohort(cohort), "stack_description", lexicon)
        for cohort in ("2011", "2024")
    }

    print("top mentioned tools per cohort:")
    for cohort, summary in by_cohort.items():
        top = summary.top(6)
        print(f"  {cohort} ({summary.n_documents} answers): "
              + ", ".join(f"{tool} ({count})" for tool, count in top))
    print()

    # Tools whose mention rate moved the most between waves.
    tools = set(by_cohort["2011"].counts) | set(by_cohort["2024"].counts)
    deltas = {
        tool: by_cohort["2024"].share(tool) - by_cohort["2011"].share(tool)
        for tool in tools
    }
    movers = sorted(deltas.items(), key=lambda kv: -abs(kv[1]))[:8]
    print("biggest movers (mention-rate change, 2011 -> 2024):")
    for tool, delta in movers:
        print(f"  {tool:<14} {delta:+.1%}")
    print()

    # F6: the co-mention network for the 2024 wave.
    graph = build_cooccurrence_graph(by_cohort["2024"], min_count=3)
    summary = cooccurrence_summary(graph, top_k=8)
    print(f"co-mention network: {summary.n_tools} tools, {summary.n_edges} edges")
    print("strongest pairs:")
    print(ascii_bar_chart(
        [f"{a}+{b}" for a, b, _ in summary.top_pairs],
        [w for _, _, w in summary.top_pairs],
        value_fmt=lambda v: f"{v:.0f}",
    ))
    print()
    print("communities (stacks that travel together):")
    for i, community in enumerate(summary.communities):
        print(f"  group {i}: {', '.join(sorted(community))}")


if __name__ == "__main__":
    main()
