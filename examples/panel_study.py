#!/usr/bin/env python
"""Panel study walkthrough: within-person change, weighting, and power.

Run:
    python examples/panel_study.py

Demonstrates the methodology extras around the core trend tables:

1. design-stage power analysis (what can the cohort sizes detect?);
2. panel respondents answering both waves, analyzed with McNemar's test;
3. post-stratified (raked) estimates next to raw ones.
"""

import numpy as np

from repro.analysis import paired_multi_change, paired_yes_no_change
from repro.core import (
    WeightedTrendEngine,
    TrendEngine,
    build_instrument,
    population_field_shares,
    profile_2011,
    profile_2024,
)
from repro.report import fmt_pct
from repro.stats import (
    minimum_detectable_delta,
    required_n_per_group,
    two_proportion_power,
)
from repro.synth import generate_panel, generate_study


def main() -> None:
    # 1. Power: what is this study able to see?
    n_2011, n_2024 = 120, 200
    print("design-stage power analysis")
    for label, p1, p2 in (
        ("parallelism 55% -> 70%", 0.55, 0.70),
        ("GPU use 10% -> 45%", 0.10, 0.45),
        ("cluster use 60% -> 72%", 0.60, 0.72),
    ):
        power = two_proportion_power(p1, p2, n_2011, n_2024)
        print(f"  {label}: power {power:.0%} at n={n_2011}/{n_2024}")
    mdd = minimum_detectable_delta(0.55, n_2011, n_2024)
    print(f"  minimum detectable rise from 55%: {mdd:+.1%}")
    print(f"  n/group for 80% power on 55%->65%: "
          f"{required_n_per_group(0.55, 0.65)}")
    print()

    # 2. Panel: the same 150 researchers answering both waves.
    questionnaire = build_instrument()
    panel = generate_panel(
        profile_2011(), profile_2024(), questionnaire, 150, np.random.default_rng(8)
    )
    print("within-person changes (panel, McNemar):")
    for change in (
        paired_yes_no_change(panel, "uses_ml", label="machine learning"),
        paired_yes_no_change(panel, "uses_gpu", label="GPU use"),
        paired_multi_change(panel, "languages", "python", label="python"),
        paired_multi_change(panel, "languages", "matlab", label="matlab"),
    ):
        print(f"  {change.label:<17} +{change.adopters} / -{change.abandoners} "
              f"(net {change.net_change:+.0%}, p={change.test.p_value:.2g})")
    print()

    # 3. Weighted vs raw estimates on an independent cross-section.
    responses = generate_study(
        {"2011": (profile_2011(), n_2011), "2024": (profile_2024(), n_2024)},
        questionnaire,
        seed=12,
    )
    raw = TrendEngine(responses)
    weighted = WeightedTrendEngine(responses, {"field": population_field_shares()})
    print("raw vs post-stratified 2024 estimates:")
    for key in ("uses_gpu", "uses_ml", "uses_containers"):
        r = raw.yes_no_trend(key)
        w = weighted.yes_no_trend(key)
        print(f"  {key:<16} raw {fmt_pct(r.current.estimate):>6}   "
              f"weighted {fmt_pct(w.current.estimate):>6}   "
              f"(effective n {w.n_current} vs raw {r.n_current})")


if __name__ == "__main__":
    main()
