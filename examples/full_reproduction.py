#!/usr/bin/env python
"""Full reproduction: regenerate every table and figure at paper scale.

Run:
    python examples/full_reproduction.py [output_dir]

Builds the full-scale study (cohort sizes comparable to the predecessor
survey, 24 months of telemetry) and writes every artifact:

* ``<id>.txt``  — ASCII rendering (tables and figures);
* ``<id>.json`` — figure data for external plotting;
* ``<id>.svg``  — standalone SVG plots (no plotting stack required).

This is the script behind EXPERIMENTS.md.
"""

import json
import os
import sys
import time
from pathlib import Path

from repro.core import build_default_study
from repro.report import EXPERIMENTS, FigureSeries, figure_to_svg
from repro.report.experiments import run_all_experiments_with_metrics


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("artifacts")
    out_dir.mkdir(parents=True, exist_ok=True)

    print("building full-scale study (24 months of telemetry)...")
    t0 = time.time()
    study = build_default_study(
        seed=888,
        n_baseline=120,   # the 2011 survey interviewed ~114 researchers
        n_current=300,    # the revisit wave is larger (online instrument)
        months=24,
        jobs_per_day=450,
    )
    print(f"  built in {time.time() - t0:.1f}s: "
          f"{len(study.responses)} responses, {len(study.telemetry)} jobs")

    t0 = time.time()
    artifacts, metrics = run_all_experiments_with_metrics(
        study, max_workers=os.cpu_count()
    )
    print(f"  all {len(artifacts)} experiments regenerated in {time.time() - t0:.1f}s "
          f"({metrics.mode} executor, {metrics.max_workers} workers, "
          f"{100.0 * metrics.worker_utilization():.0f}% utilization)\n")

    for eid in sorted(artifacts):
        artifact = artifacts[eid]
        text_path = out_dir / f"{eid}.txt"
        text_path.write_text(artifact.render_ascii() + "\n", encoding="utf-8")
        if isinstance(artifact, FigureSeries):
            json_path = out_dir / f"{eid}.json"
            json_path.write_text(
                json.dumps(artifact.to_dict(), indent=2), encoding="utf-8"
            )
            (out_dir / f"{eid}.svg").write_text(
                figure_to_svg(artifact), encoding="utf-8"
            )
        print(f"[{eid}] {EXPERIMENTS[eid].title}: wrote {text_path}")

    print(f"\nartifacts in {out_dir}/ — see EXPERIMENTS.md for the index")


if __name__ == "__main__":
    main()
