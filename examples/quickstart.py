#!/usr/bin/env python
"""Quickstart: build the default study and regenerate two headline artifacts.

Run:
    python examples/quickstart.py

Builds a compact version of the reconstructed study (both survey cohorts
plus a simulated cluster-telemetry window) from a single seed, then prints
the language-use table (T2) and the parallelism trend table (T3).
"""

from repro.core import build_default_study
from repro.report import run_experiment


def main() -> None:
    # One seed drives everything: survey cohorts, workload, scheduling.
    study = build_default_study(
        seed=42,
        n_baseline=120,   # 2011-wave respondents
        n_current=160,    # 2024-wave respondents
        months=6,         # telemetry window
        jobs_per_day=200,
    )

    print(f"survey responses: {len(study.responses)} "
          f"({len(study.baseline)} in 2011, {len(study.current)} in 2024)")
    print(f"telemetry jobs:   {len(study.telemetry)}")
    print(f"validation ok:    {study.validation_report().ok}")
    print()

    print(run_experiment("T2", study).render_ascii())
    print()
    print(run_experiment("T3", study).render_ascii())


if __name__ == "__main__":
    main()
