#!/usr/bin/env python
"""QA workflows: the checks that run before anyone reads a trend table.

Run:
    python examples/qa_workflows.py

Shows the validation layer end to end:

1. response validation + nonresponse diagnostics;
2. accounting audit against the capacity model (clean vs corrupted data);
3. cluster health: wasted core-hours, failure rates, failure-burst scan;
4. ground-truth recovery: the pipeline finds a planted effect and stays
   quiet on a null scenario.
"""

import io

import numpy as np

from repro.analysis import quality_report
from repro.cluster import (
    audit_table,
    failure_bursts,
    failure_rates_by,
    parse_sacct,
    waste_summary,
    write_sacct,
)
from repro.core import TrendEngine, build_default_study, build_instrument, profile_2011, profile_2024
from repro.report import fmt_pct
from repro.synth import generate_study, null_revisit_profile, with_yes_rate


def main() -> None:
    study = build_default_study(
        seed=17, n_baseline=100, n_current=150, months=3, jobs_per_day=150
    )

    # 1. Survey-side QA.
    report = study.validation_report()
    quality = quality_report(study.responses)
    print("survey QA")
    print(f"  ingest: {'ok' if report.ok else 'FATAL'} "
          f"({len(report.issues)} quality flags)")
    worst = quality.worst_items(3)
    print("  worst nonresponse: "
          + ", ".join(f"{r.key}/{r.cohort} {fmt_pct(r.rate.estimate)}" for r in worst))
    print(f"  differential missingness by field: "
          f"p = {quality.field_missingness_test.p_value:.2f}")
    print()

    # 2. Accounting audit: simulated output is clean; corrupt a row and the
    #    audit catches it.
    audit = audit_table(study.telemetry, study.cluster)
    print("accounting audit")
    print(f"  simulated export: {len(audit.issues)} issues over {audit.n_jobs} jobs")
    buf = io.StringIO()
    write_sacct(study.telemetry, buf)
    corrupted = buf.getvalue().replace("|cpu|", "|quantum|", 1)
    bad_audit = audit_table(parse_sacct(corrupted), study.cluster)
    print(f"  corrupted export: {bad_audit.summary()}")
    print()

    # 3. Cluster health.
    waste = waste_summary(study.telemetry)
    print("cluster health")
    print(f"  wasted core-hours: {fmt_pct(waste.waste_fraction)} of "
          f"{waste.total_core_hours:,.0f}")
    for partition, ci in failure_rates_by(study.telemetry, "partition").items():
        print(f"  failure rate {partition}: {fmt_pct(ci.estimate)}")
    bursts = failure_bursts(study.telemetry)
    print(f"  failure bursts detected: {len(bursts)}")
    print()

    # 4. Ground-truth recovery.
    questionnaire = build_instrument()
    planted = with_yes_rate(profile_2024(), "uses_containers", 0.85)
    responses = generate_study(
        {"2011": (profile_2011(), 150), "2024": (planted, 150)}, questionnaire, seed=2
    )
    row = TrendEngine(responses).yes_no_trend("uses_containers")
    print("ground-truth recovery")
    print(f"  planted containers rate 85% -> measured "
          f"{fmt_pct(row.current.estimate)} (p = {row.p_value:.2g})")

    null = null_revisit_profile(profile_2011(), "2024")
    null_responses = generate_study(
        {"2011": (profile_2011(), 150), "2024": (null, 150)}, questionnaire, seed=2
    )
    engine = TrendEngine(null_responses)
    false_hits = [
        key
        for key in ("uses_ml", "uses_gpu", "uses_containers", "uses_cluster")
        if engine.yes_no_trend(key).significant(0.01)
    ]
    print(f"  null scenario significant rows at alpha=0.01: {false_hits or 'none'}")


if __name__ == "__main__":
    main()
