#!/usr/bin/env python
"""Cluster telemetry walkthrough: the scheduler-log side of the study.

Run:
    python examples/cluster_telemetry.py

Generates a 12-month workload on the campus cluster model, schedules it with
and without EASY backfill, exports/ingests sacct-format accounting data, and
prints the telemetry tables and figures (T5, F4, F5) plus consumption
concentration.
"""

import io

import numpy as np

from repro.cluster import (
    WorkloadModel,
    WorkloadParams,
    gpu_hours_monthly,
    job_width_distribution,
    monthly_growth_rate,
    parse_sacct,
    simulate_schedule,
    user_concentration,
    utilization_by_partition,
    wait_stats_by_partition,
    write_sacct,
)
from repro.cluster.partitions import DEFAULT_CLUSTER
from repro.report import ascii_bar_chart


def main() -> None:
    # Defaults are tuned so the CPU partition runs hot (~80% utilization)
    # and GPU demand approaches capacity late in the window.
    params = WorkloadParams(months=12, gpu_growth_per_month=0.05)
    print(f"generating {params.months} months of workload "
          f"(~{params.jobs_per_day:.0f} CPU jobs/day, GPU demand "
          f"+{params.gpu_growth_per_month:.0%}/month)...")
    jobs = WorkloadModel(params).generate(np.random.default_rng(11))
    print(f"  {len(jobs)} submissions")

    # Schedule with EASY backfill (the production configuration).
    result = simulate_schedule(jobs, rng=np.random.default_rng(0), backfill=True)
    table = result.table
    print(f"  scheduled; {result.backfilled} jobs backfilled\n")

    # Ablation: what does backfill buy?
    no_bf = simulate_schedule(jobs, rng=np.random.default_rng(0), backfill=False)
    mean_wait_on = table.wait.mean() / 3600.0
    mean_wait_off = no_bf.table.wait.mean() / 3600.0
    print(f"mean queue wait: {mean_wait_on:.2f}h with backfill, "
          f"{mean_wait_off:.2f}h without "
          f"({mean_wait_off / max(mean_wait_on, 1e-9):.1f}x)\n")

    # sacct round trip: what a site would do with real accounting exports.
    buf = io.StringIO()
    write_sacct(table, buf)
    table = parse_sacct(buf.getvalue())
    print(f"sacct round trip: {len(table)} records re-ingested\n")

    # T5: queue waits per partition.
    print("queue waits by partition (hours):")
    for partition, stats in sorted(wait_stats_by_partition(table).items()):
        print(f"  {partition:<8} n={int(stats['n']):>7}  median={stats['median_h']:.2f}  "
              f"p95={stats['p95_h']:.2f}")
    print()

    # Utilization.
    util = utilization_by_partition(table, DEFAULT_CLUSTER, params.window_seconds)
    print("utilization:")
    print(ascii_bar_chart(list(util), list(util.values()),
                          value_fmt=lambda v: f"{v:.0%}"))
    print()

    # F4: who holds the core-hours?
    cpu_jobs = table.mask(table.gpus == 0)
    dist = job_width_distribution(cpu_jobs)
    print("share of CPU core-hours by job width class:")
    print(ascii_bar_chart(list(dist.weighted_share),
                          list(dist.weighted_share.values()),
                          value_fmt=lambda v: f"{v:.0%}"))
    print()

    # F5: GPU growth.
    series = gpu_hours_monthly(table.gpu_jobs())[: params.months]
    growth = monthly_growth_rate(series)
    print(f"GPU-hours by month (fitted growth {growth:+.1%}/month):")
    print(ascii_bar_chart([f"m{m:02d}" for m in range(series.size)], series,
                          value_fmt=lambda v: f"{v/1000:.1f}k"))
    print()

    # Consumption concentration.
    for resource in ("cpu", "gpu"):
        conc = user_concentration(table, resource)
        print(f"{resource}-hours concentration: gini={conc['gini']:.2f}, "
              f"top 10% of users hold {conc['top10_share']:.0%} "
              f"({int(conc['n_users'])} users)")
    print()

    # What-if: replay the same submissions against expanded capacity.
    from repro.cluster import compare_what_if, scaled_partition

    outcomes = compare_what_if(
        jobs,
        {
            "baseline": DEFAULT_CLUSTER,
            "gpu x2": scaled_partition(DEFAULT_CLUSTER, "gpu", 2.0),
        },
    )
    print("what-if capacity replay (mean wait, hours):")
    for label, outcome in outcomes.items():
        gpu_txt = (f"{outcome.gpu_mean_wait_h:.2f}"
                   if outcome.gpu_mean_wait_h == outcome.gpu_mean_wait_h else "-")
        print(f"  {label:<9} all={outcome.mean_wait_h:.2f}  gpu={gpu_txt}")


if __name__ == "__main__":
    main()
