#!/usr/bin/env python
"""Trend study walkthrough: the survey side of the reproduction, in depth.

Run:
    python examples/trend_study.py

Demonstrates the survey workflow a research-computing group would follow on
real data: build the instrument, collect (here: synthesize) both waves,
validate and anonymize, post-stratify to the campus population, and compute
the trend families with corrected significance.
"""

import numpy as np

from repro.core import (
    TrendEngine,
    build_instrument,
    population_field_shares,
    profile_2011,
    profile_2024,
)
from repro.report import ascii_bar_chart, fmt_pct
from repro.stats import effective_sample_size, post_stratify, weighted_proportion
from repro.survey import anonymize_ids, build_codebook, validate_response_set
from repro.synth import generate_study


def main() -> None:
    questionnaire = build_instrument()

    # 1. Collect both waves. On real data you would read a CSV/JSONL export
    #    (repro.io) instead of generating.
    responses = generate_study(
        {"2011": (profile_2011(), 200), "2024": (profile_2024(), 260)},
        questionnaire,
        seed=7,
    )

    # 2. QA: validate against the instrument, then pseudonymize for analysis.
    report = validate_response_set(responses)
    print(f"validation: ok={report.ok}, issues={len(report.issues)} "
          f"(missing answers etc.), completion={responses.completion_rate():.1%}")
    responses = anonymize_ids(responses, salt="example-release")

    # 3. Codebook for the released dataset.
    codebook = build_codebook(questionnaire, responses)
    print(f"codebook: {len(codebook)} variables; first entry:\n{codebook.entries[0].render()}\n")

    # 4. Post-stratify the 2024 wave to the campus field distribution and
    #    compare weighted vs unweighted GPU adoption.
    current = responses.by_cohort("2024")
    fields = [r.get("field") for r in current if r.answered("field")]
    weights = post_stratify(fields, population_field_shares())
    gpu_flags = [
        r.get("uses_gpu") == "yes" for r in current if r.answered("field")
    ]
    raw = float(np.mean(gpu_flags))
    weighted = weighted_proportion(gpu_flags, weights)
    print(f"2024 GPU adoption: raw {fmt_pct(raw)}, "
          f"post-stratified {fmt_pct(weighted)} "
          f"(effective n = {effective_sample_size(weights):.0f})")
    print()

    # 5. Trend families with Holm correction.
    engine = TrendEngine(responses)
    languages = engine.multi_choice_trend("languages").corrected("holm").sorted_by_delta()
    print("language trends (2011 -> 2024), Holm-corrected:")
    for row in languages:
        marker = " *" if row.significant() else ""
        print(f"  {row.label:<12} {fmt_pct(row.baseline.estimate):>6} -> "
              f"{fmt_pct(row.current.estimate):>6}  ({row.delta:+.1%}){marker}")
    print()

    # 6. A bar chart of the 2024 language landscape.
    shares = {
        row.label: row.current.estimate for row in languages
    }
    top = sorted(shares.items(), key=lambda kv: -kv[1])[:8]
    print("2024 language use:")
    print(ascii_bar_chart([k for k, _ in top], [v for _, v in top],
                          value_fmt=lambda v: fmt_pct(v)))


if __name__ == "__main__":
    main()
