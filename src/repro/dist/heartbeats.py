"""Worker liveness via heartbeat files in the shared run directory.

Fleet mode has no in-memory channel between the coordinator and its
workers — a worker may be another process on this host or a `repro
worker` on another machine sharing the cache filesystem. Liveness
therefore flows through one file per worker: a fixed-width record holding
the worker's pid, host, and a monotonically increasing counter, rewritten
in place by a background thread every ``interval`` seconds.

The coordinator's :class:`FleetMonitor` judges liveness from two signals:

* **Same-host fast path** — the recorded host is this host, so the pid can
  be probed directly (signal 0). A SIGKILL'd worker is declared dead on
  the next tick, not after a heartbeat timeout.
* **Counter staleness** — the counter has not advanced for ``lease_ttl``
  seconds of the *coordinator's* monotonic clock. This is the only signal
  that works across hosts, and the only one that catches a worker whose
  process is alive but whose heartbeat thread is wedged or partitioned
  away from the shared filesystem (the split-brain case: it may still be
  computing, which is exactly why publishes are fenced — see
  :mod:`repro.dist.worker`).

Records never compare wall clocks across machines: the counter is written
with the worker's clock and judged against the coordinator's, so clock
skew between hosts is irrelevant.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.io.locks import OWNER_RECORD_WIDTH, local_host, owner_record, parse_owner_record

__all__ = [
    "Heartbeat",
    "HeartbeatWriter",
    "FleetMonitor",
    "read_heartbeat",
]

#: owner record (pid + host) followed by a fixed-width counter line.
_COUNTER_WIDTH = 20
HEARTBEAT_RECORD_WIDTH = OWNER_RECORD_WIDTH + _COUNTER_WIDTH


@dataclass(frozen=True)
class Heartbeat:
    """One parsed heartbeat file."""

    pid: int
    host: str
    counter: int


def read_heartbeat(path: Path) -> Heartbeat | None:
    """Parse a heartbeat file, or None when absent/torn (writer mid-pwrite)."""
    try:
        data = path.read_bytes()
    except OSError:
        return None
    owner = parse_owner_record(data[:OWNER_RECORD_WIDTH])
    if owner is None:
        return None
    counter_line = data[OWNER_RECORD_WIDTH:HEARTBEAT_RECORD_WIDTH].strip()
    if not counter_line.isdigit():
        return None
    return Heartbeat(pid=owner[0], host=owner[1], counter=int(counter_line))


class HeartbeatWriter:
    """Background thread beating one worker's heartbeat file.

    The record is fixed-width and rewritten with a single ``pwrite`` at
    offset 0, so readers never observe a half-old half-new record longer
    than one syscall's worth of tearing (and a torn read is simply
    retried next tick — :func:`read_heartbeat` returns None).

    :meth:`pause` stops the counter from advancing while leaving the
    process running — the injection point for ``WorkerPartition`` chaos,
    and the exact condition lease expiry is designed to catch.
    """

    def __init__(self, path: str | Path, interval: float = 0.1) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.path = Path(path)
        self.interval = interval
        self.counter = 0
        self._fd: int | None = None
        self._paused = threading.Event()
        self._stopped = threading.Event()
        self._thread: threading.Thread | None = None

    def beat(self) -> None:
        """Write one heartbeat record now (counter+1)."""
        if self._fd is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fd = os.open(self.path, os.O_CREAT | os.O_WRONLY, 0o644)
        self.counter += 1
        record = owner_record() + f"{self.counter:>{_COUNTER_WIDTH - 1}}\n".encode()
        os.pwrite(self._fd, record, 0)

    def start(self) -> "HeartbeatWriter":
        self.beat()  # visible before the first interval elapses
        self._thread = threading.Thread(target=self._loop, daemon=True)
        self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stopped.wait(self.interval):
            if not self._paused.is_set():
                try:
                    self.beat()
                except OSError:
                    # Run dir swept by the coordinator (shutdown race) or
                    # the shared filesystem went away; either way the
                    # worker is about to observe the stop sentinel.
                    return

    def pause(self) -> None:
        """Stop advancing the counter (the process keeps running)."""
        self._paused.set()

    def resume(self) -> None:
        self._paused.clear()

    def stop(self) -> None:
        self._stopped.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None


@dataclass
class _WorkerView:
    heartbeat: Heartbeat | None = None
    last_advance: float = field(default_factory=time.monotonic)
    dead: bool = False


class FleetMonitor:
    """Coordinator-side liveness judgement over a directory of heartbeats.

    ``observe()`` returns the set of workers whose counter advanced since
    the previous call (the coordinator turns these into ``lease.renew``
    trace events for in-flight steps) — death is permanent: once declared
    dead a worker stays dead even if its counter later advances, because
    its leases have already been fenced and handed to a replacement.
    """

    def __init__(self, directory: str | Path, lease_ttl: float) -> None:
        self.directory = Path(directory)
        self.lease_ttl = lease_ttl
        self._views: dict[str, _WorkerView] = {}

    def register(self, worker: str) -> None:
        """Start the liveness clock for a worker we expect to appear."""
        self._views.setdefault(worker, _WorkerView())

    def observe(self) -> set[str]:
        """Re-read every heartbeat; returns workers that advanced."""
        advanced: set[str] = set()
        now = time.monotonic()
        for worker, view in self._views.items():
            if view.dead:
                continue
            hb = read_heartbeat(self.directory / f"{worker}.hb")
            if hb is not None and (
                view.heartbeat is None or hb.counter > view.heartbeat.counter
            ):
                view.heartbeat = hb
                view.last_advance = now
                advanced.add(worker)
        return advanced

    def heartbeat_gap(self, worker: str) -> float:
        """Seconds since the worker's counter last advanced."""
        view = self._views.get(worker)
        if view is None:
            return 0.0
        return time.monotonic() - view.last_advance

    def is_dead(self, worker: str) -> bool:
        """Judge one worker now (sticky once True)."""
        view = self._views.get(worker)
        if view is None:
            return False
        if view.dead:
            return True
        hb = view.heartbeat
        if hb is not None and hb.host in ("", local_host()):
            # Same-host fast path: probe the pid directly instead of
            # waiting out the ttl.
            from repro.io.locks import pid_alive

            if not pid_alive(hb.pid):
                view.dead = True
                return True
        if time.monotonic() - view.last_advance > self.lease_ttl:
            view.dead = True
            return True
        return False

    def dead_workers(self) -> set[str]:
        return {w for w in self._views if self.is_dead(w)}

    def alive_workers(self) -> set[str]:
        return {w for w in self._views if not self.is_dead(w)}
