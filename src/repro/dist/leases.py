"""Run-directory protocol for fleet mode: assignments, leases, results.

Everything the coordinator and its workers exchange lives under one run
directory inside the shared cache filesystem::

    <cache_root>/.dist/<run_id>/
        spec.pkl            pickled RunSpec (steps, keys, config, chaos)
        assign/<step>.task  authoritative assignment record (JSON)
        leases/<step>.lease FileLock held by the executing worker
        heartbeats/<w>.hb   fixed-width pid+host+counter records
        results/<step>.<epoch>.<worker>.json
        logs/<w>.log        append-only worker event log (publish audit)
        chaos/              O_CREAT|O_EXCL claim markers for fault firing
        stop                sentinel: workers drain and exit

Assignment records are the **fencing token**. Each carries an ``epoch``
that the coordinator bumps on every reassignment; a worker must re-read
the record and find itself listed *at its own epoch* immediately before
publishing, so a partitioned worker whose lease expired (epoch advanced
under it) aborts instead of racing its replacement. Speculative
duplicates share one epoch — both are legitimate, and first-writer-wins
is enforced by the per-key cache entry lock plus a peek-before-put.

All JSON records are written atomically (temp file + ``os.replace``), so
a reader never parses a half-written assignment or result.
"""

from __future__ import annotations

import json
import os
import shutil
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.io.locks import pid_alive

__all__ = [
    "Assignment",
    "TaskResult",
    "run_dir_for",
    "write_assignment",
    "read_assignment",
    "iter_assignments",
    "assignment_current",
    "lease_path",
    "write_result",
    "iter_results",
    "log_event",
    "collect_worker_logs",
    "signal_stop",
    "stop_requested",
    "cleanup_run_dir",
    "sweep_dead_tmp",
]

DIST_DIR = ".dist"


def run_dir_for(cache_root: str | Path, run_id: str) -> Path:
    return Path(cache_root) / DIST_DIR / run_id


def _atomic_write_json(path: Path, payload: dict) -> None:
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    tmp.write_text(json.dumps(payload, sort_keys=True))
    os.replace(tmp, path)


@dataclass(frozen=True)
class Assignment:
    """Authoritative record of who may execute (and publish) a step."""

    step: str
    epoch: int
    workers: tuple[str, ...]

    def to_payload(self) -> dict:
        return {"step": self.step, "epoch": self.epoch, "workers": list(self.workers)}


def _assign_path(run_dir: Path, step: str) -> Path:
    # Step names may contain ':' (e.g. "exp:T1"); flatten to a filename.
    return run_dir / "assign" / f"{step.replace('/', '_')}.task"


def write_assignment(run_dir: Path, assignment: Assignment) -> None:
    path = _assign_path(run_dir, assignment.step)
    path.parent.mkdir(parents=True, exist_ok=True)
    _atomic_write_json(path, assignment.to_payload())


def read_assignment(run_dir: Path, step: str) -> Assignment | None:
    try:
        payload = json.loads(_assign_path(run_dir, step).read_text())
    except (OSError, ValueError):
        return None
    return Assignment(
        step=payload["step"],
        epoch=int(payload["epoch"]),
        workers=tuple(payload["workers"]),
    )


def iter_assignments(run_dir: Path) -> Iterator[Assignment]:
    assign_dir = run_dir / "assign"
    try:
        names = sorted(os.listdir(assign_dir))
    except OSError:
        return
    for name in names:
        if not name.endswith(".task"):
            continue
        try:
            payload = json.loads((assign_dir / name).read_text())
        except (OSError, ValueError):
            continue
        yield Assignment(
            step=payload["step"],
            epoch=int(payload["epoch"]),
            workers=tuple(payload["workers"]),
        )


def assignment_current(run_dir: Path, step: str, worker: str, epoch: int) -> bool:
    """The fence: is (worker, epoch) still the authoritative assignment?

    Called by the worker immediately before ``cache.put``. False means the
    coordinator expired this worker's lease and moved on — the computed
    value is discarded, never published.
    """
    current = read_assignment(run_dir, step)
    return current is not None and current.epoch == epoch and worker in current.workers


def lease_path(run_dir: Path, step: str) -> Path:
    path = run_dir / "leases" / f"{step.replace('/', '_')}.lease"
    path.parent.mkdir(parents=True, exist_ok=True)
    return path


# -- results -------------------------------------------------------------------


@dataclass(frozen=True)
class TaskResult:
    """One worker's verdict on one (step, epoch) execution."""

    step: str
    epoch: int
    worker: str
    outcome: str  # ok | retried | cached | failed | timeout | fenced
    attempts: int
    published: bool  # this execution performed the cache.put
    stored: bool  # the artifact is readable from the cache
    wall: float
    error: str = ""

    def to_payload(self) -> dict:
        return {
            "step": self.step,
            "epoch": self.epoch,
            "worker": self.worker,
            "outcome": self.outcome,
            "attempts": self.attempts,
            "published": self.published,
            "stored": self.stored,
            "wall": self.wall,
            "error": self.error,
        }


def write_result(run_dir: Path, result: TaskResult) -> None:
    path = (
        run_dir
        / "results"
        / f"{result.step.replace('/', '_')}.{result.epoch}.{result.worker}.json"
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    _atomic_write_json(path, result.to_payload())


def iter_results(run_dir: Path) -> Iterator[TaskResult]:
    results_dir = run_dir / "results"
    try:
        names = sorted(os.listdir(results_dir))
    except OSError:
        return
    for name in names:
        if not name.endswith(".json"):
            continue
        try:
            payload = json.loads((results_dir / name).read_text())
        except (OSError, ValueError):
            continue
        yield TaskResult(
            step=payload["step"],
            epoch=int(payload["epoch"]),
            worker=payload["worker"],
            outcome=payload["outcome"],
            attempts=int(payload["attempts"]),
            published=bool(payload["published"]),
            stored=bool(payload["stored"]),
            wall=float(payload["wall"]),
            error=payload.get("error", ""),
        )


# -- worker logs ---------------------------------------------------------------


def log_event(run_dir: Path, worker: str, event: str, **fields: object) -> None:
    """Append one JSON line to the worker's log (publish audit trail).

    Append-only and single-writer per file, so no locking is needed; the
    coordinator folds every log into its fleet stats before cleanup and
    the chaos suite asserts exactly-once publishes from them.
    """
    path = run_dir / "logs" / f"{worker}.log"
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "a") as fh:
            fh.write(json.dumps({"event": event, **fields}, sort_keys=True) + "\n")
    except OSError:
        pass  # audit trail only; never fail the task over it


def collect_worker_logs(run_dir: Path) -> list[dict]:
    records: list[dict] = []
    logs_dir = run_dir / "logs"
    try:
        names = sorted(os.listdir(logs_dir))
    except OSError:
        return records
    for name in names:
        try:
            text = (logs_dir / name).read_text()
        except OSError:
            continue
        for line in text.splitlines():
            try:
                record = json.loads(line)
            except ValueError:
                continue  # torn final line from a killed worker
            record["worker"] = name[: -len(".log")]
            records.append(record)
    return records


# -- lifecycle -----------------------------------------------------------------


def signal_stop(run_dir: Path) -> None:
    try:
        (run_dir / "stop").touch()
    except OSError:
        pass


def stop_requested(run_dir: Path) -> bool:
    return (run_dir / "stop").exists()


def cleanup_run_dir(run_dir: Path) -> None:
    """Remove the whole run directory (leases, heartbeats, assignments).

    Called by the coordinator after the fleet has stopped; leaves the
    parent ``.dist/`` behind only if other runs still live there.
    """
    shutil.rmtree(run_dir, ignore_errors=True)
    parent = run_dir.parent
    try:
        parent.rmdir()  # only succeeds when no other run dirs remain
    except OSError:
        pass


def sweep_dead_tmp(cache_root: str | Path) -> int:
    """Unlink cache ``*.tmp`` files whose writer pid is dead.

    A SIGKILL'd worker can die between opening its publish temp file and
    the ``finally`` that removes it. Temp names embed the writer's pid
    (``<key>.pkl.<pid>.<tid>.tmp``), so stranded ones are identifiable;
    live pids are left alone — their publish is still in flight.
    """
    removed = 0
    root = Path(cache_root)
    try:
        names = os.listdir(root)
    except OSError:
        return 0
    for name in names:
        if not name.endswith(".tmp"):
            continue
        parts = name.split(".")
        # <key>.pkl.<pid>.<tid>.tmp — pid is the third-from-last part.
        if len(parts) < 4 or not parts[-3].isdigit():
            continue
        if pid_alive(int(parts[-3])):
            continue
        try:
            (root / name).unlink()
            removed += 1
        except OSError:
            pass
    return removed
