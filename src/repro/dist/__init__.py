"""Fleet mode: a fault-tolerant coordinator/worker execution backend.

``Pipeline.run(executor="dist")`` hands the DAG to a coordinator
(:mod:`repro.dist.coordinator`) that schedules frontier steps onto N
independent worker *processes* (:mod:`repro.dist.worker`). The fleet is
multi-host-shaped: every byte of coordination — run spec, assignment
records, lease files, heartbeats, results — lives in a run directory
inside the shared :class:`~repro.core.pipeline.ArtifactCache` filesystem
(:mod:`repro.dist.leases`, :mod:`repro.dist.heartbeats`), never in an
in-memory channel, so ``repro worker`` processes on other machines can
join the same run.

Robustness model: leases expire on missed heartbeats and in-flight steps
are reassigned under a bumped fencing epoch; a step that kills
``poison_threshold`` distinct workers is quarantined as poisoned;
stragglers get speculative duplicates (first-writer-wins); a total fleet
loss degrades the run to a DEGRADED report instead of hanging. Artifact
publishes stay at-most-once throughout via the cache's atomic put,
per-key entry locks, and the pre-publish fence check. Worker-level chaos
(:class:`~repro.core.faults.WorkerKill` / ``WorkerHang`` /
``WorkerPartition``) injects exactly these failures for the test matrix.
"""

from repro.dist.coordinator import run_coordinator
from repro.dist.heartbeats import FleetMonitor, Heartbeat, HeartbeatWriter, read_heartbeat
from repro.dist.worker import DistConfig, RunSpec, WORKER_EVENTS, load_spec, worker_main

__all__ = [
    "DistConfig",
    "FleetMonitor",
    "Heartbeat",
    "HeartbeatWriter",
    "RunSpec",
    "WORKER_EVENTS",
    "load_spec",
    "read_heartbeat",
    "run_coordinator",
    "worker_main",
]
