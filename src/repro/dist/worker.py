"""The fleet worker loop: poll assignments, execute, fence, publish.

A worker is an independent *process* (forked by the coordinator, or
joined from anywhere via ``repro worker``) that shares nothing with the
coordinator but the run directory and the artifact cache. It learns the
pipeline from ``spec.pkl``, discovers work by polling the assignment
records, and reports through result files — so a worker on another host
behaves identically to one forked locally.

Execution of one task::

    chaos("task_start")                      # WorkerKill / Hang / Partition
    lease = FileLock(leases/<step>.lease)    # crashed holders auto-reclaim
    inputs = cache.peek(key(dep)) ...        # deps are already published
    value = attempt_loop(step)               # retries + cooperative timeout
    with cache entry lock:                   # per-key single flight
        if cache.peek(key): outcome=cached   # someone already published
        elif not fence_current(): fenced     # our lease expired — discard
        else:
            chaos("before_publish")
            cache.put(key, value)            # atomic; first writer wins
            chaos("after_publish")
    write result file
    chaos("after_result")

The **fence** is what wins split-brain: a partitioned worker (heartbeats
stopped, compute continuing) re-reads the assignment record inside the
entry lock immediately before publishing; if the coordinator has bumped
the epoch and handed the step to a replacement, the stale worker discards
its value. Combined with peek-before-put under the entry lock, every step
is published **at most once** no matter how many replacements and
speculative duplicates raced for it.

Lock acquisition is bounded (``config.lock_timeout``) and degrades to
lockless execution on expiry: values are deterministic and publishes
atomic, so the worst case for a wedged lock holder is one duplicated
compute — never a stall, never a corrupt artifact.
"""

from __future__ import annotations

import os
import pickle
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.core.pipeline import (
    ArtifactCache,
    PipelineStep,
    RetryPolicy,
    StepTimeout,
    _call_step,
)
from repro.dist.leases import (
    TaskResult,
    assignment_current,
    iter_assignments,
    lease_path,
    log_event,
    stop_requested,
    write_result,
)
from repro.dist.heartbeats import HeartbeatWriter
from repro.io.locks import FileLock, LockTimeout
from repro.obs.spine import WorkerObs

__all__ = ["DistConfig", "RunSpec", "worker_main", "load_spec", "write_spec"]

#: Worker-side chaos coordinates, in execution order. The kill matrix in
#: tests/dist parametrizes over (step, event) pairs drawn from these.
WORKER_EVENTS = ("task_start", "before_publish", "after_publish", "after_result")


@dataclass(frozen=True)
class DistConfig:
    """Tunable knobs for the fleet. All coordination-timing only — none of
    these participate in cache keys, so fleet configuration never
    invalidates artifacts (same rule as retry/journal/trace config).

    Attributes
    ----------
    workers:
        Fleet size when the coordinator forks its own workers.
    heartbeat_interval:
        Worker heartbeat period.
    lease_ttl:
        Heartbeat silence after which a worker's leases are expired and
        its in-flight steps reassigned. Must comfortably exceed
        ``heartbeat_interval``.
    poll_interval:
        Worker sleep between assignment scans.
    tick_interval:
        Coordinator sleep between scheduling ticks.
    speculate_after:
        Straggler deadline: an in-flight step on a *live* worker older
        than this gets a speculative duplicate on an idle worker
        (first-writer-wins). ``None`` disables speculation.
    poison_threshold:
        Distinct dead workers a single step may consume before it is
        quarantined as poisoned (terminal failure, downstream skipped).
    lock_timeout:
        Budget for lease / cache-entry lock acquisition before a worker
        proceeds locklessly.
    spawn_workers:
        When False the coordinator forks nothing and waits for external
        ``repro worker`` processes to join the run directory.
    worker_grace:
        Shutdown budget for workers to drain after the stop sentinel
        appears; stragglers are terminated, then killed.
    """

    workers: int = 4
    heartbeat_interval: float = 0.1
    lease_ttl: float = 1.0
    poll_interval: float = 0.02
    tick_interval: float = 0.02
    speculate_after: float | None = None
    poison_threshold: int = 2
    lock_timeout: float = 5.0
    spawn_workers: bool = True
    worker_grace: float = 10.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.lease_ttl <= self.heartbeat_interval:
            raise ValueError(
                f"lease_ttl ({self.lease_ttl}) must exceed heartbeat_interval "
                f"({self.heartbeat_interval}) or every worker looks dead"
            )
        if self.poison_threshold < 1:
            raise ValueError(
                f"poison_threshold must be >= 1, got {self.poison_threshold}"
            )


@dataclass(frozen=True)
class RunSpec:
    """Everything a worker needs, serialized into the run directory.

    Workers never receive in-memory state: the spec is written once by
    the coordinator and loaded from disk by every worker, which keeps the
    protocol honest for workers on other hosts.
    """

    run_id: str
    steps: tuple[PipelineStep, ...]
    keys: Mapping[str, str]
    retries: Mapping[str, RetryPolicy]
    timeouts: Mapping[str, float | None]
    cache_root: str
    cache_locking: bool
    force: bool
    config: DistConfig
    chaos: Any | None = None  # WorkerFaultPlan, bound per worker at start

    def step(self, name: str) -> PipelineStep:
        for s in self.steps:
            if s.name == name:
                return s
        raise KeyError(name)


def write_spec(run_dir: Path, spec: RunSpec) -> None:
    run_dir.mkdir(parents=True, exist_ok=True)
    tmp = run_dir / f"spec.pkl.{os.getpid()}.tmp"
    tmp.write_bytes(pickle.dumps(spec))
    os.replace(tmp, run_dir / "spec.pkl")


def load_spec(run_dir: Path, timeout: float | None = None) -> RunSpec:
    """Load the run spec, optionally waiting for the coordinator to write it.

    The wait path serves externally-joined ``repro worker`` processes that
    may be started before the coordinator has materialized the run dir.
    """
    path = Path(run_dir) / "spec.pkl"
    deadline = None if timeout is None else time.monotonic() + timeout
    while True:
        try:
            return pickle.loads(path.read_bytes())
        except (OSError, pickle.UnpicklingError, EOFError):
            if deadline is None or time.monotonic() >= deadline:
                raise FileNotFoundError(f"no run spec at {path}")
            time.sleep(0.05)


# -- task execution ------------------------------------------------------------


@dataclass
class _WorkerState:
    run_dir: Path
    worker_id: str
    spec: RunSpec
    cache: ArtifactCache
    heartbeat: HeartbeatWriter
    chaos: Any | None = None
    obs: Any | None = None
    handled: set[tuple[str, int]] = field(default_factory=set)


def _fire_chaos(state: _WorkerState, step: str, event: str) -> None:
    if state.chaos is not None:
        state.chaos.fire(step, event)


def _gather_inputs(state: _WorkerState, step: PipelineStep) -> dict[str, Any] | None:
    """Dependency values from the cache, or None when one is unreadable.

    The coordinator only assigns frontier steps (every dep published), so
    a missing dep means the cache entry vanished or never persisted
    (``cache_unavailable`` upstream) — the worker reports it rather than
    blocking.
    """
    inputs: dict[str, Any] = {}
    for dep in step.depends_on:
        value = state.cache.peek(state.spec.keys[dep])
        if value is None:
            return None
        inputs[dep] = value
    return inputs


def _attempt_loop(state: _WorkerState, step: PipelineStep, inputs: dict[str, Any]) -> tuple[Any, int]:
    """Bounded retries with deterministic backoff; returns (value, attempts).

    Mirrors ``Pipeline._attempt_loop`` but runs inside the worker process,
    where every timeout is cooperative: a worker cannot hard-kill part of
    itself, and a truly wedged step is the coordinator's problem (lease
    expiry / speculation), not the attempt loop's.
    """
    policy = state.spec.retries[step.name]
    timeout = state.spec.timeouts.get(step.name)
    attempt = 0
    while True:
        attempt += 1
        started = time.perf_counter()
        try:
            value = _call_step(step.fn, inputs, dict(step.params))
            if value is None:
                raise RuntimeError(f"step {step.name!r} returned None")
            if timeout is not None and time.perf_counter() - started > timeout:
                raise StepTimeout(
                    f"step {step.name!r} exceeded timeout {timeout:.3f}s "
                    "(cooperative deadline, dist worker)"
                )
            return value, attempt
        except Exception as exc:
            if attempt >= policy.max_attempts or not policy.retries(exc):
                raise
            time.sleep(policy.delay(step.name, attempt))


def _acquire_bounded(lock: FileLock | None, budget: float) -> bool:
    """Acquire with a budget; False = proceed locklessly (wedged holder)."""
    if lock is None:
        return False
    try:
        lock.acquire(timeout=budget)
        return True
    except LockTimeout:
        return False


def _execute_task(state: _WorkerState, step_name: str, epoch: int) -> None:
    spec, cache, run_dir = state.spec, state.cache, state.run_dir
    worker = state.worker_id
    step = spec.step(step_name)
    key = spec.keys[step_name]
    t0 = time.perf_counter()
    t0_wall = time.time()
    log_event(run_dir, worker, "task_start", step=step_name, epoch=epoch)
    _fire_chaos(state, step_name, "task_start")

    lease = FileLock(lease_path(run_dir, step_name))
    lease_held = _acquire_bounded(lease, spec.config.lock_timeout)
    outcome, attempts, error = "ok", 0, ""
    published = stored = False
    try:
        value = None if spec.force else cache.peek(key)
        if value is not None:
            outcome, stored = "cached", True
        else:
            inputs = _gather_inputs(state, step)
            if inputs is None:
                outcome = "failed"
                error = f"dist worker {worker}: upstream artifact unreadable"
            else:
                try:
                    value, attempts = _attempt_loop(state, step, inputs)
                except StepTimeout as exc:
                    outcome, error = "timeout", repr(exc)
                except Exception as exc:
                    outcome, error = "failed", repr(exc)
                else:
                    outcome = "retried" if attempts > 1 else "ok"
                    published, stored = _publish(state, step_name, key, epoch, value)
                    if published is None:  # fenced: lease lost mid-compute
                        outcome, published = "fenced", False
    finally:
        if lease_held:
            lease.release()
    wall = time.perf_counter() - t0
    write_result(
        run_dir,
        TaskResult(
            step=step_name, epoch=epoch, worker=worker, outcome=outcome,
            attempts=attempts, published=bool(published), stored=stored,
            wall=wall, error=error,
        ),
    )
    if state.obs is not None:
        state.obs.record_task(step_name, epoch, outcome, attempts, t0_wall, time.time())
        state.obs.flush()
    _fire_chaos(state, step_name, "after_result")


def _publish(
    state: _WorkerState, step_name: str, key: str, epoch: int, value: Any
) -> tuple[bool | None, bool]:
    """Fenced, single-flight publish; returns (published, stored).

    ``published=None`` signals a fence rejection — the computed value was
    discarded because this worker's lease expired while it computed.
    """
    cache, run_dir, worker = state.cache, state.run_dir, state.worker_id
    entry_lock = cache._entry_lock(key)
    locked = _acquire_bounded(entry_lock, state.spec.config.lock_timeout)
    try:
        if not state.spec.force and cache.peek(key) is not None:
            # A speculative twin or prior epoch already published; ours is
            # byte-identical by construction, so simply drop it.
            log_event(run_dir, worker, "publish_skipped", step=step_name, reason="cached")
            return False, True
        if not assignment_current(run_dir, step_name, worker, epoch):
            log_event(run_dir, worker, "fenced", step=step_name, epoch=epoch)
            return None, False
        _fire_chaos(state, step_name, "before_publish")
        stored = cache.put(key, value)
        if stored:
            log_event(run_dir, worker, "publish", step=step_name, key=key)
        _fire_chaos(state, step_name, "after_publish")
        return True, stored
    finally:
        if locked:
            entry_lock.release()


# -- the worker loop -----------------------------------------------------------


def worker_main(
    run_dir: str | Path,
    worker_id: str,
    *,
    join_timeout: float | None = None,
) -> int:
    """Run one fleet worker until the stop sentinel appears; returns exit code.

    Entry point for both coordinator-forked workers and the ``repro
    worker`` CLI. ``KeyboardInterrupt`` drains cleanly: held leases are
    released by the in-flight task's ``finally``, the heartbeat file is
    left for the coordinator to sweep, and the exit code is 130 (the
    PR-4 interrupt convention).
    """
    run_dir = Path(run_dir)
    try:
        spec = load_spec(run_dir, timeout=join_timeout)
    except FileNotFoundError as exc:
        print(f"repro worker: {exc}", file=sys.stderr)
        return 2
    cache = ArtifactCache(spec.cache_root, locking=spec.cache_locking)
    heartbeat = HeartbeatWriter(
        run_dir / "heartbeats" / f"{worker_id}.hb",
        interval=spec.config.heartbeat_interval,
    )
    state = _WorkerState(
        run_dir=run_dir, worker_id=worker_id, spec=spec, cache=cache,
        heartbeat=heartbeat,
    )
    if spec.chaos is not None:
        state.chaos = spec.chaos.bind(run_dir, worker_id, heartbeat)
    state.obs = WorkerObs(run_dir, worker_id)
    state.obs.flush()  # visible in the spine even before the first task
    heartbeat.start()
    try:
        # A vanished run directory is as final as the stop sentinel: the
        # coordinator sweeps the whole dir on its way out, and an external
        # worker polling at its own cadence can miss the brief window in
        # which the sentinel exists.
        while not stop_requested(run_dir) and run_dir.is_dir():
            claimed = False
            for assignment in iter_assignments(run_dir):
                if worker_id not in assignment.workers:
                    continue
                token = (assignment.step, assignment.epoch)
                if token in state.handled:
                    continue
                state.handled.add(token)
                claimed = True
                _execute_task(state, assignment.step, assignment.epoch)
            if not claimed:
                time.sleep(spec.config.poll_interval)
        return 0
    except KeyboardInterrupt:
        return 130
    finally:
        state.obs.flush()
        heartbeat.stop()


def _forked_worker(run_dir: str, worker_id: str) -> None:  # pragma: no cover - child
    """Process target for coordinator-forked workers."""
    raise SystemExit(worker_main(run_dir, worker_id))
