"""The fleet coordinator: schedule DAG frontier steps onto worker processes.

This is the ``executor="dist"`` backend. The coordinator owns the
scheduling state (frontier, leases, poison counts) and the run-level
durability surfaces (journal, tracer, metrics); workers own nothing but
their current task. All coordination flows through the run directory in
the shared cache filesystem — see :mod:`repro.dist.leases` for the file
protocol — so the fleet is multi-host-shaped even when every worker is a
local fork.

Failure handling, in increasing order of severity:

* **Worker death** (SIGKILL, OOM, lost host): detected by the
  :class:`~repro.dist.heartbeats.FleetMonitor` (same-host pid probe or
  heartbeat-counter staleness past ``lease_ttl``). The dead worker's
  in-flight steps are reassigned to surviving idle workers under a bumped
  epoch; the old epoch's publishes are fenced off by the assignment
  record, and at-most-once publish is preserved by the cache entry lock +
  peek-before-put (see :mod:`repro.dist.worker`).
* **Poisoned step**: a step that consumes ``poison_threshold`` distinct
  workers is quarantined — terminal failure, downstream subtree skipped
  exactly like ``on_error="keep_going"`` skips it.
* **Straggler**: an in-flight step on a *live* worker older than
  ``speculate_after`` gets a speculative duplicate at the same epoch on
  an idle worker; whichever publishes first wins, the other observes the
  published value and stands down.
* **Total fleet loss**: every remaining step is marked failed ("all
  workers lost") / skipped, and the run returns a DEGRADED
  :class:`~repro.core.metrics.RunReport` (CLI exit 3) instead of hanging.

``KeyboardInterrupt`` propagates after the ``finally`` block has stopped
the fleet and removed the run directory (leases and heartbeats included),
so an interrupted dist run leaves only the journal and cache — exactly
what ``--resume`` needs.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.core.logging import get_logger, kv
from repro.core.metrics import StepOutcome
from repro.dist import leases as lease_io
from repro.dist.heartbeats import FleetMonitor
from repro.dist.worker import DistConfig, RunSpec, _forked_worker, write_spec
from repro.obs.spine import merge_segments

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.pipeline import BackendContext, Pipeline

_log = get_logger(__name__)

__all__ = ["run_coordinator"]

_mp = multiprocessing.get_context("fork")


@dataclass
class _Flight:
    """Coordinator-side view of one in-flight step."""

    step: str
    epoch: int
    workers: set[str]
    assigned_at: float  # perf_counter of the *current* epoch's assignment
    ready_at: float  # when the step's last dependency resolved
    first_assigned_at: float
    trace_start: float  # tracer.now() at first assignment
    speculated: bool = False
    killed_by: set[str] = field(default_factory=set)  # dead workers consumed


def _resolve_config(ctx: "BackendContext") -> DistConfig:
    options = dict(ctx.options or {})
    config = options.pop("config", None)
    if config is None:
        options.setdefault("workers", ctx.workers)
        config = DistConfig(**options)
    else:
        if options:
            raise ValueError(
                f"backend_options mixes a DistConfig with loose keys {sorted(options)}"
            )
        if ctx.requested_workers is not None:
            config = replace(config, workers=ctx.requested_workers)
    return config


def run_coordinator(pipeline: "Pipeline", ctx: "BackendContext") -> dict[str, Any]:
    """Execute the pipeline on a worker fleet; the ``dist`` backend body."""
    from repro.core.pipeline import PipelineError

    cache = pipeline.cache
    if cache.root is None:
        raise PipelineError(
            "executor='dist' needs a disk-backed ArtifactCache: workers are "
            "separate processes and the cache directory is the only channel "
            "between them"
        )
    if not pipeline._picklable():
        raise PipelineError(
            "executor='dist' requires every step function and param to pickle "
            "(workers load the pipeline from the run spec)"
        )
    chaos = ctx.fault_plan
    if chaos is not None and not hasattr(chaos, "bind"):
        raise PipelineError(
            "executor='dist' takes worker-level chaos (repro.core.faults."
            "WorkerFaultPlan); coordinator-side FaultPlan injection has no "
            "worker process to fire in"
        )
    config = _resolve_config(ctx)
    ctx.metrics.max_workers = config.workers

    run_id = ctx.journal.run_id if ctx.journal is not None else None
    if run_id is None:
        from repro.core.journal import new_run_id

        run_id = new_run_id()
    run_dir = lease_io.run_dir_for(cache.root, run_id)
    spec = RunSpec(
        run_id=run_id,
        steps=tuple(pipeline.steps),
        keys=dict(ctx.keys),
        retries={s.name: pipeline._policy_for(s) for s in pipeline.steps},
        timeouts={s.name: pipeline._timeout_for(s) for s in pipeline.steps},
        cache_root=str(cache.root),
        cache_locking=cache.locking,
        force=ctx.force,
        config=config,
        chaos=chaos,
    )
    write_spec(run_dir, spec)

    worker_ids = [f"w{i}" for i in range(config.workers)]
    monitor = FleetMonitor(run_dir / "heartbeats", config.lease_ttl)
    for wid in worker_ids:
        monitor.register(wid)
    procs: dict[str, multiprocessing.process.BaseProcess] = {}
    if config.spawn_workers:
        for wid in worker_ids:
            proc = _mp.Process(
                target=_forked_worker, args=(str(run_dir), wid), daemon=True
            )
            proc.start()
            procs[wid] = proc

    sched = _Scheduler(pipeline, ctx, config, run_dir, monitor)
    try:
        sched.replay_resumed()
        sched.seed_frontier()
        while not sched.finished():
            sched.tick()
            if sched.pending_raise is not None:
                break
            time.sleep(config.tick_interval)
    finally:
        lease_io.signal_stop(run_dir)
        _stop_workers(procs, config.worker_grace)
        stats = sched.fleet_stats()
        spine = merge_segments(run_dir, tracer=ctx.tracer)
        stats["worker_pids"] = spine["workers"]
        stats["registry"] = spine["registry"]
        ctx.metrics.backend_stats = stats
        lease_io.sweep_dead_tmp(cache.root)
        lease_io.cleanup_run_dir(run_dir)
    if sched.pending_raise is not None:
        raise sched.pending_raise
    return sched.collect_values()


def _stop_workers(procs: dict[str, Any], grace: float) -> None:
    deadline = time.monotonic() + grace
    for proc in procs.values():
        proc.join(timeout=max(0.0, deadline - time.monotonic()))
    for proc in procs.values():
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=1.0)
        if proc.is_alive():  # pragma: no cover - terminate() refused
            proc.kill()
            proc.join(timeout=1.0)


class _Scheduler:
    """All coordinator state for one run; one ``tick()`` per scheduling beat."""

    def __init__(
        self,
        pipeline: "Pipeline",
        ctx: "BackendContext",
        config: DistConfig,
        run_dir: Path,
        monitor: FleetMonitor,
    ) -> None:
        self.pipeline = pipeline
        self.ctx = ctx
        self.config = config
        self.run_dir = run_dir
        self.monitor = monitor
        self.steps = {s.name: s for s in pipeline.steps}
        self.order = [s.name for s in pipeline.steps]
        self.done: set[str] = set()
        self.unavailable: set[str] = set()
        self.in_flight: dict[str, _Flight] = {}
        self.ready: list[str] = []
        self.ready_at: dict[str, float] = {}
        self.pending_deps: dict[str, set[str]] = {
            s.name: set(s.depends_on) for s in pipeline.steps
        }
        self.dependents: dict[str, list[str]] = {name: [] for name in self.order}
        for s in pipeline.steps:
            for dep in s.depends_on:
                self.dependents[dep].append(s.name)
        self.known_dead: set[str] = set()
        self.reassignments = 0
        self.speculations = 0
        self.quarantined: list[str] = []
        self.degraded_all_lost = False
        self.pending_raise: BaseException | None = None
        self.t0 = ctx.t0

    # -- lifecycle -------------------------------------------------------------

    def finished(self) -> bool:
        return len(self.done) + len(self.unavailable) >= len(self.order)

    def replay_resumed(self) -> None:
        """Serve journal-completed steps straight from the cache (PR-4)."""
        resume, ctx = self.ctx.resume, self.ctx
        if resume is None or ctx.force:
            return
        for name in self.order:
            key = ctx.keys[name]
            if resume.completed.get(name) != key:
                continue
            value = self.pipeline.cache.peek(key)
            if value is None:
                continue  # artifact vanished; the step re-executes normally
            self.pipeline.cache.hits += 1
            if ctx.journal is not None:
                ctx.journal.step_start(name, key)
            self._record_success(name, "replayed", attempts=0, wall=0.0, worker=None)

    def seed_frontier(self) -> None:
        now = time.perf_counter()
        for name in self.order:
            if name in self.done:
                continue
            self.pending_deps[name] -= self.done
            if not self.pending_deps[name]:
                self.ready.append(name)
                self.ready_at[name] = now

    def tick(self) -> None:
        advanced = self.monitor.observe()
        self._trace_renewals(advanced)
        self.collect_results()
        self.handle_deaths()
        self.maybe_speculate()
        self.assign_ready()
        self.check_all_lost()

    # -- results ---------------------------------------------------------------

    def collect_results(self) -> None:
        for result in lease_io.iter_results(self.run_dir):
            flight = self.in_flight.get(result.step)
            if (
                flight is None
                or result.epoch != flight.epoch
                or result.worker not in flight.workers
                or result.outcome == "fenced"
            ):
                continue  # stale epoch, unknown worker, or fenced — ignore
            if result.outcome in ("ok", "retried", "cached"):
                if not result.stored:
                    self._record_failure(
                        result.step, "failed",
                        f"dist: artifact for {result.step!r} was not stored "
                        "(cache unavailable on the worker)",
                        result.attempts, result.wall, cache_unavailable=True,
                    )
                    continue
                del self.in_flight[result.step]
                self._record_success(
                    result.step, result.outcome, result.attempts, result.wall,
                    worker=result.worker, flight=flight,
                )
                self._resolve_dependents(result.step)
            else:  # failed | timeout
                self._record_failure(
                    result.step, result.outcome, result.error,
                    result.attempts, result.wall,
                )

    # -- liveness --------------------------------------------------------------

    def _trace_renewals(self, advanced: set[str]) -> None:
        tracer = self.ctx.tracer
        if tracer is None or not advanced:
            return
        for flight in self.in_flight.values():
            for wid in sorted(flight.workers & advanced):
                tracer.instant(
                    "lease.renew", "dist", step=flight.step, holder=wid,
                    epoch=flight.epoch,
                )

    def handle_deaths(self) -> None:
        newly_dead = self.monitor.dead_workers() - self.known_dead
        if not newly_dead:
            return
        tracer = self.ctx.tracer
        for wid in sorted(newly_dead):
            self.known_dead.add(wid)
            gap = self.monitor.heartbeat_gap(wid)
            _log.warning(kv("dist.worker_dead", worker=wid, gap=round(gap, 3)))
            if tracer is not None:
                tracer.instant(
                    "heartbeat.gap", "dist", holder=wid, gap=round(gap, 3)
                )
        for name in list(self.in_flight):
            flight = self.in_flight[name]
            dead_here = flight.workers & newly_dead
            if not dead_here:
                continue
            flight.workers -= dead_here
            flight.killed_by |= dead_here
            if tracer is not None:
                for wid in sorted(dead_here):
                    tracer.instant(
                        "lease.expire", "dist", step=name, holder=wid,
                        epoch=flight.epoch,
                    )
            if len(flight.killed_by) >= self.config.poison_threshold:
                self._quarantine(name, flight)
            elif not flight.workers:
                self._reassign(name, flight)

    def _quarantine(self, name: str, flight: _Flight) -> None:
        del self.in_flight[name]
        self.quarantined.append(name)
        if self.ctx.tracer is not None:
            self.ctx.tracer.instant(
                "step.quarantine", "dist", step=name,
                workers_killed=sorted(flight.killed_by),
            )
        _log.warning(
            kv("dist.quarantine", step=name, workers_killed=len(flight.killed_by))
        )
        self._record_failure(
            name, "failed",
            f"poisoned: step killed {len(flight.killed_by)} distinct workers "
            f"({sorted(flight.killed_by)}); quarantined",
            attempts=0, wall=time.perf_counter() - flight.first_assigned_at,
        )

    def _reassign(self, name: str, flight: _Flight) -> None:
        """Hand a dead worker's step to a survivor under a bumped epoch."""
        replacement = self._pick_idle_worker()
        if replacement is None:
            return  # no idle survivor yet; retried next tick (workers empty)
        flight.epoch += 1
        flight.workers = {replacement}
        flight.assigned_at = time.perf_counter()
        flight.speculated = False
        self.reassignments += 1
        lease_io.write_assignment(
            self.run_dir,
            lease_io.Assignment(step=name, epoch=flight.epoch, workers=(replacement,)),
        )
        if self.ctx.tracer is not None:
            self.ctx.tracer.instant(
                "step.reassign", "dist", step=name, holder=replacement,
                epoch=flight.epoch,
            )
        if self.ctx.journal is not None:
            self.ctx.journal.step_reassign(
                name, self.ctx.keys[name], worker=replacement, epoch=flight.epoch
            )
        _log.info(kv("dist.reassign", step=name, worker=replacement, epoch=flight.epoch))

    # -- speculation -----------------------------------------------------------

    def maybe_speculate(self) -> None:
        deadline = self.config.speculate_after
        if deadline is None:
            return
        now = time.perf_counter()
        for name, flight in self.in_flight.items():
            if flight.speculated or not flight.workers:
                continue
            if now - flight.assigned_at <= deadline:
                continue
            twin = self._pick_idle_worker()
            if twin is None:
                continue
            flight.workers.add(twin)
            flight.speculated = True
            self.speculations += 1
            lease_io.write_assignment(
                self.run_dir,
                lease_io.Assignment(
                    step=name, epoch=flight.epoch,
                    workers=tuple(sorted(flight.workers)),
                ),
            )
            if self.ctx.tracer is not None:
                self.ctx.tracer.instant(
                    "step.speculate", "dist", step=name, holder=twin,
                    epoch=flight.epoch,
                )
            _log.info(kv("dist.speculate", step=name, worker=twin))

    # -- assignment ------------------------------------------------------------

    def _busy_workers(self) -> set[str]:
        busy: set[str] = set()
        for flight in self.in_flight.values():
            busy |= flight.workers
        return busy

    def _pick_idle_worker(self) -> str | None:
        idle = self.monitor.alive_workers() - self._busy_workers() - self.known_dead
        return min(idle) if idle else None

    def assign_ready(self) -> None:
        if not self.ready:
            # Also drives reassignment retries for steps whose death beat
            # every idle worker (flight.workers empty).
            for name, flight in self.in_flight.items():
                if not flight.workers:
                    self._reassign(name, flight)
            return
        remaining: list[str] = []
        for name in self.ready:
            wid = self._pick_idle_worker()
            if wid is None:
                remaining.append(name)
                continue
            self._assign(name, wid)
        self.ready = remaining
        for name, flight in self.in_flight.items():
            if not flight.workers:
                self._reassign(name, flight)

    def _assign(self, name: str, wid: str) -> None:
        now = time.perf_counter()
        trace_start = self.ctx.tracer.now() if self.ctx.tracer is not None else 0.0
        self.in_flight[name] = _Flight(
            step=name, epoch=0, workers={wid}, assigned_at=now,
            ready_at=self.ready_at.get(name, now), first_assigned_at=now,
            trace_start=trace_start,
        )
        lease_io.write_assignment(
            self.run_dir, lease_io.Assignment(step=name, epoch=0, workers=(wid,))
        )
        if self.ctx.journal is not None:
            self.ctx.journal.step_start(name, self.ctx.keys[name])
        if self.ctx.tracer is not None:
            self.ctx.tracer.instant(
                "lease.acquire", "dist", step=name, holder=wid, epoch=0
            )

    def _resolve_dependents(self, name: str) -> None:
        now = time.perf_counter()
        for child in self.dependents[name]:
            deps = self.pending_deps[child]
            deps.discard(name)
            if not deps and child not in self.done and child not in self.unavailable:
                self.ready.append(child)
                self.ready_at[child] = now

    # -- degradation -----------------------------------------------------------

    def check_all_lost(self) -> None:
        if self.finished() or self.monitor.alive_workers():
            return
        self.degraded_all_lost = True
        _log.warning(kv("dist.all_workers_lost", remaining=len(self.order) - len(self.done)))
        for name in list(self.in_flight):
            del self.in_flight[name]
            self._record_failure(
                name, "failed", "all workers lost; run degraded", 0, 0.0
            )
        for name in list(self.ready):
            self._record_failure(
                name, "failed", "all workers lost; run degraded", 0, 0.0
            )
        self.ready.clear()
        # Anything still blocked is now permanently starved.
        for name in self.order:
            if (
                name not in self.done
                and name not in self.unavailable
            ):
                self._record_skip(name, ["all workers lost"])

    # -- recording (journal + metrics + trace, mirroring Pipeline._record_*) ---

    def _record_success(
        self,
        name: str,
        outcome: str,
        attempts: int,
        wall: float,
        worker: str | None,
        flight: _Flight | None = None,
    ) -> None:
        ctx = self.ctx
        self.done.add(name)
        key = ctx.keys[name]
        now = time.perf_counter()
        queue_seconds = (
            max(0.0, flight.first_assigned_at - flight.ready_at)
            if flight is not None
            else 0.0
        )
        started = flight.first_assigned_at - self.t0 if flight is not None else 0.0
        ctx.outcomes[name] = StepOutcome(name, outcome, attempts, "", wall)
        ctx.metrics.record(
            name, key, outcome == "cached", wall, started, now - self.t0,
            outcome=outcome, attempts=attempts,
            queue_seconds=queue_seconds, compute_seconds=wall,
        )
        if ctx.tracer is not None:
            start = flight.trace_start if flight is not None else ctx.tracer.now()
            ctx.tracer.add_span(
                f"step:{name}", "step", start, ctx.tracer.now(),
                tid=f"dist:{worker}" if worker is not None else "dist",
                step=name, key=key, deps=list(self.steps[name].depends_on),
                outcome=outcome, attempts=attempts,
                compute=round(wall, 6), worker=worker,
            )
        if ctx.journal is not None:
            ctx.journal.step_done(name, key, outcome, attempts)
        if name in self.pending_deps:
            self.pending_deps[name].clear()

    def _record_failure(
        self,
        name: str,
        status: str,
        error: str,
        attempts: int,
        wall: float,
        cache_unavailable: bool = False,
    ) -> None:
        from repro.core.pipeline import PipelineError, StepTimeout

        ctx = self.ctx
        self.in_flight.pop(name, None)
        self.unavailable.add(name)
        _log.warning(kv("step.failed", step=name, status=status, attempts=attempts))
        ctx.outcomes[name] = StepOutcome(
            name, status, attempts, error, wall, cache_unavailable
        )
        ctx.metrics.record(
            name, ctx.keys[name], False, wall, 0.0, 0.0, outcome=status,
            attempts=attempts, error=error, cache_unavailable=cache_unavailable,
        )
        if ctx.tracer is not None:
            now = ctx.tracer.now()
            ctx.tracer.add_span(
                f"step:{name}", "step", now, now,
                step=name, key=ctx.keys[name],
                deps=list(self.steps[name].depends_on),
                outcome=status, attempts=attempts, error=error.split("(")[0],
                wall=round(wall, 6),
            )
        if ctx.journal is not None:
            ctx.journal.step_done(name, ctx.keys[name], status, attempts, error=error)
        self._skip_subtree(name)
        if ctx.on_error == "raise" and self.pending_raise is None:
            exc_type = StepTimeout if status == "timeout" else PipelineError
            self.pending_raise = exc_type(
                f"step {name!r} {status} in dist run: {error}"
            )

    def _record_skip(self, name: str, failed_deps: list[str]) -> None:
        self.unavailable.add(name)
        self.pipeline._record_skip(
            self.steps[name], self.ctx.keys, failed_deps, self.ctx.metrics,
            self.ctx.outcomes, self.ctx.journal, self.ctx.tracer,
        )

    def _skip_subtree(self, failed: str) -> None:
        """Cascade ``skipped_upstream`` through the downstream subtree."""
        frontier = [failed]
        while frontier:
            current = frontier.pop()
            for child in self.dependents[current]:
                if child in self.done or child in self.unavailable:
                    continue
                self._record_skip(child, [current])
                if child in self.ready:
                    self.ready.remove(child)
                frontier.append(child)

    # -- output ----------------------------------------------------------------

    def collect_values(self) -> dict[str, Any]:
        """Load every successful step's artifact, in step order."""
        values: dict[str, Any] = {}
        for name in self.order:
            if name not in self.done:
                continue
            value = self.pipeline.cache.peek(self.ctx.keys[name])
            if value is not None:
                values[name] = value
        return values

    def fleet_stats(self) -> dict[str, Any]:
        publishes: dict[str, int] = {}
        for record in lease_io.collect_worker_logs(self.run_dir):
            if record.get("event") == "publish":
                step = str(record.get("step"))
                publishes[step] = publishes.get(step, 0) + 1
        return {
            "backend": "dist",
            "workers": self.config.workers,
            "dead_workers": sorted(self.known_dead),
            "reassignments": self.reassignments,
            "speculations": self.speculations,
            "quarantined": list(self.quarantined),
            "degraded_all_lost": self.degraded_all_lost,
            "publishes": publishes,
        }
