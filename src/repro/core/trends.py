"""Cohort-over-cohort trend engine.

Every "Trends" table in the study is a family of rows, each comparing one
practice between the baseline and current cohorts: proportions with Wilson
intervals, the absolute change, a two-proportion z-test, and Cohen's h. The
engine computes rows from a multi-cohort :class:`~repro.survey.ResponseSet`
and applies a family-wise correction across each table.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.stats.corrections import benjamini_hochberg, bonferroni, holm_bonferroni
from repro.stats.effects import cohens_h
from repro.stats.intervals import BinomialInterval, wilson_interval
from repro.stats.tests import TestResult, two_proportion_z_test
from repro.survey.questions import MultiChoiceQuestion, SingleChoiceQuestion
from repro.survey.responses import ResponseSet

__all__ = ["TrendRow", "TrendTable", "TrendEngine"]

_CORRECTIONS = {
    "holm": holm_bonferroni,
    "bonferroni": bonferroni,
    "bh": benjamini_hochberg,
}


@dataclass(frozen=True, slots=True)
class TrendRow:
    """One practice compared across cohorts.

    ``p_value`` is the raw two-proportion test p; ``adjusted_p`` is filled
    by :meth:`TrendTable.corrected`.
    """

    label: str
    baseline: BinomialInterval
    current: BinomialInterval
    n_baseline: int
    n_current: int
    delta: float
    effect_h: float
    test: TestResult
    adjusted_p: float | None = None

    @property
    def p_value(self) -> float:
        return self.test.p_value

    def significant(self, alpha: float = 0.05) -> bool:
        """Significance after correction when available, else raw."""
        p = self.adjusted_p if self.adjusted_p is not None else self.p_value
        return p < alpha


@dataclass(frozen=True, slots=True)
class TrendTable:
    """A family of trend rows corrected together."""

    title: str
    rows: tuple[TrendRow, ...]
    correction: str | None = None

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __getitem__(self, label: str) -> TrendRow:
        for row in self.rows:
            if row.label == label:
                return row
        raise KeyError(f"no trend row labeled {label!r}")

    def corrected(self, method: str = "holm") -> "TrendTable":
        """New table with family-wise adjusted p-values."""
        if method not in _CORRECTIONS:
            raise ValueError(
                f"unknown correction {method!r}; choose from {sorted(_CORRECTIONS)}"
            )
        if not self.rows:
            return TrendTable(self.title, self.rows, correction=method)
        adjusted = _CORRECTIONS[method]([r.p_value for r in self.rows])
        rows = tuple(
            replace(row, adjusted_p=float(p)) for row, p in zip(self.rows, adjusted)
        )
        return TrendTable(self.title, rows, correction=method)

    def sorted_by_delta(self) -> "TrendTable":
        """Rows ordered by |change|, largest first (how the paper sorts)."""
        rows = tuple(sorted(self.rows, key=lambda r: -abs(r.delta)))
        return TrendTable(self.title, rows, correction=self.correction)


class TrendEngine:
    """Computes trend rows between two cohorts of one response set."""

    def __init__(
        self,
        responses: ResponseSet,
        baseline_cohort: str = "2011",
        current_cohort: str = "2024",
        confidence: float = 0.95,
    ) -> None:
        cohorts = set(responses.cohorts)
        for label in (baseline_cohort, current_cohort):
            if label not in cohorts:
                raise ValueError(f"cohort {label!r} not present (have {sorted(cohorts)})")
        self.responses = responses
        self.baseline = responses.by_cohort(baseline_cohort)
        self.current = responses.by_cohort(current_cohort)
        self.baseline_cohort = baseline_cohort
        self.current_cohort = current_cohort
        self.confidence = confidence

    # -- counting helpers ------------------------------------------------------

    @staticmethod
    def _single_counts(cohort: ResponseSet, key: str, option: str) -> tuple[int, int]:
        col = cohort.column(key)
        answered = np.array([v is not None for v in col])
        hits = np.array([v == option for v in col])
        return int(hits.sum()), int(answered.sum())

    @staticmethod
    def _multi_counts(cohort: ResponseSet, key: str, option: str) -> tuple[int, int]:
        q = cohort.questionnaire[key]
        if not isinstance(q, MultiChoiceQuestion):
            raise TypeError(f"{key!r} is not multi-choice")
        j = q.options.index(option)
        mat = cohort.selection_matrix(key)
        answered = cohort.answered_mask(key)
        return int(mat[answered, j].sum()), int(answered.sum())

    def _row(
        self, label: str, s_a: int, n_a: int, s_b: int, n_b: int
    ) -> TrendRow:
        if n_a == 0 or n_b == 0:
            raise ValueError(f"trend row {label!r} has an empty cohort")
        ci_a = wilson_interval(s_a, n_a, self.confidence)
        ci_b = wilson_interval(s_b, n_b, self.confidence)
        test = two_proportion_z_test(s_b, n_b, s_a, n_a)  # current vs baseline
        return TrendRow(
            label=label,
            baseline=ci_a,
            current=ci_b,
            n_baseline=n_a,
            n_current=n_b,
            delta=ci_b.estimate - ci_a.estimate,
            effect_h=cohens_h(ci_b.estimate, ci_a.estimate),
            test=test,
        )

    # -- public API ----------------------------------------------------------------

    def single_choice_trend(self, key: str, option: str, label: str | None = None) -> TrendRow:
        """Trend in the share answering ``option`` on a single-choice item.

        Denominator: respondents who answered the item in that cohort.
        """
        q = self.responses.questionnaire[key]
        if not isinstance(q, SingleChoiceQuestion):
            raise TypeError(f"{key!r} is not single-choice")
        if option not in q.options and not q.allow_other:
            raise ValueError(f"{option!r} is not an option of {key!r}")
        s_a, n_a = self._single_counts(self.baseline, key, option)
        s_b, n_b = self._single_counts(self.current, key, option)
        return self._row(label or f"{key}={option}", s_a, n_a, s_b, n_b)

    def yes_no_trend(self, key: str, label: str | None = None) -> TrendRow:
        """Trend in the 'yes' share of a yes/no item."""
        return self.single_choice_trend(key, "yes", label=label or key)

    def multi_choice_trend(self, key: str, title: str | None = None) -> TrendTable:
        """One row per option of a multi-select item, as a family."""
        q = self.responses.questionnaire[key]
        if not isinstance(q, MultiChoiceQuestion):
            raise TypeError(f"{key!r} is not multi-choice")
        rows = []
        for option in q.options:
            s_a, n_a = self._multi_counts(self.baseline, key, option)
            s_b, n_b = self._multi_counts(self.current, key, option)
            rows.append(self._row(option, s_a, n_a, s_b, n_b))
        return TrendTable(title or f"trend:{key}", tuple(rows))

    def single_choice_table(self, key: str, title: str | None = None) -> TrendTable:
        """One row per option of a single-choice item, as a family."""
        q = self.responses.questionnaire[key]
        if not isinstance(q, SingleChoiceQuestion):
            raise TypeError(f"{key!r} is not single-choice")
        rows = []
        for option in q.options:
            s_a, n_a = self._single_counts(self.baseline, key, option)
            s_b, n_b = self._single_counts(self.current, key, option)
            rows.append(self._row(option, s_a, n_a, s_b, n_b))
        return TrendTable(title or f"trend:{key}", tuple(rows))
