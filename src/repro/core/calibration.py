"""Cohort calibration: 2011 baseline and 2024 targets.

The 2011 numbers encode the predecessor study's headline marginals (languages
dominated by MATLAB/C/Fortran, parallelism a minority practice, version
control unusual); the 2024 numbers encode the "Trends" narrative the SC 2024
title implies (Python near-universal, GPU/ML mainstream, Slurm monoculture,
git default). Because the paper's exact tables were unavailable (see
DESIGN.md), these are *calibration targets for the synthetic population*,
not claimed paper values; EXPERIMENTS.md reports how the generated data
lands against them.

Marginal targets are expressed at trait midpoints; trait loadings then
spread behaviour realistically across fields, so realized marginals can
drift a few points from the targets. Tests pin them within tolerance.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.core.instrument import (
    DATA_SCALES,
    LANGUAGES,
    ML_FRAMEWORKS,
    PARALLEL_MODES,
    SCHEDULERS,
    STORAGE_LOCATIONS,
    TESTING_OPTIONS,
    TRAINING_OPTIONS,
    VCS_OPTIONS,
)
from repro.synth.fields import field_shares
from repro.synth.freetext import FreeTextTemplates
from repro.synth.models import (
    BernoulliYesNoModel,
    CategoricalModel,
    FreeTextModel,
    LikertModel,
    MultiChoiceModel,
    NumericModel,
    RespondentContext,
    ResponseModel,
)
from repro.synth.profile import CohortProfile
from repro.synth.traits import TraitModel, TraitSpec

__all__ = [
    "BASELINE_2011",
    "TARGETS_2024",
    "population_field_shares",
    "profile_2011",
    "profile_2024",
]


def population_field_shares() -> dict[str, float]:
    """Registrar-style population shares used as weighting targets."""
    return field_shares()


# --------------------------------------------------------------------------
# Reference marginals (cohort-level, at trait midpoints)
# --------------------------------------------------------------------------

BASELINE_2011: dict[str, float] = {
    # languages (multi-select shares)
    "languages.python": 0.35,
    "languages.r": 0.25,
    "languages.matlab": 0.42,
    "languages.c": 0.45,
    "languages.cpp": 0.40,
    "languages.fortran": 0.28,
    "languages.julia": 0.005,
    "languages.java": 0.12,
    "languages.shell": 0.30,
    "languages.perl": 0.15,
    "languages.javascript": 0.03,
    # headline practice rates
    "uses_parallelism.yes": 0.55,
    "uses_cluster.yes": 0.60,
    "uses_gpu.base": 0.04,
    "uses_ml.yes": 0.08,
    "uses_containers.yes": 0.01,
    "vcs.git": 0.22,
    "vcs.none": 0.45,
    # parallel modes among parallel users
    "parallel_modes.mpi": 0.35,
    "parallel_modes.gpu": 0.10,
    "parallel_modes.cloud": 0.04,
}

TARGETS_2024: dict[str, float] = {
    "languages.python": 0.90,
    "languages.r": 0.35,
    "languages.matlab": 0.22,
    "languages.c": 0.25,
    "languages.cpp": 0.32,
    "languages.fortran": 0.12,
    "languages.julia": 0.08,
    "languages.java": 0.06,
    "languages.shell": 0.45,
    "languages.perl": 0.03,
    "languages.javascript": 0.08,
    "uses_parallelism.yes": 0.70,
    "uses_cluster.yes": 0.72,
    "uses_gpu.base": 0.15,
    "uses_ml.yes": 0.58,
    "uses_containers.yes": 0.35,
    "vcs.git": 0.84,
    "vcs.none": 0.10,
    "parallel_modes.mpi": 0.25,
    "parallel_modes.gpu": 0.55,
    "parallel_modes.cloud": 0.25,
}


# --------------------------------------------------------------------------
# Derived models coupling related answers
# --------------------------------------------------------------------------


class PrimaryFromLanguagesModel(ResponseModel):
    """Pick the primary language from the respondent's selected languages.

    Weighted by cohort-level primacy weights so e.g. a 2024 respondent who
    selected both python and fortran almost always names python primary.
    Falls back to the highest-weight option if the languages answer is
    missing (possible when the respondent skipped the multi-select).
    """

    def __init__(self, primacy_weights: Mapping[str, float]) -> None:
        if not primacy_weights:
            raise ValueError("primacy_weights is empty")
        unknown = set(primacy_weights) - set(LANGUAGES)
        if unknown:
            raise ValueError(f"unknown languages: {sorted(unknown)}")
        self.primacy_weights = dict(primacy_weights)

    def sample(self, ctx, answers, rng):
        selected = answers.get("languages")
        if not selected:
            candidates = list(self.primacy_weights)
        else:
            candidates = [l for l in selected if l in self.primacy_weights]
            if not candidates:
                candidates = list(selected)
        weights = np.array(
            [self.primacy_weights.get(l, 0.01) for l in candidates], dtype=float
        )
        weights = weights / weights.sum()
        return candidates[rng.choice(len(candidates), p=weights)]


class GpuFromModesModel(ResponseModel):
    """Answer uses_gpu consistently with the parallel_modes selection.

    Respondents who picked the "gpu" parallel mode say yes with ~0.95
    probability; everyone else follows the cohort base rate with an ML-trait
    link (ML practitioners use GPUs even without classic HPC parallelism).
    """

    def __init__(self, base: float, ml_loading: float = 2.0) -> None:
        self._fallback = BernoulliYesNoModel(base=base, loadings={"ml": ml_loading})

    def sample(self, ctx, answers, rng):
        modes = answers.get("parallel_modes") or ()
        if "gpu" in modes:
            return "yes" if rng.random() < 0.95 else "no"
        return self._fallback.sample(ctx, answers, rng)


# --------------------------------------------------------------------------
# Profile builders
# --------------------------------------------------------------------------


def _common_numeric_models() -> dict[str, ResponseModel]:
    return {
        "years_programming": NumericModel(
            log_mean=1.8,
            log_sd=0.7,
            minimum=0,
            maximum=60,
            loadings={"programming": 1.0},
        ),
    }


def _freetext_models(templates: FreeTextTemplates) -> dict[str, ResponseModel]:
    return {
        "stack_description": FreeTextModel(generate=templates.stack_description),
        "biggest_challenge": FreeTextModel(generate=templates.challenge),
    }


def _multi(targets: Mapping[str, float], prefix: str, options, loadings=None):
    probs = {opt: targets[f"{prefix}.{opt}"] for opt in options if f"{prefix}.{opt}" in targets}
    missing = [opt for opt in options if opt not in probs]
    if missing:
        raise ValueError(f"no target for {prefix} options {missing}")
    return MultiChoiceModel(option_probs=probs, loadings=loadings or {})


_LANGUAGE_LOADINGS = {
    "python": {"programming": 1.0, "ml": 1.5},
    "c": {"hpc": 1.5, "programming": 1.0},
    "cpp": {"hpc": 1.5, "programming": 1.0},
    "fortran": {"hpc": 2.0},
    "shell": {"hpc": 1.5, "rigor": 0.5},
    "julia": {"programming": 1.0},
    "r": {"ml": 0.5},
}


def profile_2011(seedless: bool = True) -> CohortProfile:
    """The 2011 baseline cohort profile."""
    traits = TraitModel(
        {
            "programming": TraitSpec(mean=0.45),
            "hpc": TraitSpec(mean=0.35),
            "ml": TraitSpec(mean=0.12, concentration=10.0),
            "rigor": TraitSpec(mean=0.30),
        }
    )
    templates = FreeTextTemplates(
        tool_probs={
            "matlab": 0.40,
            "numpy": 0.18,
            "scipy": 0.12,
            "matplotlib": 0.12,
            "gnuplot": 0.18,
            "excel": 0.25,
            "fortran": 0.22,
            "mpi": 0.18,
            "openmp": 0.12,
            "svn": 0.18,
            "git": 0.12,
            "cuda": 0.04,
            "perl": 0.12,
            "latex": 0.30,
            "emacs": 0.18,
            "vim": 0.18,
        },
        tool_loadings={
            "mpi": {"hpc": 3.0},
            "openmp": {"hpc": 2.5},
            "cuda": {"hpc": 2.0},
            "numpy": {"programming": 2.0},
            "git": {"rigor": 2.5},
            "svn": {"rigor": 2.0},
        },
    )

    models: dict[str, ResponseModel] = {}
    models.update(_common_numeric_models())
    models["training"] = CategoricalModel(
        base_probs={
            "self_taught": 0.55,
            "university_courses": 0.25,
            "formal_cs_degree": 0.12,
            "workshops": 0.08,
        },
        loadings={"formal_cs_degree": {"programming": 2.0, "rigor": 1.0}},
    )
    models["expertise"] = LikertModel(
        points=5, base_mean=3.0, loadings={"programming": 2.0}, sd=0.9
    )
    models["languages"] = _multi(
        BASELINE_2011, "languages", LANGUAGES, _LANGUAGE_LOADINGS
    )
    models["primary_language"] = PrimaryFromLanguagesModel(
        {
            "matlab": 0.30,
            "c": 0.18,
            "cpp": 0.18,
            "python": 0.15,
            "fortran": 0.15,
            "r": 0.12,
            "java": 0.06,
            "perl": 0.05,
            "shell": 0.02,
            "javascript": 0.01,
            "julia": 0.01,
        }
    )
    models["uses_parallelism"] = BernoulliYesNoModel(
        base=BASELINE_2011["uses_parallelism.yes"], loadings={"hpc": 4.0}
    )
    models["parallel_modes"] = MultiChoiceModel(
        option_probs={
            "multicore": 0.55,
            "openmp": 0.30,
            "mpi": BASELINE_2011["parallel_modes.mpi"],
            "gpu": BASELINE_2011["parallel_modes.gpu"],
            "job_arrays": 0.25,
            "big_data_framework": 0.03,
            "cloud": BASELINE_2011["parallel_modes.cloud"],
        },
        loadings={
            "mpi": {"hpc": 3.0},
            "openmp": {"hpc": 2.0},
            "gpu": {"hpc": 1.5, "ml": 1.0},
        },
    )
    models["uses_cluster"] = BernoulliYesNoModel(
        base=BASELINE_2011["uses_cluster.yes"], loadings={"hpc": 4.0}
    )
    models["scheduler"] = CategoricalModel(
        base_probs={"pbs": 0.45, "sge": 0.20, "lsf": 0.15, "slurm": 0.12, "htcondor": 0.08}
    )
    models["uses_gpu"] = GpuFromModesModel(base=BASELINE_2011["uses_gpu.base"])
    models["uses_ml"] = BernoulliYesNoModel(
        base=BASELINE_2011["uses_ml.yes"], loadings={"ml": 3.0}
    )
    models["ml_frameworks"] = MultiChoiceModel(
        option_probs={
            "scikit-learn": 0.40,
            "tensorflow": 0.01,
            "pytorch": 0.01,
            "keras": 0.01,
            "xgboost": 0.02,
            "jax": 0.005,
            "huggingface": 0.005,
        }
    )
    models["vcs"] = CategoricalModel(
        base_probs={
            "none": BASELINE_2011["vcs.none"],
            "git": BASELINE_2011["vcs.git"],
            "svn": 0.25,
            "mercurial": 0.05,
            "other": 0.03,
        },
        loadings={
            "git": {"rigor": 2.5},
            "svn": {"rigor": 1.0},
            "none": {"rigor": -2.5},
        },
    )
    models["testing"] = CategoricalModel(
        base_probs={
            "none": 0.40,
            "ad_hoc": 0.45,
            "unit_tests": 0.12,
            "unit_tests_and_ci": 0.03,
        },
        loadings={
            "unit_tests": {"rigor": 2.0},
            "unit_tests_and_ci": {"rigor": 3.0},
            "none": {"rigor": -2.0},
        },
    )
    models["uses_containers"] = BernoulliYesNoModel(
        base=BASELINE_2011["uses_containers.yes"], loadings={"rigor": 1.0}
    )
    models["data_scale"] = CategoricalModel(
        base_probs={
            "under_1gb": 0.35,
            "1gb_to_100gb": 0.40,
            "100gb_to_1tb": 0.18,
            "1tb_to_10tb": 0.06,
            "over_10tb": 0.01,
        },
        loadings={
            "1tb_to_10tb": {"hpc": 1.5},
            "over_10tb": {"hpc": 2.0},
        },
    )
    models["storage_locations"] = MultiChoiceModel(
        option_probs={
            "laptop": 0.55,
            "lab_server": 0.50,
            "cluster_storage": 0.40,
            "cloud_storage": 0.04,
            "external_archive": 0.08,
        },
        loadings={"cluster_storage": {"hpc": 3.0}},
    )
    models["primary_os"] = CategoricalModel(
        base_probs={"linux": 0.40, "macos": 0.18, "windows": 0.42},
        loadings={"linux": {"hpc": 2.0, "programming": 1.0}},
    )
    models["editors"] = MultiChoiceModel(
        option_probs={
            "vscode": 0.001,
            "vim": 0.35,
            "emacs": 0.25,
            "jupyter": 0.02,
            "pycharm": 0.01,
            "matlab_ide": 0.40,
            "rstudio": 0.10,
            "plain_text_editor": 0.25,
        },
        loadings={"vim": {"programming": 1.5}, "emacs": {"programming": 1.5}},
    )
    models["hours_per_week"] = NumericModel(
        log_mean=3.0, log_sd=0.5, minimum=0, maximum=100, loadings={"programming": 0.7}
    )
    models["hpc_training"] = BernoulliYesNoModel(base=0.30, loadings={"hpc": 1.5})
    models["contributes_open_source"] = BernoulliYesNoModel(
        base=0.08, loadings={"rigor": 2.0, "programming": 1.0}
    )
    models.update(_freetext_models(templates))

    return CohortProfile(
        cohort="2011",
        trait_model=traits,
        question_models=models,
        missing_rate=0.10,
        required_missing_rate=0.03,
    )


def profile_2024() -> CohortProfile:
    """The 2024 "revisited" cohort profile."""
    traits = TraitModel(
        {
            "programming": TraitSpec(mean=0.55),
            "hpc": TraitSpec(mean=0.45),
            "ml": TraitSpec(mean=0.55),
            "rigor": TraitSpec(mean=0.55),
        }
    )
    templates = FreeTextTemplates(
        tool_probs={
            "numpy": 0.55,
            "scipy": 0.30,
            "pandas": 0.45,
            "matplotlib": 0.40,
            "jupyter": 0.45,
            "pytorch": 0.35,
            "tensorflow": 0.12,
            "git": 0.45,
            "github": 0.30,
            "docker": 0.18,
            "apptainer": 0.12,
            "conda": 0.40,
            "slurm": 0.35,
            "mpi": 0.12,
            "cuda": 0.22,
            "matlab": 0.15,
            "vscode": 0.35,
            "excel": 0.10,
            "aws": 0.12,
            "spark": 0.06,
            "latex": 0.25,
        },
        tool_loadings={
            "pytorch": {"ml": 3.0},
            "tensorflow": {"ml": 2.0},
            "cuda": {"ml": 1.5, "hpc": 1.5},
            "slurm": {"hpc": 3.0},
            "mpi": {"hpc": 3.0},
            "docker": {"rigor": 2.0},
            "git": {"rigor": 2.0},
            "jupyter": {"programming": 1.0},
        },
    )

    models: dict[str, ResponseModel] = {}
    models["years_programming"] = NumericModel(
        log_mean=1.9, log_sd=0.7, minimum=0, maximum=60, loadings={"programming": 1.0}
    )
    models["training"] = CategoricalModel(
        base_probs={
            "self_taught": 0.40,
            "university_courses": 0.28,
            "formal_cs_degree": 0.15,
            "workshops": 0.17,
        },
        loadings={"formal_cs_degree": {"programming": 2.0, "rigor": 1.0}},
    )
    models["expertise"] = LikertModel(
        points=5, base_mean=3.3, loadings={"programming": 2.0}, sd=0.9
    )
    models["languages"] = _multi(TARGETS_2024, "languages", LANGUAGES, _LANGUAGE_LOADINGS)
    models["primary_language"] = PrimaryFromLanguagesModel(
        {
            "python": 0.62,
            "r": 0.15,
            "cpp": 0.09,
            "matlab": 0.07,
            "julia": 0.05,
            "c": 0.04,
            "fortran": 0.03,
            "java": 0.02,
            "shell": 0.02,
            "javascript": 0.01,
            "perl": 0.01,
        }
    )
    models["uses_parallelism"] = BernoulliYesNoModel(
        base=TARGETS_2024["uses_parallelism.yes"], loadings={"hpc": 4.0}
    )
    models["parallel_modes"] = MultiChoiceModel(
        option_probs={
            "multicore": 0.70,
            "openmp": 0.22,
            "mpi": TARGETS_2024["parallel_modes.mpi"],
            "gpu": TARGETS_2024["parallel_modes.gpu"],
            "job_arrays": 0.45,
            "big_data_framework": 0.12,
            "cloud": TARGETS_2024["parallel_modes.cloud"],
        },
        loadings={
            "mpi": {"hpc": 3.0},
            "openmp": {"hpc": 2.0},
            "gpu": {"ml": 2.5, "hpc": 1.0},
            "big_data_framework": {"ml": 1.0},
        },
    )
    models["uses_cluster"] = BernoulliYesNoModel(
        base=TARGETS_2024["uses_cluster.yes"], loadings={"hpc": 4.0}
    )
    models["scheduler"] = CategoricalModel(
        base_probs={"slurm": 0.88, "pbs": 0.05, "lsf": 0.03, "sge": 0.02, "htcondor": 0.02}
    )
    models["uses_gpu"] = GpuFromModesModel(base=TARGETS_2024["uses_gpu.base"])
    models["uses_ml"] = BernoulliYesNoModel(
        base=TARGETS_2024["uses_ml.yes"], loadings={"ml": 4.0}
    )
    models["ml_frameworks"] = MultiChoiceModel(
        option_probs={
            "pytorch": 0.68,
            "scikit-learn": 0.60,
            "tensorflow": 0.28,
            "keras": 0.18,
            "xgboost": 0.22,
            "jax": 0.10,
            "huggingface": 0.30,
        },
        loadings={"pytorch": {"ml": 2.0}, "jax": {"programming": 1.5}},
    )
    models["vcs"] = CategoricalModel(
        base_probs={
            "none": TARGETS_2024["vcs.none"],
            "git": TARGETS_2024["vcs.git"],
            "svn": 0.02,
            "mercurial": 0.01,
            "other": 0.03,
        },
        loadings={"git": {"rigor": 2.0}, "none": {"rigor": -3.0}},
    )
    models["testing"] = CategoricalModel(
        base_probs={
            "none": 0.18,
            "ad_hoc": 0.42,
            "unit_tests": 0.25,
            "unit_tests_and_ci": 0.15,
        },
        loadings={
            "unit_tests": {"rigor": 2.0},
            "unit_tests_and_ci": {"rigor": 3.0},
            "none": {"rigor": -2.0},
        },
    )
    models["uses_containers"] = BernoulliYesNoModel(
        base=TARGETS_2024["uses_containers.yes"], loadings={"rigor": 2.0, "hpc": 1.0}
    )
    models["data_scale"] = CategoricalModel(
        base_probs={
            "under_1gb": 0.15,
            "1gb_to_100gb": 0.35,
            "100gb_to_1tb": 0.27,
            "1tb_to_10tb": 0.15,
            "over_10tb": 0.08,
        },
        loadings={
            "1tb_to_10tb": {"hpc": 1.0, "ml": 1.0},
            "over_10tb": {"hpc": 1.5, "ml": 1.5},
        },
    )
    models["storage_locations"] = MultiChoiceModel(
        option_probs={
            "laptop": 0.45,
            "lab_server": 0.35,
            "cluster_storage": 0.65,
            "cloud_storage": 0.35,
            "external_archive": 0.12,
        },
        loadings={"cluster_storage": {"hpc": 3.0}, "cloud_storage": {"ml": 1.0}},
    )
    models["primary_os"] = CategoricalModel(
        base_probs={"linux": 0.38, "macos": 0.42, "windows": 0.20},
        loadings={"linux": {"hpc": 2.0}},
    )
    models["editors"] = MultiChoiceModel(
        option_probs={
            "vscode": 0.55,
            "vim": 0.25,
            "emacs": 0.07,
            "jupyter": 0.45,
            "pycharm": 0.15,
            "matlab_ide": 0.15,
            "rstudio": 0.18,
            "plain_text_editor": 0.08,
        },
        loadings={
            "jupyter": {"ml": 1.5},
            "vim": {"hpc": 1.0, "programming": 1.0},
            "rstudio": {"ml": 0.5},
        },
    )
    models["hours_per_week"] = NumericModel(
        log_mean=3.2, log_sd=0.5, minimum=0, maximum=100, loadings={"programming": 0.7}
    )
    models["hpc_training"] = BernoulliYesNoModel(base=0.45, loadings={"hpc": 1.5})
    models["contributes_open_source"] = BernoulliYesNoModel(
        base=0.22, loadings={"rigor": 2.0, "programming": 1.5}
    )
    models.update(_freetext_models(templates))

    return CohortProfile(
        cohort="2024",
        trait_model=traits,
        question_models=models,
        missing_rate=0.08,
        required_missing_rate=0.02,
    )
