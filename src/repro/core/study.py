"""The Study object: instrument + responses + telemetry in one place.

A :class:`Study` is what every experiment in the report registry consumes.
:func:`build_default_study` materializes the full reconstructed study —
both survey cohorts plus a simulated telemetry window — from a single seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.partitions import ClusterConfig, DEFAULT_CLUSTER
from repro.cluster.records import JobTable
from repro.cluster.scheduler import simulate_schedule
from repro.cluster.workload import WorkloadModel, WorkloadParams
from repro.core.calibration import profile_2011, profile_2024
from repro.core.instrument import build_instrument
from repro.survey.responses import ResponseSet
from repro.survey.validation import validate_response_set

__all__ = ["StudyError", "Study", "build_default_study"]


class StudyError(ValueError):
    """Raised when study components are inconsistent."""


@dataclass(frozen=True)
class Study:
    """One complete practice study.

    Attributes
    ----------
    responses:
        Multi-cohort survey responses (cohorts "2011" and "2024" for the
        default study).
    telemetry:
        Cluster accounting records for the 2024-era window.
    cluster:
        Capacity model the telemetry was produced on (used for utilization).
    window_seconds:
        Telemetry window length.
    baseline_cohort, current_cohort:
        Labels of the two waves trend analysis compares.
    """

    responses: ResponseSet
    telemetry: JobTable
    cluster: ClusterConfig
    window_seconds: float
    baseline_cohort: str = "2011"
    current_cohort: str = "2024"

    def __post_init__(self) -> None:
        cohorts = set(self.responses.cohorts)
        for label in (self.baseline_cohort, self.current_cohort):
            if label not in cohorts:
                raise StudyError(
                    f"cohort {label!r} absent from responses (have {sorted(cohorts)})"
                )
        if self.window_seconds <= 0:
            raise StudyError("window_seconds must be positive")

    @property
    def baseline(self) -> ResponseSet:
        return self.responses.by_cohort(self.baseline_cohort)

    @property
    def current(self) -> ResponseSet:
        return self.responses.by_cohort(self.current_cohort)

    def validation_report(self):
        """QA report over all responses."""
        return validate_response_set(self.responses)


def build_default_study(
    seed: int = 2024,
    n_baseline: int = 120,
    n_current: int = 160,
    months: int = 24,
    jobs_per_day: float = 300.0,
    cluster: ClusterConfig | None = None,
    backfill: bool = True,
    diurnal: bool = True,
) -> Study:
    """Generate the full reconstructed study from one seed.

    Survey cohorts, workload, and scheduling each draw from independent
    child streams of ``seed``, so e.g. enlarging the survey never changes
    the telemetry.
    """
    from repro.synth.generator import generate_study  # local: avoid cycle at import

    if n_baseline < 1 or n_current < 1:
        raise StudyError("cohort sizes must be >= 1")
    cluster = cluster or DEFAULT_CLUSTER
    master = np.random.default_rng(seed)
    survey_rng_seed, workload_rng, sched_rng = (
        master.integers(2**31),
        master.spawn(1)[0],
        master.spawn(1)[0],
    )

    questionnaire = build_instrument()
    responses = generate_study(
        {
            "2011": (profile_2011(), n_baseline),
            "2024": (profile_2024(), n_current),
        },
        questionnaire,
        seed=int(survey_rng_seed),
    )

    params = WorkloadParams(months=months, jobs_per_day=jobs_per_day, diurnal=diurnal)
    jobs = WorkloadModel(params, cluster).generate(workload_rng)
    result = simulate_schedule(jobs, cluster, rng=sched_rng, backfill=backfill)

    return Study(
        responses=responses,
        telemetry=result.table,
        cluster=cluster,
        window_seconds=params.window_seconds,
    )
