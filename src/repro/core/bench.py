"""Wall-clock benchmark harness for the generative substrates.

The pytest-benchmark suites under ``benchmarks/`` are great for local
A/B runs but leave no committed trace. This module produces the repo's
*perf trajectory*: small JSON records (min-of-k wall times plus machine
metadata) that each PR appends to a ``BENCH_<n>.json`` file, so "made it
faster" is a checked-in number instead of a claim in a commit message.

Timed units (the substrates that dominate a reproduction run):

* ``workload_generate`` — submission-stream synthesis;
* ``simulate_schedule`` — the EASY-backfill scheduler simulator;
* ``generate_cohort``   — the survey respondent generator;
* ``table_aggregations`` — the columnar :class:`~repro.cluster.records.JobTable`
  usage rollups (CPU-hours by field/month, GPU-hours, width distribution);
* ``end_to_end_report`` — study build + full sequential report render;
* ``retry_overhead``    — the scheduler simulation run through a pipeline
  *with* retry+timeout configured vs a plain pipeline, both fault-free.
  Both variants pay identical cache-pickling costs, so the pair isolates
  the fault-tolerance wrapper itself; :func:`check_retry_overhead` gates
  it at < 2% in CI.
* ``journal_overhead``  — the same simulation run through a *durable*
  pipeline (run journal + cross-process entry locking on a disk cache) vs
  an identical disk-cache pipeline with both switched off. The
  differential isolates the crash-safety wrapper (journal records +
  advisory ``flock`` per computed step); :func:`check_journal_overhead`
  gates it at < 2% in CI.
* ``trace_overhead``    — the same simulation run through a *traced*
  pipeline (``trace=True``: root/step/attempt spans + cache instants) vs
  an identical untraced one. The untraced run IS the tracing-disabled
  path, so the differential proves disabling tracing costs nothing and
  prices what enabling it adds; :func:`check_trace_overhead` gates it at
  < 3% in CI.
* ``audit_overhead``    — a minimal two-leg reproducibility audit
  (baseline + identical sequential rerun) vs a plain double run of the
  same pipeline. The differential prices the audit harness itself —
  sandboxes, journaling, tracing, the digest walk, concordance assembly;
  :func:`check_audit_overhead` gates it at < 5% in CI.

Every unit is a pure function of a fixed seed, so run-to-run variance is
scheduler noise only; ``min`` of ``repeats`` runs is the recorded number.
From PR 5 each unit also records memory: ``max_rss_kb`` (the process RSS
high-watermark after the unit ran — monotonic across units, so compare
like units across records, not units within one record) and
``py_peak_kb`` (per-unit Python-heap peak from one extra
:mod:`tracemalloc`-instrumented pass; the min-of-k wall times are never
taken from that pass).

File format (``BENCH_*.json``)::

    {"schema": 1, "runs": [<record>, ...]}

where each record carries ``label``, ``scale``, ``created``, ``machine``,
``repeats`` and a ``benchmarks`` mapping of ``{name: {"seconds": <min>,
"runs": [...]}}``. Records append; history is never rewritten.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

import numpy as np

__all__ = [
    "BenchScale",
    "SCALES",
    "SWEEP_FACTORS",
    "run_benchmarks",
    "run_scale_sweep",
    "append_run",
    "load_runs",
    "latest_run",
    "record_scale_factor",
    "fit_scaling_exponent",
    "check_regression",
    "check_retry_overhead",
    "check_journal_overhead",
    "check_trace_overhead",
    "check_audit_overhead",
    "check_dist_overhead",
    "check_serve_overhead",
    "check_scale_sweep",
    "render_record",
    "render_scale_sweep",
]

SCHEMA_VERSION = 1

#: Benchmark name the CI regression gate watches (the scheduler hot path).
GATE_BENCHMARK = "simulate_schedule"


@dataclass(frozen=True, slots=True)
class BenchScale:
    """One benchmark operating point.

    ``full`` is the tracked trajectory scale (a 3-month workload, the
    n=200 current cohort); ``quick`` is a CI-smoke scale that finishes in
    seconds while exercising the same code paths.
    """

    months: int
    jobs_per_day: float
    cohort_n: int
    repeats: int
    scale_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.months < 1:
            raise ValueError("months must be >= 1")
        if self.jobs_per_day <= 0:
            raise ValueError("jobs_per_day must be positive")
        if self.cohort_n < 1:
            raise ValueError("cohort_n must be >= 1")
        if self.repeats < 1:
            raise ValueError("repeats must be >= 1")
        if self.scale_factor <= 0:
            raise ValueError("scale_factor must be positive")


SCALES: dict[str, BenchScale] = {
    "full": BenchScale(
        months=3, jobs_per_day=400.0, cohort_n=200, repeats=3, scale_factor=1.0
    ),
    # quick runs 1/10th of full's nominal job volume (1 month x 120/day vs
    # 3 months x 400/day).
    "quick": BenchScale(
        months=1, jobs_per_day=120.0, cohort_n=60, repeats=2, scale_factor=0.1
    ),
}

#: Default job-volume multipliers per scale for :func:`run_scale_sweep`.
#: ``full`` covers the tentpole 1x/10x/100x complexity curve; ``quick``
#: stops at 10x so the CI smoke sweep finishes in seconds.
SWEEP_FACTORS: dict[str, tuple[int, ...]] = {
    "full": (1, 10, 100),
    "quick": (1, 10),
}


def _time_min_of_k(fn: Callable[[], object], repeats: int, memory: bool = True) -> dict:
    """Run ``fn`` ``repeats`` times; record every wall time and the min.

    Also records memory: the process RSS high-watermark after the unit
    ran (``max_rss_kb``) and, when ``memory`` is True, the unit's own
    Python-heap peak (``py_peak_kb``) from one *extra*
    tracemalloc-instrumented pass — instrumentation slows allocation, so
    that pass never contributes a wall time and min-of-k is unaffected.
    """
    import tracemalloc

    from repro.core.trace import resource_probe

    runs: list[float] = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        runs.append(round(time.perf_counter() - t0, 6))
    result = {"seconds": min(runs), "runs": runs}
    probe = resource_probe()
    if probe is not None:
        result["max_rss_kb"] = probe[1]
    if memory:
        tracemalloc.start()
        try:
            fn()
            result["py_peak_kb"] = tracemalloc.get_traced_memory()[1] // 1024
        finally:
            tracemalloc.stop()
    return result


def _machine_metadata() -> dict:
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count() or 1,
    }


def _bench_retry_overhead(jobs, k: int) -> dict:
    """Time ``simulate_schedule`` through a plain vs fault-tolerant pipeline.

    Both variants run fault-free, sequentially, with ``force=True`` (so
    every repeat recomputes and republishes through the identical cache
    path); the only difference is the retry/timeout wrapper around each
    attempt. ``detail["overhead"]`` is the fractional slowdown the wrapper
    adds — the number :func:`check_retry_overhead` gates.
    """
    from repro.cluster import simulate_schedule
    from repro.core.pipeline import ArtifactCache, Pipeline, PipelineStep, RetryPolicy

    def sim(inputs):
        return simulate_schedule(jobs, rng=np.random.default_rng(0))

    def fault_tolerant(steps):
        return Pipeline(
            steps,
            ArtifactCache(),
            default_retry=RetryPolicy(max_attempts=3),
            default_timeout=3600.0,
        )

    # Headline number: the simulation through the fault-tolerant pipeline.
    tolerant_sim = fault_tolerant([PipelineStep("simulate", sim)])
    plain_sim = Pipeline([PipelineStep("simulate", sim)], ArtifactCache())
    plain_t = _time_min_of_k(
        lambda: plain_sim.run(force=True, executor="sequential"), k
    )
    tolerant_t = _time_min_of_k(
        lambda: tolerant_sim.run(force=True, executor="sequential"), k
    )

    # The wrapper costs microseconds against a tens-of-ms simulation, so a
    # ratio of two independently-noisy sim timings cannot resolve it (the
    # noise band is wider than the 2% gate). Instead measure the wrapper's
    # absolute per-run cost differentially on a trivial step — identical
    # pipelines except the retry/timeout config — and normalize by the
    # simulation time. That estimator is stable to ~0.05%.
    def tiny(inputs):
        return {"v": 1}

    plain_tiny = Pipeline([PipelineStep("tiny", tiny)], ArtifactCache())
    tolerant_tiny = fault_tolerant([PipelineStep("tiny", tiny)])
    iters = 200

    def per_run(pipeline) -> float:
        def block() -> float:
            t0 = time.perf_counter()
            for _ in range(iters):
                pipeline.run(force=True, executor="sequential")
            return (time.perf_counter() - t0) / iters

        return min(block() for _ in range(3))

    wrapper_seconds = per_run(tolerant_tiny) - per_run(plain_tiny)
    overhead = (
        wrapper_seconds / plain_t["seconds"] if plain_t["seconds"] > 0 else 0.0
    )
    return {
        "seconds": tolerant_t["seconds"],
        "runs": tolerant_t["runs"],
        "detail": {
            "plain_seconds": plain_t["seconds"],
            "wrapper_seconds": round(wrapper_seconds, 9),
            "overhead": round(overhead, 6),
        },
    }


def _bench_journal_overhead(jobs, k: int) -> dict:
    """Time ``simulate_schedule`` through a durable vs plain disk pipeline.

    The durable variant journals every step to a
    :class:`~repro.core.journal.RunJournal` (fresh journal per run, as the
    CLI does) and guards each computed entry with a cross-process
    :class:`~repro.io.locks.FileLock`; the baseline uses an identical disk
    cache with ``locking=False`` and no journal. Both pay the same
    pickle + fsync publish cost, so the differential tiny-step estimator
    isolates exactly the crash-safety wrapper. ``detail["overhead"]`` is
    that per-run wrapper cost as a fraction of the plain (in-memory)
    simulation time — the number :func:`check_journal_overhead` gates.
    """
    import tempfile

    from repro.cluster import simulate_schedule
    from repro.core.journal import RunJournal
    from repro.core.pipeline import ArtifactCache, Pipeline, PipelineStep
    from repro.io.locks import FileLock

    def sim(inputs):
        return simulate_schedule(jobs, rng=np.random.default_rng(0))

    def tiny(inputs):
        return {"v": 1}

    with tempfile.TemporaryDirectory(prefix="repro-bench-journal-") as tmpname:
        tmp = Path(tmpname)
        journal_dir = tmp / "journals"

        plain_sim = Pipeline([PipelineStep("simulate", sim)], ArtifactCache())
        plain_t = _time_min_of_k(
            lambda: plain_sim.run(force=True, executor="sequential"), k
        )

        durable_sim = Pipeline(
            [PipelineStep("simulate", sim)],
            ArtifactCache(tmp / "cache-sim", locking=True),
        )

        def durable_sim_run() -> None:
            with RunJournal.open(journal_dir) as journal:
                durable_sim.run(force=True, executor="sequential", journal=journal)

        durable_t = _time_min_of_k(durable_sim_run, k)

        # As with the retry gate, the wrapper costs microseconds against a
        # tens-of-ms simulation, so the headline ratio cannot resolve it.
        # Nor can a force=True differential: every forced run republishes
        # its artifact, and one publish fsync on this class of filesystem
        # costs ~700µs with ±300µs of state-dependent jitter — wider than
        # the whole 2% budget. Instead measure the two wrapper components
        # where they are actually paid, on fsync-free paths:
        #
        # * the journal's per-run cost, differentially: identical warm-
        #   cache pipelines (cache-hit path — no publish, no fsync, no
        #   lock) with and without a journal. This prices the real per-run
        #   journal traffic: segment open + run_start/step records +
        #   run_end.
        # * the entry lock's per-computed-step cost, as a direct
        #   acquire/release cycle on a warm lock file.
        #
        # The per-writer segment file (see repro.core.journal) is created
        # once per process, not per run, precisely so that no new-inode
        # metadata gets entangled with artifact-publish fsyncs; that one-
        # time cost is deliberately outside this recurring-overhead gate.
        base_tiny = Pipeline(
            [PipelineStep("tiny", tiny)],
            ArtifactCache(tmp / "cache-base", locking=False),
        )
        durable_tiny = Pipeline(
            [PipelineStep("tiny", tiny)],
            ArtifactCache(tmp / "cache-dur", locking=True),
        )
        base_tiny.run(executor="sequential")  # warm: one publish each,
        durable_tiny.run(executor="sequential")  # outside the timed loops
        iters = 200

        def per_run_base() -> float:
            def block() -> float:
                t0 = time.perf_counter()
                for _ in range(iters):
                    base_tiny.run(executor="sequential")
                return (time.perf_counter() - t0) / iters

            return min(block() for _ in range(3))

        def per_run_durable() -> float:
            def block() -> float:
                t0 = time.perf_counter()
                for _ in range(iters):
                    with RunJournal.open(journal_dir) as journal:
                        durable_tiny.run(executor="sequential", journal=journal)
                return (time.perf_counter() - t0) / iters

            return min(block() for _ in range(3))

        journal_seconds = max(0.0, per_run_durable() - per_run_base())

        lock = FileLock(tmp / "probe.lock")
        with lock:
            pass  # warm: create the lock file, record the pid
        cycles = 500

        def lock_block() -> float:
            t0 = time.perf_counter()
            for _ in range(cycles):
                lock.acquire()
                lock.release()
            return (time.perf_counter() - t0) / cycles

        lock_seconds = min(lock_block() for _ in range(3))
        wrapper_seconds = journal_seconds + lock_seconds
    overhead = (
        wrapper_seconds / plain_t["seconds"] if plain_t["seconds"] > 0 else 0.0
    )
    return {
        "seconds": durable_t["seconds"],
        "runs": durable_t["runs"],
        "detail": {
            "plain_seconds": plain_t["seconds"],
            "journal_seconds": round(journal_seconds, 9),
            "lock_seconds": round(lock_seconds, 9),
            "wrapper_seconds": round(wrapper_seconds, 9),
            "overhead": round(overhead, 6),
        },
    }


def _bench_trace_overhead(jobs, k: int) -> dict:
    """Time ``simulate_schedule`` through a traced vs untraced pipeline.

    The untraced variant is the *tracing-disabled* path every ordinary run
    takes (``trace=None`` — one None test per emit site), so it doubles as
    the gate's baseline: there is no way to measure "disabled vs
    never-built", and any drift in the disabled path itself is caught by
    the ``simulate_schedule`` regression gate. The traced variant opens a
    fresh :class:`~repro.core.trace.Tracer` per run and pays the full span
    bus: root + step + attempt spans, cache instants, ambient activation.

    As with the retry/journal gates, the wrapper costs microseconds
    against a tens-of-ms simulation, so it is measured differentially on a
    trivial step and normalized by the plain simulation time;
    ``detail["overhead"]`` is that fraction, gated by
    :func:`check_trace_overhead` at < 3% in CI.
    """
    from repro.cluster import simulate_schedule
    from repro.core.pipeline import ArtifactCache, Pipeline, PipelineStep

    def sim(inputs):
        return simulate_schedule(jobs, rng=np.random.default_rng(0))

    def tiny(inputs):
        return {"v": 1}

    plain_sim = Pipeline([PipelineStep("simulate", sim)], ArtifactCache())
    traced_sim = Pipeline([PipelineStep("simulate", sim)], ArtifactCache())
    plain_t = _time_min_of_k(
        lambda: plain_sim.run(force=True, executor="sequential"), k, memory=False
    )
    traced_t = _time_min_of_k(
        lambda: traced_sim.run(force=True, executor="sequential", trace=True),
        k,
        memory=False,
    )

    plain_tiny = Pipeline([PipelineStep("tiny", tiny)], ArtifactCache())
    traced_tiny = Pipeline([PipelineStep("tiny", tiny)], ArtifactCache())
    iters = 200

    def per_run(pipeline, **run_kwargs) -> float:
        def block() -> float:
            t0 = time.perf_counter()
            for _ in range(iters):
                pipeline.run(force=True, executor="sequential", **run_kwargs)
            return (time.perf_counter() - t0) / iters

        return min(block() for _ in range(3))

    wrapper_seconds = per_run(traced_tiny, trace=True) - per_run(plain_tiny)
    overhead = (
        wrapper_seconds / plain_t["seconds"] if plain_t["seconds"] > 0 else 0.0
    )
    return {
        "seconds": traced_t["seconds"],
        "runs": traced_t["runs"],
        "detail": {
            "plain_seconds": plain_t["seconds"],
            "wrapper_seconds": round(wrapper_seconds, 9),
            "overhead": round(overhead, 6),
        },
    }


def _bench_audit_overhead(sc: "BenchScale", k: int) -> dict:
    """Time a two-leg reproducibility audit vs a plain double pipeline run.

    The minimal audit matrix — baseline plus one identical sequential
    rerun — does exactly the work of running the report pipeline twice,
    plus the harness itself: per-leg cache/journal sandboxes, tracing,
    the digest walk, and concordance assembly. A plain double run of the
    same pipeline is therefore the natural baseline, and
    ``detail["overhead"]`` is the fractional cost of auditing over merely
    re-running — the number :func:`check_audit_overhead` gates at < 5%.

    One experiment (T1) rides along so the audit covers an ``exp:`` step
    (text digests) as well as the study stages (structural digests)
    without the bench paying for the whole registry.
    """
    from repro.audit.concordance import Perturbation
    from repro.audit.runner import run_audit
    from repro.core.pipeline import ArtifactCache
    from repro.report.experiments import report_pipeline

    study_kwargs = {
        "seed": 2024,
        "n_baseline": min(sc.cohort_n, 120),
        "n_current": sc.cohort_n,
        "months": sc.months,
        "jobs_per_day": min(sc.jobs_per_day, 200.0),
    }
    ids = ["T1"]

    def plain_double() -> None:
        for _ in range(2):
            report_pipeline(
                ArtifactCache(), experiment_ids=ids, **study_kwargs
            ).run(executor="sequential")

    plain_t = _time_min_of_k(plain_double, k, memory=False)

    matrix = (Perturbation("baseline"), Perturbation("rerun"))

    def audit() -> None:
        run_audit(matrix=matrix, experiment_ids=ids, study_kwargs=study_kwargs)

    audit_t = _time_min_of_k(audit, k, memory=False)
    wrapper_seconds = audit_t["seconds"] - plain_t["seconds"]
    overhead = (
        wrapper_seconds / plain_t["seconds"] if plain_t["seconds"] > 0 else 0.0
    )
    return {
        "seconds": audit_t["seconds"],
        "runs": audit_t["runs"],
        "detail": {
            "plain_seconds": plain_t["seconds"],
            "wrapper_seconds": round(wrapper_seconds, 9),
            "overhead": round(overhead, 6),
        },
    }


# Module level so the dist run spec can pickle them into worker processes.
def _dist_bench_source(inputs):
    return list(range(500))


def _dist_bench_band(inputs):
    return sum(inputs["source"])


def _dist_bench_sink(inputs):
    return inputs["band-0"] + inputs["band-1"] + inputs["band-2"]


def _bench_dist_overhead(k: int) -> dict:
    """Time a small DAG on the dist backend vs a sequential run.

    Fleet mode pays for fork-per-worker, heartbeat threads, lease files
    and assignment polling; on a 5-step diamond of trivial steps that
    coordination cost *is* the wall time, making this the worst case. The
    gate therefore prices it in absolute per-step seconds —
    ``(dist_wall - seq_wall) / steps`` — rather than as a ratio: the
    fleet-spawn cost is fixed, so any ratio against near-zero step
    compute would diverge as steps shrink and say nothing about real
    runs. :func:`check_dist_overhead` gates ``detail["overhead_per_step"]``.
    """
    import tempfile

    from repro.core.pipeline import ArtifactCache, Pipeline, PipelineStep

    steps = [
        PipelineStep("source", _dist_bench_source),
        PipelineStep("band-0", _dist_bench_band, depends_on=("source",)),
        PipelineStep("band-1", _dist_bench_band, depends_on=("source",)),
        PipelineStep("band-2", _dist_bench_band, depends_on=("source",)),
        PipelineStep("sink", _dist_bench_sink, depends_on=("band-0", "band-1", "band-2")),
    ]
    workers = 2
    dist_options = {
        "workers": workers,
        "heartbeat_interval": 0.05,
        "lease_ttl": 1.0,
        "poll_interval": 0.005,
        "tick_interval": 0.005,
    }
    repeats = min(k, 3)  # each dist repeat forks a fresh fleet

    with tempfile.TemporaryDirectory(prefix="repro-bench-dist-") as tmpname:
        tmp = Path(tmpname)
        counter = [0]

        def fresh_pipeline() -> Pipeline:
            counter[0] += 1
            return Pipeline(list(steps), ArtifactCache(tmp / f"c{counter[0]}"))

        seq_t = _time_min_of_k(
            lambda: fresh_pipeline().run(executor="sequential"),
            repeats,
            memory=False,
        )
        dist_t = _time_min_of_k(
            lambda: fresh_pipeline().run(
                executor="dist", backend_options=dict(dist_options)
            ),
            repeats,
            memory=False,
        )
    overhead_per_step = max(0.0, dist_t["seconds"] - seq_t["seconds"]) / len(steps)
    return {
        "seconds": dist_t["seconds"],
        "runs": dist_t["runs"],
        "detail": {
            "seq_seconds": seq_t["seconds"],
            "steps": len(steps),
            "workers": workers,
            "overhead_per_step": round(overhead_per_step, 6),
        },
    }


def _bench_serve_ingest_overhead(sc: "BenchScale", k: int) -> dict:
    """Time durable WAL ingestion vs a plain flat-file append.

    The serve loop's write path pays for record framing, batch-dedupe
    bookkeeping, chunk hashing, and an fsync that a bare ``write()`` of
    the same export lines would skip. That durability cost only matters
    relative to the recompute one ingest unlocks, so
    ``detail["overhead"]`` is the *extra* ingest seconds as a fraction of
    one cold serve refresh over the same rows — the number
    :func:`check_serve_overhead` gates at < 10%.
    """
    import io
    import tempfile

    from repro.cluster import write_sacct
    from repro.core import build_default_study
    from repro.core.pipeline import ArtifactCache
    from repro.io import write_responses_jsonl
    from repro.serve.pipeline import serve_pipeline
    from repro.serve.wal import IngestWAL

    study = build_default_study(
        seed=2024,
        n_baseline=min(sc.cohort_n, 120),
        n_current=sc.cohort_n,
        months=3,  # the registry's F5 growth figure needs >= 3 months
        jobs_per_day=min(sc.jobs_per_day, 60.0),
    )
    buf = io.StringIO()
    write_responses_jsonl(study.responses, buf)
    responses = buf.getvalue().splitlines()
    buf = io.StringIO()
    write_sacct(study.telemetry, buf)
    sacct = buf.getvalue().splitlines()[1:]  # WAL rows carry data, not the header
    n_rows = len(responses) + len(sacct)

    with tempfile.TemporaryDirectory(prefix="repro-bench-serve-") as tmpname:
        tmp = Path(tmpname)
        counter = [0]

        # Steady-state append path: the live service keeps its WAL open,
        # so the open/replay cost stays outside the timed region. Fresh
        # batch ids each round keep the dedupe from short-circuiting.
        ingest_wal = IngestWAL(tmp / "ingest-wal")

        def wal_ingest() -> None:
            counter[0] += 1
            ingest_wal.append("responses", responses, batch=f"r{counter[0]}")
            ingest_wal.append("sacct", sacct, batch=f"s{counter[0]}")

        wal_t = _time_min_of_k(wal_ingest, k, memory=False)
        ingest_wal.close()

        plain_fh = open(tmp / "plain.log", "a", encoding="utf-8")

        def plain_append() -> None:
            plain_fh.write("\n".join(responses) + "\n")
            plain_fh.write("\n".join(sacct) + "\n")
            plain_fh.flush()

        plain_t = _time_min_of_k(plain_append, k, memory=False)
        plain_fh.close()

        wal_dir = tmp / "refresh-wal"
        with IngestWAL(wal_dir) as wal:
            wal.append("responses", responses, batch="r0")
            wal.append("sacct", sacct, batch="s0")
            chunks = {
                "responses": wal.chunk("responses"),
                "sacct": wal.chunk("sacct"),
            }

        def cold_refresh() -> None:
            counter[0] += 1
            serve_pipeline(
                wal_dir,
                chunks,
                window_seconds=90.0 * 86400.0,
                experiment_ids=None,  # the default service serves the whole registry
                cache=ArtifactCache(tmp / f"c{counter[0]}"),
            ).run(executor="sequential")

        refresh_t = _time_min_of_k(cold_refresh, min(k, 3), memory=False)

    wrapper_seconds = max(0.0, wal_t["seconds"] - plain_t["seconds"])
    overhead = (
        wrapper_seconds / refresh_t["seconds"] if refresh_t["seconds"] > 0 else 0.0
    )
    return {
        "seconds": wal_t["seconds"],
        "runs": wal_t["runs"],
        "detail": {
            "plain_seconds": plain_t["seconds"],
            "refresh_seconds": refresh_t["seconds"],
            "rows": n_rows,
            "wrapper_seconds": round(wrapper_seconds, 9),
            "overhead": round(overhead, 6),
        },
    }


def _serve_study_lines(
    seed: int, *, cohort_n: int = 10, jobs_per_day: float = 2.0
) -> tuple[list[str], list[str]]:
    """(response JSONL lines, sacct lines incl. header) for a small study."""
    import io

    from repro.cluster import write_sacct
    from repro.core import build_default_study
    from repro.io import write_responses_jsonl

    study = build_default_study(
        seed=seed,
        n_baseline=min(cohort_n, 120),
        n_current=cohort_n,
        months=1,
        jobs_per_day=jobs_per_day,
    )
    buf = io.StringIO()
    write_responses_jsonl(study.responses, buf)
    responses = buf.getvalue().splitlines()
    buf = io.StringIO()
    write_sacct(study.telemetry, buf)
    return responses, buf.getvalue().splitlines()


def _bench_metrics_overhead(sc: "BenchScale", k: int) -> dict:
    """Cost of the serve observability plane against one serve cycle.

    The plane adds two things to a resident service: registry updates on
    every request (a counter bump + one histogram observation) and a
    per-cycle publish on every status write (staleness/queue gauges, SLO
    load + evaluation, ring snapshot + exposition render + two file
    writes). Both are timed *directly* — they are stable µs-scale
    operations — and priced as a fraction of one measured serve cycle
    (forced refresh + request burst). A subtractive with/without wall
    clock cannot resolve this: the signal is sub-millisecond while a
    refresh carries ms-scale I/O jitter, so the differential would be
    gate noise, not measurement. :func:`check_metrics_overhead` gates the
    fraction at < 3% — the same always-on argument as the trace gate.
    """
    import tempfile

    from repro.obs.slo import evaluate_slo, load_slo
    from repro.serve.service import ServeConfig, StudyService

    # A realistically sized cycle: the plane's fixed per-cycle cost must
    # amortize against a real refresh, not a toy one.
    responses, sacct = _serve_study_lines(
        seed=11, cohort_n=sc.cohort_n, jobs_per_day=min(sc.jobs_per_day, 60.0)
    )
    requests_per_cycle = 50
    with tempfile.TemporaryDirectory(prefix="repro-bench-metrics-") as tmpname:
        svc = StudyService(
            Path(tmpname),
            ServeConfig(months=1, experiments=("X1",), fsync="never"),
        )
        svc.ingest("responses", responses, batch="r0")
        svc.ingest("sacct", sacct, batch="s0")
        svc.refresh()

        def cycle() -> None:
            # refresh() persists status + ring on its way out — one
            # publish per cycle, the same shape as a --loop cycle.
            svc.refresh(force=True)
            for _ in range(requests_per_cycle):
                svc.request("X1")

        cycle()  # warmup: the first forced refresh pays one-time costs
        cycle_t = _time_min_of_k(cycle, max(k, 3), memory=False)

        registry, ring, root = svc.registry, svc._ring, svc.root
        reps = 1000

        def request_side() -> None:
            # What request() adds per call when the plane is on.
            for _ in range(reps):
                registry.inc("repro_requests_total")
                registry.observe("repro_request_seconds", 1e-3)

        request_t = _time_min_of_k(request_side, max(k, 3), memory=False)
        request_unit = request_t["seconds"] / reps

        def publish_side() -> None:
            # What _write_status() adds per cycle when the plane is on.
            registry.set_gauge("repro_staleness_rows_behind", 0)
            registry.set_gauge("repro_queue_depth", 0)
            policy = load_slo(root)
            if policy is not None:
                evaluate_slo(policy, registry)
            ring.publish(registry.snapshot(), registry.to_text())

        publish_t = _time_min_of_k(
            lambda: [publish_side() for _ in range(20)], max(k, 3), memory=False
        )
        publish_unit = publish_t["seconds"] / 20
        svc.close()

    instrument = requests_per_cycle * request_unit + publish_unit
    overhead = instrument / cycle_t["seconds"] if cycle_t["seconds"] > 0 else 0.0
    return {
        "seconds": cycle_t["seconds"],
        "runs": cycle_t["runs"],
        "detail": {
            "requests": requests_per_cycle,
            "request_us": round(request_unit * 1e6, 3),
            "publish_us": round(publish_unit * 1e6, 3),
            "instrument_seconds": round(instrument, 9),
            "overhead": round(overhead, 6),
        },
    }


def _bench_serve_latency(sc: "BenchScale", k: int) -> dict:
    """Request percentiles under concurrent load with shedding active.

    Drives N client threads, each firing a stream of tiny-deadline
    requests at a warm-but-dirty service: every request must be answered
    from the last-good artifact via deadline shedding (a recompute the
    client will not wait for never starts). p50/p95/p99 come from the
    service's own ``repro_request_seconds`` histogram — the numbers the
    SLO policy would judge — and :func:`check_serve_latency` gates the
    p99 absolutely: under load shedding there is no slow path left to
    hide in.
    """
    import tempfile
    import threading

    from repro.serve.service import ServeConfig, StudyService

    responses, sacct = _serve_study_lines(seed=12)
    n_threads, per_thread = 4, 50
    with tempfile.TemporaryDirectory(prefix="repro-bench-latency-") as tmpname:
        svc = StudyService(
            Path(tmpname), ServeConfig(months=1, experiments=("X1",))
        )
        svc.ingest("responses", responses, batch="r0")
        svc.ingest("sacct", sacct, batch="s0")
        svc.refresh()  # warm artifact + refresh-cost estimate
        # Fresh rows leave the service dirty: without a deadline each
        # request would trigger a recompute, with one it must shed.
        svc.ingest("responses", responses, batch="r1")

        def storm() -> None:
            def client() -> None:
                for _ in range(per_thread):
                    svc.request("X1", deadline=1e-4)

            threads = [threading.Thread(target=client) for _ in range(n_threads)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

        timing = _time_min_of_k(storm, min(k, 3), memory=False)
        registry = svc.registry
        pct = registry.percentiles("repro_request_seconds")
        count = registry.histogram_count("repro_request_seconds")
        requests = registry.value("repro_requests_total")
        shed = registry.value("repro_shed_total", reason="deadline") + registry.value(
            "repro_shed_total", reason="queue_full"
        )
        svc.close()
    return {
        "seconds": timing["seconds"],
        "runs": timing["runs"],
        "detail": {
            "threads": n_threads,
            "requests": int(requests),
            "observations": count,
            "p50": None if pct["p50"] is None else round(pct["p50"], 6),
            "p95": None if pct["p95"] is None else round(pct["p95"], 6),
            "p99": None if pct["p99"] is None else round(pct["p99"], 6),
            "shed_rate": round(shed / requests, 6) if requests else 0.0,
        },
    }


def run_benchmarks(
    scale: str = "full",
    label: str = "run",
    repeats: int | None = None,
    end_to_end: bool = True,
) -> dict:
    """Time every substrate at ``scale`` and return one trajectory record.

    Parameters
    ----------
    scale:
        A key of :data:`SCALES` (``"full"`` or ``"quick"``).
    label:
        Free-form tag stored on the record (``"baseline"``, ``"after"``,
        ``"ci"``, ...).
    repeats:
        Override the scale's min-of-k repeat count.
    end_to_end:
        Also time study build + sequential report render (runs once —
        it dwarfs the substrate timings). Skipped regardless of this
        flag when the scale has fewer than 3 months: the report's GPU
        growth figure needs >= 3 months of telemetry.
    """
    # Imports are deferred so `repro --help` stays fast.
    from repro.cluster import WorkloadModel, WorkloadParams, simulate_schedule
    from repro.cluster.usage import (
        cpu_hours_by_field_month,
        gpu_hours_monthly,
        job_width_distribution,
    )
    from repro.core import build_default_study, build_instrument, profile_2024
    from repro.report.document import build_report
    from repro.synth import generate_cohort

    if scale not in SCALES:
        raise ValueError(f"unknown scale {scale!r}; expected one of {sorted(SCALES)}")
    sc = SCALES[scale]
    k = repeats if repeats is not None else sc.repeats
    if k < 1:
        raise ValueError("repeats must be >= 1")

    params = WorkloadParams(months=sc.months, jobs_per_day=sc.jobs_per_day)
    model = WorkloadModel(params)
    benchmarks: dict[str, dict] = {}

    benchmarks["workload_generate"] = _time_min_of_k(
        lambda: model.generate(np.random.default_rng(0)), k
    )
    jobs = model.generate(np.random.default_rng(0))
    benchmarks["simulate_schedule"] = _time_min_of_k(
        lambda: simulate_schedule(jobs, rng=np.random.default_rng(0)), k
    )
    benchmarks["simulate_schedule"]["detail"] = {
        "months": sc.months,
        "jobs": len(jobs),
    }

    questionnaire = build_instrument()
    profile = profile_2024()
    benchmarks["generate_cohort"] = _time_min_of_k(
        lambda: generate_cohort(
            profile, questionnaire, sc.cohort_n, np.random.default_rng(0)
        ),
        k,
    )
    benchmarks["generate_cohort"]["detail"] = {"n": sc.cohort_n}

    table = simulate_schedule(jobs, rng=np.random.default_rng(0)).table

    def aggregate() -> None:
        cpu_hours_by_field_month(table)
        gpu_hours_monthly(table)
        job_width_distribution(table)

    benchmarks["table_aggregations"] = _time_min_of_k(aggregate, k)

    benchmarks["retry_overhead"] = _bench_retry_overhead(jobs, k)

    benchmarks["journal_overhead"] = _bench_journal_overhead(jobs, k)

    benchmarks["trace_overhead"] = _bench_trace_overhead(jobs, k)

    benchmarks["audit_overhead"] = _bench_audit_overhead(sc, k)

    benchmarks["dist_overhead"] = _bench_dist_overhead(k)

    benchmarks["serve_ingest_overhead"] = _bench_serve_ingest_overhead(sc, k)

    benchmarks["metrics_overhead"] = _bench_metrics_overhead(sc, k)

    benchmarks["serve_latency"] = _bench_serve_latency(sc, k)

    if end_to_end and sc.months >= 3:
        def report() -> None:
            study = build_default_study(
                seed=2024,
                n_baseline=120,
                n_current=sc.cohort_n,
                months=sc.months,
                jobs_per_day=200.0,
            )
            build_report(study, executor="sequential")

        # memory=False: the extra tracemalloc pass would double the one
        # unit that already dwarfs everything else; max_rss_kb still lands.
        benchmarks["end_to_end_report"] = _time_min_of_k(report, 1, memory=False)

    return {
        "label": label,
        "scale": scale,
        "scale_factor": sc.scale_factor,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()) + "Z",
        "machine": _machine_metadata(),
        "repeats": k,
        "benchmarks": benchmarks,
    }


# -- scale sweep --------------------------------------------------------------


def _tiled_jobs(base_jobs: list, tiles: int, window_seconds: float) -> list:
    """Replay the base submission stream ``tiles`` times end to end.

    Volume scaling by trace replay: each tile shifts submit times by one
    whole window and renumbers job ids past the previous tile, so a
    ``tiles``-fold sweep point has *exactly* ``tiles``-times the jobs with
    the same arrival-rate regime, user population, and partition mix.
    Scaling the arrival rate instead would saturate the fixed-capacity
    cluster and measure backlog pathology, not the event core; scaling the
    window length would compound the workload model's monthly GPU growth
    into a qualitatively different (and eventually saturating) workload.
    """
    from repro.cluster.workload import SubmittedJob

    if tiles <= 1:
        return list(base_jobs)
    id_stride = max(j.job_id for j in base_jobs) + 1
    out = list(base_jobs)
    for tile in range(1, tiles):
        id_shift = tile * id_stride
        t_shift = tile * window_seconds
        out.extend(
            SubmittedJob(
                job_id=j.job_id + id_shift,
                user=j.user,
                field=j.field,
                partition=j.partition,
                submit=j.submit + t_shift,
                cores=j.cores,
                gpus=j.gpus,
                runtime=j.runtime,
                requested_walltime=j.requested_walltime,
            )
            for j in base_jobs
        )
    return out


def fit_scaling_exponent(sizes, walls) -> float:
    """Least-squares slope of log(wall) vs log(size).

    1.0 is perfectly linear scaling; 2.0 quadratic. Needs at least two
    points. Wall times are clamped to 1 microsecond so a sub-resolution
    point cannot produce ``log(0)``.
    """
    xs = np.log(np.asarray(sizes, dtype=float))
    ys = np.log(np.maximum(np.asarray(walls, dtype=float), 1e-6))
    if xs.size < 2:
        raise ValueError("fitting a scaling exponent needs >= 2 points")
    if xs.size != ys.size:
        raise ValueError("sizes and walls differ in length")
    return float(np.polyfit(xs, ys, 1)[0])


def run_scale_sweep(
    scale: str = "full",
    label: str = "dev",
    factors: tuple[int, ...] | None = None,
    repeats: int = 1,
) -> dict:
    """Measure simulate+analysis wall and peak RSS across job volumes.

    Runs the scheduler simulation plus the standard aggregation bundle
    (CPU-hours by field/month, GPU-hours, width distribution, wait stats,
    user concentration) at each volume multiple of the scale's base
    workload (see :func:`_tiled_jobs` for how volume is scaled), in
    ascending order so each point's ``max_rss_kb`` RSS high-watermark
    reflects that point. The record's ``detail`` carries one entry per
    point with an explicit ``scale_factor`` plus fitted scaling exponents
    (:func:`fit_scaling_exponent`) for simulate, analysis, total, and RSS
    — the numbers :func:`check_scale_sweep` gates.
    """
    from repro.cluster import WorkloadModel, WorkloadParams, simulate_schedule
    from repro.cluster.usage import (
        cpu_hours_by_field_month,
        gpu_hours_monthly,
        job_width_distribution,
        user_concentration,
        wait_stats_by_partition,
    )

    if scale not in SCALES:
        raise ValueError(f"unknown scale {scale!r}; expected one of {sorted(SCALES)}")
    sc = SCALES[scale]
    chosen = tuple(sorted({int(f) for f in (factors or SWEEP_FACTORS[scale])}))
    if len(chosen) < 2:
        raise ValueError("scale sweep needs >= 2 distinct factors")
    if chosen[0] < 1:
        raise ValueError("sweep factors must be >= 1")
    if repeats < 1:
        raise ValueError("repeats must be >= 1")

    params = WorkloadParams(months=sc.months, jobs_per_day=sc.jobs_per_day)
    base_jobs = WorkloadModel(params).generate(np.random.default_rng(0))
    window = params.window_seconds

    points: list[dict] = []
    for factor in chosen:
        jobs = _tiled_jobs(base_jobs, factor, window)
        captured: dict[str, object] = {}

        def run_sim() -> None:
            captured["table"] = simulate_schedule(
                jobs, rng=np.random.default_rng(0)
            ).table

        sim = _time_min_of_k(run_sim, repeats, memory=False)
        table = captured["table"]

        def run_analysis() -> None:
            cpu_hours_by_field_month(table)
            gpu_hours_monthly(table)
            job_width_distribution(table)
            wait_stats_by_partition(table)
            user_concentration(table)

        analysis = _time_min_of_k(run_analysis, repeats, memory=False)
        point = {
            "scale_factor": factor,
            "jobs": len(jobs),
            "simulate_seconds": sim["seconds"],
            "analysis_seconds": analysis["seconds"],
            "total_seconds": round(sim["seconds"] + analysis["seconds"], 6),
        }
        # The watermark after the analysis pass covers the whole point
        # (workload list + simulation + aggregation buffers).
        if "max_rss_kb" in analysis:
            point["max_rss_kb"] = analysis["max_rss_kb"]
        points.append(point)
        del jobs, table, captured

    jobs_counts = [p["jobs"] for p in points]
    fit = {
        "simulate_exponent": round(
            fit_scaling_exponent(jobs_counts, [p["simulate_seconds"] for p in points]), 4
        ),
        "analysis_exponent": round(
            fit_scaling_exponent(jobs_counts, [p["analysis_seconds"] for p in points]), 4
        ),
        "total_exponent": round(
            fit_scaling_exponent(jobs_counts, [p["total_seconds"] for p in points]), 4
        ),
    }
    if all("max_rss_kb" in p for p in points):
        fit["rss_exponent"] = round(
            fit_scaling_exponent(jobs_counts, [p["max_rss_kb"] for p in points]), 4
        )
    totals = [p["total_seconds"] for p in points]
    entry = {
        "seconds": round(sum(totals), 6),
        "runs": totals,
        "detail": {
            "base_months": sc.months,
            "base_jobs_per_day": sc.jobs_per_day,
            "factors": list(chosen),
            "points": points,
            "fit": fit,
        },
    }
    return {
        "label": label,
        "scale": f"{scale}-sweep",
        "scale_factor": sc.scale_factor,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()) + "Z",
        "machine": _machine_metadata(),
        "repeats": repeats,
        "benchmarks": {"scale_sweep": entry},
    }


# -- trajectory files ---------------------------------------------------------


def load_runs(path: Path | str) -> list[dict]:
    """All run records in a ``BENCH_*.json`` file (oldest first)."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(data, dict) or "runs" not in data:
        raise ValueError(f"{path}: not a benchmark trajectory file")
    return list(data["runs"])


def append_run(path: Path | str, record: dict) -> None:
    """Append ``record`` to the trajectory at ``path`` (created if missing)."""
    path = Path(path)
    runs = load_runs(path) if path.exists() else []
    runs.append(record)
    path.write_text(
        json.dumps({"schema": SCHEMA_VERSION, "runs": runs}, indent=2) + "\n",
        encoding="utf-8",
    )


def latest_run(runs: list[dict], scale: str, label: str | None = None) -> dict | None:
    """Most recent run at ``scale`` (and ``label``, when given)."""
    for record in reversed(runs):
        if record.get("scale") != scale:
            continue
        if label is not None and record.get("label") != label:
            continue
        return record
    return None


def record_scale_factor(record: dict) -> float:
    """Job-volume scale factor of a record, with back-compat inference.

    Records written from this version on carry an explicit
    ``scale_factor`` field; older records are inferred from their scale
    name via :data:`SCALES` (``full`` -> 1.0, ``quick`` -> 0.1). Unknown
    legacy scales default to 1.0 — the safe reading for trajectory
    analysis, which only needs factors to be comparable *within* a scale.
    """
    value = record.get("scale_factor")
    if value is not None:
        return float(value)
    sc = SCALES.get(str(record.get("scale", "")))
    if sc is not None:
        return sc.scale_factor
    return 1.0


def check_regression(
    record: dict,
    baseline_path: Path | str,
    benchmark: str = GATE_BENCHMARK,
    max_regression: float = 0.25,
) -> tuple[bool, str]:
    """Compare ``record`` against the committed trajectory.

    Finds the most recent baseline run with the same scale and returns
    ``(ok, message)``; ``ok`` is False when ``benchmark`` is slower than
    the baseline by more than ``max_regression`` (0.25 = +25%). A missing
    same-scale baseline passes vacuously (with a message saying so), so
    the gate never blocks the PR that introduces a new scale.
    """
    if max_regression < 0:
        raise ValueError("max_regression must be non-negative")
    baseline = latest_run(load_runs(baseline_path), scale=record["scale"])
    if baseline is None:
        return True, (
            f"no baseline at scale {record['scale']!r} in {baseline_path}; skipping gate"
        )
    try:
        base_s = float(baseline["benchmarks"][benchmark]["seconds"])
        now_s = float(record["benchmarks"][benchmark]["seconds"])
    except KeyError:
        return True, f"benchmark {benchmark!r} missing from baseline or run; skipping gate"
    if base_s <= 0:
        return True, f"baseline {benchmark} time is non-positive; skipping gate"
    ratio = now_s / base_s
    message = (
        f"{benchmark}: {now_s:.3f}s vs baseline {base_s:.3f}s "
        f"({ratio:.0%} of baseline, limit {1 + max_regression:.0%})"
    )
    return ratio <= 1.0 + max_regression, message


def check_retry_overhead(record: dict, max_overhead: float = 0.02) -> tuple[bool, str]:
    """Gate the fault-tolerance wrapper's fault-free cost within ``record``.

    Unlike :func:`check_regression` this is an intra-record check — the
    plain pipeline timed in the same run is the baseline, so machine speed
    cancels out. Returns ``(ok, message)``; a record without the
    ``retry_overhead`` benchmark passes vacuously.
    """
    if max_overhead < 0:
        raise ValueError("max_overhead must be non-negative")
    entry = record.get("benchmarks", {}).get("retry_overhead")
    if entry is None or "detail" not in entry:
        return True, "retry_overhead benchmark missing from run; skipping gate"
    overhead = float(entry["detail"]["overhead"])
    message = (
        f"retry_overhead: {entry['seconds']:.3f}s tolerant vs "
        f"{entry['detail']['plain_seconds']:.3f}s plain "
        f"({overhead:+.1%} overhead, limit {max_overhead:+.0%})"
    )
    return overhead <= max_overhead, message


def check_journal_overhead(record: dict, max_overhead: float = 0.02) -> tuple[bool, str]:
    """Gate the crash-safety wrapper's cost within ``record``.

    Intra-record like :func:`check_retry_overhead`: the plain disk-cache
    pipeline timed in the same run is the baseline, so machine and
    filesystem speed cancel out. Returns ``(ok, message)``; a record
    without the ``journal_overhead`` benchmark passes vacuously.
    """
    if max_overhead < 0:
        raise ValueError("max_overhead must be non-negative")
    entry = record.get("benchmarks", {}).get("journal_overhead")
    if entry is None or "detail" not in entry:
        return True, "journal_overhead benchmark missing from run; skipping gate"
    overhead = float(entry["detail"]["overhead"])
    message = (
        f"journal_overhead: {entry['seconds']:.3f}s durable vs "
        f"{entry['detail']['plain_seconds']:.3f}s plain "
        f"({overhead:+.1%} overhead, limit {max_overhead:+.0%})"
    )
    return overhead <= max_overhead, message


def check_trace_overhead(record: dict, max_overhead: float = 0.03) -> tuple[bool, str]:
    """Gate the tracing layer's cost within ``record``.

    Intra-record like the retry/journal gates: the untraced pipeline timed
    in the same run — the tracing-disabled path itself — is the baseline,
    so the gate simultaneously proves the disabled path adds nothing and
    bounds what ``trace=True`` costs. Returns ``(ok, message)``; a record
    without the ``trace_overhead`` benchmark passes vacuously.
    """
    if max_overhead < 0:
        raise ValueError("max_overhead must be non-negative")
    entry = record.get("benchmarks", {}).get("trace_overhead")
    if entry is None or "detail" not in entry:
        return True, "trace_overhead benchmark missing from run; skipping gate"
    overhead = float(entry["detail"]["overhead"])
    message = (
        f"trace_overhead: {entry['seconds']:.3f}s traced vs "
        f"{entry['detail']['plain_seconds']:.3f}s untraced "
        f"({overhead:+.1%} overhead, limit {max_overhead:+.0%})"
    )
    return overhead <= max_overhead, message


def check_audit_overhead(record: dict, max_overhead: float = 0.05) -> tuple[bool, str]:
    """Gate the audit harness's cost over a plain double run within ``record``.

    Intra-record like the other overhead gates: the plain double pipeline
    run timed in the same record is the baseline, so machine speed cancels
    out and the gate prices exactly the harness — sandboxes, journaling,
    tracing, digesting, concordance assembly. Returns ``(ok, message)``;
    a record without the ``audit_overhead`` benchmark passes vacuously.
    """
    if max_overhead < 0:
        raise ValueError("max_overhead must be non-negative")
    entry = record.get("benchmarks", {}).get("audit_overhead")
    if entry is None or "detail" not in entry:
        return True, "audit_overhead benchmark missing from run; skipping gate"
    overhead = float(entry["detail"]["overhead"])
    message = (
        f"audit_overhead: {entry['seconds']:.3f}s audited vs "
        f"{entry['detail']['plain_seconds']:.3f}s plain double run "
        f"({overhead:+.1%} overhead, limit {max_overhead:+.0%})"
    )
    return overhead <= max_overhead, message


def check_dist_overhead(record: dict, max_overhead: float = 0.25) -> tuple[bool, str]:
    """Gate the dist backend's coordination cost within ``record``.

    Intra-record like the other overhead gates, but in **absolute
    per-step seconds** rather than a fraction: the sequential run of the
    same trivial DAG timed in the same record is the baseline, and the
    fixed fleet cost (fork, heartbeats, lease/assignment file traffic)
    divided across the DAG's steps must stay under ``max_overhead``
    seconds. Returns ``(ok, message)``; a record without the
    ``dist_overhead`` benchmark passes vacuously.
    """
    if max_overhead < 0:
        raise ValueError("max_overhead must be non-negative")
    entry = record.get("benchmarks", {}).get("dist_overhead")
    if entry is None or "detail" not in entry:
        return True, "dist_overhead benchmark missing from run; skipping gate"
    overhead = float(entry["detail"]["overhead_per_step"])
    message = (
        f"dist_overhead: {entry['seconds']:.3f}s fleet vs "
        f"{entry['detail']['seq_seconds']:.3f}s sequential over "
        f"{entry['detail']['steps']} steps "
        f"({overhead:.3f}s/step, limit {max_overhead:.3f}s/step)"
    )
    return overhead <= max_overhead, message


def check_serve_overhead(record: dict, max_overhead: float = 0.10) -> tuple[bool, str]:
    """Gate the WAL ingest path's durability cost within ``record``.

    Intra-record like the other overhead gates: the plain flat-file
    append and the cold serve refresh timed in the same record are the
    baselines, so machine speed cancels out and the gate prices exactly
    the durability harness — record framing, dedupe bookkeeping, chunk
    hashing, fsync — as a fraction of the recompute one ingest unlocks.
    Returns ``(ok, message)``; a record without the
    ``serve_ingest_overhead`` benchmark passes vacuously.
    """
    if max_overhead < 0:
        raise ValueError("max_overhead must be non-negative")
    entry = record.get("benchmarks", {}).get("serve_ingest_overhead")
    if entry is None or "detail" not in entry:
        return True, "serve_ingest_overhead benchmark missing from run; skipping gate"
    overhead = float(entry["detail"]["overhead"])
    message = (
        f"serve_ingest_overhead: {entry['seconds']:.3f}s WAL ingest vs "
        f"{entry['detail']['plain_seconds']:.3f}s plain append "
        f"over a {entry['detail']['refresh_seconds']:.3f}s refresh "
        f"({overhead:+.1%} of refresh, limit {max_overhead:+.0%})"
    )
    return overhead <= max_overhead, message


def check_metrics_overhead(record: dict, max_overhead: float = 0.03) -> tuple[bool, str]:
    """Gate the serve metrics plane's cost within ``record``.

    Intra-record like the trace-overhead gate it mirrors: the serve
    cycle timed in the same record is the denominator, and the plane's
    directly-timed per-request and per-publish instrumentation is the
    numerator — registry updates on every request, SLO evaluation and
    ring publish on every status write. Returns ``(ok, message)``; a
    record without the ``metrics_overhead`` benchmark passes vacuously.
    """
    if max_overhead < 0:
        raise ValueError("max_overhead must be non-negative")
    entry = record.get("benchmarks", {}).get("metrics_overhead")
    if entry is None or "detail" not in entry:
        return True, "metrics_overhead benchmark missing from run; skipping gate"
    detail = entry["detail"]
    overhead = float(detail["overhead"])
    message = (
        f"metrics_overhead: {float(detail['instrument_seconds']) * 1e3:.2f}ms "
        f"instrumentation per {entry['seconds'] * 1e3:.1f}ms serve cycle "
        f"({detail['request_us']}us/request, {detail['publish_us']}us/publish; "
        f"{overhead:+.1%} overhead, limit {max_overhead:+.0%})"
    )
    return overhead <= max_overhead, message


def check_serve_latency(record: dict, max_p99: float = 0.5) -> tuple[bool, str]:
    """Gate the p99 admission-to-answer latency under concurrent load.

    Absolute rather than relative, like the dist gate: under deadline
    shedding every answer must come off the warm fast path, so the p99
    is bounded by lock handoff and bookkeeping, not by recompute cost.
    Returns ``(ok, message)``; a record without the ``serve_latency``
    benchmark (or one that saw no requests) passes vacuously.
    """
    if max_p99 <= 0:
        raise ValueError("max_p99 must be positive")
    entry = record.get("benchmarks", {}).get("serve_latency")
    if entry is None or "detail" not in entry:
        return True, "serve_latency benchmark missing from run; skipping gate"
    detail = entry["detail"]
    p99 = detail.get("p99")
    if p99 is None:
        return True, "serve_latency recorded no requests; skipping gate"
    message = (
        f"serve_latency: p50 {float(detail.get('p50') or 0.0) * 1e3:.2f}ms / "
        f"p95 {float(detail.get('p95') or 0.0) * 1e3:.2f}ms / "
        f"p99 {float(p99) * 1e3:.2f}ms over {detail.get('requests', 0)} "
        f"request(s) (shed rate {float(detail.get('shed_rate', 0.0)):.0%}, "
        f"p99 limit {max_p99 * 1e3:.0f}ms)"
    )
    return float(p99) <= max_p99, message


def check_scale_sweep(
    record: dict,
    max_exponent: float = 1.35,
    max_rss_exponent: float = 1.2,
) -> tuple[bool, str]:
    """Gate the fitted complexity of the simulate+analysis scale sweep.

    Intra-record like the overhead gates: the sweep's own points are the
    evidence, so machine speed cancels out of the fitted exponents. The
    gate fails when the total (simulate + analysis) wall-time exponent
    exceeds ``max_exponent`` — 1.0 is linear, 2.0 quadratic, so the
    default 1.35 demands clearly sub-quadratic scaling — or when the peak
    RSS exponent exceeds ``max_rss_exponent`` (memory must stay near
    linear in job volume). Returns ``(ok, message)``; a record without
    the ``scale_sweep`` benchmark passes vacuously.
    """
    if max_exponent <= 0 or max_rss_exponent <= 0:
        raise ValueError("exponent limits must be positive")
    entry = record.get("benchmarks", {}).get("scale_sweep")
    if entry is None or "detail" not in entry:
        return True, "scale_sweep benchmark missing from run; skipping gate"
    detail = entry["detail"]
    fit = detail["fit"]
    points = detail["points"]
    total_e = float(fit["total_exponent"])
    rss_e = fit.get("rss_exponent")
    lo, hi = points[0], points[-1]
    span = (
        f"{hi['scale_factor']}x/{lo['scale_factor']}x wall ratio "
        f"{hi['total_seconds'] / max(lo['total_seconds'], 1e-6):.1f}x "
        f"for {hi['jobs'] / max(lo['jobs'], 1):.0f}x jobs"
    )
    message = (
        f"scale_sweep: total exponent {total_e:.3f} (limit {max_exponent}), "
        + (f"rss exponent {float(rss_e):.3f} (limit {max_rss_exponent}), " if rss_e is not None else "")
        + span
    )
    ok = total_e <= max_exponent and (rss_e is None or float(rss_e) <= max_rss_exponent)
    return ok, message


def render_scale_sweep(record: dict) -> str:
    """Human-readable per-point table for a scale-sweep record."""
    entry = record["benchmarks"]["scale_sweep"]
    detail = entry["detail"]
    lines = [
        f"scale sweep [{record['label']}] scale={record['scale']} "
        f"base={detail['base_months']}mo x {detail['base_jobs_per_day']:g}/day "
        f"({record['machine']['platform']})"
    ]
    for p in detail["points"]:
        rss = f"  rss={p['max_rss_kb'] / 1024:8.1f}MB" if "max_rss_kb" in p else ""
        lines.append(
            f"  {p['scale_factor']:>4}x  jobs={p['jobs']:>9}  "
            f"simulate={p['simulate_seconds']:8.3f}s  "
            f"analysis={p['analysis_seconds']:8.3f}s  "
            f"total={p['total_seconds']:8.3f}s{rss}"
        )
    fit = detail["fit"]
    fitted = "  ".join(f"{k.removesuffix('_exponent')}={v:.3f}" for k, v in fit.items())
    lines.append(f"  fitted exponents: {fitted}")
    return "\n".join(lines)


def render_record(record: dict) -> str:
    """Human-readable one-record timing table."""
    lines = [
        f"bench [{record['label']}] scale={record['scale']} "
        f"repeats={record['repeats']} ({record['machine']['platform']})"
    ]
    width = max(len(name) for name in record["benchmarks"])
    for name, entry in record["benchmarks"].items():
        memory = ""
        if "py_peak_kb" in entry:
            memory = f"  {entry['py_peak_kb'] / 1024:7.1f}MB py-peak"
        detail = entry.get("detail")
        suffix = f"  {detail}" if detail else ""
        lines.append(f"  {name:<{width}}  {entry['seconds']:9.3f}s{memory}{suffix}")
    return "\n".join(lines)
