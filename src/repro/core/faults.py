"""Deterministic fault injection for chaos-testing the pipeline.

A :class:`FaultPlan` is a seeded, declarative description of what should go
wrong during a :meth:`repro.core.Pipeline.run`: which steps raise, which
hang, and whose cache entries get corrupted — keyed by step name and
attempt number, so "fail the first attempt, succeed on retry" is one line.
The plan is pure data plus counters; it never mutates step functions, and
it fires in the coordinating process only (never inside pool workers), so
attempt accounting is exact in every executor mode and the plan needs no
cross-process state.

Determinism is the point: the chaos suite runs the same plan twice and
asserts byte-identical artifacts, and :meth:`FaultPlan.random` derives its
step choices from a seed so a failing chaos run reproduces exactly.

Usage::

    plan = FaultPlan.transient_errors(["survey", "schedule"])   # 1st attempt fails
    pipeline.run(fault_plan=plan)                               # retries recover
    assert pipeline.last_report.retried == ("schedule", "survey")
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.pipeline import ArtifactCache

__all__ = ["FaultKind", "FaultSpec", "FaultPlan", "FaultEvent", "InjectedFault"]

#: Supported fault kinds: raise an exception, stall the attempt, or
#: corrupt the step's published cache entry.
FaultKind = ("error", "hang", "corrupt_cache")


class InjectedFault(RuntimeError):
    """The exception raised by ``kind="error"`` faults.

    A plain ``Exception`` subclass, so the default
    :class:`~repro.core.pipeline.RetryPolicy` filter retries it.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault.

    Attributes
    ----------
    step:
        Name of the pipeline step to sabotage.
    kind:
        ``"error"`` raises :class:`InjectedFault` before the attempt's
        compute; ``"hang"`` sleeps ``hang_seconds`` before the compute
        (cooperatively capped at the step's remaining deadline, so timeout
        tests finish in ~timeout seconds, not ~hang seconds);
        ``"corrupt_cache"`` overwrites the step's cache entry with garbage
        bytes *after* it is published, so the next reader exercises the
        evict-and-recompute path.
    attempts:
        1-based attempt numbers the fault fires on. The default ``(1,)``
        is a transient fault (first attempt only — a retry recovers);
        ``()`` means every attempt (a permanent fault).
    hang_seconds:
        Stall duration for ``kind="hang"``.
    blob:
        Garbage bytes written by ``kind="corrupt_cache"``.
    """

    step: str
    kind: str = "error"
    attempts: tuple[int, ...] = (1,)
    hang_seconds: float = 0.0
    blob: bytes = b"\x80repro-injected-corruption"

    def __post_init__(self) -> None:
        if self.kind not in FaultKind:
            raise ValueError(f"unknown fault kind {self.kind!r}; expected one of {FaultKind}")
        if self.hang_seconds < 0:
            raise ValueError(f"hang_seconds must be non-negative, got {self.hang_seconds}")
        if any(a < 1 for a in self.attempts):
            raise ValueError(f"attempt numbers are 1-based, got {self.attempts}")

    def fires_on(self, attempt: int) -> bool:
        return not self.attempts or attempt in self.attempts


@dataclass(frozen=True)
class FaultEvent:
    """One fault that actually fired (for chaos-suite assertions)."""

    step: str
    kind: str
    attempt: int


class FaultPlan:
    """A seeded set of :class:`FaultSpec`\\ s with thread-safe firing.

    Pass an instance as ``Pipeline.run(fault_plan=...)``. The pipeline
    calls :meth:`fire` at the top of every attempt and
    :meth:`corrupt_cache` after every successful compute; both are no-ops
    for steps the plan does not name, so an empty plan is observationally
    identical to no plan (the chaos suite's byte-identity check relies on
    this).
    """

    def __init__(self, specs: Iterable[FaultSpec] = (), seed: int = 0) -> None:
        self.specs: tuple[FaultSpec, ...] = tuple(specs)
        self.seed = seed
        self._lock = threading.Lock()
        self._events: list[FaultEvent] = []

    # -- construction helpers -------------------------------------------------

    @classmethod
    def transient_errors(
        cls, steps: Sequence[str], failures_per_step: int = 1, seed: int = 0
    ) -> "FaultPlan":
        """Fail the first ``failures_per_step`` attempts of every named step.

        With a :class:`~repro.core.pipeline.RetryPolicy` allowing at least
        ``failures_per_step + 1`` attempts, a run under this plan must
        fully recover.
        """
        if failures_per_step < 1:
            raise ValueError(f"failures_per_step must be >= 1, got {failures_per_step}")
        specs = [
            FaultSpec(step=name, kind="error", attempts=tuple(range(1, failures_per_step + 1)))
            for name in steps
        ]
        return cls(specs, seed=seed)

    @classmethod
    def random(
        cls,
        steps: Sequence[str],
        seed: int,
        rate: float = 0.5,
        kind: str = "error",
        failures_per_step: int = 1,
    ) -> "FaultPlan":
        """Seeded random subset of ``steps`` gets a transient fault.

        The subset is a pure function of ``(steps, seed, rate)``; the same
        seed always sabotages the same steps.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        rng = random.Random(seed)
        specs = [
            FaultSpec(step=name, kind=kind, attempts=tuple(range(1, failures_per_step + 1)))
            for name in steps
            if rng.random() < rate
        ]
        return cls(specs, seed=seed)

    # -- firing ---------------------------------------------------------------

    def _matching(self, step: str, *kinds: str) -> list[FaultSpec]:
        return [s for s in self.specs if s.step == step and s.kind in kinds]

    def _record(self, step: str, kind: str, attempt: int) -> None:
        with self._lock:
            self._events.append(FaultEvent(step, kind, attempt))

    def fire(self, step: str, attempt: int, remaining: float | None = None) -> None:
        """Inject this attempt's error/hang faults (called by the pipeline).

        ``remaining`` is the seconds left before the step's deadline (None
        when the step has no timeout); hangs sleep slightly past it so the
        deadline check trips without stalling the suite for the full
        configured hang.
        """
        for spec in self._matching(step, "hang"):
            if not spec.fires_on(attempt):
                continue
            sleep_for = spec.hang_seconds
            if remaining is not None:
                sleep_for = min(sleep_for, max(remaining, 0.0) + 0.02)
            self._record(step, "hang", attempt)
            time.sleep(sleep_for)
        for spec in self._matching(step, "error"):
            if not spec.fires_on(attempt):
                continue
            self._record(step, "error", attempt)
            raise InjectedFault(
                f"injected fault in step {step!r} (attempt {attempt})"
            )

    def corrupt_cache(self, cache: "ArtifactCache", step: str, key: str) -> None:
        """Corrupt ``step``'s freshly-published cache entry, if planned.

        Fired once per successful compute of the step; the entry's bytes
        become unpicklable garbage, which the cache treats as a miss and
        evicts on the next read.
        """
        for spec in self._matching(step, "corrupt_cache"):
            with self._lock:
                fired = sum(
                    1 for e in self._events if e.step == step and e.kind == "corrupt_cache"
                )
            if not spec.fires_on(fired + 1):
                continue
            if cache.corrupt_entry(key, spec.blob):
                self._record(step, "corrupt_cache", fired + 1)

    # -- inspection -----------------------------------------------------------

    @property
    def events(self) -> tuple[FaultEvent, ...]:
        """Every fault that fired, in firing order."""
        with self._lock:
            return tuple(self._events)

    def fired(self, step: str, kind: str | None = None) -> int:
        """How many faults fired for ``step`` (optionally of one kind)."""
        with self._lock:
            return sum(
                1
                for e in self._events
                if e.step == step and (kind is None or e.kind == kind)
            )

    def reset(self) -> None:
        """Forget fired events (counters restart; specs are unchanged)."""
        with self._lock:
            self._events.clear()
