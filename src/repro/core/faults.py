"""Deterministic fault injection for chaos-testing the pipeline.

A :class:`FaultPlan` is a seeded, declarative description of what should go
wrong during a :meth:`repro.core.Pipeline.run`: which steps raise, which
hang, and whose cache entries get corrupted — keyed by step name and
attempt number, so "fail the first attempt, succeed on retry" is one line.
The plan is pure data plus counters; it never mutates step functions, and
it fires in the coordinating process only (never inside pool workers), so
attempt accounting is exact in every executor mode and the plan needs no
cross-process state.

Determinism is the point: the chaos suite runs the same plan twice and
asserts byte-identical artifacts, and :meth:`FaultPlan.random` derives its
step choices from a seed so a failing chaos run reproduces exactly.

Usage::

    plan = FaultPlan.transient_errors(["survey", "schedule"])   # 1st attempt fails
    pipeline.run(fault_plan=plan)                               # retries recover
    assert pipeline.last_report.retried == ("schedule", "survey")
"""

from __future__ import annotations

import multiprocessing
import os
import random
import signal
import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping, Sequence

from repro.core.journal import RunJournal, new_run_id
from repro.core.trace import instant as trace_instant

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.pipeline import ArtifactCache, Pipeline

__all__ = [
    "FaultKind",
    "FaultSpec",
    "FaultPlan",
    "FaultEvent",
    "InjectedFault",
    "CrashPoint",
    "JournalKillSwitch",
    "JournalDiskFull",
    "crash_coordinates",
    "run_until_crash",
    "resume_after_crash",
    "WorkerKill",
    "WorkerHang",
    "WorkerPartition",
    "WorkerFaultPlan",
    "worker_crash_coordinates",
    "IngestCrashPoint",
    "WALKillSwitch",
    "WALDiskFull",
    "PoisonRows",
    "SkewedClock",
    "ingest_crash_coordinates",
    "serve_crash_coordinates",
]

#: Supported fault kinds: raise an exception, stall the attempt, corrupt
#: the step's published cache entry, or fail the entry's cache write with
#: ``ENOSPC`` (disk exhaustion — the value computes but never persists).
FaultKind = ("error", "hang", "corrupt_cache", "enospc")


class InjectedFault(RuntimeError):
    """The exception raised by ``kind="error"`` faults.

    A plain ``Exception`` subclass, so the default
    :class:`~repro.core.pipeline.RetryPolicy` filter retries it.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault.

    Attributes
    ----------
    step:
        Name of the pipeline step to sabotage.
    kind:
        ``"error"`` raises :class:`InjectedFault` before the attempt's
        compute; ``"hang"`` sleeps ``hang_seconds`` before the compute
        (cooperatively capped at the step's remaining deadline, so timeout
        tests finish in ~timeout seconds, not ~hang seconds);
        ``"corrupt_cache"`` overwrites the step's cache entry with garbage
        bytes *after* it is published, so the next reader exercises the
        evict-and-recompute path; ``"enospc"`` arms an injected
        disk-exhaustion failure for the step's cache write (the value
        computes but never persists, and the run continues with a
        ``cache_unavailable`` outcome flag).
    attempts:
        1-based attempt numbers the fault fires on. The default ``(1,)``
        is a transient fault (first attempt only — a retry recovers);
        ``()`` means every attempt (a permanent fault).
    hang_seconds:
        Stall duration for ``kind="hang"``.
    blob:
        Garbage bytes written by ``kind="corrupt_cache"``.
    """

    step: str
    kind: str = "error"
    attempts: tuple[int, ...] = (1,)
    hang_seconds: float = 0.0
    blob: bytes = b"\x80repro-injected-corruption"

    def __post_init__(self) -> None:
        if self.kind not in FaultKind:
            raise ValueError(f"unknown fault kind {self.kind!r}; expected one of {FaultKind}")
        if self.hang_seconds < 0:
            raise ValueError(f"hang_seconds must be non-negative, got {self.hang_seconds}")
        if any(a < 1 for a in self.attempts):
            raise ValueError(f"attempt numbers are 1-based, got {self.attempts}")

    def fires_on(self, attempt: int) -> bool:
        return not self.attempts or attempt in self.attempts


@dataclass(frozen=True)
class FaultEvent:
    """One fault that actually fired (for chaos-suite assertions)."""

    step: str
    kind: str
    attempt: int


class FaultPlan:
    """A seeded set of :class:`FaultSpec`\\ s with thread-safe firing.

    Pass an instance as ``Pipeline.run(fault_plan=...)``. The pipeline
    calls :meth:`fire` at the top of every attempt and
    :meth:`corrupt_cache` after every successful compute; both are no-ops
    for steps the plan does not name, so an empty plan is observationally
    identical to no plan (the chaos suite's byte-identity check relies on
    this).
    """

    def __init__(self, specs: Iterable[FaultSpec] = (), seed: int = 0) -> None:
        self.specs: tuple[FaultSpec, ...] = tuple(specs)
        self.seed = seed
        self._lock = threading.Lock()
        self._events: list[FaultEvent] = []

    # -- construction helpers -------------------------------------------------

    @classmethod
    def transient_errors(
        cls, steps: Sequence[str], failures_per_step: int = 1, seed: int = 0
    ) -> "FaultPlan":
        """Fail the first ``failures_per_step`` attempts of every named step.

        With a :class:`~repro.core.pipeline.RetryPolicy` allowing at least
        ``failures_per_step + 1`` attempts, a run under this plan must
        fully recover.
        """
        if failures_per_step < 1:
            raise ValueError(f"failures_per_step must be >= 1, got {failures_per_step}")
        specs = [
            FaultSpec(step=name, kind="error", attempts=tuple(range(1, failures_per_step + 1)))
            for name in steps
        ]
        return cls(specs, seed=seed)

    @classmethod
    def random(
        cls,
        steps: Sequence[str],
        seed: int,
        rate: float = 0.5,
        kind: str = "error",
        failures_per_step: int = 1,
    ) -> "FaultPlan":
        """Seeded random subset of ``steps`` gets a transient fault.

        The subset is a pure function of ``(steps, seed, rate)``; the same
        seed always sabotages the same steps.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        rng = random.Random(seed)
        specs = [
            FaultSpec(step=name, kind=kind, attempts=tuple(range(1, failures_per_step + 1)))
            for name in steps
            if rng.random() < rate
        ]
        return cls(specs, seed=seed)

    # -- firing ---------------------------------------------------------------

    def _matching(self, step: str, *kinds: str) -> list[FaultSpec]:
        return [s for s in self.specs if s.step == step and s.kind in kinds]

    def _record(self, step: str, kind: str, attempt: int) -> None:
        with self._lock:
            self._events.append(FaultEvent(step, kind, attempt))
        # Every firing (error/hang/corrupt_cache/enospc) goes through here,
        # so the ambient trace sees each injected fault as one instant.
        trace_instant("fault.fired", "fault", step=step, kind=kind, attempt=attempt)

    def fire(self, step: str, attempt: int, remaining: float | None = None) -> None:
        """Inject this attempt's error/hang faults (called by the pipeline).

        ``remaining`` is the seconds left before the step's deadline (None
        when the step has no timeout); hangs sleep slightly past it so the
        deadline check trips without stalling the suite for the full
        configured hang.
        """
        for spec in self._matching(step, "hang"):
            if not spec.fires_on(attempt):
                continue
            sleep_for = spec.hang_seconds
            if remaining is not None:
                sleep_for = min(sleep_for, max(remaining, 0.0) + 0.02)
            self._record(step, "hang", attempt)
            time.sleep(sleep_for)
        for spec in self._matching(step, "error"):
            if not spec.fires_on(attempt):
                continue
            self._record(step, "error", attempt)
            raise InjectedFault(
                f"injected fault in step {step!r} (attempt {attempt})"
            )

    def corrupt_cache(self, cache: "ArtifactCache", step: str, key: str) -> None:
        """Corrupt ``step``'s freshly-published cache entry, if planned.

        Fired once per successful compute of the step; the entry's bytes
        become unpicklable garbage, which the cache treats as a miss and
        evicts on the next read.
        """
        for spec in self._matching(step, "corrupt_cache"):
            with self._lock:
                fired = sum(
                    1 for e in self._events if e.step == step and e.kind == "corrupt_cache"
                )
            if not spec.fires_on(fired + 1):
                continue
            if cache.corrupt_entry(key, spec.blob):
                self._record(step, "corrupt_cache", fired + 1)

    def arm_enospc(
        self,
        cache: "ArtifactCache",
        step: str,
        key: str,
        *,
        will_compute: bool = True,
    ) -> bool:
        """Arm a one-shot disk-full failure for ``step``'s cache write.

        Called by the pipeline just before it resolves a step.
        ``will_compute`` is False when the step is expected to come from
        the cache — an armed failure would then dangle and hit some
        unrelated later write, so nothing is armed. Returns True when a
        failure was armed (the pipeline disarms it if a concurrent flight
        published first).
        """
        if not will_compute:
            return False
        for spec in self._matching(step, "enospc"):
            with self._lock:
                fired = sum(
                    1 for e in self._events if e.step == step and e.kind == "enospc"
                )
            if not spec.fires_on(fired + 1):
                continue
            cache.inject_put_failure(key)
            self._record(step, "enospc", fired + 1)
            return True
        return False

    # -- inspection -----------------------------------------------------------

    @property
    def events(self) -> tuple[FaultEvent, ...]:
        """Every fault that fired, in firing order."""
        with self._lock:
            return tuple(self._events)

    def fired(self, step: str, kind: str | None = None) -> int:
        """How many faults fired for ``step`` (optionally of one kind)."""
        with self._lock:
            return sum(
                1
                for e in self._events
                if e.step == step and (kind is None or e.kind == kind)
            )

    def reset(self) -> None:
        """Forget fired events (counters restart; specs are unchanged)."""
        with self._lock:
            self._events.clear()


# -- process-level chaos: crash-and-resume harness ----------------------------


@dataclass(frozen=True)
class CrashPoint:
    """One seeded (step, event) crash coordinate for the SIGKILL harness.

    Attributes
    ----------
    step:
        Step name whose journal record triggers the crash; ``None``
        matches the run-level records (``run_start``/``run_end``).
    event:
        Journal event name to crash on (``"step_start"``,
        ``"step_done"``, ``"run_start"``, ``"run_end"``).
    mode:
        Where in the record write the SIGKILL lands: ``"before"`` (record
        never written — the step looks in-flight), ``"torn"`` (half the
        record's bytes hit the file — a torn tail the reader must drop),
        or ``"after"`` (record fully written — the step looks complete).
    """

    step: str | None
    event: str = "step_done"
    mode: str = "after"

    def __post_init__(self) -> None:
        if self.mode not in ("before", "torn", "after"):
            raise ValueError(f"unknown crash mode {self.mode!r}")


class JournalKillSwitch:
    """A :attr:`RunJournal.chaos` hook that SIGKILLs at a :class:`CrashPoint`.

    Installed on the child process's journal by :func:`run_until_crash`.
    On the first record matching the crash point it writes zero, half, or
    all of the record's bytes (per ``mode``), fsyncs what it wrote so the
    torn state is exactly what a power-lossy crash would leave, then
    delivers ``SIGKILL`` to its own process — no cleanup handlers run,
    exactly like a preemption or OOM kill.
    """

    def __init__(self, point: CrashPoint) -> None:
        self.point = point

    def __call__(
        self, event: str, step: str | None, data: bytes, fd: int
    ) -> bool:  # pragma: no cover - ends in SIGKILL, untraceable by coverage
        p = self.point
        if event != p.event or step != p.step:
            return False
        if p.mode == "torn":
            os.write(fd, data[: max(1, len(data) // 2)])
            os.fsync(fd)
        elif p.mode == "after":
            os.write(fd, data)
            os.fsync(fd)
        os.kill(os.getpid(), signal.SIGKILL)
        return True  # unreachable


class JournalDiskFull:
    """A :attr:`RunJournal.chaos` hook simulating journal disk exhaustion.

    Raises an injected ``ENOSPC`` once ``after_records`` records have been
    written; the journal must degrade (``unavailable``) and the run must
    continue.
    """

    def __init__(self, after_records: int = 0) -> None:
        self.after_records = after_records
        self.seen = 0

    def __call__(self, event: str, step: str | None, data: bytes, fd: int) -> bool:
        if self.seen >= self.after_records:
            raise OSError(28, "injected: no space left on device (journal)")
        self.seen += 1
        return False


def crash_coordinates(
    step_names: Sequence[str],
    events: Sequence[str] = ("step_start", "step_done"),
    modes: Sequence[str] = ("before", "torn", "after"),
) -> list[CrashPoint]:
    """The full crash matrix the chaos suite sweeps: every (step, event,
    mode) coordinate, in deterministic order."""
    return [
        CrashPoint(step=name, event=event, mode=mode)
        for name in step_names
        for event in events
        for mode in modes
    ]


def _crash_child(
    factory: Callable[[], "Pipeline"],
    journal_dir: str,
    run_id: str,
    point: CrashPoint,
    run_kwargs: dict,
) -> None:  # pragma: no cover - the child is SIGKILLed mid-run
    # Own process group, so the parent can sweep any pool workers this
    # child forks: SIGKILLing the child orphans them mid-task, and an
    # orphaned worker never exits on its own.
    os.setpgrp()
    pipeline = factory()
    journal = RunJournal.open(journal_dir, run_id)
    journal.chaos = JournalKillSwitch(point)
    try:
        pipeline.run(journal=journal, **run_kwargs)
    finally:
        journal.close()


def run_until_crash(
    factory: Callable[[], "Pipeline"],
    journal_dir: str | os.PathLike,
    point: CrashPoint,
    *,
    run_id: str | None = None,
    run_kwargs: Mapping[str, Any] | None = None,
    timeout: float = 60.0,
) -> tuple[str, int | None]:
    """Run ``factory()``'s pipeline in a child process killed at ``point``.

    The child journals to ``journal_dir`` under ``run_id`` with a
    :class:`JournalKillSwitch` installed, so it SIGKILLs itself at the
    requested (step, event, mode) coordinate. Returns ``(run_id,
    exitcode)`` — ``-signal.SIGKILL`` when the crash fired, ``0`` when the
    coordinate never matched (e.g. the step was already cached and its
    ``step_start`` never happened... which still lets the caller resume
    and assert byte-identity).

    Uses the ``fork`` start method so ``factory`` may be any closure (no
    pickling); the caller's test must therefore build process-mode
    pipelines *inside* the factory, not share pools across the fork.
    """
    ctx = multiprocessing.get_context("fork")
    rid = run_id if run_id is not None else new_run_id()
    proc = ctx.Process(
        target=_crash_child,
        args=(factory, str(journal_dir), rid, point, dict(run_kwargs or {})),
        daemon=False,
    )
    proc.start()
    # Reap by polling waitpid, not Process.join(): pool workers forked by
    # the child inherit its multiprocessing sentinel pipe, so after the
    # SIGKILL the sentinel stays open (held by orphans) and a sentinel-
    # based join would block for the whole timeout.
    deadline = time.monotonic() + timeout
    while proc.exitcode is None and time.monotonic() < deadline:
        time.sleep(0.01)
    if proc.exitcode is None:  # pragma: no cover - hung child safety net
        proc.kill()
        proc.join(5.0)
    try:  # sweep orphaned pool workers left in the child's process group
        os.killpg(proc.pid, signal.SIGKILL)
    except (ProcessLookupError, PermissionError, OSError):
        pass
    return rid, proc.exitcode


def resume_after_crash(
    pipeline: "Pipeline",
    journal_dir: str | os.PathLike,
    run_id: str,
    *,
    run_kwargs: Mapping[str, Any] | None = None,
) -> dict:
    """Resume a crashed (journaled) run in the current process.

    The standard second half of the :func:`run_until_crash` dance: load
    the killed run's resume state, open a fresh journal segment under the
    same run id, and re-run the pipeline with replay enabled. Returns the
    pipeline's results dict. The pair of helpers keeps the crash-resume
    protocol in one place so the chaos tests, the audit runner, and the
    CLI cannot drift apart on journal/run-id plumbing.
    """
    from repro.core.journal import load_resume_state

    resume = load_resume_state(journal_dir, run_id)
    journal = RunJournal.open(journal_dir, run_id)
    try:
        return pipeline.run(journal=journal, resume=resume, **dict(run_kwargs or {}))
    finally:
        journal.close()


# -- worker-level chaos (fleet mode) -------------------------------------------
#
# The coordinator-side FaultPlan above cannot reach a dist run: faults must
# fire *inside a worker process*, possibly on another host, and the whole
# point of the fleet chaos matrix is killing whole workers rather than
# failing attempts. Worker chaos therefore follows the CrashPoint pattern
# (SIGKILL at a (step, event) coordinate) but rides the run directory: a
# WorkerFaultPlan is pickled into the run spec, bound per worker at start,
# and claims cross-process firing slots via O_CREAT|O_EXCL marker files so
# "kill N distinct workers on this step" needs no shared memory.

#: Worker-side fault coordinates, mirroring repro.dist.worker.WORKER_EVENTS.
WorkerEvent = ("task_start", "before_publish", "after_publish", "after_result")


@dataclass(frozen=True)
class WorkerKill:
    """SIGKILL the executing worker at a (step, event) coordinate.

    ``count`` bounds total firings across the whole fleet (claimed via
    marker files): ``count=1`` is the kill-matrix case (one worker dies,
    the lease expires, a survivor takes over), while ``count >=
    poison_threshold`` drives the same step through enough distinct
    workers to get it quarantined as poisoned.
    """

    step: str
    event: str = "task_start"
    count: int = 1

    def __post_init__(self) -> None:
        if self.event not in WorkerEvent:
            raise ValueError(f"unknown worker event {self.event!r}; expected one of {WorkerEvent}")
        if self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")

    def fire(self, bound: "BoundWorkerChaos") -> None:  # pragma: no cover - SIGKILL
        os.kill(os.getpid(), signal.SIGKILL)


@dataclass(frozen=True)
class WorkerHang:
    """Stall the executing worker while its heartbeats keep flowing.

    The classic straggler: the lease never expires (the worker is alive
    and beating), so only the speculation deadline can rescue the step —
    a speculative twin computes it, publishes first, and the woken
    straggler observes the published value and stands down.
    """

    step: str
    seconds: float = 1.0
    event: str = "task_start"
    count: int = 1

    def __post_init__(self) -> None:
        if self.event not in WorkerEvent:
            raise ValueError(f"unknown worker event {self.event!r}; expected one of {WorkerEvent}")
        if self.seconds < 0:
            raise ValueError(f"seconds must be non-negative, got {self.seconds}")
        if self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")

    def fire(self, bound: "BoundWorkerChaos") -> None:
        time.sleep(self.seconds)


@dataclass(frozen=True)
class WorkerPartition:
    """Stop heartbeating but keep computing — the split-brain case.

    The coordinator sees a dead worker (counter frozen past the lease
    ttl), expires the lease, and reassigns the step under a bumped epoch
    — while the partitioned worker, alive and oblivious, races its own
    replacement to the publish. Lease fencing must win: the stale worker's
    pre-publish fence check observes the bumped epoch and discards its
    value. ``delay`` holds the compute back long enough for the ttl to
    actually expire (set it above the fleet's ``lease_ttl``).
    """

    step: str
    delay: float = 0.0
    event: str = "task_start"
    count: int = 1

    def __post_init__(self) -> None:
        if self.event not in WorkerEvent:
            raise ValueError(f"unknown worker event {self.event!r}; expected one of {WorkerEvent}")
        if self.delay < 0:
            raise ValueError(f"delay must be non-negative, got {self.delay}")
        if self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")

    def fire(self, bound: "BoundWorkerChaos") -> None:
        if bound.heartbeat is not None:
            bound.heartbeat.pause()
        if self.delay:
            time.sleep(self.delay)


@dataclass(frozen=True)
class WorkerFaultPlan:
    """Declarative worker chaos for one dist run.

    Pickled into the run spec by the coordinator and bound per worker
    process at startup (:meth:`bind`). Firing slots are claimed through
    ``chaos/<spec>.<slot>`` marker files created ``O_CREAT|O_EXCL`` in the
    run directory, so each spec fires exactly ``count`` times fleet-wide
    no matter how many workers race for the coordinate — deterministic
    chaos without any cross-process channel beyond the shared filesystem.
    """

    specs: tuple = ()

    def __init__(self, specs: Iterable[Any] = ()) -> None:
        object.__setattr__(self, "specs", tuple(specs))

    def bind(self, run_dir: Any, worker_id: str, heartbeat: Any = None) -> "BoundWorkerChaos":
        return BoundWorkerChaos(self, run_dir, worker_id, heartbeat)


class BoundWorkerChaos:
    """One worker's live view of a :class:`WorkerFaultPlan`."""

    def __init__(self, plan: WorkerFaultPlan, run_dir: Any, worker_id: str, heartbeat: Any) -> None:
        self.plan = plan
        self.run_dir = run_dir
        self.worker_id = worker_id
        self.heartbeat = heartbeat

    def _claim(self, index: int, count: int) -> bool:
        """Claim one fleet-wide firing slot for spec ``index``; False when
        all ``count`` slots are spent."""
        chaos_dir = os.path.join(str(self.run_dir), "chaos")
        os.makedirs(chaos_dir, exist_ok=True)
        for slot in range(count):
            try:
                fd = os.open(
                    os.path.join(chaos_dir, f"{index}.{slot}"),
                    os.O_CREAT | os.O_EXCL | os.O_WRONLY,
                    0o644,
                )
            except FileExistsError:
                continue
            os.write(fd, f"{self.worker_id}\n".encode())
            os.close(fd)
            return True
        return False

    def fire(self, step: str, event: str) -> None:
        for index, spec in enumerate(self.plan.specs):
            if spec.step != step or spec.event != event:
                continue
            if not self._claim(index, spec.count):
                continue
            trace_instant(
                "fault.fired", "fault", step=step, kind=type(spec).__name__,
                worker=self.worker_id,
            )
            spec.fire(self)


def worker_crash_coordinates(
    step_names: Sequence[str],
    events: Sequence[str] = WorkerEvent,
) -> list[WorkerKill]:
    """The dist kill matrix: SIGKILL one worker at every (step, event)
    coordinate, in deterministic order (mirrors :func:`crash_coordinates`)."""
    return [
        WorkerKill(step=name, event=event)
        for name in step_names
        for event in events
    ]


# -- serve-side chaos: kill-mid-ingest, poison rows, clock skew ----------------
#
# The serve chaos matrix has two process-death surfaces the batch matrix
# does not: dying while *appending to the ingest WAL* (the row may be
# unwritten, torn, or fully durable-but-unacked) and dying while
# *recomputing* (covered by the existing CrashPoint/JournalKillSwitch —
# the service's refresh journals through the same RunJournal). The hooks
# below cover the first surface plus the two non-crash serve coordinates
# from the issue: poison rows and clock skew.


@dataclass(frozen=True)
class IngestCrashPoint:
    """One (kind, row, mode) kill-mid-ingest coordinate.

    Attributes
    ----------
    kind:
        WAL feed the crash rides (``"responses"`` / ``"sacct"``); ``None``
        matches any feed.
    row:
        0-based index of the matching record write to crash on, counted
        across the WAL's lifetime in the crashing process.
    mode:
        ``"before"`` (the row never reaches the log), ``"torn"`` (half its
        bytes land — the healed tail on restart), ``"after"`` (the row is
        durable but the ack never made it back to the client — the batch
        dedupe must absorb the re-send).
    """

    kind: str | None = None
    row: int = 0
    mode: str = "after"

    def __post_init__(self) -> None:
        if self.mode not in ("before", "torn", "after"):
            raise ValueError(f"unknown crash mode {self.mode!r}")
        if self.row < 0:
            raise ValueError(f"row must be >= 0, got {self.row}")


class WALKillSwitch:
    """An :attr:`IngestWAL.chaos` hook that SIGKILLs at an :class:`IngestCrashPoint`.

    The ingest-side twin of :class:`JournalKillSwitch`: on the matching
    record write it leaves zero, half, or all of the record's bytes in
    the segment (fsynced, so the file state is exactly what power loss
    would leave) and SIGKILLs its own process. The serve chaos tests
    restart the service afterwards and assert it converges to artifacts
    byte-identical to a clean rebuild of the same rows.
    """

    def __init__(self, point: IngestCrashPoint) -> None:
        self.point = point
        self.seen = 0

    def __call__(
        self, kind: str, data: bytes, fd: int
    ) -> bool:  # pragma: no cover - ends in SIGKILL, untraceable by coverage
        p = self.point
        if p.kind is not None and kind != p.kind:
            return False
        matched = self.seen == p.row
        self.seen += 1
        if not matched:
            return False
        if p.mode == "torn":
            os.write(fd, data[: max(1, len(data) // 2)])
            os.fsync(fd)
        elif p.mode == "after":
            os.write(fd, data)
            os.fsync(fd)
        os.kill(os.getpid(), signal.SIGKILL)
        return True  # unreachable


class WALDiskFull:
    """An :attr:`IngestWAL.chaos` hook simulating ingest disk exhaustion.

    Raises an injected ``ENOSPC`` once ``after_records`` record writes
    have happened; the WAL must disable itself and the service must
    degrade to read-only serving (rows refused, requests answered STALE)
    instead of dying — the satellite-3 ENOSPC ladder.
    """

    def __init__(self, after_records: int = 0) -> None:
        self.after_records = after_records
        self.seen = 0

    def __call__(self, kind: str, data: bytes, fd: int) -> bool:
        if self.seen >= self.after_records:
            raise OSError(28, "injected: no space left on device (ingest WAL)")
        self.seen += 1
        return False


@dataclass(frozen=True)
class PoisonRows:
    """Deterministic malformed rows for the poison-row coordinate.

    Not a hook — a tiny factory for the garbage the serve chaos tests
    append: syntactically broken (torn JSON / wrong column count) rows
    that the tolerant readers must *skip* (surfacing ``SkippedRow``
    instants), never letting them fail the feed subtree.
    """

    count: int = 3
    seed: int = 0

    def rows(self, kind: str) -> list[str]:
        rng = random.Random(f"{self.seed}:{kind}")
        out = []
        for i in range(self.count):
            if kind == "responses":
                out.append('{"respondent_id": "poison-%d", "truncated' % i)
            else:
                out.append("|".join(str(rng.randrange(10)) for _ in range(3)))
        return out


class SkewedClock:
    """A monotonic-ish clock whose readings jump at chosen call counts.

    ``StudyService`` takes an injectable ``clock`` for exactly this
    coordinate: staleness/uptime numbers must stay finite and
    non-negative, and breaker cooldowns must be unaffected (they count
    refresh *cycles*, not seconds), even when the clock leaps forward or
    *backwards* mid-flight. ``jumps`` maps the 0-based call number to an
    offset (seconds, may be negative) applied from that call on.
    """

    def __init__(
        self,
        base: Callable[[], float] = time.monotonic,
        jumps: Mapping[int, float] | None = None,
    ) -> None:
        self.base = base
        self.jumps = dict(jumps or {})
        self.calls = 0
        self._offset = 0.0
        self._lock = threading.Lock()

    def __call__(self) -> float:
        with self._lock:
            if self.calls in self.jumps:
                self._offset += self.jumps[self.calls]
            self.calls += 1
            return self.base() + self._offset


def ingest_crash_coordinates(
    kinds: Sequence[str] = ("responses", "sacct"),
    rows: Sequence[int] = (0,),
    modes: Sequence[str] = ("before", "torn", "after"),
) -> list[IngestCrashPoint]:
    """The kill-mid-ingest matrix: every (kind, row, mode) coordinate."""
    return [
        IngestCrashPoint(kind=kind, row=row, mode=mode)
        for kind in kinds
        for row in rows
        for mode in modes
    ]


def serve_crash_coordinates(
    step_names: Sequence[str],
    events: Sequence[str] = ("step_start", "step_done"),
    modes: Sequence[str] = ("before", "torn", "after"),
) -> list[CrashPoint]:
    """The kill-mid-recompute matrix for a serve refresh.

    Identical to :func:`crash_coordinates` (the refresh journals through
    the same :class:`~repro.core.journal.RunJournal`); aliased so the
    serve chaos suite names its half of the matrix explicitly.
    """
    return crash_coordinates(step_names, events, modes)
