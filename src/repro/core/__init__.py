"""Core of the reproduction: the study itself.

* :mod:`repro.core.instrument` — the reconstructed questionnaire both waves
  answer;
* :mod:`repro.core.calibration` — 2011/2024 cohort profiles encoding the
  predecessor study's marginals and the 2024 "trends" targets;
* :mod:`repro.core.study` — :class:`Study`, binding instrument, responses and
  cluster telemetry for analysis;
* :mod:`repro.core.trends` — cohort-over-cohort trend engine;
* :mod:`repro.core.pipeline` — reproducible generate/validate/analyze
  dependency DAG with content-addressed artifact caching and parallel
  (thread/process pool) execution;
* :mod:`repro.core.metrics` — executor instrumentation
  (:class:`ExecutorMetrics`, :class:`RunReport`) shared by the pipeline and
  the report fan-out;
* :mod:`repro.core.faults` — deterministic fault injection
  (:class:`FaultPlan`) and the process-crash harness for chaos-testing the
  pipeline;
* :mod:`repro.core.journal` — durable run journal (:class:`RunJournal`)
  and resume-after-crash state (:class:`ResumeState`);
* :mod:`repro.core.trace` — span/event tracing (:class:`Tracer`),
  Chrome/Perfetto + Prometheus export, and DAG critical-path analysis;
* :mod:`repro.core.logging` — run-id-tagged structured CLI logging.
"""

from repro.core.instrument import build_instrument
from repro.core.calibration import (
    BASELINE_2011,
    TARGETS_2024,
    population_field_shares,
    profile_2011,
    profile_2024,
)
from repro.core.study import Study, StudyError, build_default_study
from repro.core.trends import TrendEngine, TrendRow, TrendTable
from repro.core.weighting import WeightedTrendEngine, make_cohort_weights
from repro.core.faults import (
    CrashPoint,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    WorkerFaultPlan,
    WorkerHang,
    WorkerKill,
    WorkerPartition,
    worker_crash_coordinates,
)
from repro.core.journal import (
    JournalError,
    ResumeState,
    RunJournal,
    latest_run_id,
    load_resume_state,
    new_run_id,
    read_journal,
)
from repro.core.metrics import ExecutorMetrics, RunReport, StepMetric, StepOutcome
from repro.core.pipeline import (
    ArtifactCache,
    Pipeline,
    PipelineStep,
    RetryPolicy,
    StepTimeout,
)
from repro.core.study_pipeline import run_cached_study, study_pipeline
from repro.core.trace import (
    CriticalPathResult,
    CriticalStep,
    TraceError,
    Tracer,
    analyze_perfetto,
    critical_path,
    load_perfetto,
    validate_perfetto,
)

__all__ = [
    "build_instrument",
    "profile_2011",
    "profile_2024",
    "BASELINE_2011",
    "TARGETS_2024",
    "population_field_shares",
    "Study",
    "StudyError",
    "build_default_study",
    "TrendEngine",
    "TrendRow",
    "TrendTable",
    "WeightedTrendEngine",
    "make_cohort_weights",
    "Pipeline",
    "PipelineStep",
    "ArtifactCache",
    "RetryPolicy",
    "StepTimeout",
    "ExecutorMetrics",
    "StepMetric",
    "StepOutcome",
    "RunReport",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "CrashPoint",
    "WorkerKill",
    "WorkerHang",
    "WorkerPartition",
    "WorkerFaultPlan",
    "worker_crash_coordinates",
    "RunJournal",
    "ResumeState",
    "JournalError",
    "load_resume_state",
    "read_journal",
    "latest_run_id",
    "new_run_id",
    "study_pipeline",
    "run_cached_study",
    "Tracer",
    "TraceError",
    "CriticalPathResult",
    "CriticalStep",
    "critical_path",
    "analyze_perfetto",
    "load_perfetto",
    "validate_perfetto",
]
