"""Reproducible analysis DAG with content-addressed artifact caching.

Regenerating every table from scratch re-runs the scheduler simulator each
time; the pipeline caches each step's output keyed by the step's name, its
function's code fingerprint, its parameters, and the cache keys of
everything upstream, so editing a late analysis step never re-simulates the
cluster. The ablation bench (`bench_ablation_cache`) measures exactly this.

Steps form a dependency DAG and independent steps execute concurrently:
``Pipeline.run`` topologically schedules the graph onto a
``concurrent.futures`` pool (processes when every step function pickles,
threads otherwise; ``max_workers`` defaults to ``os.cpu_count()``). The
parallel schedule is observationally identical to the sequential one — same
context dict, same cache keys, same artifacts — which the golden-artifact
and property-based suites enforce. Cache writes are atomic (temp file +
``os.replace``) and computes are single-flight per key, so concurrent runs
sharing one cache never interleave partial artifacts or duplicate work
within a process.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
import time
import types
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping

from repro.core.metrics import ExecutorMetrics

__all__ = ["ArtifactCache", "PipelineStep", "Pipeline", "PipelineError"]

_EXECUTORS = ("auto", "sequential", "thread", "process")


class PipelineError(RuntimeError):
    """Raised for misconfigured pipelines."""


def _hash_code(h: "hashlib._Hash", code: types.CodeType) -> None:
    # Nested code objects repr with memory addresses; recurse into them so
    # the fingerprint is stable across interpreter runs.
    h.update(code.co_code)
    for const in code.co_consts:
        if isinstance(const, types.CodeType):
            _hash_code(h, const)
        else:
            h.update(repr(const).encode())


def fingerprint_callable(fn: Callable[..., Any]) -> str:
    """Stable identity for a step function: module, qualname, code hash.

    Two steps with the same name and params but different implementations
    must produce different cache keys; hashing the compiled bytecode (and
    nested code objects) catches edits that keep the signature.
    """
    h = hashlib.sha256()
    h.update(getattr(fn, "__module__", "") .encode() + b"\x00")
    h.update(getattr(fn, "__qualname__", type(fn).__name__).encode() + b"\x00")
    code = getattr(fn, "__code__", None)
    if code is None:  # callable object — fingerprint its __call__ if compiled
        code = getattr(getattr(fn, "__call__", None), "__code__", None)
    if code is not None:
        _hash_code(h, code)
    return h.hexdigest()[:16]


class ArtifactCache:
    """Pickle-based content-addressed artifact store.

    Parameters
    ----------
    root:
        Directory for artifacts; created on first put. ``None`` gives an
        in-memory cache (useful in tests and benches).

    Disk writes go through a temp file in the same directory followed by
    ``os.replace``, so readers (including other processes) never observe a
    partially-written artifact. Corrupt or truncated entries are treated as
    misses and evicted rather than crashing mid-run.
    """

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else None
        self._memory: dict[str, bytes] = {}
        self._locks_guard = threading.Lock()
        self._locks: dict[str, threading.Lock] = {}
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        assert self.root is not None
        return self.root / f"{key}.pkl"

    def _load(self, key: str) -> bytes | None:
        if self.root is None:
            return self._memory.get(key)
        try:
            return self._path(key).read_bytes()
        except OSError:  # missing, or deleted between exists() and read
            return None

    def _evict(self, key: str) -> None:
        if self.root is None:
            self._memory.pop(key, None)
        else:
            try:
                self._path(key).unlink()
            except OSError:
                pass

    def _peek(self, key: str) -> Any | None:
        """Like :meth:`get` but without touching the hit/miss counters."""
        blob = self._load(key)
        if blob is None:
            return None
        try:
            return pickle.loads(blob)
        except Exception:
            # Corrupt/truncated entry (killed writer on a non-atomic FS,
            # disk damage): treat as a miss and drop the bad artifact.
            self._evict(key)
            return None

    def get(self, key: str) -> Any | None:
        """Cached value for ``key``, or None."""
        value = self._peek(key)
        if value is None:
            self.misses += 1
            return None
        self.hits += 1
        return value

    def put(self, key: str, value: Any) -> None:
        blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        if self.root is None:
            self._memory[key] = blob
            return
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(key)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.{threading.get_ident()}.tmp")
        tmp.write_bytes(blob)
        os.replace(tmp, path)

    def _lock_for(self, key: str) -> threading.Lock:
        with self._locks_guard:
            lock = self._locks.get(key)
            if lock is None:
                lock = self._locks[key] = threading.Lock()
            return lock

    def get_or_compute(
        self, key: str, compute: Callable[[], Any], force: bool = False
    ) -> tuple[Any, bool]:
        """Return ``(value, was_cached)``, computing at most once per key.

        Concurrent callers asking for the same key within this process
        serialize on a per-key lock: one computes and publishes, the rest
        observe the published value (single-flight). ``force=True`` skips
        the read path but still publishes the recomputed value.
        """
        if not force:
            value = self.get(key)
            if value is not None:
                return value, True
        with self._lock_for(key):
            if not force:
                # Another flight may have published while we waited.
                value = self._peek(key)
                if value is not None:
                    return value, True
            value = compute()
            self.put(key, value)
            return value, False

    def clear(self) -> None:
        if self.root is None:
            self._memory.clear()
        else:
            for path in self.root.glob("*.pkl"):
                path.unlink()
            for path in self.root.glob("*.tmp"):
                path.unlink()
        self.hits = 0
        self.misses = 0

    def __getstate__(self) -> dict[str, Any]:
        state = self.__dict__.copy()
        state["_locks_guard"] = None
        state["_locks"] = None
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._locks_guard = threading.Lock()
        self._locks = {}


@dataclass(frozen=True)
class PipelineStep:
    """One named step.

    Attributes
    ----------
    name:
        Unique step name; also the context key its output is stored under.
    fn:
        ``fn(context, **params) -> value`` where ``context`` maps this
        step's declared dependencies to their outputs. Dependencies must be
        declared: undeclared reads would race under parallel execution, so
        the context contains exactly ``depends_on`` in every executor mode.
    params:
        Declarative parameters hashed into the cache key. Must be
        repr-stable (plain ints/floats/strings/tuples).
    depends_on:
        Names of earlier steps whose outputs this step reads; part of the
        cache key so upstream changes invalidate downstream artifacts.
    """

    name: str
    fn: Callable[..., Any]
    params: Mapping[str, Any] = field(default_factory=dict)
    depends_on: tuple[str, ...] = ()


def _call_step(fn: Callable[..., Any], inputs: dict[str, Any], params: dict[str, Any]) -> Any:
    # Module-level so process-pool workers can unpickle the invocation.
    return fn(inputs, **params)


class Pipeline:
    """A dependency DAG of steps with cache-aware (parallel) execution.

    Steps are given in topological order (each step's dependencies must be
    declared by earlier steps), which also rules out cycles. ``run``
    schedules the DAG: steps whose dependencies have all resolved execute
    concurrently, subject to ``max_workers``.

    After every ``run`` the executor's timing/utilization record is
    available as :attr:`last_metrics` (an
    :class:`~repro.core.metrics.ExecutorMetrics`).
    """

    def __init__(self, steps: list[PipelineStep], cache: ArtifactCache | None = None) -> None:
        if not steps:
            raise PipelineError("pipeline has no steps")
        names = [s.name for s in steps]
        if len(set(names)) != len(names):
            raise PipelineError(f"duplicate step names: {names}")
        seen: set[str] = set()
        for step in steps:
            unknown = set(step.depends_on) - seen
            if unknown:
                raise PipelineError(
                    f"step {step.name!r} depends on undefined/later steps: {sorted(unknown)}"
                )
            seen.add(step.name)
        self.steps = list(steps)
        self.cache = cache if cache is not None else ArtifactCache()
        self.last_metrics: ExecutorMetrics | None = None

    def _key(self, step: PipelineStep, upstream_keys: Mapping[str, str]) -> str:
        h = hashlib.sha256()
        h.update(step.name.encode())
        h.update(fingerprint_callable(step.fn).encode())
        h.update(repr(sorted(step.params.items())).encode())
        for dep in step.depends_on:
            h.update(upstream_keys[dep].encode())
        return h.hexdigest()[:24]

    def keys(self) -> dict[str, str]:
        """Cache key per step. Pure function of the pipeline definition,
        so sequential and parallel runs address identical artifacts."""
        keys: dict[str, str] = {}
        for step in self.steps:
            keys[step.name] = self._key(step, keys)
        return keys

    # -- executor selection ---------------------------------------------------

    def _picklable(self) -> bool:
        try:
            for step in self.steps:
                pickle.dumps((step.fn, dict(step.params)))
        except Exception:
            return False
        return True

    def _resolve_executor(self, executor: str, max_workers: int | None) -> tuple[str, int]:
        if executor not in _EXECUTORS:
            raise PipelineError(
                f"unknown executor {executor!r}; expected one of {_EXECUTORS}"
            )
        workers = max_workers if max_workers is not None else (os.cpu_count() or 1)
        if workers < 1:
            raise PipelineError(f"max_workers must be >= 1, got {max_workers}")
        if executor == "sequential" or workers == 1 or len(self.steps) == 1:
            return "sequential", 1
        if executor == "auto":
            return ("process" if self._picklable() else "thread"), workers
        return executor, workers

    # -- execution ------------------------------------------------------------

    def run(
        self,
        force: bool = False,
        *,
        max_workers: int | None = None,
        executor: str = "auto",
    ) -> dict[str, Any]:
        """Execute all steps, returning {step name: output} in step order.

        Parameters
        ----------
        force:
            Bypass cache reads (values are still written back).
        max_workers:
            Pool size; defaults to ``os.cpu_count()``. ``1`` forces the
            sequential fast path.
        executor:
            ``"auto"`` (processes when every step pickles, else threads),
            ``"sequential"``, ``"thread"``, or ``"process"``.

        The returned dict — values and iteration order — is identical
        across executor modes; only :attr:`last_metrics` differs.
        """
        keys = self.keys()
        mode, workers = self._resolve_executor(executor, max_workers)
        metrics = ExecutorMetrics(mode=mode, max_workers=workers)
        t0 = time.perf_counter()
        if mode == "sequential":
            results = self._run_sequential(keys, force, metrics, t0)
        else:
            results = self._run_dag(keys, force, metrics, mode, workers, t0)
        metrics.wall_seconds = time.perf_counter() - t0
        self.last_metrics = metrics
        return {step.name: results[step.name] for step in self.steps}

    def _execute(self, step: PipelineStep, inputs: dict[str, Any], pool: ProcessPoolExecutor | None) -> Any:
        if pool is not None:
            value = pool.submit(_call_step, step.fn, inputs, dict(step.params)).result()
        else:
            value = _call_step(step.fn, inputs, dict(step.params))
        if value is None:
            raise PipelineError(f"step {step.name!r} returned None")
        return value

    def _run_sequential(
        self,
        keys: Mapping[str, str],
        force: bool,
        metrics: ExecutorMetrics,
        t0: float,
    ) -> dict[str, Any]:
        results: dict[str, Any] = {}
        for step in self.steps:
            inputs = {dep: results[dep] for dep in step.depends_on}
            started = time.perf_counter()
            value, cached = self.cache.get_or_compute(
                keys[step.name],
                lambda step=step, inputs=inputs: self._execute(step, inputs, None),
                force=force,
            )
            finished = time.perf_counter()
            metrics.record(
                step.name, keys[step.name], cached, finished - started,
                started - t0, finished - t0,
            )
            results[step.name] = value
        return results

    def _run_dag(
        self,
        keys: Mapping[str, str],
        force: bool,
        metrics: ExecutorMetrics,
        mode: str,
        workers: int,
        t0: float,
    ) -> dict[str, Any]:
        indegree = {s.name: len(s.depends_on) for s in self.steps}
        dependents: dict[str, list[PipelineStep]] = {s.name: [] for s in self.steps}
        for step in self.steps:
            for dep in step.depends_on:
                dependents[dep].append(step)
        by_name = {s.name: s for s in self.steps}
        results: dict[str, Any] = {}

        # Thread mode computes inside the coordination threads, so the
        # coordination pool IS the worker pool; process mode uses cheap
        # coordination threads (one can exist per step) that block on the
        # process pool, which enforces the real parallelism bound. Per-key
        # single-flight waits only ever block on another pipeline's compute
        # (keys are unique within one pipeline), so bounding the thread-mode
        # pool to ``workers`` cannot deadlock this run against itself.
        coord_size = workers if mode == "thread" else len(self.steps)
        pool = ProcessPoolExecutor(max_workers=workers) if mode == "process" else None

        def task(step: PipelineStep, inputs: dict[str, Any]) -> tuple[Any, bool, float, float]:
            started = time.perf_counter()
            value, cached = self.cache.get_or_compute(
                keys[step.name],
                lambda: self._execute(step, inputs, pool),
                force=force,
            )
            return value, cached, started, time.perf_counter()

        try:
            with ThreadPoolExecutor(max_workers=coord_size) as coord:
                inflight: dict[Future, PipelineStep] = {}

                def submit(step: PipelineStep) -> None:
                    inputs = {dep: results[dep] for dep in step.depends_on}
                    inflight[coord.submit(task, step, inputs)] = step

                for step in self.steps:
                    if indegree[step.name] == 0:
                        submit(step)
                while inflight:
                    done, _ = wait(inflight, return_when=FIRST_COMPLETED)
                    for fut in done:
                        step = inflight.pop(fut)
                        try:
                            value, cached, started, finished = fut.result()
                        except BaseException:
                            for other in inflight:
                                other.cancel()
                            raise
                        metrics.record(
                            step.name, keys[step.name], cached,
                            finished - started, started - t0, finished - t0,
                        )
                        results[step.name] = value
                        for dependent in dependents[step.name]:
                            indegree[dependent.name] -= 1
                            if indegree[dependent.name] == 0:
                                submit(by_name[dependent.name])
        finally:
            if pool is not None:
                pool.shutdown(wait=True, cancel_futures=True)
        return results
