"""Reproducible analysis pipeline with content-addressed artifact caching.

Regenerating every table from scratch re-runs the scheduler simulator each
time; the pipeline caches each step's output keyed by the step's name, its
parameters, and the cache keys of everything upstream, so editing a late
analysis step never re-simulates the cluster. The ablation bench
(`bench_ablation_cache`) measures exactly this.
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping

__all__ = ["ArtifactCache", "PipelineStep", "Pipeline", "PipelineError"]


class PipelineError(RuntimeError):
    """Raised for misconfigured pipelines."""


class ArtifactCache:
    """Pickle-based content-addressed artifact store.

    Parameters
    ----------
    root:
        Directory for artifacts; created on first put. ``None`` gives an
        in-memory cache (useful in tests and benches).
    """

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else None
        self._memory: dict[str, bytes] = {}
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        assert self.root is not None
        return self.root / f"{key}.pkl"

    def get(self, key: str) -> Any | None:
        """Cached value for ``key``, or None."""
        if self.root is None:
            blob = self._memory.get(key)
        else:
            path = self._path(key)
            blob = path.read_bytes() if path.exists() else None
        if blob is None:
            self.misses += 1
            return None
        self.hits += 1
        return pickle.loads(blob)

    def put(self, key: str, value: Any) -> None:
        blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        if self.root is None:
            self._memory[key] = blob
        else:
            self.root.mkdir(parents=True, exist_ok=True)
            self._path(key).write_bytes(blob)

    def clear(self) -> None:
        if self.root is None:
            self._memory.clear()
        else:
            for path in self.root.glob("*.pkl"):
                path.unlink()
        self.hits = 0
        self.misses = 0


@dataclass(frozen=True)
class PipelineStep:
    """One named step.

    Attributes
    ----------
    name:
        Unique step name; also the context key its output is stored under.
    fn:
        ``fn(context, **params) -> value`` where ``context`` maps earlier
        step names to their outputs.
    params:
        Declarative parameters hashed into the cache key. Must be
        repr-stable (plain ints/floats/strings/tuples).
    depends_on:
        Names of earlier steps whose outputs this step reads; part of the
        cache key so upstream changes invalidate downstream artifacts.
    """

    name: str
    fn: Callable[..., Any]
    params: Mapping[str, Any] = field(default_factory=dict)
    depends_on: tuple[str, ...] = ()


class Pipeline:
    """An ordered list of steps with cache-aware execution."""

    def __init__(self, steps: list[PipelineStep], cache: ArtifactCache | None = None) -> None:
        if not steps:
            raise PipelineError("pipeline has no steps")
        names = [s.name for s in steps]
        if len(set(names)) != len(names):
            raise PipelineError(f"duplicate step names: {names}")
        seen: set[str] = set()
        for step in steps:
            unknown = set(step.depends_on) - seen
            if unknown:
                raise PipelineError(
                    f"step {step.name!r} depends on undefined/later steps: {sorted(unknown)}"
                )
            seen.add(step.name)
        self.steps = list(steps)
        self.cache = cache if cache is not None else ArtifactCache()

    def _key(self, step: PipelineStep, upstream_keys: Mapping[str, str]) -> str:
        h = hashlib.sha256()
        h.update(step.name.encode())
        h.update(repr(sorted(step.params.items())).encode())
        for dep in step.depends_on:
            h.update(upstream_keys[dep].encode())
        return h.hexdigest()[:24]

    def run(self, force: bool = False) -> dict[str, Any]:
        """Execute all steps, returning {step name: output}.

        With ``force=True`` the cache is bypassed (but still written).
        """
        context: dict[str, Any] = {}
        keys: dict[str, str] = {}
        for step in self.steps:
            key = self._key(step, keys)
            keys[step.name] = key
            value = None if force else self.cache.get(key)
            if value is None:
                value = step.fn(context, **dict(step.params))
                if value is None:
                    raise PipelineError(f"step {step.name!r} returned None")
                self.cache.put(key, value)
            context[step.name] = value
        return context
