"""Reproducible analysis DAG with content-addressed artifact caching.

Regenerating every table from scratch re-runs the scheduler simulator each
time; the pipeline caches each step's output keyed by the step's name, its
function's code fingerprint, its parameters, and the cache keys of
everything upstream, so editing a late analysis step never re-simulates the
cluster. The ablation bench (`bench_ablation_cache`) measures exactly this.

Steps form a dependency DAG and independent steps execute concurrently:
``Pipeline.run`` topologically schedules the graph onto a
``concurrent.futures`` pool (processes when every step function pickles,
threads otherwise; ``max_workers`` defaults to ``os.cpu_count()``). The
parallel schedule is observationally identical to the sequential one — same
context dict, same cache keys, same artifacts — which the golden-artifact
and property-based suites enforce. Cache writes are atomic (temp file +
``os.replace``) and computes are single-flight per key, so concurrent runs
sharing one cache never interleave partial artifacts or duplicate work
within a process.

Execution is fault-tolerant: each step may carry a :class:`RetryPolicy`
(bounded attempts, exponential backoff with seeded deterministic jitter)
and a ``timeout`` (hard process kill in process mode, best-effort
cooperative deadline in thread/sequential mode). ``run(on_error=
"keep_going")`` isolates failures — a terminally-failed step marks only
its downstream subtree ``skipped_upstream`` while independent branches
complete — and every run produces a structured
:class:`~repro.core.metrics.RunReport` (``Pipeline.last_report``). The
retry/timeout wrapper is outside the cache key, so fault-tolerance
settings never invalidate artifacts, and a retried run writes bytes
identical to a fault-free one (the chaos suite enforces this).

Execution is also *crash-safe*: ``run(journal=...)`` appends every step
outcome (cache-key-addressed) to a durable
:class:`~repro.core.journal.RunJournal`, and ``run(resume=...)`` recovers
an interrupted run by replaying journal-completed steps straight from the
cache (outcome ``replayed``) and re-executing only the in-flight frontier
— byte-identical to an uninterrupted run, which the SIGKILL chaos suite
enforces at every (step, event) crash coordinate. Disk caches shared by
*concurrent processes* are guarded by per-entry advisory file locks
(:class:`repro.io.locks.FileLock`), extending the in-process single-flight
across process boundaries, and cache/journal writes degrade gracefully on
``ENOSPC``/``OSError``: the run continues uncached with a
``cache_unavailable`` flag instead of crashing. Journal and locking
configuration stay outside cache keys, like retry/timeout.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import pickle
import struct
import threading
import time
import types
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Mapping

from repro.core import shm
from repro.core.logging import get_logger, kv, set_run_id
from repro.core.metrics import ExecutorMetrics, RunReport, StepOutcome
from repro.core.trace import Tracer, activate as _activate_trace, instant as _trace_instant
from repro.io.locks import FileLock

_log = get_logger(__name__)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.journal import ResumeState, RunJournal

__all__ = [
    "ArtifactCache",
    "BackendContext",
    "ExecutorBackend",
    "PipelineStep",
    "Pipeline",
    "PipelineError",
    "RetryPolicy",
    "StepTimeout",
    "register_backend",
]

_EXECUTORS = ("auto", "sequential", "thread", "process", "dist")
_ON_ERROR = ("raise", "keep_going")


class PipelineError(RuntimeError):
    """Raised for misconfigured pipelines."""


class StepTimeout(PipelineError):
    """A step exceeded its configured timeout.

    Subclasses :class:`PipelineError` (and therefore ``Exception``), so the
    default retry filter treats timeouts as retryable.
    """


# -- executor backends ---------------------------------------------------------


@dataclass
class BackendContext:
    """Everything :meth:`Pipeline.run` hands an :class:`ExecutorBackend`.

    One bundle instead of a dozen positional arguments, so third-party
    backends (and :mod:`repro.dist`) survive signature growth. The
    backend's contract: execute the DAG, populate ``outcomes`` /
    ``metrics`` / ``journal`` / ``tracer`` exactly the way the built-in
    executors do, and return ``{step name: value}`` for every step that
    produced one. ``run()`` owns the run-level envelope — ``run_start`` /
    ``run_end``, the :class:`~repro.core.metrics.RunReport`, root span —
    for every backend equally.
    """

    keys: Mapping[str, str]
    force: bool
    metrics: ExecutorMetrics
    mode: str
    workers: int
    t0: float
    on_error: str
    fault_plan: Any | None
    outcomes: dict[str, StepOutcome]
    journal: "RunJournal | None"
    resume: "ResumeState | None"
    tracer: Tracer | None
    options: Mapping[str, Any] | None = None
    #: ``max_workers`` exactly as the caller passed it (None = unspecified),
    #: so backends with their own sizing defaults can tell "defaulted" from
    #: "explicitly requested".
    requested_workers: int | None = None


class ExecutorBackend:
    """Strategy interface behind ``Pipeline.run(executor=...)``.

    Built-in backends cover ``sequential``, ``thread``, ``process``, and
    ``dist``; :func:`register_backend` adds new names. Backends are
    stateless singletons — per-run state rides in the
    :class:`BackendContext`.
    """

    name: str = "?"

    def execute(self, pipeline: "Pipeline", ctx: BackendContext) -> dict[str, Any]:
        raise NotImplementedError


class _SequentialBackend(ExecutorBackend):
    name = "sequential"

    def execute(self, pipeline: "Pipeline", ctx: BackendContext) -> dict[str, Any]:
        return pipeline._run_sequential(
            ctx.keys, ctx.force, ctx.metrics, ctx.t0, ctx.on_error,
            ctx.fault_plan, ctx.outcomes, ctx.journal, ctx.resume, ctx.tracer,
        )


class _PoolBackend(ExecutorBackend):
    """Thread- and process-pool DAG execution (one class, two names)."""

    def __init__(self, name: str) -> None:
        self.name = name

    def execute(self, pipeline: "Pipeline", ctx: BackendContext) -> dict[str, Any]:
        return pipeline._run_dag(
            ctx.keys, ctx.force, ctx.metrics, self.name, ctx.workers, ctx.t0,
            ctx.on_error, ctx.fault_plan, ctx.outcomes, ctx.journal,
            ctx.resume, ctx.tracer,
        )


class _DistBackend(ExecutorBackend):
    """Coordinator/worker fleet (:mod:`repro.dist`); imported lazily so the
    core pipeline stays importable without the dist package loaded."""

    name = "dist"

    def execute(self, pipeline: "Pipeline", ctx: BackendContext) -> dict[str, Any]:
        from repro.dist.coordinator import run_coordinator

        return run_coordinator(pipeline, ctx)


_BACKENDS: dict[str, ExecutorBackend] = {
    "sequential": _SequentialBackend(),
    "thread": _PoolBackend("thread"),
    "process": _PoolBackend("process"),
    "dist": _DistBackend(),
}


def register_backend(name: str, backend: ExecutorBackend) -> None:
    """Register (or replace) an executor backend under ``name``.

    The name becomes a valid ``Pipeline.run(executor=...)`` value. Names
    shadowing built-ins are allowed — that is the seam the test suite and
    future remote backends use — but ``"auto"`` stays reserved for the
    picklability-based choice between thread and process pools.
    """
    if name == "auto":
        raise ValueError("'auto' is resolved by Pipeline.run, not a backend name")
    _BACKENDS[name] = backend
    global _EXECUTORS
    if name not in _EXECUTORS:
        _EXECUTORS = _EXECUTORS + (name,)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry schedule for a pipeline step.

    Attributes
    ----------
    max_attempts:
        Total attempts including the first (1 = no retries).
    backoff_base:
        Sleep before the second attempt, in seconds.
    backoff_factor:
        Multiplier applied per subsequent retry (exponential backoff).
    max_backoff:
        Ceiling on any single sleep.
    jitter:
        Fractional jitter added on top of the backoff (0.1 = up to +10%).
        The jitter is *deterministic*: it is derived by hashing
        ``(seed, step name, attempt)``, so reruns sleep identical amounts
        and chaos tests reproduce bit-for-bit.
    seed:
        Seed folded into the jitter hash.
    retryable:
        Exception types worth retrying; anything else fails immediately.
        Defaults to every ``Exception`` (``StepTimeout`` included).
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    max_backoff: float = 2.0
    jitter: float = 0.1
    seed: int = 0
    retryable: tuple[type[BaseException], ...] = (Exception,)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise PipelineError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base < 0 or self.max_backoff < 0:
            raise PipelineError("backoff times must be non-negative")
        if self.backoff_factor < 1.0:
            raise PipelineError(f"backoff_factor must be >= 1, got {self.backoff_factor}")
        if self.jitter < 0:
            raise PipelineError(f"jitter must be non-negative, got {self.jitter}")

    def retries(self, exc: BaseException) -> bool:
        """Whether ``exc`` is worth another attempt under this policy."""
        return isinstance(exc, self.retryable)

    def delay(self, step_name: str, attempt: int) -> float:
        """Deterministic sleep before retrying ``attempt`` (1-based) of a step."""
        base = min(
            self.backoff_base * self.backoff_factor ** (attempt - 1), self.max_backoff
        )
        if self.jitter <= 0 or base <= 0:
            return base
        digest = hashlib.sha256(
            f"{self.seed}|{step_name}|{attempt}".encode()
        ).digest()
        frac = int.from_bytes(digest[:8], "big") / 2.0**64
        return base * (1.0 + self.jitter * frac)


#: Policy used when a step declares none: a single attempt, no sleeps.
NO_RETRY = RetryPolicy(max_attempts=1, backoff_base=0.0, jitter=0.0)


def _hash_code(h: "hashlib._Hash", code: types.CodeType) -> None:
    # Nested code objects repr with memory addresses; recurse into them so
    # the fingerprint is stable across interpreter runs.
    h.update(code.co_code)
    for const in code.co_consts:
        if isinstance(const, types.CodeType):
            _hash_code(h, const)
        else:
            h.update(repr(const).encode())


def fingerprint_callable(fn: Callable[..., Any]) -> str:
    """Stable identity for a step function: module, qualname, code hash.

    Two steps with the same name and params but different implementations
    must produce different cache keys; hashing the compiled bytecode (and
    nested code objects) catches edits that keep the signature.
    """
    h = hashlib.sha256()
    h.update(getattr(fn, "__module__", "") .encode() + b"\x00")
    h.update(getattr(fn, "__qualname__", type(fn).__name__).encode() + b"\x00")
    code = getattr(fn, "__code__", None)
    if code is None:  # callable object — fingerprint its __call__ if compiled
        code = getattr(getattr(fn, "__call__", None), "__code__", None)
    if code is not None:
        _hash_code(h, code)
    return h.hexdigest()[:16]


# On-disk artifact container: protocol-5 pickle stream with the array
# bodies appended as raw out-of-band frames. Writing streams each frame
# straight from the source buffer (no joined in-memory blob, no in-band
# copy of array payloads inside the pickle stream); reading rebuilds the
# frames as writable bytearrays so rehydrated arrays behave exactly like
# an in-band unpickle. Entries written by older versions are plain pickle
# streams — _decode_artifact falls back to pickle.loads for those.
_ARTIFACT_MAGIC = b"RPA5\x00"
_U64 = struct.Struct("<Q")
_U32 = struct.Struct("<I")


def _write_artifact(fh, value: Any) -> None:
    """Stream ``value`` into ``fh`` as a protocol-5 out-of-band container."""
    buffers: list[pickle.PickleBuffer] = []
    stream = pickle.dumps(value, protocol=5, buffer_callback=buffers.append)
    try:
        fh.write(_ARTIFACT_MAGIC)
        fh.write(_U64.pack(len(stream)))
        fh.write(stream)
        fh.write(_U32.pack(len(buffers)))
        for buf in buffers:
            raw = buf.raw()
            fh.write(_U64.pack(raw.nbytes))
            fh.write(raw)
    finally:
        for buf in buffers:
            buf.release()


def _encode_artifact(value: Any) -> bytes:
    """Container bytes for in-memory caches (joined; copies frames)."""
    buffers: list[pickle.PickleBuffer] = []
    stream = pickle.dumps(value, protocol=5, buffer_callback=buffers.append)
    parts = [_ARTIFACT_MAGIC, _U64.pack(len(stream)), stream, _U32.pack(len(buffers))]
    for buf in buffers:
        raw = buf.raw()
        parts.append(_U64.pack(raw.nbytes))
        parts.append(raw.tobytes())
        buf.release()
    return b"".join(parts)


def _decode_artifact(blob: bytes) -> Any:
    """Value from container (or legacy plain-pickle) bytes.

    Raises on any truncation or length mismatch so callers treat the
    entry as corrupt and evict it.
    """
    if not blob.startswith(_ARTIFACT_MAGIC):
        return pickle.loads(blob)
    view = memoryview(blob)
    offset = len(_ARTIFACT_MAGIC)
    (stream_len,) = _U64.unpack_from(view, offset)
    offset += _U64.size
    stream = bytes(view[offset : offset + stream_len])
    if len(stream) != stream_len:
        raise ValueError("truncated artifact container (pickle stream)")
    offset += stream_len
    (n_frames,) = _U32.unpack_from(view, offset)
    offset += _U32.size
    frames: list[bytearray] = []
    for _ in range(n_frames):
        (frame_len,) = _U64.unpack_from(view, offset)
        offset += _U64.size
        frame = bytearray(view[offset : offset + frame_len])
        if len(frame) != frame_len:
            raise ValueError("truncated artifact container (frame)")
        offset += frame_len
        frames.append(frame)
    if offset != len(blob):
        raise ValueError("trailing garbage in artifact container")
    return pickle.loads(stream, buffers=frames)


class ArtifactCache:
    """Pickle-based content-addressed artifact store.

    Parameters
    ----------
    root:
        Directory for artifacts; created on first put. ``None`` gives an
        in-memory cache (useful in tests and benches).
    locking:
        When True (default) disk caches guard each entry's compute with a
        cross-process advisory :class:`~repro.io.locks.FileLock`
        (``<key>.lock`` next to the artifact), so concurrent *processes*
        sharing one cache dir single-flight the same way concurrent
        threads already do. In-memory caches never lock.

    Disk writes go through a temp file in the same directory (fsync'd
    before the rename, so a power loss cannot surface a zero-length
    "committed" entry) followed by ``os.replace``, so readers (including
    other processes) never observe a partially-written artifact. Corrupt
    or truncated entries are treated as misses and evicted rather than
    crashing mid-run. A *failed* write (``ENOSPC``, permissions, any
    ``OSError``) degrades instead of raising: :meth:`put` reports False,
    ``put_errors``/``last_put_error`` record what happened, and callers
    carry on with the computed value uncached.
    """

    def __init__(self, root: str | Path | None = None, *, locking: bool = True) -> None:
        self.root = Path(root) if root is not None else None
        self.locking = bool(locking)
        self._memory: dict[str, bytes] = {}
        self._locks_guard = threading.Lock()
        self._locks: dict[str, threading.Lock] = {}
        self.hits = 0
        self.misses = 0
        self.put_errors = 0
        self.last_put_error: str | None = None
        self._fail_put_keys: set[str] = set()

    def _path(self, key: str) -> Path:
        assert self.root is not None
        return self.root / f"{key}.pkl"

    def _load(self, key: str) -> bytes | None:
        if self.root is None:
            return self._memory.get(key)
        try:
            return self._path(key).read_bytes()
        except OSError:  # missing, or deleted between exists() and read
            return None

    def _evict(self, key: str) -> None:
        if self.root is None:
            self._memory.pop(key, None)
        else:
            try:
                self._path(key).unlink()
            except OSError:
                pass

    def _peek(self, key: str) -> Any | None:
        """Like :meth:`get` but without touching the hit/miss counters."""
        blob = self._load(key)
        if blob is None:
            return None
        try:
            return _decode_artifact(blob)
        except Exception:
            # Corrupt/truncated entry (killed writer on a non-atomic FS,
            # disk damage): treat as a miss and drop the bad artifact.
            self._evict(key)
            return None

    def peek(self, key: str) -> Any | None:
        """Cached value for ``key`` without counting a hit or miss.

        Resume-replay uses this to check whether a journal-completed step's
        artifact actually survived, without skewing the hit/miss telemetry
        the ablation bench reads.
        """
        return self._peek(key)

    def get(self, key: str) -> Any | None:
        """Cached value for ``key``, or None."""
        value = self._peek(key)
        if value is None:
            self.misses += 1
            _trace_instant("cache.miss", "cache", key=key)
            return None
        self.hits += 1
        _trace_instant("cache.hit", "cache", key=key)
        return value

    def put(self, key: str, value: Any) -> bool:
        """Publish ``value`` under ``key``; True when it actually persisted.

        Any ``OSError`` on the write path (``ENOSPC`` above all) is
        swallowed: the run must not die because the cache filesystem did.
        The failure is counted in ``put_errors`` and described in
        ``last_put_error``, and the caller keeps its in-memory value.
        Pickling errors still raise — those are programming errors, not
        environmental ones.

        Serialization is pickle protocol 5 with out-of-band buffers: the
        pickle stream stays small and each array body is streamed to the
        file straight from its source buffer, so publishing a large
        columnar artifact never materializes a second in-memory copy of
        its payload.
        """
        try:
            if key in self._fail_put_keys:
                self._fail_put_keys.discard(key)
                raise OSError(28, "injected: no space left on device")  # ENOSPC
            if self.root is None:
                self._memory[key] = _encode_artifact(value)
                _trace_instant("cache.put", "cache", key=key, stored=True)
                return True
            self.root.mkdir(parents=True, exist_ok=True)
            path = self._path(key)
            tmp = path.with_name(f"{path.name}.{os.getpid()}.{threading.get_ident()}.tmp")
            try:
                with open(tmp, "wb") as fh:
                    _write_artifact(fh, value)
                    fh.flush()
                    # Durable before visible: without this fsync a power
                    # loss after the rename can expose a zero-length
                    # "committed" entry (rename-only ordering is not
                    # guaranteed on all filesystems).
                    os.fsync(fh.fileno())
                os.replace(tmp, path)
            finally:
                # A failed write or replace must not strand a .tmp file in
                # the cache directory; after a successful replace this is a
                # no-op.
                tmp.unlink(missing_ok=True)
        except OSError as exc:
            self.put_errors += 1
            self.last_put_error = repr(exc)
            _trace_instant("cache.put", "cache", key=key, stored=False)
            return False
        _trace_instant("cache.put", "cache", key=key, stored=True)
        return True

    def inject_put_failure(self, key: str) -> None:
        """Arm a one-shot ``ENOSPC`` for the next :meth:`put` of ``key``.

        Fault-injection seam for the disk-exhaustion chaos suite (see
        :meth:`repro.core.faults.FaultPlan.arm_enospc`).
        """
        self._fail_put_keys.add(key)

    def cancel_put_failure(self, key: str) -> None:
        """Disarm a pending :meth:`inject_put_failure` that never fired."""
        self._fail_put_keys.discard(key)

    def corrupt_entry(self, key: str, blob: bytes = b"\x80repro-injected-corruption") -> bool:
        """Overwrite ``key``'s stored bytes with garbage (fault injection).

        Exists so the chaos suite and :class:`repro.core.faults.FaultPlan`
        can simulate disk damage through the public API. Returns True when
        an entry existed and was corrupted. ``key`` must be a bare cache
        key: callers that derive keys from a naive directory listing would
        otherwise smash the ``<key>.lock`` advisory files left behind by
        :class:`repro.io.locks.FileLock` (or an in-flight ``.tmp``
        publish) — those are never artifacts, so they are refused here.
        """
        if key.endswith((".lock", ".tmp", ".pkl")):
            return False
        if self.root is None:
            if key not in self._memory:
                return False
            self._memory[key] = blob
            return True
        path = self._path(key)
        if not path.exists():
            return False
        path.write_bytes(blob)
        return True

    def entry_bytes(self, key: str) -> bytes | None:
        """The published pickle blob for ``key``, or None when absent.

        Read-only accessor for the reproducibility audit's digest walk:
        the audit hashes stored bytes (not live values) so it observes
        exactly what a resumed or separate process would unpickle.
        """
        return self._load(key)

    def _lock_for(self, key: str) -> threading.Lock:
        with self._locks_guard:
            lock = self._locks.get(key)
            if lock is None:
                lock = self._locks[key] = threading.Lock()
            return lock

    def _entry_lock(self, key: str) -> FileLock | None:
        """Cross-process lock for ``key``'s compute, or None when N/A.

        Disk caches only (two processes cannot share an in-memory cache),
        and degradable: if even creating the cache directory fails
        (``ENOSPC`` again) the compute proceeds unlocked — worst case is
        duplicated deterministic work, never corruption, because publishes
        stay atomic.
        """
        if self.root is None or not self.locking:
            return None
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError:
            return None
        return FileLock(self.root / f"{key}.lock")

    def get_or_compute(
        self,
        key: str,
        compute: Callable[[], Any],
        force: bool = False,
        info: dict[str, Any] | None = None,
    ) -> tuple[Any, bool]:
        """Return ``(value, was_cached)``, computing at most once per key.

        Concurrent callers asking for the same key within this process
        serialize on a per-key lock — and, for disk caches, callers in
        *other processes* serialize on a per-entry advisory file lock —
        so one computes and publishes and the rest observe the published
        value (single-flight). ``force=True`` skips the read path but
        still publishes the recomputed value.

        When ``info`` is a dict it receives out-of-band detail:
        ``computed`` (True when ``compute`` actually ran) and ``stored``
        (False when the computed value failed to persist — the
        ``cache_unavailable`` degradation).

        One benign race: a reader that loaded a *corrupt* blob before a
        concurrent heal was published may evict the fresh entry and
        recompute. Values are deterministic and republished, so this
        costs duplicate work, never a wrong or missing artifact (and no
        in-process lock could close it — another process can interleave
        the same way).
        """
        if info is not None:
            info.setdefault("computed", False)
            info.setdefault("stored", True)
        if not force:
            value = self.get(key)
            if value is not None:
                return value, True
        with self._lock_for(key):
            flock = self._entry_lock(key)
            if flock is not None:
                flock.acquire()
            try:
                if not force:
                    # Another flight — thread or process — may have
                    # published while we waited on either lock.
                    value = self._peek(key)
                    if value is not None:
                        return value, True
                value = compute()
                stored = self.put(key, value)
                if info is not None:
                    info["computed"] = True
                    info["stored"] = stored
                return value, False
            finally:
                if flock is not None:
                    flock.release()

    def clear(self) -> None:
        if self.root is None:
            self._memory.clear()
        else:
            # missing_ok: a concurrent evict/clear may have removed the
            # entry between the directory scan and the unlink.
            for path in self.root.glob("*.pkl"):
                path.unlink(missing_ok=True)
            for path in self.root.glob("*.tmp"):
                path.unlink(missing_ok=True)
            for path in self.root.glob("*.lock"):
                path.unlink(missing_ok=True)
        self.hits = 0
        self.misses = 0
        self.put_errors = 0
        self.last_put_error = None
        self._fail_put_keys.clear()

    def __getstate__(self) -> dict[str, Any]:
        state = self.__dict__.copy()
        state["_locks_guard"] = None
        state["_locks"] = None
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._locks_guard = threading.Lock()
        self._locks = {}


@dataclass(frozen=True)
class PipelineStep:
    """One named step.

    Attributes
    ----------
    name:
        Unique step name; also the context key its output is stored under.
    fn:
        ``fn(context, **params) -> value`` where ``context`` maps this
        step's declared dependencies to their outputs. Dependencies must be
        declared: undeclared reads would race under parallel execution, so
        the context contains exactly ``depends_on`` in every executor mode.
    params:
        Declarative parameters hashed into the cache key. Must be
        repr-stable (plain ints/floats/strings/tuples).
    depends_on:
        Names of earlier steps whose outputs this step reads; part of the
        cache key so upstream changes invalidate downstream artifacts.
    retry:
        Optional :class:`RetryPolicy`; falls back to the pipeline's
        ``default_retry`` (a single attempt when neither is set). Not part
        of the cache key — retrying cannot change the artifact.
    timeout:
        Optional per-attempt wall-clock budget in seconds; falls back to
        the pipeline's ``default_timeout``. In process mode the attempt's
        worker is hard-killed on expiry; in thread/sequential mode the
        deadline is cooperative (checked around the compute, and honored
        by injected hangs), so a truly wedged step function can overrun
        it. Also outside the cache key.
    """

    name: str
    fn: Callable[..., Any]
    params: Mapping[str, Any] = field(default_factory=dict)
    depends_on: tuple[str, ...] = ()
    retry: RetryPolicy | None = None
    timeout: float | None = None


def _call_step(fn: Callable[..., Any], inputs: dict[str, Any], params: dict[str, Any]) -> Any:
    # Module-level so process-pool workers can unpickle the invocation.
    return fn(inputs, **params)


def _call_step_traced(
    fn: Callable[..., Any],
    inputs: dict[str, Any],
    params: dict[str, Any],
    resources: bool,
) -> tuple[Any, dict[str, Any]]:
    """Worker-side body of a traced process-mode compute.

    A process worker cannot reach the coordinator's tracer, so it measures
    itself — wall, CPU, peak RSS — and ships the measurement back through
    the pool's *existing result channel* (the return value), which the
    coordination thread folds into the attempt span. No shared trace file,
    no extra IPC.
    """
    from repro.core.trace import resource_probe

    probe0 = resource_probe() if resources else None
    t0 = time.perf_counter()
    value = _call_step(fn, inputs, params)
    payload: dict[str, Any] = {
        "worker_pid": os.getpid(),
        "compute": time.perf_counter() - t0,
    }
    if probe0 is not None:
        probe1 = resource_probe()
        if probe1 is not None:
            payload["cpu"] = round(probe1[0] - probe0[0], 6)
            payload["rss_kb"] = probe1[1]
    return value, payload


def _call_step_shm(
    fn: Callable[..., Any],
    inputs: dict[str, Any],
    params: dict[str, Any],
    shm_prefix: str,
) -> tuple[str, Any]:
    """Process-pool worker body with zero-copy result transport.

    The step value is pickled once (protocol 5, out-of-band buffers) and
    returned as a transport envelope: large numpy-backed payloads go
    through a shared-memory segment named under ``shm_prefix``, small or
    buffer-free payloads ride inline. See :mod:`repro.core.shm` for the
    handle protocol and ownership rules.
    """
    from repro.core import shm

    return shm.encode_result(_call_step(fn, inputs, params), shm_prefix)


def _call_step_traced_shm(
    fn: Callable[..., Any],
    inputs: dict[str, Any],
    params: dict[str, Any],
    resources: bool,
    shm_prefix: str,
) -> tuple[tuple[str, Any], dict[str, Any]]:
    """:func:`_call_step_traced` with the value in a transport envelope."""
    from repro.core import shm

    value, payload = _call_step_traced(fn, inputs, params, resources)
    return shm.encode_result(value, shm_prefix), payload


def _killable_target(conn, fn, inputs, params) -> None:  # pragma: no cover - child process
    try:
        value = _call_step(fn, inputs, params)
    except BaseException as exc:
        try:
            conn.send(("error", exc))
        except Exception:
            # The exception itself didn't pickle; ship its repr instead.
            conn.send(("error", PipelineError(f"step raised unpicklable {exc!r}")))
    else:
        try:
            conn.send(("ok", value))
        except Exception as exc:
            conn.send(("error", PipelineError(f"step result did not pickle: {exc!r}")))
    finally:
        conn.close()


def _run_killable(step: "PipelineStep", inputs: dict[str, Any], timeout: float) -> Any:
    """Run one attempt in a dedicated process that can be hard-killed.

    Process-mode steps with a timeout get their own worker instead of a
    slot on the shared pool: a shared-pool worker cannot be terminated
    without poisoning every other in-flight step, while a dedicated
    process can be ``terminate()``d the instant the deadline passes.
    """
    parent_conn, child_conn = multiprocessing.Pipe(duplex=False)
    proc = multiprocessing.Process(
        target=_killable_target,
        args=(child_conn, step.fn, inputs, dict(step.params)),
        daemon=True,
    )
    proc.start()
    child_conn.close()
    try:
        if not parent_conn.poll(max(timeout, 0.0)):
            proc.terminate()
            proc.join(1.0)
            if proc.is_alive():
                proc.kill()
                proc.join(1.0)
            raise StepTimeout(
                f"step {step.name!r} exceeded timeout {timeout:.3f}s (worker killed)"
            )
        try:
            kind, payload = parent_conn.recv()
        except EOFError:
            raise PipelineError(
                f"step {step.name!r}: worker died without reporting a result"
            ) from None
    finally:
        parent_conn.close()
        proc.join(1.0)
    if kind == "error":
        raise payload
    return payload


class Pipeline:
    """A dependency DAG of steps with cache-aware (parallel) execution.

    Steps are given in topological order (each step's dependencies must be
    declared by earlier steps), which also rules out cycles. ``run``
    schedules the DAG: steps whose dependencies have all resolved execute
    concurrently, subject to ``max_workers``.

    After every ``run`` the executor's timing/utilization record is
    available as :attr:`last_metrics` (an
    :class:`~repro.core.metrics.ExecutorMetrics`) and the per-step
    outcome record as :attr:`last_report` (a
    :class:`~repro.core.metrics.RunReport`).

    ``default_retry`` / ``default_timeout`` apply to every step that does
    not declare its own; neither participates in cache keys.
    """

    def __init__(
        self,
        steps: list[PipelineStep],
        cache: ArtifactCache | None = None,
        *,
        default_retry: RetryPolicy | None = None,
        default_timeout: float | None = None,
    ) -> None:
        if not steps:
            raise PipelineError("pipeline has no steps")
        names = [s.name for s in steps]
        if len(set(names)) != len(names):
            raise PipelineError(f"duplicate step names: {names}")
        seen: set[str] = set()
        for step in steps:
            unknown = set(step.depends_on) - seen
            if unknown:
                raise PipelineError(
                    f"step {step.name!r} depends on undefined/later steps: {sorted(unknown)}"
                )
            seen.add(step.name)
        if default_timeout is not None and default_timeout <= 0:
            raise PipelineError(f"default_timeout must be positive, got {default_timeout}")
        self.steps = list(steps)
        self.cache = cache if cache is not None else ArtifactCache()
        self.default_retry = default_retry
        self.default_timeout = default_timeout
        self.last_metrics: ExecutorMetrics | None = None
        self.last_report: RunReport | None = None
        self.last_trace: Tracer | None = None
        # Per-run shared-memory namespace for process-mode result transport;
        # set by _run_dag while a process pool is live, swept and cleared in
        # its finally (see repro.core.shm).
        self._shm_prefix: str | None = None

    def _policy_for(self, step: PipelineStep) -> RetryPolicy:
        if step.retry is not None:
            return step.retry
        return self.default_retry if self.default_retry is not None else NO_RETRY

    def _timeout_for(self, step: PipelineStep) -> float | None:
        return step.timeout if step.timeout is not None else self.default_timeout

    def _key(self, step: PipelineStep, upstream_keys: Mapping[str, str]) -> str:
        h = hashlib.sha256()
        h.update(step.name.encode())
        h.update(fingerprint_callable(step.fn).encode())
        h.update(repr(sorted(step.params.items())).encode())
        for dep in step.depends_on:
            h.update(upstream_keys[dep].encode())
        return h.hexdigest()[:24]

    def keys(self) -> dict[str, str]:
        """Cache key per step. Pure function of the pipeline definition,
        so sequential and parallel runs address identical artifacts."""
        keys: dict[str, str] = {}
        for step in self.steps:
            keys[step.name] = self._key(step, keys)
        return keys

    # -- executor selection ---------------------------------------------------

    def _picklable(self) -> bool:
        try:
            for step in self.steps:
                pickle.dumps((step.fn, dict(step.params)))
        except Exception:
            return False
        return True

    def _resolve_executor(self, executor: str, max_workers: int | None) -> tuple[str, int]:
        if executor != "auto" and executor not in _BACKENDS:
            raise PipelineError(
                f"unknown executor {executor!r}; expected one of {_EXECUTORS}"
            )
        workers = max_workers if max_workers is not None else (os.cpu_count() or 1)
        if workers < 1:
            raise PipelineError(f"max_workers must be >= 1, got {max_workers}")
        if executor not in ("auto", "sequential", "thread", "process"):
            # Registered backends (dist included) own their worker model —
            # a one-step DAG on a one-worker fleet is still a fleet run,
            # never silently collapsed to the in-process fast path. An
            # unspecified max_workers defaults to a small fleet rather than
            # cpu_count: fleet workers are whole processes with their own
            # polling loops, not pool threads.
            if max_workers is None:
                workers = min(4, os.cpu_count() or 1)
            return executor, workers
        if executor == "sequential" or workers == 1 or len(self.steps) == 1:
            return "sequential", 1
        if executor == "auto":
            return ("process" if self._picklable() else "thread"), workers
        return executor, workers

    # -- execution ------------------------------------------------------------

    def run(
        self,
        force: bool = False,
        *,
        max_workers: int | None = None,
        executor: str = "auto",
        on_error: str = "raise",
        fault_plan: Any | None = None,
        journal: "RunJournal | None" = None,
        resume: "ResumeState | str | Path | None" = None,
        trace: "Tracer | bool | None" = None,
        backend_options: Mapping[str, Any] | None = None,
    ) -> dict[str, Any]:
        """Execute all steps, returning {step name: output} in step order.

        Parameters
        ----------
        force:
            Bypass cache reads (values are still written back).
        max_workers:
            Pool size; defaults to ``os.cpu_count()``. ``1`` forces the
            sequential fast path (except for registered backends such as
            ``dist``, which own their worker model).
        executor:
            ``"auto"`` (processes when every step pickles, else threads),
            ``"sequential"``, ``"thread"``, ``"process"``, ``"dist"``
            (coordinator/worker fleet over the shared cache directory —
            see :mod:`repro.dist`), or any name added via
            :func:`register_backend`.
        on_error:
            ``"raise"`` (default) propagates the first terminal step
            failure, as before. ``"keep_going"`` isolates it: the failed
            step's downstream subtree is marked ``skipped_upstream``,
            independent branches complete, and the returned dict contains
            only the steps that produced a value (consult
            :attr:`last_report` for what degraded).
        fault_plan:
            Optional :class:`repro.core.faults.FaultPlan` injecting
            deterministic faults for chaos testing. Faults fire in the
            coordinating process, never inside pool workers, so attempt
            accounting stays exact in every executor mode.
        journal:
            Optional :class:`repro.core.journal.RunJournal`. Every step
            start/outcome is appended (cache-key-addressed) so a killed
            run can be recovered with ``resume``. Journal configuration is
            outside cache keys — journaling never invalidates artifacts.
        resume:
            A :class:`repro.core.journal.ResumeState` (or a journal file
            path to load one from) describing an interrupted run. Steps
            the journal marks complete, whose key still matches this
            pipeline and whose artifact survives in the cache, are
            *replayed* (outcome ``"replayed"``, 0 attempts) instead of
            executed; everything else — the in-flight frontier — runs
            normally. Ignored for steps when ``force=True``.
        trace:
            ``True`` opens a fresh :class:`~repro.core.trace.Tracer`; an
            existing tracer appends this run into it; ``None`` (default)
            disables tracing at zero cost. A traced run opens a root span
            per run id (the journal's id when journaled, so trace and
            journal correlate), one ``step`` span per step tagged with
            outcome/cache key/worker/queue-wait-vs-compute, one
            ``attempt`` span per compute attempt, and instant events from
            the cache, locks, retry backoffs, and fault injections. The
            tracer lands on :attr:`last_trace`. Like retry/timeout and
            journal config, tracing never touches cache keys.
        backend_options:
            Backend-specific knobs, passed through untouched on the
            :class:`BackendContext`. The ``dist`` backend accepts either
            ``{"config": DistConfig(...)}`` or loose
            :class:`~repro.dist.worker.DistConfig` field names. Never part
            of cache keys.

        The returned dict — values and iteration order — is identical
        across executor modes; only :attr:`last_metrics` differs. After
        every run (even one that raises) :attr:`last_report` holds a
        :class:`~repro.core.metrics.RunReport` with each step's outcome,
        attempt count, and captured error.
        """
        if on_error not in _ON_ERROR:
            raise PipelineError(
                f"unknown on_error {on_error!r}; expected one of {_ON_ERROR}"
            )
        if isinstance(resume, (str, Path)):
            from repro.core.journal import load_resume_state

            resume = load_resume_state(resume)
        keys = self.keys()
        mode, workers = self._resolve_executor(executor, max_workers)
        metrics = ExecutorMetrics(mode=mode, max_workers=workers)
        if resume is not None:
            metrics.resumed_from = resume.run_id
        if journal is not None:
            metrics.journal_path = str(journal.path)
            journal.run_start(
                keys,
                executor=mode,
                resumed_from=None if resume is None else resume.run_id,
            )
        tracer: Tracer | None
        if trace is None or trace is False:
            tracer = None
        elif trace is True:
            tracer = Tracer()
        else:
            tracer = trace
        self.last_trace = tracer
        root_sid: int | None = None
        run_id: str | None = None
        if journal is not None:
            run_id = journal.run_id
        elif tracer is not None:
            from repro.core.journal import new_run_id

            run_id = new_run_id()
        if tracer is not None:
            root_sid = tracer.begin(
                "run", "run", run_id=run_id, executor=mode, workers=workers,
                resumed_from=None if resume is None else resume.run_id,
            )
        if run_id is not None:
            # Tag every log line from any module until the run closes. The
            # isEnabledFor guards keep kv() rendering off the journal/trace
            # overhead benches when logging is quiet.
            set_run_id(run_id)
            if _log.isEnabledFor(20):  # INFO
                _log.info(kv("run.start", executor=mode, workers=workers))
        outcomes: dict[str, StepOutcome] = {}
        t0 = time.perf_counter()
        try:
            with _activate_trace(tracer):
                ctx = BackendContext(
                    keys=keys, force=force, metrics=metrics, mode=mode,
                    workers=workers, t0=t0, on_error=on_error,
                    fault_plan=fault_plan, outcomes=outcomes, journal=journal,
                    resume=resume, tracer=tracer, options=backend_options,
                    requested_workers=max_workers,
                )
                results = _BACKENDS[mode].execute(self, ctx)
        finally:
            metrics.wall_seconds = time.perf_counter() - t0
            report = RunReport(
                outcomes=tuple(
                    outcomes[s.name] for s in self.steps if s.name in outcomes
                ),
                resumed_from=None if resume is None else resume.run_id,
            )
            metrics.run_report = report
            if journal is not None:
                journal.run_end(report.counts(), metrics.wall_seconds)
                metrics.journal_unavailable = journal.unavailable
            if tracer is not None and root_sid is not None:
                tracer.end(
                    root_sid,
                    wall=round(metrics.wall_seconds, 6),
                    counts=report.counts(),
                )
                tracer.close_open_spans()
            if run_id is not None:
                if _log.isEnabledFor(20):  # INFO
                    _log.info(
                        kv("run.end", wall=metrics.wall_seconds, **report.counts())
                    )
                set_run_id(None)
            self.last_metrics = metrics
            self.last_report = report
        return {step.name: results[step.name] for step in self.steps if step.name in results}

    def run_with_report(self, *args: Any, **kwargs: Any) -> tuple[dict[str, Any], RunReport]:
        """:meth:`run`, returning ``(results, report)`` in one call."""
        results = self.run(*args, **kwargs)
        assert self.last_report is not None
        return results, self.last_report

    def _execute(
        self,
        step: PipelineStep,
        inputs: dict[str, Any],
        pool: ProcessPoolExecutor | None,
        remaining: float | None,
        tracer: Tracer | None = None,
    ) -> tuple[Any, dict[str, Any] | None]:
        """Run one attempt; returns ``(value, worker_payload)``.

        ``worker_payload`` is the self-measurement a traced process-pool
        worker ships back through the result channel (None in thread/
        sequential mode, where the coordinating thread measures directly,
        and on the killable-timeout path).
        """
        payload: dict[str, Any] | None = None
        if pool is not None:
            shm_prefix = self._shm_prefix
            if remaining is not None:
                # Hard timeout: dedicated killable worker (see _run_killable).
                # Its dedicated Pipe is torn down with the process, so the
                # result stays inline — shm ownership could not be handed
                # off safely across a terminate().
                value = _run_killable(step, inputs, remaining)
            elif tracer is not None:
                if shm_prefix is not None:
                    envelope, payload = pool.submit(
                        _call_step_traced_shm, step.fn, inputs, dict(step.params),
                        tracer.resources, shm_prefix,
                    ).result()
                    value = shm.decode_result(envelope)
                else:
                    value, payload = pool.submit(
                        _call_step_traced, step.fn, inputs, dict(step.params),
                        tracer.resources,
                    ).result()
            elif shm_prefix is not None:
                envelope = pool.submit(
                    _call_step_shm, step.fn, inputs, dict(step.params), shm_prefix
                ).result()
                value = shm.decode_result(envelope)
            else:
                value = pool.submit(_call_step, step.fn, inputs, dict(step.params)).result()
        else:
            value = _call_step(step.fn, inputs, dict(step.params))
        if value is None:
            raise PipelineError(f"step {step.name!r} returned None")
        return value, payload

    def _attempt_loop(
        self,
        step: PipelineStep,
        inputs: dict[str, Any],
        pool: ProcessPoolExecutor | None,
        fault_plan: Any | None,
        counter: dict[str, int],
        tracer: Tracer | None = None,
        step_sid: int | None = None,
    ) -> Any:
        """One cache-miss compute: bounded attempts with backoff + deadline.

        Runs in the coordinating process (sequential caller or a
        coordination thread), inside the cache's single-flight lock, so
        retries of one step never duplicate work across concurrent runs.
        """
        policy = self._policy_for(step)
        timeout = self._timeout_for(step)
        attempt = 0
        while True:
            attempt += 1
            counter["attempts"] = attempt
            attempt_start = time.perf_counter()
            deadline = attempt_start + timeout if timeout is not None else None
            attempt_sid = (
                tracer.begin(
                    f"attempt:{step.name}", "attempt", parent=step_sid,
                    step=step.name, attempt=attempt,
                )
                if tracer is not None
                else None
            )
            try:
                if fault_plan is not None:
                    fault_plan.fire(
                        step.name,
                        attempt,
                        remaining=None if deadline is None else deadline - time.perf_counter(),
                    )
                if deadline is not None and time.perf_counter() > deadline:
                    # An injected hang (or pool queueing) consumed the whole
                    # budget before the compute even started.
                    raise StepTimeout(
                        f"step {step.name!r} exceeded timeout {timeout:.3f}s "
                        "(cooperative deadline, pre-compute)"
                    )
                value, payload = self._execute(
                    step,
                    inputs,
                    pool,
                    None if deadline is None else deadline - time.perf_counter(),
                    tracer,
                )
                if payload is not None:
                    # Traced process-pool attempt: the worker measured its
                    # own compute, so anything beyond it inside this
                    # attempt was pool queueing.
                    counter["pool_wait"] = counter.get("pool_wait", 0.0) + max(
                        0.0,
                        (time.perf_counter() - attempt_start) - payload["compute"],
                    )
                if deadline is not None and time.perf_counter() > deadline:
                    raise StepTimeout(
                        f"step {step.name!r} exceeded timeout {timeout:.3f}s "
                        "(cooperative deadline)"
                    )
                if attempt_sid is not None:
                    tracer.end(attempt_sid, ok=True, **(payload or {}))
                return value
            except Exception as exc:
                if attempt_sid is not None:
                    tracer.end(attempt_sid, ok=False, error=type(exc).__name__)
                if attempt >= policy.max_attempts or not policy.retries(exc):
                    raise
                delay = policy.delay(step.name, attempt)
                if tracer is not None:
                    tracer.instant(
                        "retry.backoff", "retry",
                        step=step.name, attempt=attempt, delay=round(delay, 6),
                    )
                time.sleep(delay)

    def _obtain(
        self,
        step: PipelineStep,
        inputs: dict[str, Any],
        keys: Mapping[str, str],
        force: bool,
        pool: ProcessPoolExecutor | None,
        fault_plan: Any | None,
        counter: dict[str, Any],
        resume: "ResumeState | None" = None,
        tracer: Tracer | None = None,
        step_sid: int | None = None,
    ) -> tuple[Any, str]:
        """Produce ``step``'s value; returns ``(value, how)`` with ``how``
        one of ``"computed"``, ``"cached"``, ``"replayed"``."""
        key = keys[step.name]
        if resume is not None and not force and resume.completed.get(step.name) == key:
            # The interrupted run journaled this exact artifact as done.
            # Serve it straight from the cache without attempting compute;
            # a vanished/corrupt artifact simply falls through to the
            # normal path below.
            value = self.cache.peek(key)
            if value is not None:
                self.cache.hits += 1
                return value, "replayed"
        armed = False
        if fault_plan is not None:
            armed = fault_plan.arm_enospc(
                self.cache, step.name, key,
                will_compute=force or self.cache.peek(key) is None,
            )
        info: dict[str, Any] = {}
        value, cached = self.cache.get_or_compute(
            key,
            lambda: self._attempt_loop(
                step, inputs, pool, fault_plan, counter, tracer, step_sid
            ),
            force=force,
            info=info,
        )
        if armed and not info.get("computed"):
            # Another flight published first; the armed failure never fired
            # and must not leak onto an unrelated future put.
            self.cache.cancel_put_failure(key)
        if fault_plan is not None and not cached:
            # Corrupt-cache faults fire after a successful publish so the
            # *next* reader exercises the evict-and-recompute path.
            fault_plan.corrupt_cache(self.cache, step.name, key)
        counter["cache_unavailable"] = bool(info.get("computed")) and not info.get(
            "stored", True
        )
        return value, ("cached" if cached else "computed")

    @staticmethod
    def _classify(how: str, attempts: int) -> str:
        if how == "cached":
            return "cached"
        if how == "replayed":
            return "replayed"
        return "retried" if attempts > 1 else "ok"

    def _record_failure(
        self,
        step: PipelineStep,
        keys: Mapping[str, str],
        exc: BaseException,
        attempts: int,
        wall: float,
        started_at: float,
        finished_at: float,
        metrics: ExecutorMetrics,
        outcomes: dict[str, StepOutcome],
        journal: "RunJournal | None" = None,
        tracer: Tracer | None = None,
        step_sid: int | None = None,
        queue_seconds: float = 0.0,
    ) -> None:
        status = "timeout" if isinstance(exc, StepTimeout) else "failed"
        error = repr(exc)
        _log.warning(kv("step.failed", step=step.name, status=status, attempts=attempts))
        outcomes[step.name] = StepOutcome(step.name, status, attempts, error, wall)
        metrics.record(
            step.name, keys[step.name], False, wall, started_at, finished_at,
            outcome=status, attempts=attempts, error=error,
            queue_seconds=queue_seconds,
        )
        if tracer is not None and step_sid is not None:
            # Error class only (not the repr): failure spans must export
            # identically across executor modes for the determinism suite.
            tracer.end(
                step_sid, outcome=status, attempts=attempts,
                error=type(exc).__name__,
                queue_wait=round(queue_seconds, 6), wall=round(wall, 6),
            )
        if journal is not None:
            journal.step_done(
                step.name, keys[step.name], status, attempts, error=error
            )

    def _record_skip(
        self,
        step: PipelineStep,
        keys: Mapping[str, str],
        failed_deps: list[str],
        metrics: ExecutorMetrics,
        outcomes: dict[str, StepOutcome],
        journal: "RunJournal | None" = None,
        tracer: Tracer | None = None,
    ) -> None:
        reason = f"upstream failed: {sorted(failed_deps)}"
        outcomes[step.name] = StepOutcome(step.name, "skipped_upstream", 0, reason, 0.0)
        metrics.record(
            step.name, keys[step.name], False, 0.0, 0.0, 0.0,
            outcome="skipped_upstream", attempts=0, error=reason,
        )
        if tracer is not None:
            # Zero-length span, no reason text: sequential mode names every
            # failed dep while DAG mode names the first one discovered, and
            # the normalized export must not see that difference.
            now = tracer.now()
            tracer.add_span(
                f"step:{step.name}", "step", now, now,
                step=step.name, key=keys[step.name],
                deps=list(step.depends_on),
                outcome="skipped_upstream", attempts=0,
            )
        if journal is not None:
            journal.step_done(
                step.name, keys[step.name], "skipped_upstream", 0, error=reason
            )

    def _run_sequential(
        self,
        keys: Mapping[str, str],
        force: bool,
        metrics: ExecutorMetrics,
        t0: float,
        on_error: str,
        fault_plan: Any | None,
        outcomes: dict[str, StepOutcome],
        journal: "RunJournal | None" = None,
        resume: "ResumeState | None" = None,
        tracer: Tracer | None = None,
    ) -> dict[str, Any]:
        results: dict[str, Any] = {}
        unavailable: set[str] = set()  # failed or skipped steps
        # Sequential queue-wait: a step was "ready" the moment its last
        # dependency finished, so anything between then and its start is
        # earlier-but-independent steps hogging the single worker.
        finish_times: dict[str, float] = {}
        for step in self.steps:
            bad_deps = [d for d in step.depends_on if d in unavailable]
            if bad_deps:
                unavailable.add(step.name)
                self._record_skip(
                    step, keys, bad_deps, metrics, outcomes, journal, tracer
                )
                continue
            inputs = {dep: results[dep] for dep in step.depends_on}
            counter: dict[str, Any] = {"attempts": 0}
            if journal is not None:
                journal.step_start(step.name, keys[step.name])
            started = time.perf_counter()
            ready = max(
                (finish_times[d] for d in step.depends_on if d in finish_times),
                default=t0,
            )
            queue_seconds = max(0.0, started - ready)
            step_sid = (
                tracer.begin(
                    f"step:{step.name}", "step",
                    step=step.name, key=keys[step.name],
                    deps=list(step.depends_on),
                )
                if tracer is not None
                else None
            )
            try:
                value, how = self._obtain(
                    step, inputs, keys, force, None, fault_plan, counter, resume,
                    tracer, step_sid,
                )
            except Exception as exc:
                finished = time.perf_counter()
                self._record_failure(
                    step, keys, exc, counter["attempts"], finished - started,
                    started - t0, finished - t0, metrics, outcomes, journal,
                    tracer, step_sid, queue_seconds,
                )
                if on_error == "raise":
                    raise
                unavailable.add(step.name)
                continue
            finished = time.perf_counter()
            finish_times[step.name] = finished
            attempts = counter["attempts"]
            outcome = self._classify(how, attempts)
            cache_unavailable = bool(counter.get("cache_unavailable"))
            wall = finished - started
            outcomes[step.name] = StepOutcome(
                step.name, outcome, attempts, "", wall,
                cache_unavailable,
            )
            metrics.record(
                step.name, keys[step.name], how == "cached", wall,
                started - t0, finished - t0, outcome=outcome, attempts=attempts,
                cache_unavailable=cache_unavailable,
                queue_seconds=queue_seconds, compute_seconds=wall,
            )
            if tracer is not None and step_sid is not None:
                tracer.end(
                    step_sid, outcome=outcome, attempts=attempts,
                    queue_wait=round(queue_seconds, 6),
                    compute=round(wall, 6), wall=round(wall, 6),
                )
            if journal is not None:
                journal.step_done(
                    step.name, keys[step.name], outcome, attempts,
                    cache_unavailable=cache_unavailable,
                )
            results[step.name] = value
        return results

    def _run_dag(
        self,
        keys: Mapping[str, str],
        force: bool,
        metrics: ExecutorMetrics,
        mode: str,
        workers: int,
        t0: float,
        on_error: str,
        fault_plan: Any | None,
        outcomes: dict[str, StepOutcome],
        journal: "RunJournal | None" = None,
        resume: "ResumeState | None" = None,
        tracer: Tracer | None = None,
    ) -> dict[str, Any]:
        indegree = {s.name: len(s.depends_on) for s in self.steps}
        dependents: dict[str, list[PipelineStep]] = {s.name: [] for s in self.steps}
        for step in self.steps:
            for dep in step.depends_on:
                dependents[dep].append(step)
        by_name = {s.name: s for s in self.steps}
        results: dict[str, Any] = {}
        counters: dict[str, dict[str, Any]] = {}

        # Thread mode computes inside the coordination threads, so the
        # coordination pool IS the worker pool; process mode uses cheap
        # coordination threads (one can exist per step) that block on the
        # process pool, which enforces the real parallelism bound. Per-key
        # single-flight waits only ever block on another pipeline's compute
        # (keys are unique within one pipeline), so bounding the thread-mode
        # pool to ``workers`` cannot deadlock this run against itself.
        coord_size = workers if mode == "thread" else len(self.steps)
        pool = ProcessPoolExecutor(max_workers=workers) if mode == "process" else None
        # Zero-copy result transport is a process-mode concern only:
        # sequential and thread executors pass values in-process and must
        # never pay for (or depend on) a shm backend.
        self._shm_prefix = shm.run_prefix() if pool is not None else None

        def task(step: PipelineStep, inputs: dict[str, Any]) -> tuple[Any, str, float, float]:
            if journal is not None:
                journal.step_start(step.name, keys[step.name])
            counter = counters[step.name]
            started = time.perf_counter()
            counter["started_at"] = started
            if tracer is not None:
                counter["step_sid"] = tracer.begin(
                    f"step:{step.name}", "step",
                    step=step.name, key=keys[step.name],
                    deps=list(step.depends_on),
                )
            value, how = self._obtain(
                step, inputs, keys, force, pool, fault_plan, counter,
                resume, tracer, counter.get("step_sid"),
            )
            return value, how, started, time.perf_counter()

        def skip_subtree(root: PipelineStep) -> None:
            # Mark every transitive dependent of a failed step. Their
            # indegree never reaches zero, so none is ever submitted; this
            # pass exists purely so the report names them.
            stack = [root]
            while stack:
                parent = stack.pop()
                for dependent in dependents[parent.name]:
                    if dependent.name in outcomes:
                        continue
                    self._record_skip(
                        dependent, keys, [parent.name], metrics, outcomes, journal,
                        tracer,
                    )
                    stack.append(by_name[dependent.name])

        try:
            with ThreadPoolExecutor(max_workers=coord_size) as coord:
                inflight: dict[Future, PipelineStep] = {}

                def submit(step: PipelineStep) -> None:
                    inputs = {dep: results[dep] for dep in step.depends_on}
                    # A step is "ready" at submit time (all deps resolved);
                    # the gap to its task starting is coordination-pool
                    # queueing, charged to queue-wait in the trace.
                    counters[step.name] = {"attempts": 0, "ready_at": time.perf_counter()}
                    inflight[coord.submit(task, step, inputs)] = step

                for step in self.steps:
                    if indegree[step.name] == 0:
                        submit(step)
                while inflight:
                    done, _ = wait(inflight, return_when=FIRST_COMPLETED)
                    for fut in done:
                        step = inflight.pop(fut)
                        counter = counters[step.name]
                        try:
                            value, how, started, finished = fut.result()
                        except BaseException as exc:
                            finished = time.perf_counter()
                            started = counter.get("started_at", finished)
                            queue_seconds = max(
                                0.0, started - counter.get("ready_at", started)
                            ) + counter.get("pool_wait", 0.0)
                            self._record_failure(
                                step, keys, exc, counter["attempts"],
                                finished - started, started - t0, finished - t0,
                                metrics, outcomes, journal,
                                tracer, counter.get("step_sid"), queue_seconds,
                            )
                            if on_error == "raise" or not isinstance(exc, Exception):
                                for other in inflight:
                                    other.cancel()
                                raise
                            skip_subtree(step)
                            continue
                        attempts = counter["attempts"]
                        outcome = self._classify(how, attempts)
                        cache_unavailable = bool(counter.get("cache_unavailable"))
                        wall = finished - started
                        pool_wait = counter.get("pool_wait", 0.0)
                        queue_seconds = (
                            max(0.0, started - counter.get("ready_at", started))
                            + pool_wait
                        )
                        compute_seconds = max(0.0, wall - pool_wait)
                        metrics.record(
                            step.name, keys[step.name], how == "cached",
                            wall, started - t0, finished - t0,
                            outcome=outcome, attempts=attempts,
                            cache_unavailable=cache_unavailable,
                            queue_seconds=queue_seconds,
                            compute_seconds=compute_seconds,
                        )
                        outcomes[step.name] = StepOutcome(
                            step.name, outcome, attempts, "", wall,
                            cache_unavailable,
                        )
                        if tracer is not None and "step_sid" in counter:
                            tracer.end(
                                counter["step_sid"], outcome=outcome,
                                attempts=attempts,
                                queue_wait=round(queue_seconds, 6),
                                compute=round(compute_seconds, 6),
                                wall=round(wall, 6),
                            )
                        if journal is not None:
                            journal.step_done(
                                step.name, keys[step.name], outcome, attempts,
                                cache_unavailable=cache_unavailable,
                            )
                        results[step.name] = value
                        for dependent in dependents[step.name]:
                            indegree[dependent.name] -= 1
                            if indegree[dependent.name] == 0:
                                submit(by_name[dependent.name])
        finally:
            if pool is not None:
                pool.shutdown(wait=True, cancel_futures=True)
                # Any segment still alive under this run's prefix was
                # orphaned by a killed/crashed worker whose handle never
                # reached a decode_result; reclaim it.
                prefix = self._shm_prefix
                self._shm_prefix = None
                if prefix is not None:
                    leaked = shm.sweep(prefix)
                    if leaked:
                        _log.warning(
                            "swept %d leaked shm segment(s) %s",
                            len(leaked), kv(prefix=prefix),
                        )
        return results
