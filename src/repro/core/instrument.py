"""The reconstructed study instrument.

Both waves answer the same core items so trends are comparable; items that
did not exist in 2011 (ML frameworks, containers) are simply asked of both
waves — the 2011 profile answers them the way 2011 respondents would have
("no", empty) rather than dropping the question, matching how the paper
retro-codes its baseline.

Option lists are module constants so analysis code and cohort profiles can
share them without string drift.
"""

from __future__ import annotations

from repro.survey import (
    FreeTextQuestion,
    LikertQuestion,
    MultiChoiceQuestion,
    NumericQuestion,
    Questionnaire,
    Section,
    ShowIf,
    SingleChoiceQuestion,
)
from repro.synth.fields import CAREER_STAGES, field_names

__all__ = [
    "LANGUAGES",
    "PARALLEL_MODES",
    "ML_FRAMEWORKS",
    "SCHEDULERS",
    "VCS_OPTIONS",
    "TESTING_OPTIONS",
    "TRAINING_OPTIONS",
    "DATA_SCALES",
    "STORAGE_LOCATIONS",
    "OS_OPTIONS",
    "EDITOR_OPTIONS",
    "build_instrument",
]

LANGUAGES: tuple[str, ...] = (
    "python",
    "r",
    "matlab",
    "c",
    "cpp",
    "fortran",
    "julia",
    "java",
    "shell",
    "perl",
    "javascript",
)

PARALLEL_MODES: tuple[str, ...] = (
    "multicore",
    "openmp",
    "mpi",
    "gpu",
    "job_arrays",
    "big_data_framework",
    "cloud",
)

ML_FRAMEWORKS: tuple[str, ...] = (
    "pytorch",
    "tensorflow",
    "scikit-learn",
    "jax",
    "keras",
    "xgboost",
    "huggingface",
)

SCHEDULERS: tuple[str, ...] = ("slurm", "pbs", "lsf", "sge", "htcondor")

VCS_OPTIONS: tuple[str, ...] = ("none", "git", "svn", "mercurial", "other")

TESTING_OPTIONS: tuple[str, ...] = (
    "none",
    "ad_hoc",
    "unit_tests",
    "unit_tests_and_ci",
)

TRAINING_OPTIONS: tuple[str, ...] = (
    "self_taught",
    "university_courses",
    "formal_cs_degree",
    "workshops",
)

DATA_SCALES: tuple[str, ...] = (
    "under_1gb",
    "1gb_to_100gb",
    "100gb_to_1tb",
    "1tb_to_10tb",
    "over_10tb",
)

STORAGE_LOCATIONS: tuple[str, ...] = (
    "laptop",
    "lab_server",
    "cluster_storage",
    "cloud_storage",
    "external_archive",
)

OS_OPTIONS: tuple[str, ...] = ("linux", "macos", "windows")

EDITOR_OPTIONS: tuple[str, ...] = (
    "vscode",
    "vim",
    "emacs",
    "jupyter",
    "pycharm",
    "matlab_ide",
    "rstudio",
    "plain_text_editor",
)


def build_instrument() -> Questionnaire:
    """Build the canonical practice-survey questionnaire.

    Returns a fresh :class:`~repro.survey.Questionnaire`; the object is
    cheap to construct and immutable in practice, so callers build their own
    rather than sharing module state.
    """
    questions = [
        # -- background -----------------------------------------------------
        SingleChoiceQuestion(
            key="field",
            text="Which field best describes your research?",
            options=field_names(),
        ),
        SingleChoiceQuestion(
            key="career_stage",
            text="What is your career stage?",
            options=tuple(CAREER_STAGES),
        ),
        NumericQuestion(
            key="years_programming",
            text="For how many years have you written research software?",
            minimum=0,
            maximum=60,
            integer_only=True,
            unit="years",
        ),
        SingleChoiceQuestion(
            key="training",
            text="How did you primarily learn to program?",
            options=TRAINING_OPTIONS,
        ),
        LikertQuestion(
            key="expertise",
            text="Rate your programming expertise.",
            points=5,
            low_label="novice",
            high_label="expert",
        ),
        # -- languages -------------------------------------------------------
        MultiChoiceQuestion(
            key="languages",
            text="Which programming languages do you use for research?",
            options=LANGUAGES,
            min_selected=1,
        ),
        SingleChoiceQuestion(
            key="primary_language",
            text="Which language do you use most?",
            options=LANGUAGES,
        ),
        # -- parallelism and infrastructure ----------------------------------
        SingleChoiceQuestion(
            key="uses_parallelism",
            text="Do you run parallel computations?",
            options=("yes", "no"),
        ),
        MultiChoiceQuestion(
            key="parallel_modes",
            text="Which forms of parallelism do you use?",
            options=PARALLEL_MODES,
            min_selected=1,
        ),
        SingleChoiceQuestion(
            key="uses_cluster",
            text="Do you use a shared HPC cluster?",
            options=("yes", "no"),
        ),
        SingleChoiceQuestion(
            key="scheduler",
            text="Which job scheduler do you submit to?",
            options=SCHEDULERS,
            allow_other=True,
        ),
        SingleChoiceQuestion(
            key="uses_gpu",
            text="Do you use GPUs for your research computing?",
            options=("yes", "no"),
        ),
        # -- ML / AI ----------------------------------------------------------
        SingleChoiceQuestion(
            key="uses_ml",
            text="Do you use machine-learning methods in your research?",
            options=("yes", "no"),
        ),
        MultiChoiceQuestion(
            key="ml_frameworks",
            text="Which ML frameworks do you use?",
            options=ML_FRAMEWORKS,
            min_selected=1,
        ),
        # -- software-engineering practices ------------------------------------
        SingleChoiceQuestion(
            key="vcs",
            text="Which version-control system do you use?",
            options=VCS_OPTIONS,
        ),
        SingleChoiceQuestion(
            key="testing",
            text="How do you test your research code?",
            options=TESTING_OPTIONS,
        ),
        SingleChoiceQuestion(
            key="uses_containers",
            text="Do you use containers (Docker/Apptainer) for your software?",
            options=("yes", "no"),
        ),
        # -- data ---------------------------------------------------------------
        SingleChoiceQuestion(
            key="data_scale",
            text="How large is the data for a typical project?",
            options=DATA_SCALES,
        ),
        MultiChoiceQuestion(
            key="storage_locations",
            text="Where does your research data live?",
            options=STORAGE_LOCATIONS,
            min_selected=1,
        ),
        # -- work environment -----------------------------------------------------
        SingleChoiceQuestion(
            key="primary_os",
            text="What operating system do you primarily develop on?",
            options=OS_OPTIONS,
        ),
        MultiChoiceQuestion(
            key="editors",
            text="Which editors/IDEs do you use for research code?",
            options=EDITOR_OPTIONS,
            min_selected=1,
        ),
        NumericQuestion(
            key="hours_per_week",
            text="Hours per week spent on computational work?",
            minimum=0,
            maximum=100,
            integer_only=True,
            unit="hours",
        ),
        SingleChoiceQuestion(
            key="hpc_training",
            text="Have you attended formal HPC training (workshops, courses)?",
            options=("yes", "no"),
        ),
        SingleChoiceQuestion(
            key="contributes_open_source",
            text="Do you contribute to open-source research software?",
            options=("yes", "no"),
        ),
        # -- free text ------------------------------------------------------------
        FreeTextQuestion(
            key="stack_description",
            text="Briefly describe your software stack.",
            max_length=500,
        ),
        FreeTextQuestion(
            key="biggest_challenge",
            text="What is the biggest obstacle in your computational work?",
            max_length=500,
        ),
    ]
    sections = [
        Section("Background", ("field", "career_stage", "years_programming", "training", "expertise")),
        Section("Languages", ("languages", "primary_language")),
        Section(
            "Parallelism and infrastructure",
            ("uses_parallelism", "parallel_modes", "uses_cluster", "scheduler", "uses_gpu"),
        ),
        Section("Machine learning", ("uses_ml", "ml_frameworks")),
        Section("Engineering practices", ("vcs", "testing", "uses_containers")),
        Section("Data", ("data_scale", "storage_locations")),
        Section(
            "Work environment",
            (
                "primary_os",
                "editors",
                "hours_per_week",
                "hpc_training",
                "contributes_open_source",
            ),
        ),
        Section("Open questions", ("stack_description", "biggest_challenge")),
    ]
    skip_logic = {
        "parallel_modes": ShowIf("uses_parallelism", ("yes",)),
        "scheduler": ShowIf("uses_cluster", ("yes",)),
        "ml_frameworks": ShowIf("uses_ml", ("yes",)),
        "hpc_training": ShowIf("uses_cluster", ("yes",)),
    }
    return Questionnaire(
        name="computation-for-research-practice-survey",
        questions=questions,
        sections=sections,
        skip_logic=skip_logic,
    )
