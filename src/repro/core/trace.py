"""End-to-end run tracing: span/event bus, Perfetto export, critical path.

Every other observability surface in this repo (``ExecutorMetrics``,
``RunReport``, the run journal) records *what* happened; this module
records *where wall-clock went*. A :class:`Tracer` is a process-safe span
and instant-event bus that :meth:`repro.core.Pipeline.run` opens a root
span on (one per run id, correlated with the PR-4 journal) and every
subsystem emits into:

* the pipeline emits one ``step`` span per step and one ``attempt`` span
  per compute attempt, tagged with outcome (``ok``/``cached``/``retried``/
  ``timeout``/``skipped_upstream``/``replayed``), cache key, worker id,
  and queue-wait vs compute time;
* :class:`~repro.core.pipeline.ArtifactCache` hits/misses/puts,
  :class:`~repro.io.locks.FileLock` acquisitions,
  :class:`~repro.core.pipeline.RetryPolicy` backoff sleeps and
  :class:`~repro.core.faults.FaultPlan` firings emit instant events
  through the *ambient* tracer (:func:`instant`), so none of those layers
  needs the tracer plumbed through its signature;
* spans opt into resource deltas (CPU time and peak RSS via
  :mod:`resource`, Python-heap peak via :mod:`tracemalloc` when tracing).

Spans from thread *and* process workers are collected losslessly: thread
workers append into the tracer's lock-guarded buffers directly, and
process workers measure themselves locally and ship the measurement back
through the existing result channel (the pipeline's traced worker wrapper
returns ``(value, payload)``), never through a shared file.

Serialization is deterministic: :meth:`Tracer.to_perfetto` emits
Chrome/Perfetto ``trace_event`` JSON (load it at https://ui.perfetto.dev
or ``chrome://tracing``) with stable ordering, and
``to_perfetto(normalize=True)`` strips every timing-, host- and
run-dependent field so a fixed seed/DAG exports byte-identically across
sequential/thread/process executors — the determinism suite diffs exactly
that. :meth:`Tracer.to_prometheus` renders the same data as a
Prometheus-style text metrics snapshot.

On top of the span tree, :func:`critical_path` implements DAG
critical-path analysis (longest dependency chain, per-step slack,
parallel efficiency, theoretical max speedup); ``repro trace`` renders it
and ``repro report --trace out.json`` wires it through the full report
build.

Tracing is *zero-cost when disabled*: the pipeline's default is
``trace=None`` (one ``is None`` test per emit site), the ambient hook is
a single module-global load when no tracer is active, and — like
retry/timeout/journal config — tracing never participates in cache keys.
The ``trace_overhead`` bench gates the enabled cost at <3% in CI; the
disabled path is that bench's own baseline.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

try:  # pragma: no cover - resource is POSIX-only
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX platform
    _resource = None  # type: ignore[assignment]

try:
    import tracemalloc as _tracemalloc
except ImportError:  # pragma: no cover - tracemalloc is CPython-universal
    _tracemalloc = None  # type: ignore[assignment]

__all__ = [
    "Tracer",
    "SpanRecord",
    "InstantRecord",
    "TraceError",
    "current_tracer",
    "activate",
    "instant",
    "resource_probe",
    "validate_perfetto",
    "load_perfetto",
    "critical_path",
    "analyze_perfetto",
    "CriticalPathResult",
    "CriticalStep",
]

TRACE_SCHEMA = 1

#: Span/event args that depend on wall-clock, host, or run identity and
#: therefore must not survive ``normalize=True`` export (everything else —
#: outcomes, cache keys, attempt counts, dependency lists — is a pure
#: function of seed + DAG and stays).
_TIMING_ARGS = frozenset(
    {
        "queue_wait",
        "compute",
        "wall",
        "cpu",
        "rss_kb",
        "py_peak_kb",
        "worker",
        "worker_pid",
        "wait",
        "delay",
        "run_id",
        "resumed_from",
        "executor",
        "workers",
        "pid",
        "wall_seconds",
        "seconds",
    }
)

#: Event categories whose *presence* is nondeterministic — dist
#: scheduling events (lease expiries, heartbeat gaps, reassignments,
#: speculation) depend on OS timing, so normalized exports drop the
#: category wholesale rather than just scrubbing its args. The spine's
#: worker-side spans (``wtask`` task spans, ``worker`` lifecycle spans —
#: see :mod:`repro.obs.spine`) are ephemeral for the same reason: which
#: worker ran a step, and whether a killed worker's final flush survived,
#: is OS timing, not seed + DAG.
_EPHEMERAL_CATS = frozenset({"dist", "wtask", "worker"})


class TraceError(RuntimeError):
    """Raised for malformed traces and analysis inputs."""


@dataclass
class SpanRecord:
    """One duration span (``ph="X"`` in trace_event terms).

    ``start``/``end`` are seconds relative to the tracer's epoch;
    ``end is None`` while the span is open. ``tid`` is a logical worker
    label (thread name or ``w<pid>`` for process workers), not a kernel
    thread id — Perfetto lanes group by it.
    """

    sid: int
    parent: int | None
    name: str
    cat: str
    tid: str
    start: float
    end: float | None = None
    args: dict[str, Any] = field(default_factory=dict)


@dataclass
class InstantRecord:
    """One instant event (``ph="i"``): something happened at a moment."""

    name: str
    cat: str
    tid: str
    ts: float
    args: dict[str, Any] = field(default_factory=dict)


def resource_probe() -> tuple[float, int] | None:
    """Current ``(cpu_seconds, max_rss_kb)`` of this process, or None.

    CPU is user+system time; RSS is the kernel's high-watermark (KiB on
    Linux; normalized from bytes on macOS). Returns None where
    :mod:`resource` is unavailable so callers degrade instead of crashing.
    """
    if _resource is None:
        return None
    ru = _resource.getrusage(_resource.RUSAGE_SELF)
    rss = int(ru.ru_maxrss)
    if rss > 1 << 24:  # macOS reports bytes, Linux kilobytes
        rss //= 1024
    return ru.ru_utime + ru.ru_stime, rss


class Tracer:
    """Process-safe span/event collector for one (or a few) pipeline runs.

    Thread-safe: coordination threads in thread/process executor modes
    append concurrently under one lock. Process workers never touch the
    tracer object — they self-measure and return a payload through the
    pool's result channel, which the coordinating thread folds in (see
    ``repro.core.pipeline``).

    Parameters
    ----------
    resources:
        When True, every span additionally records CPU-time and peak-RSS
        deltas (and the Python-heap peak when :mod:`tracemalloc` is
        actively tracing). Off by default — the probe is two syscalls per
        span edge.
    """

    def __init__(self, *, resources: bool = False) -> None:
        self.resources = bool(resources)
        self.epoch = time.time()
        self._t0 = time.perf_counter()
        self._lock = threading.Lock()
        self._next_sid = 0
        self.spans: list[SpanRecord] = []
        self.instants: list[InstantRecord] = []
        self._by_sid: dict[int, SpanRecord] = {}
        self._res_at_begin: dict[int, tuple[float, int]] = {}

    # -- clock ----------------------------------------------------------------

    def now(self) -> float:
        """Seconds since this tracer was created (monotonic)."""
        return time.perf_counter() - self._t0

    @staticmethod
    def _tid() -> str:
        return threading.current_thread().name

    # -- span lifecycle -------------------------------------------------------

    def begin(
        self,
        name: str,
        cat: str = "",
        parent: int | None = None,
        tid: str | None = None,
        **args: Any,
    ) -> int:
        """Open a span; returns its id for :meth:`end`."""
        record = SpanRecord(
            sid=0,
            parent=parent,
            name=name,
            cat=cat,
            tid=tid if tid is not None else self._tid(),
            start=self.now(),
            args=dict(args),
        )
        probe = resource_probe() if self.resources else None
        with self._lock:
            record.sid = self._next_sid
            self._next_sid += 1
            self.spans.append(record)
            self._by_sid[record.sid] = record
            if probe is not None:
                self._res_at_begin[record.sid] = probe
        return record.sid

    def end(self, sid: int, **args: Any) -> None:
        """Close a span, merging ``args`` into its tags."""
        now = self.now()
        probe = resource_probe() if self.resources else None
        with self._lock:
            record = self._by_sid.get(sid)
            if record is None or record.end is not None:
                return
            record.end = now
            record.args.update(args)
            begin_probe = self._res_at_begin.pop(sid, None)
            if probe is not None and begin_probe is not None:
                record.args.setdefault("cpu", round(probe[0] - begin_probe[0], 6))
                record.args.setdefault("rss_kb", probe[1])
                if _tracemalloc is not None and _tracemalloc.is_tracing():
                    record.args.setdefault(
                        "py_peak_kb", _tracemalloc.get_traced_memory()[1] // 1024
                    )

    def add_span(
        self,
        name: str,
        cat: str,
        start: float,
        end: float,
        parent: int | None = None,
        tid: str | None = None,
        **args: Any,
    ) -> int:
        """Record an already-measured span (e.g. shipped from a worker)."""
        record = SpanRecord(
            sid=0,
            parent=parent,
            name=name,
            cat=cat,
            tid=tid if tid is not None else self._tid(),
            start=start,
            end=end,
            args=dict(args),
        )
        with self._lock:
            record.sid = self._next_sid
            self._next_sid += 1
            self.spans.append(record)
            self._by_sid[record.sid] = record
        return record.sid

    def instant(self, name: str, cat: str = "", tid: str | None = None, **args: Any) -> None:
        """Record one instant event."""
        record = InstantRecord(
            name=name,
            cat=cat,
            tid=tid if tid is not None else self._tid(),
            ts=self.now(),
            args=dict(args),
        )
        with self._lock:
            self.instants.append(record)

    def close_open_spans(self, **args: Any) -> None:
        """End every still-open span (a raising run must not leak spans)."""
        now = self.now()
        with self._lock:
            for record in self.spans:
                if record.end is None:
                    record.end = now
                    record.args.update(args)
            self._res_at_begin.clear()

    # -- export: Chrome/Perfetto trace_event JSON -----------------------------

    @staticmethod
    def _clean_args(args: Mapping[str, Any], normalize: bool) -> dict[str, Any]:
        if not normalize:
            return dict(args)
        return {k: v for k, v in args.items() if k not in _TIMING_ARGS}

    def to_perfetto(self, normalize: bool = False) -> dict[str, Any]:
        """The trace as a Chrome/Perfetto ``trace_event`` JSON object.

        ``normalize=True`` strips every timing-, host- and run-dependent
        field (timestamps, durations, worker/tid labels, pids, resource
        deltas) and sorts events canonically, so two runs of the same
        seed/DAG — in *any* executor mode — export byte-identical JSON.
        The default keeps real microsecond timestamps for the Perfetto
        timeline view.
        """
        pid = 0 if normalize else os.getpid()
        by_sid_name = {s.sid: s.name for s in self.spans}
        events: list[dict[str, Any]] = []
        for s in self.spans:
            if normalize and (s.cat or "trace") in _EPHEMERAL_CATS:
                continue
            end = s.end if s.end is not None else s.start
            event: dict[str, Any] = {
                "name": s.name,
                "cat": s.cat or "trace",
                "ph": "X",
                "ts": 0 if normalize else round(s.start * 1e6, 1),
                "dur": 0 if normalize else round(max(end - s.start, 0.0) * 1e6, 1),
                "pid": pid,
                "tid": "0" if normalize else s.tid,
                "args": self._clean_args(s.args, normalize),
            }
            if s.parent is not None and s.parent in by_sid_name:
                event["args"]["parent"] = by_sid_name[s.parent]
            events.append(event)
        for i in self.instants:
            if normalize and (i.cat or "trace") in _EPHEMERAL_CATS:
                continue
            events.append(
                {
                    "name": i.name,
                    "cat": i.cat or "trace",
                    "ph": "i",
                    "s": "t",
                    "ts": 0 if normalize else round(i.ts * 1e6, 1),
                    "pid": pid,
                    "tid": "0" if normalize else i.tid,
                    "args": self._clean_args(i.args, normalize),
                }
            )
        if normalize:
            events.sort(
                key=lambda e: (
                    e["ph"],
                    e["cat"],
                    e["name"],
                    json.dumps(e["args"], sort_keys=True, default=str),
                )
            )
        else:
            events.sort(key=lambda e: (e["ts"], e["ph"], e["name"]))
            events.insert(
                0,
                {
                    "name": "process_name",
                    "ph": "M",
                    "ts": 0,
                    "pid": pid,
                    "tid": "0",
                    "args": {"name": "repro pipeline"},
                },
            )
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"schema": TRACE_SCHEMA, "generator": "repro.core.trace"},
        }

    def write_perfetto(self, path: str | Path, normalize: bool = False) -> Path:
        """Serialize :meth:`to_perfetto` to ``path`` deterministically."""
        path = Path(path)
        path.write_text(
            json.dumps(
                self.to_perfetto(normalize=normalize),
                sort_keys=True,
                separators=(",", ":"),
                default=str,
            )
            + "\n",
            encoding="utf-8",
        )
        return path

    # -- export: Prometheus text snapshot -------------------------------------

    def to_prometheus(self) -> str:
        """The trace aggregated as a Prometheus text-format snapshot.

        One-shot gauge/counter families (no timestamps — the snapshot is
        meant for scrape-at-end-of-run or diffing in tests):

        * ``repro_run_wall_seconds`` / ``repro_run_steps_total{outcome=}``
        * ``repro_step_wall_seconds{step=}`` / ``_queue_seconds`` /
          ``_compute_seconds`` / ``repro_step_attempts_total{step=}``
        * ``repro_events_total{event=}`` — every instant family
          (cache hits, lock acquisitions, backoff sleeps, fault firings).
        * ``repro_skipped_rows_total{reader=}`` — rows the tolerant
          readers dropped, summed from ``ingest.skipped_rows`` instants
          (the event count alone would count reader *invocations*, not
          rows).

        Rendering goes through the repo's one exposition writer
        (:class:`repro.obs.promfmt.PromWriter`), so label escaping and
        ``# HELP``/``# TYPE`` layout are shared — and validated by one
        shared validator — with the :class:`repro.obs.registry.MetricsRegistry`
        renderings.
        """
        from repro.obs.promfmt import PromWriter

        writer = PromWriter()
        steps = sorted(
            (s for s in self.spans if s.cat == "step"), key=lambda s: s.name
        )
        outcome_counts: dict[str, int] = {}
        for s in steps:
            outcome = str(s.args.get("outcome", "unknown"))
            outcome_counts[outcome] = outcome_counts.get(outcome, 0) + 1
        event_counts: dict[str, int] = {}
        for i in self.instants:
            event_counts[i.name] = event_counts.get(i.name, 0) + 1
        writer.family(
            "repro_run_wall_seconds", "gauge", "Wall-clock of the traced run."
        )
        for root in (s for s in self.spans if s.cat == "run"):
            wall = (root.end if root.end is not None else root.start) - root.start
            writer.sample(
                "repro_run_wall_seconds",
                {"run": str(root.args.get("run_id", ""))},
                f"{wall:.6f}",
            )
        writer.family("repro_run_steps_total", "counter", "Steps by outcome.")
        for outcome in sorted(outcome_counts):
            writer.sample(
                "repro_run_steps_total", {"outcome": outcome}, str(outcome_counts[outcome])
            )
        for metric, key, help_text in (
            ("repro_step_wall_seconds", "wall", "Per-step wall time (obtain)."),
            ("repro_step_queue_seconds", "queue_wait", "Per-step queue wait."),
            ("repro_step_compute_seconds", "compute", "Per-step compute time."),
        ):
            writer.family(metric, "gauge", help_text)
            for s in steps:
                name = str(s.args.get("step", s.name))
                if key == "wall":
                    end = s.end if s.end is not None else s.start
                    value = float(end - s.start)
                else:
                    value = float(s.args.get(key, 0.0) or 0.0)
                writer.sample(metric, {"step": name}, f"{value:.6f}")
        writer.family(
            "repro_step_attempts_total", "counter", "Compute attempts per step."
        )
        for s in steps:
            writer.sample(
                "repro_step_attempts_total",
                {"step": str(s.args.get("step", s.name))},
                str(int(s.args.get("attempts", 0) or 0)),
            )
        writer.family("repro_events_total", "counter", "Instant events by family.")
        for event in sorted(event_counts):
            writer.sample(
                "repro_events_total", {"event": event}, str(event_counts[event])
            )
        skipped_rows: dict[str, int] = {}
        for i in self.instants:
            if i.name == "ingest.skipped_rows":
                reader = str(i.args.get("reader", "unknown"))
                skipped_rows[reader] = skipped_rows.get(reader, 0) + int(
                    i.args.get("count", 0) or 0
                )
        writer.family(
            "repro_skipped_rows_total", "counter", "Rows dropped by tolerant readers."
        )
        for reader in sorted(skipped_rows):
            writer.sample(
                "repro_skipped_rows_total", {"reader": reader}, str(skipped_rows[reader])
            )
        return writer.render()


# -- the ambient tracer --------------------------------------------------------
#
# Low layers (ArtifactCache, FileLock, FaultPlan, retry sleeps) emit through
# a module-global "active tracer" instead of threading the tracer through
# every signature. Pipeline.run installs it for the duration of a traced
# run. The disabled path is one module-global load + None test.

_active: Tracer | None = None
_active_lock = threading.Lock()


def current_tracer() -> Tracer | None:
    """The ambient tracer installed by an in-progress traced run, or None."""
    return _active


class _Activation:
    def __init__(self, tracer: Tracer | None) -> None:
        self._tracer = tracer
        self._previous: Tracer | None = None

    def __enter__(self) -> Tracer | None:
        global _active
        with _active_lock:
            self._previous = _active
            if self._tracer is not None:
                _active = self._tracer
        return self._tracer

    def __exit__(self, *exc_info: object) -> None:
        global _active
        with _active_lock:
            _active = self._previous


def activate(tracer: Tracer | None) -> _Activation:
    """Install ``tracer`` as the ambient tracer for a ``with`` block.

    ``activate(None)`` is a no-op context (the disabled path never mutates
    the global). Nesting restores the previous tracer on exit.
    """
    return _Activation(tracer)


def instant(name: str, cat: str = "", **args: Any) -> None:
    """Emit an instant event into the ambient tracer, if one is active.

    This is the hook the cache/lock/retry/fault layers call; when no
    traced run is in progress it costs one global load and a None test.
    """
    tracer = _active
    if tracer is not None:
        tracer.instant(name, cat, **args)


# -- loading and validating exports --------------------------------------------


def load_perfetto(path: str | Path) -> dict[str, Any]:
    """Load an exported trace file, validating the top-level shape."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    problems = validate_perfetto(data)
    if problems:
        raise TraceError(f"{path}: invalid trace_event JSON: {problems[0]}")
    return data


def validate_perfetto(data: Any) -> list[str]:
    """Check ``data`` against the trace_event schema; returns problems.

    Covers the fields Perfetto/chrome://tracing require to load a file:
    a ``traceEvents`` list whose members carry ``name``/``ph``/``ts``/
    ``pid``/``tid``, with a numeric non-negative ``dur`` on complete
    (``"X"``) events. An empty list means the export is loadable.
    """
    problems: list[str] = []
    if not isinstance(data, dict):
        return ["top level is not a JSON object"]
    events = data.get("traceEvents")
    if not isinstance(events, list):
        return ["missing traceEvents list"]
    for n, event in enumerate(events):
        where = f"traceEvents[{n}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        for required in ("name", "ph", "ts", "pid", "tid"):
            if required not in event:
                problems.append(f"{where}: missing {required!r}")
        ph = event.get("ph")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: X event needs a non-negative dur")
        if "args" in event and not isinstance(event["args"], dict):
            problems.append(f"{where}: args is not an object")
        if len(problems) >= 20:
            problems.append("... (further problems suppressed)")
            break
    return problems


# -- DAG critical-path analysis ------------------------------------------------


@dataclass(frozen=True)
class CriticalStep:
    """One step's place in the critical-path solution.

    ``slack`` is how much the step could grow without lengthening the
    critical path (0.0 on the path itself); ``earliest_finish`` is its
    completion offset under infinite workers.
    """

    name: str
    seconds: float
    deps: tuple[str, ...]
    earliest_finish: float
    slack: float
    on_critical_path: bool


@dataclass(frozen=True)
class CriticalPathResult:
    """Critical-path solution over one traced (or described) DAG run.

    ``length`` is the longest dependency chain's duration — the wall-clock
    floor no worker count can beat; ``total_work`` is the serial sum of
    all step durations. ``wall``/``workers`` describe the actual run when
    known (0.0/0 otherwise).
    """

    steps: tuple[CriticalStep, ...]
    path: tuple[str, ...]
    length: float
    total_work: float
    wall: float = 0.0
    workers: int = 0

    @property
    def max_speedup(self) -> float:
        """Theoretical speedup ceiling: total work over the critical path."""
        return self.total_work / self.length if self.length > 0 else 1.0

    @property
    def actual_speedup(self) -> float:
        """Achieved speedup: total work over observed wall-clock."""
        return self.total_work / self.wall if self.wall > 0 else 0.0

    @property
    def parallel_efficiency(self) -> float:
        """span-sum / (wall-clock × workers): busy fraction of the pool."""
        capacity = self.wall * self.workers
        return min(1.0, self.total_work / capacity) if capacity > 0 else 0.0

    def step(self, name: str) -> CriticalStep:
        for s in self.steps:
            if s.name == name:
                return s
        raise KeyError(f"no step {name!r} in this analysis")

    def render(self, top: int = 10) -> str:
        """Human-readable critical-path report (``repro trace`` output)."""
        lines = [
            (
                f"critical path: {len(self.path)} step(s), "
                f"{self.length:.3f}s of {self.total_work:.3f}s total work "
                f"(max speedup {self.max_speedup:.2f}x)"
            )
        ]
        for name in self.path:
            s = self.step(name)
            lines.append(f"  -> {name}  {s.seconds:.3f}s")
        if self.wall > 0:
            line = (
                f"run: {self.wall:.3f}s wall on {self.workers} worker(s) — "
                f"{self.actual_speedup:.2f}x speedup, "
                f"{100.0 * self.parallel_efficiency:.0f}% parallel efficiency"
            )
            lines.append(line)
        off_path = sorted(
            (s for s in self.steps if not s.on_critical_path),
            key=lambda s: s.slack,
        )
        if off_path:
            lines.append(f"slack (top {min(top, len(off_path))} tightest):")
            for s in off_path[:top]:
                lines.append(f"  {s.name}  {s.seconds:.3f}s, slack {s.slack:.3f}s")
        return "\n".join(lines)


def critical_path(
    steps: Iterable[tuple[str, Sequence[str], float]],
    wall: float = 0.0,
    workers: int = 0,
) -> CriticalPathResult:
    """Solve the critical path of a DAG of ``(name, deps, seconds)`` steps.

    Standard longest-path CPM over the dependency DAG: earliest finish is
    computed forward, the longest tail (step-inclusive downstream chain)
    backward, and slack is the critical-path length minus the longest
    path *through* each step. Steps may arrive in any order; unknown
    dependency names raise :class:`TraceError` (a cycle surfaces as the
    same error, since topological ordering then fails).
    """
    triples = [(name, tuple(deps), max(float(seconds), 0.0)) for name, deps, seconds in steps]
    if not triples:
        raise TraceError("no steps to analyze")
    names = [t[0] for t in triples]
    if len(set(names)) != len(names):
        raise TraceError(f"duplicate step names: {names}")
    by_name = {t[0]: t for t in triples}
    for name, deps, _ in triples:
        unknown = [d for d in deps if d not in by_name]
        if unknown:
            raise TraceError(f"step {name!r} depends on unknown steps {unknown}")

    # Topological order (Kahn); leftovers mean a cycle.
    indegree = {name: len(deps) for name, deps, _ in triples}
    dependents: dict[str, list[str]] = {name: [] for name in names}
    for name, deps, _ in triples:
        for dep in deps:
            dependents[dep].append(name)
    order = [name for name in names if indegree[name] == 0]
    cursor = 0
    while cursor < len(order):
        for dependent in dependents[order[cursor]]:
            indegree[dependent] -= 1
            if indegree[dependent] == 0:
                order.append(dependent)
        cursor += 1
    if len(order) != len(names):
        stuck = sorted(set(names) - set(order))
        raise TraceError(f"dependency cycle through {stuck}")

    earliest: dict[str, float] = {}
    critical_dep: dict[str, str | None] = {}
    for name in order:
        _, deps, seconds = by_name[name]
        best_dep, best_finish = None, 0.0
        for dep in deps:
            if earliest[dep] > best_finish:
                best_dep, best_finish = dep, earliest[dep]
        earliest[name] = best_finish + seconds
        critical_dep[name] = best_dep
    # Longest downstream chain including the step itself.
    tail: dict[str, float] = {}
    for name in reversed(order):
        _, _, seconds = by_name[name]
        tail[name] = seconds + max((tail[d] for d in dependents[name]), default=0.0)
    length = max(earliest.values())
    total_work = sum(t[2] for t in triples)

    # Walk the path back from the step with the maximal earliest finish.
    end = max(order, key=lambda n: (earliest[n], n))
    path: list[str] = []
    node: str | None = end
    while node is not None:
        path.append(node)
        node = critical_dep[node]
    path.reverse()
    on_path = set(path)

    solved = tuple(
        CriticalStep(
            name=name,
            seconds=by_name[name][2],
            deps=by_name[name][1],
            earliest_finish=earliest[name],
            slack=max(
                0.0,
                length - ((earliest[name] - by_name[name][2]) + tail[name]),
            ),
            on_critical_path=name in on_path,
        )
        for name in names
    )
    return CriticalPathResult(
        steps=solved,
        path=tuple(path),
        length=length,
        total_work=total_work,
        wall=max(float(wall), 0.0),
        workers=max(int(workers), 0),
    )


def analyze_perfetto(data: Mapping[str, Any]) -> CriticalPathResult:
    """Critical-path analysis of an exported (or in-memory) Perfetto trace.

    Reads the ``step``-category spans the pipeline emits (their ``args``
    carry the step name, dependency list, and compute/wall durations) plus
    the ``run`` root span's wall/worker tags. Works identically on
    :meth:`Tracer.to_perfetto` output and on a file round-tripped through
    :func:`load_perfetto`.
    """
    events = data.get("traceEvents")
    if not isinstance(events, list):
        raise TraceError("not a trace_event object (missing traceEvents)")
    triples: list[tuple[str, Sequence[str], float]] = []
    wall, workers = 0.0, 0
    for event in events:
        if not isinstance(event, dict) or event.get("ph") != "X":
            continue
        args = event.get("args") or {}
        if event.get("cat") == "run":
            wall = float(args.get("wall", event.get("dur", 0.0) / 1e6 or 0.0))
            workers = int(args.get("workers", 0) or 0)
            continue
        if event.get("cat") != "step":
            continue
        name = str(args.get("step", event.get("name", "")))
        deps = args.get("deps") or []
        # Prefer pure compute: in pooled modes a step's wall includes the
        # time its work item sat in the executor queue, which would count
        # scheduling pressure as "work" and overstate the max speedup.
        seconds = args.get("compute")
        if seconds is None:
            seconds = args.get("wall")
        if seconds is None:
            seconds = float(event.get("dur", 0.0)) / 1e6
        triples.append((name, [str(d) for d in deps], float(seconds)))
    if not triples:
        raise TraceError("trace contains no step spans to analyze")
    return critical_path(triples, wall=wall, workers=workers)
