"""The canonical cached study pipeline.

Wires generation → scheduling → study assembly through the caching
:class:`~repro.core.pipeline.Pipeline`, so iterating on analysis parameters
never re-runs the expensive simulation stages. ``run`` returns the same
:class:`~repro.core.study.Study` that :func:`build_default_study` builds,
but each stage is independently cached and invalidated.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.partitions import DEFAULT_CLUSTER
from repro.cluster.scheduler import simulate_schedule
from repro.cluster.workload import WorkloadModel, WorkloadParams
from repro.core.calibration import profile_2011, profile_2024
from repro.core.instrument import build_instrument
from repro.core.pipeline import ArtifactCache, Pipeline, PipelineStep, RetryPolicy
from repro.core.study import Study

__all__ = ["study_pipeline", "run_cached_study"]


def _survey_step(context, seed, n_baseline, n_current, drift=""):
    from repro.synth.generator import generate_study
    from repro.synth.scenario import apply_drift

    profiles = {
        "2011": (apply_drift(drift, "2011", profile_2011()), n_baseline),
        "2024": (apply_drift(drift, "2024", profile_2024()), n_current),
    }
    return generate_study(profiles, build_instrument(), seed=seed)


def _workload_step(context, seed, months, jobs_per_day, diurnal):
    params = WorkloadParams(months=months, jobs_per_day=jobs_per_day, diurnal=diurnal)
    jobs = WorkloadModel(params, DEFAULT_CLUSTER).generate(np.random.default_rng(seed))
    return {"jobs": jobs, "window_seconds": params.window_seconds}


def _schedule_step(context, seed, backfill):
    workload = context["workload"]
    result = simulate_schedule(
        workload["jobs"],
        DEFAULT_CLUSTER,
        rng=np.random.default_rng(seed),
        backfill=backfill,
    )
    return result.table


def _study_step(context):
    return Study(
        responses=context["survey"],
        telemetry=context["schedule"],
        cluster=DEFAULT_CLUSTER,
        window_seconds=context["workload"]["window_seconds"],
    )


def study_pipeline(
    seed: int = 2024,
    n_baseline: int = 120,
    n_current: int = 200,
    months: int = 6,
    jobs_per_day: float = 200.0,
    backfill: bool = True,
    diurnal: bool = True,
    drift: str = "",
    cache: ArtifactCache | None = None,
    retry: RetryPolicy | None = None,
    timeout: float | None = None,
) -> Pipeline:
    """Build the cached generate→schedule→study pipeline.

    Step/param layout is the cache contract: changing ``n_current`` reruns
    only the survey stage; changing ``backfill`` reruns only scheduling;
    changing ``months`` reruns workload + scheduling (its dependent).
    ``drift`` names a declared :data:`~repro.synth.scenario.DRIFT_SCENARIOS`
    entry applied to the cohort profiles; it is a survey-step *param*, so a
    drifted run gets a new survey cache key (and, by key folding, new keys
    for the whole downstream subtree) — that key change is how the
    reproducibility audit attributes divergence to the declared scenario.
    ``retry``/``timeout`` become the pipeline's step defaults; neither
    enters any cache key, so enabling fault tolerance on site data never
    invalidates existing artifacts.
    """
    survey_params = {"seed": seed, "n_baseline": n_baseline, "n_current": n_current}
    if drift:
        survey_params["drift"] = drift
    steps = [
        PipelineStep(
            name="survey",
            fn=_survey_step,
            params=survey_params,
        ),
        PipelineStep(
            name="workload",
            fn=_workload_step,
            params={
                "seed": seed + 1,
                "months": months,
                "jobs_per_day": jobs_per_day,
                "diurnal": diurnal,
            },
        ),
        PipelineStep(
            name="schedule",
            fn=_schedule_step,
            params={"seed": seed + 2, "backfill": backfill},
            depends_on=("workload",),
        ),
        PipelineStep(
            name="study",
            fn=_study_step,
            depends_on=("survey", "workload", "schedule"),
        ),
    ]
    return Pipeline(steps, cache, default_retry=retry, default_timeout=timeout)


def run_cached_study(
    cache: ArtifactCache | None = None,
    max_workers: int | None = None,
    executor: str = "auto",
    **kwargs,
) -> Study:
    """Convenience: build and run the pipeline, returning the Study.

    The survey and workload stages are independent, so on a multi-core
    machine a cold run overlaps cohort generation with the workload
    simulation; ``max_workers``/``executor`` forward to
    :meth:`~repro.core.pipeline.Pipeline.run`.
    """
    pipeline = study_pipeline(cache=cache, **kwargs)
    return pipeline.run(max_workers=max_workers, executor=executor)["study"]
