"""Durable, append-only run journal: crash-safe progress for pipeline runs.

A :class:`RunJournal` records what a :meth:`repro.core.Pipeline.run`
actually accomplished — run id, the step→cache-key map, and one
cache-key-addressed outcome record per step — as newline-delimited JSON.
After a ``kill -9``, node preemption, or full disk,
:func:`load_resume_state` rebuilds the completed frontier from the
journal and ``Pipeline.run(resume=...)`` replays those steps from the
artifact cache, re-executing only what was in flight; the resumed run's
artifacts are byte-identical to an uninterrupted run (the crash-chaos
suite SIGKILLs at every (step, event) coordinate and asserts exactly
that).

File layout: per-writer segments
--------------------------------
Journal bytes live in one append-only *segment file per writer process*
(``w<pid>.journal``), not one file per run; every record is tagged with
its ``run`` id, so readers (:func:`load_resume_state`,
:func:`latest_run_id`) reassemble a run by scanning the directory's
segments. Two reasons:

* Segments are strictly single-writer, so a torn tail can only ever sit
  at the end of a dead writer's segment — concurrent runs (which get
  distinct pids) can never interleave mid-record.
* Creating a file inode *per run* is the single most expensive part of
  journaling on metadata-slow filesystems (measured here: ~100µs for the
  ``open`` plus ~350µs added to the next artifact-publish ``fsync``,
  which must flush the entangled directory update — versus appends to an
  existing segment, which cost nothing at fsync time). Reusing the
  writer's segment across runs amortizes that inode to once per process.

Durability model
----------------
Every record is ``os.write``-appended immediately, so a killed *process*
loses nothing (the page cache survives process death). Against machine
power loss the journal is group-committed: ``fsync="interval"`` (default)
fsyncs at most every ``fsync_interval`` seconds, bounding lost progress to
that window; ``fsync="always"`` fsyncs every record; ``fsync="never"``
leaves durability to the OS (explicit :meth:`flush` still fsyncs). The
journal is *progress metadata, not a write-ahead log*: a lost or torn
record only costs recomputing that step on resume, never correctness, so
bounded-staleness fsync is safe.

Torn tails are expected: a writer killed mid-record (the chaos suite's
torn-write injector does this deliberately) leaves a final line without a
terminator or with broken JSON. Readers drop it and report
``torn_tail=True``.

Failure containment: journal I/O errors (``ENOSPC``, permissions, a
vanished directory) disable the journal and set :attr:`RunJournal.error`;
the run itself continues unjournaled. A run must never die because its
progress log could not be written.

Resident processes: rotation and compaction
-------------------------------------------
A batch run writes a few dozen records and exits; a resident process
(``repro serve``) appends records for every refresh cycle, forever, so
the per-writer segment grows without bound. Two bounded-space tools:

* ``rotate_bytes=`` caps the active segment: when an append would push it
  past the threshold the segment is renamed to ``w<pid>-<n>.journal``
  (still matched by readers' ``*.journal`` glob) and a fresh segment is
  started. Rotation only ever happens on a record boundary, so archived
  segments are never torn mid-record.
* :func:`compact` rewrites a quiescent journal directory down to just the
  records of the latest resumable run — everything older can never be
  resumed again and is dead weight. Must not run concurrently with a live
  writer.
"""

from __future__ import annotations

import json
import math
import os
import secrets
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping

__all__ = [
    "JournalError",
    "RunJournal",
    "ResumeState",
    "load_resume_state",
    "latest_resume_state",
    "read_journal",
    "latest_run_id",
    "new_run_id",
    "compact",
]

JOURNAL_SUFFIX = ".journal"
SCHEMA_VERSION = 1

_FSYNC_MODES = ("always", "interval", "never")

#: Step outcomes whose value is in the cache and safe to replay on resume.
#: ``cache_unavailable`` records are excluded separately — their value was
#: computed but never persisted.
_REPLAYABLE = frozenset({"ok", "cached", "retried", "replayed"})


class JournalError(RuntimeError):
    """Raised for unusable journals (missing file, no run_start record)."""


def new_run_id() -> str:
    """Fresh run id: sortable timestamp + pid + random suffix."""
    stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
    return f"{stamp}-{os.getpid()}-{secrets.token_hex(3)}"


_START_TS_LOCK = threading.Lock()
_LAST_START_TS = 0.0


def _run_start_ts() -> float:
    """Wall-clock stamp for a ``run_start`` record, strictly increasing
    within this process.

    :func:`latest_run_id` orders runs by this stamp with the run id as
    tie-break — but within one second the run id differs only in its
    *random* suffix, so a ts tie between two runs of one process would
    make "latest" a coin flip (and :func:`compact` would then drop the
    wrong run). Bumping a tied or backwards clock reading by one ulp
    keeps same-process starts totally ordered; cross-process ties remain
    astronomically unlikely at full float resolution.
    """
    global _LAST_START_TS
    with _START_TS_LOCK:
        now = time.time()
        if now <= _LAST_START_TS:
            now = math.nextafter(_LAST_START_TS, math.inf)
        _LAST_START_TS = now
        return now


class RunJournal:
    """Append-only, group-commit-fsync'd journal for one pipeline run.

    Create via :meth:`open` (directory + optional run id). Pass the
    instance as ``Pipeline.run(journal=...)``; the pipeline writes
    ``run_start`` / ``step_start`` / ``step_done`` / ``run_end`` records.
    The caller owns the lifetime — call :meth:`close` (idempotent) when
    the run ends.

    ``chaos`` is the fault-injection seam (mirroring
    ``ArtifactCache.corrupt_entry``): when set, it is invoked as
    ``chaos(event, step, data, fd)`` before each record hits the file and
    may consume the write (return True), raise ``OSError`` to simulate a
    failed disk, or SIGKILL the process to simulate a crash — including
    *mid-record*, which is how the torn-write injector works.
    """

    def __init__(
        self,
        path: str | Path,
        run_id: str,
        *,
        fsync: str = "interval",
        fsync_interval: float = 0.25,
        rotate_bytes: int | None = None,
    ) -> None:
        if fsync not in _FSYNC_MODES:
            raise ValueError(f"unknown fsync mode {fsync!r}; expected one of {_FSYNC_MODES}")
        if fsync_interval < 0:
            raise ValueError(f"fsync_interval must be non-negative, got {fsync_interval}")
        if rotate_bytes is not None and rotate_bytes <= 0:
            raise ValueError(f"rotate_bytes must be positive, got {rotate_bytes}")
        self.path = Path(path)
        self.run_id = run_id
        self.fsync = fsync
        self.fsync_interval = fsync_interval
        self.rotate_bytes = rotate_bytes
        self.rotations = 0
        self.chaos: Callable[[str, str | None, bytes, int], bool] | None = None
        self.error: str | None = None
        self.records_written = 0
        self._lock = threading.Lock()
        self._last_sync = time.monotonic()
        self._size = 0
        self._fd: int | None = None
        try:
            self._fd = os.open(
                self.path, os.O_RDWR | os.O_CREAT | os.O_APPEND, 0o644
            )
            # Heal a torn tail left by a previous (killed) writer of this
            # segment — pid reuse is rare but, unhealed, the next record
            # would concatenate onto the torn bytes and both lines would
            # be lost to the parser.
            size = os.fstat(self._fd).st_size
            if size and os.pread(self._fd, 1, size - 1) != b"\n":
                os.write(self._fd, b"\n")
                size += 1
            self._size = size
        except OSError as exc:
            self._disable(exc)

    @classmethod
    def open(
        cls,
        directory: str | Path,
        run_id: str | None = None,
        **kwargs: Any,
    ) -> "RunJournal":
        """Open this process's segment ``<directory>/w<pid>.journal``.

        The directory is created as needed; the run (fresh ``run_id``
        unless one is passed) appends its records — each tagged with the
        run id — to the per-writer segment.
        """
        directory = Path(directory)
        rid = run_id if run_id is not None else new_run_id()
        try:
            directory.mkdir(parents=True, exist_ok=True)
        except OSError:
            pass  # surface as an unavailable journal, not a crashed run
        return cls(directory / f"w{os.getpid()}{JOURNAL_SUFFIX}", rid, **kwargs)

    @property
    def unavailable(self) -> bool:
        """True once journal writes have been disabled by an I/O error."""
        return self._fd is None

    # -- writing --------------------------------------------------------------

    def _disable(self, exc: BaseException) -> None:
        self.error = repr(exc)
        fd, self._fd = self._fd, None
        if fd is not None:
            try:
                os.close(fd)
            except OSError:
                pass

    def _rotate(self) -> None:
        """Archive the active segment and start a fresh one (lock held).

        The full segment becomes ``w<pid>-<n>.journal`` beside the active
        path — the suffix keeps it visible to every reader's
        ``*.journal`` glob, and the rename preserves its mtime so segment
        ordering (oldest-modified first) still reads archives before the
        live tail. Failures disable the journal like any other I/O error.
        """
        assert self._fd is not None
        os.fsync(self._fd)  # archives must be complete before they are renamed
        n = self.rotations + 1
        archive = self.path.with_name(f"{self.path.stem}-{n}{JOURNAL_SUFFIX}")
        while archive.exists():  # pid reuse: never clobber an older archive
            n += 1
            archive = self.path.with_name(f"{self.path.stem}-{n}{JOURNAL_SUFFIX}")
        os.close(self._fd)
        self._fd = None  # _disable must not double-close if rename fails
        os.rename(self.path, archive)
        self._fd = os.open(self.path, os.O_RDWR | os.O_CREAT | os.O_APPEND, 0o644)
        self._size = 0
        self.rotations = n

    def record(self, event: str, step: str | None = None, **fields: Any) -> bool:
        """Append one record; returns False when the journal is unavailable.

        Never raises for I/O failures — a full disk degrades the journal
        (:attr:`error` is set, later records no-op) instead of killing the
        run it is supposed to protect.
        """
        payload: dict[str, Any] = {"event": event, "run": self.run_id}
        if step is not None:
            payload["step"] = step
        payload.update(fields)
        data = json.dumps(payload, separators=(",", ":")).encode() + b"\n"
        with self._lock:
            if self._fd is None:
                return False
            try:
                if (
                    self.rotate_bytes is not None
                    and self._size > 0
                    and self._size + len(data) > self.rotate_bytes
                ):
                    self._rotate()
                if self.chaos is not None and self.chaos(event, step, data, self._fd):
                    return True
                os.write(self._fd, data)
                self._size += len(data)
                self.records_written += 1
                now = time.monotonic()
                if self.fsync == "always" or (
                    self.fsync == "interval"
                    and now - self._last_sync >= self.fsync_interval
                ):
                    os.fsync(self._fd)
                    self._last_sync = now
            except OSError as exc:
                self._disable(exc)
                return False
        return True

    # -- the pipeline's record vocabulary -------------------------------------

    def run_start(
        self,
        steps: Mapping[str, str],
        *,
        executor: str = "",
        resumed_from: str | None = None,
    ) -> bool:
        """Header record: run id, schema, and the full step→cache-key map."""
        return self.record(
            "run_start",
            schema=SCHEMA_VERSION,
            steps=dict(steps),
            executor=executor,
            resumed_from=resumed_from,
            pid=os.getpid(),
            ts=_run_start_ts(),
        )

    def step_start(self, name: str, key: str) -> bool:
        return self.record("step_start", step=name, key=key)

    def step_done(
        self,
        name: str,
        key: str,
        outcome: str,
        attempts: int,
        *,
        cache_unavailable: bool = False,
        error: str = "",
    ) -> bool:
        rec: dict[str, Any] = {
            "key": key,
            "outcome": outcome,
            "attempts": attempts,
        }
        if cache_unavailable:
            rec["cache_unavailable"] = True
        if error:
            rec["error"] = error
        return self.record("step_done", step=name, **rec)

    def step_reassign(self, name: str, key: str, *, worker: str, epoch: int) -> bool:
        """A dist coordinator moved an in-flight step to a new worker.

        Purely informational for readers (``load_resume_state`` ignores
        unknown events); the record preserves which worker lost the lease
        and the fencing epoch the replacement runs under.
        """
        return self.record("step_reassign", step=name, key=key, worker=worker, epoch=epoch)

    def run_end(self, counts: Mapping[str, int], wall_seconds: float) -> bool:
        return self.record(
            "run_end", counts=dict(counts), wall_seconds=round(wall_seconds, 6)
        )

    # -- lifecycle ------------------------------------------------------------

    def flush(self) -> None:
        """Force everything written so far to stable storage (fsync)."""
        with self._lock:
            if self._fd is None:
                return
            try:
                os.fsync(self._fd)
                self._last_sync = time.monotonic()
            except OSError as exc:
                self._disable(exc)

    def close(self, sync: bool | None = None) -> None:
        """Close the journal; idempotent.

        ``sync`` defaults by fsync mode: ``"always"`` fsyncs at close,
        ``"interval"``/``"never"`` leave the tail to the OS (a killed
        process has already lost nothing; only power loss is at stake, and
        group commit bounds that by construction).
        """
        with self._lock:
            if self._fd is None:
                return
            do_sync = sync if sync is not None else self.fsync == "always"
            fd, self._fd = self._fd, None
            try:
                if do_sync:
                    os.fsync(fd)
            except OSError as exc:
                self.error = repr(exc)
            finally:
                try:
                    os.close(fd)
                except OSError:
                    pass

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# -- reading ------------------------------------------------------------------


def read_journal(path: str | Path) -> tuple[list[dict], bool]:
    """All parseable records in file order, plus a torn-tail flag.

    A final line without a terminating newline, or any line that is not
    valid JSON, is dropped (torn write from a killed process); the flag
    reports whether anything was dropped.
    """
    raw = Path(path).read_bytes()
    torn = False
    records: list[dict] = []
    chunks = raw.split(b"\n")
    # A well-terminated file ends with b"" after the final newline; any
    # trailing partial line shows up as a non-empty last chunk.
    if chunks and chunks[-1] != b"":
        torn = True
    for chunk in chunks[:-1] if chunks else []:
        if not chunk.strip():
            continue
        try:
            obj = json.loads(chunk)
        except (UnicodeDecodeError, json.JSONDecodeError):
            torn = True
            continue
        if isinstance(obj, dict):
            records.append(obj)
        else:
            torn = True
    return records, torn


@dataclass(frozen=True)
class ResumeState:
    """Recovered progress of one (possibly interrupted) journaled run.

    ``completed`` maps step name → cache key for every step whose value
    both succeeded *and* was persisted to the cache; those are the replay
    candidates. A step whose journal record carried
    ``cache_unavailable=True`` (its cache write hit ``ENOSPC``) is
    deliberately absent — its value never reached disk.
    """

    run_id: str
    path: Path
    completed: dict[str, str] = field(default_factory=dict)
    outcomes: dict[str, str] = field(default_factory=dict)
    attempts: dict[str, int] = field(default_factory=dict)
    step_keys: dict[str, str] = field(default_factory=dict)
    finished: bool = False
    torn_tail: bool = False

    @property
    def interrupted(self) -> bool:
        """True when the journal has no ``run_end`` (the run was cut short)."""
        return not self.finished


def _segments(directory: Path) -> list[Path]:
    """Segment files in ``directory``, oldest-modified first."""
    try:
        return sorted(
            directory.glob(f"*{JOURNAL_SUFFIX}"),
            key=lambda p: (p.stat().st_mtime, p.name),
        )
    except OSError:
        return []


def _run_records(
    directory_or_path: str | Path, run_id: str | None
) -> tuple[list[dict], bool, Path]:
    """Records of one run, its torn flag, and the segment holding them.

    Accepts either a single journal/segment file or a journal directory.
    ``run_id=None`` on a file selects the file's most recent run; on a
    directory a run id is required.
    """
    path = Path(directory_or_path)
    if path.is_dir():
        if run_id is None:
            raise JournalError(f"{path} is a directory; pass run_id to select a run")
        candidates = _segments(path)
    else:
        candidates = [path]
    selected: list[dict] = []
    torn = False
    source: Path | None = None
    for segment in candidates:
        try:
            records, seg_torn = read_journal(segment)
        except OSError as exc:
            if path.is_dir():
                continue  # a concurrently-removed segment; others may hold the run
            raise JournalError(f"cannot read journal {segment}: {exc}") from exc
        if run_id is None:
            # Single file, no run id: the file's last run.
            last = next(
                (r for r in reversed(records) if r.get("event") == "run_start"), None
            )
            if last is None:
                raise JournalError(
                    f"{segment}: no run_start record (not a journal, or torn header)"
                )
            run_id = str(last.get("run", ""))
        matched = [r for r in records if r.get("run") == run_id]
        if matched:
            selected.extend(matched)
            torn = torn or seg_torn
            source = segment
    if source is None:
        raise JournalError(f"no journal records for run {run_id!r} under {path}")
    return selected, torn, source


def load_resume_state(
    directory_or_path: str | Path, run_id: str | None = None
) -> ResumeState:
    """Rebuild a :class:`ResumeState` for one journaled run.

    Pass the journal directory plus the ``run_id``, or a single segment
    file (``run_id`` optional there — defaults to the file's most recent
    run). Raises :class:`JournalError` when no records for the run exist
    or the run has no readable ``run_start`` header.
    """
    records, torn, path = _run_records(directory_or_path, run_id)
    header = next((r for r in records if r.get("event") == "run_start"), None)
    if header is None:
        raise JournalError(
            f"{path}: no run_start record for run {run_id!r} (torn header?)"
        )
    completed: dict[str, str] = {}
    outcomes: dict[str, str] = {}
    attempts: dict[str, int] = {}
    for rec in records:
        if rec.get("event") != "step_done":
            continue
        name = rec.get("step")
        key = rec.get("key")
        outcome = rec.get("outcome", "")
        if not isinstance(name, str) or not isinstance(key, str):
            continue
        outcomes[name] = outcome
        attempts[name] = int(rec.get("attempts", 0))
        if outcome in _REPLAYABLE and not rec.get("cache_unavailable", False):
            completed[name] = key
        else:
            completed.pop(name, None)
    return ResumeState(
        run_id=str(header.get("run", "")),
        path=path,
        completed=completed,
        outcomes=outcomes,
        attempts=attempts,
        step_keys=dict(header.get("steps", {})),
        finished=any(r.get("event") == "run_end" for r in records),
        torn_tail=torn,
    )


def latest_run_id(directory: str | Path) -> str | None:
    """Run id of the most recently started run journaled under ``directory``.

    Scans every segment's ``run_start`` records and picks the one with
    the highest start timestamp (ties broken by the sortable run id).
    """
    best: tuple[float, str] | None = None
    for segment in _segments(Path(directory)):
        try:
            records, _ = read_journal(segment)
        except OSError:
            continue
        for rec in records:
            if rec.get("event") != "run_start":
                continue
            rid = rec.get("run")
            if not isinstance(rid, str) or not rid:
                continue
            key = (float(rec.get("ts", 0.0)), rid)
            if best is None or key > best:
                best = key
    return best[1] if best is not None else None


def latest_resume_state(directory: str | Path) -> ResumeState | None:
    """Resume state for the most recent run under ``directory``, or None.

    Convenience wrapper for resume-by-default flows (``repro audit``'s
    crash-resume leg above all): find the latest run id, then load its
    state. Returns None when the directory holds no journaled runs at
    all; a run that exists but is unreadable still raises
    :class:`JournalError` — silent fallback to "no resume" would quietly
    recompute a run the caller believed it was resuming.
    """
    run_id = latest_run_id(directory)
    if run_id is None:
        return None
    return load_resume_state(directory, run_id)


def compact(directory: str | Path, *, keep_run_id: str | None = None) -> dict[str, Any]:
    """Drop journal records for runs older than the latest resumable state.

    Only the most recently started run can ever be resumed
    (:func:`latest_resume_state` resumes exactly that one), so in a
    resident process every older run's records are dead weight that
    rotation alone never reclaims. Each segment is rewritten atomically
    (temp file + ``os.replace``, original mtime preserved so segment
    ordering is stable) keeping only the surviving run's records; segments
    left empty are deleted.

    Must not run concurrently with a live writer — the writer's appends
    would race the rewrite. ``repro serve`` calls it between refresh
    cycles while no journal is open. ``keep_run_id`` overrides which run
    survives (defaults to :func:`latest_run_id`).

    Returns stats: ``{"kept_run", "segments", "removed_segments",
    "dropped_records", "kept_records"}``.
    """
    directory = Path(directory)
    keep = keep_run_id if keep_run_id is not None else latest_run_id(directory)
    stats: dict[str, Any] = {
        "kept_run": keep,
        "segments": 0,
        "removed_segments": 0,
        "dropped_records": 0,
        "kept_records": 0,
    }
    for segment in _segments(directory):
        try:
            records, torn = read_journal(segment)
            st = segment.stat()
        except OSError:
            continue  # vanished or unreadable: nothing to reclaim here
        stats["segments"] += 1
        kept = [r for r in records if keep is not None and r.get("run") == keep]
        stats["kept_records"] += len(kept)
        dropped = len(records) - len(kept)
        if dropped == 0 and not torn:
            continue  # nothing to reclaim; keep the segment byte-identical
        stats["dropped_records"] += dropped
        if not kept:
            try:
                segment.unlink()
                stats["removed_segments"] += 1
            except OSError:
                pass
            continue
        tmp = segment.with_name(segment.name + ".tmp")
        data = b"".join(
            json.dumps(r, separators=(",", ":")).encode() + b"\n" for r in kept
        )
        try:
            fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
            try:
                os.write(fd, data)
                os.fsync(fd)
            finally:
                os.close(fd)
            os.replace(tmp, segment)
            # Preserve the original mtime: _segments orders by it, and a
            # rewrite must not shuffle archives ahead of the live tail.
            os.utime(segment, (st.st_atime, st.st_mtime))
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass
    return stats
