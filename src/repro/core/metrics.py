"""Executor instrumentation for the DAG pipeline and the experiment fan-out.

Every parallel entry point (:meth:`repro.core.Pipeline.run`,
:func:`repro.report.run_all_experiments`) records what actually happened —
which units ran vs came from cache, how long each took, and how busy the
worker pool was — into an :class:`ExecutorMetrics`. The golden-artifact
suite guarantees parallel output is byte-identical to sequential output, so
these metrics are the only observable difference between the two modes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["StepMetric", "ExecutorMetrics"]


@dataclass(frozen=True)
class StepMetric:
    """One executed (or cache-served) unit of work.

    Attributes
    ----------
    name:
        Step name (pipeline) or experiment id (report fan-out).
    key:
        Content-address of the unit's artifact ("" when uncached).
    cached:
        True when the value was served from the artifact cache.
    wall_seconds:
        Wall time spent obtaining the value (cache hit or compute).
    started_at / finished_at:
        Offsets in seconds from the start of the run, for building a
        utilization timeline.
    """

    name: str
    key: str
    cached: bool
    wall_seconds: float
    started_at: float
    finished_at: float


@dataclass
class ExecutorMetrics:
    """Aggregate record of one executor run."""

    mode: str
    max_workers: int
    steps: list[StepMetric] = field(default_factory=list)
    wall_seconds: float = 0.0

    def record(
        self,
        name: str,
        key: str,
        cached: bool,
        wall_seconds: float,
        started_at: float = 0.0,
        finished_at: float = 0.0,
    ) -> None:
        self.steps.append(
            StepMetric(name, key, cached, wall_seconds, started_at, finished_at)
        )

    @property
    def steps_run(self) -> int:
        """Steps whose value was computed this run."""
        return sum(1 for s in self.steps if not s.cached)

    @property
    def steps_cached(self) -> int:
        """Steps served from the artifact cache."""
        return sum(1 for s in self.steps if s.cached)

    @property
    def busy_seconds(self) -> float:
        """Total worker-seconds spent computing (cache hits excluded)."""
        return sum(s.wall_seconds for s in self.steps if not s.cached)

    def worker_utilization(self) -> float:
        """Fraction of the pool's wall-clock capacity spent computing.

        1.0 means every worker was busy for the whole run; a sequential
        run of pure compute also reports ~1.0 (one worker, always busy).
        """
        capacity = self.wall_seconds * max(self.max_workers, 1)
        if capacity <= 0.0:
            return 0.0
        return min(1.0, self.busy_seconds / capacity)

    def summary(self) -> dict[str, float | int | str]:
        """Flat dict of the headline numbers (for logs and benches)."""
        return {
            "mode": self.mode,
            "max_workers": self.max_workers,
            "steps_run": self.steps_run,
            "steps_cached": self.steps_cached,
            "wall_seconds": round(self.wall_seconds, 4),
            "busy_seconds": round(self.busy_seconds, 4),
            "worker_utilization": round(self.worker_utilization(), 4),
        }

    @property
    def cache_read_seconds(self) -> float:
        """Total wall time spent serving steps from the artifact cache."""
        return sum(s.wall_seconds for s in self.steps if s.cached)

    def render(self) -> str:
        """Human-readable multi-line timing report.

        A fully-cached run collapses to a single summary line — a table of
        uniformly near-zero cache reads tells the reader nothing, and the
        interesting number there is the total cache-read time.
        """
        lines = [
            f"executor: {self.mode} (max_workers={self.max_workers}) — "
            f"{self.steps_run} run, {self.steps_cached} cached, "
            f"{self.wall_seconds:.2f}s wall, "
            f"{100.0 * self.worker_utilization():.0f}% utilization"
        ]
        if self.steps and self.steps_run == 0:
            lines.append(
                f"  all {self.steps_cached} steps cached "
                f"(cache reads took {self.cache_read_seconds:.3f}s)"
            )
            return "\n".join(lines)
        width = max((len(s.name) for s in self.steps), default=0)
        for s in sorted(self.steps, key=lambda m: -m.wall_seconds):
            tag = "cached" if s.cached else "ran"
            lines.append(f"  {s.name:<{width}}  {tag:<6} {s.wall_seconds:8.3f}s")
        return "\n".join(lines)
