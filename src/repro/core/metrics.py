"""Executor instrumentation for the DAG pipeline and the experiment fan-out.

Every parallel entry point (:meth:`repro.core.Pipeline.run`,
:func:`repro.report.run_all_experiments`) records what actually happened —
which units ran vs came from cache, how long each took, and how busy the
worker pool was — into an :class:`ExecutorMetrics`. The golden-artifact
suite guarantees parallel output is byte-identical to sequential output, so
these metrics are the only observable difference between the two modes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "StepMetric",
    "ExecutorMetrics",
    "StepOutcome",
    "RunReport",
    "OUTCOMES",
]

#: Every per-step outcome an executor run can record. ``ok`` and ``cached``
#: are the happy paths; ``retried`` means the step succeeded after at least
#: one failed attempt; ``replayed`` means a resumed run served the step
#: from journal + cache without re-executing it; ``failed``/``timeout``
#: are terminal step failures; ``skipped_upstream`` marks steps never
#: attempted because a dependency failed (only reachable with
#: ``on_error="keep_going"``).
OUTCOMES = (
    "ok", "cached", "retried", "replayed", "failed", "timeout", "skipped_upstream",
)

#: Outcomes that mean the unit's value was produced this run.
SUCCESS_OUTCOMES = frozenset({"ok", "cached", "retried", "replayed"})


@dataclass(frozen=True)
class StepMetric:
    """One executed (or cache-served) unit of work.

    Attributes
    ----------
    name:
        Step name (pipeline) or experiment id (report fan-out).
    key:
        Content-address of the unit's artifact ("" when uncached).
    cached:
        True when the value was served from the artifact cache.
    wall_seconds:
        Wall time spent obtaining the value (cache hit or compute).
    started_at / finished_at:
        Offsets in seconds from the start of the run, for building a
        utilization timeline.
    outcome:
        One of :data:`OUTCOMES`.
    attempts:
        Number of attempts made (0 for cached and skipped units).
    error:
        ``repr`` of the final exception for failed/timed-out units, or a
        short reason for skipped units ("" otherwise).
    cache_unavailable:
        True when the unit computed its value but the cache write failed
        (``ENOSPC``/``OSError``) and the run continued uncached.
    queue_seconds:
        Time the unit spent *ready but waiting* — between its last
        dependency resolving (or its submission) and its compute actually
        starting, including process-pool queueing. 0.0 when the executor
        could not measure it.
    compute_seconds:
        Time actually spent obtaining the value once scheduled (wall
        minus in-step pool wait). ``None`` when the executor did not
        split it out, in which case ``wall_seconds`` is the best estimate.
    """

    name: str
    key: str
    cached: bool
    wall_seconds: float
    started_at: float
    finished_at: float
    outcome: str = "ok"
    attempts: int = 1
    error: str = ""
    cache_unavailable: bool = False
    queue_seconds: float = 0.0
    compute_seconds: float | None = None


@dataclass(frozen=True)
class StepOutcome:
    """Per-step verdict of a fault-tolerant run (see :class:`RunReport`)."""

    name: str
    status: str  # one of OUTCOMES
    attempts: int = 1
    error: str = ""
    wall_seconds: float = 0.0
    cache_unavailable: bool = False

    @property
    def succeeded(self) -> bool:
        return self.status in SUCCESS_OUTCOMES


@dataclass(frozen=True)
class RunReport:
    """Structured per-step outcome record of one pipeline run.

    Built by :meth:`repro.core.Pipeline.run` regardless of ``on_error``
    mode and exposed as ``Pipeline.last_report`` (and through
    ``ExecutorMetrics.run_report`` for ``repro report --timings``). With
    ``on_error="raise"`` a failing run still reports every outcome known
    at the moment the failure propagated.

    ``resumed_from`` carries the prior run's id when this run was started
    with ``Pipeline.run(resume=...)``.
    """

    outcomes: tuple[StepOutcome, ...]
    resumed_from: str | None = None

    @property
    def resumed(self) -> bool:
        """True when this run recovered a prior journaled run."""
        return self.resumed_from is not None

    def outcome(self, name: str) -> StepOutcome:
        for o in self.outcomes:
            if o.name == name:
                return o
        raise KeyError(f"no outcome recorded for step {name!r}")

    def __contains__(self, name: str) -> bool:
        return any(o.name == name for o in self.outcomes)

    @property
    def ok(self) -> bool:
        """True when every recorded step produced its value."""
        return all(o.succeeded for o in self.outcomes)

    @property
    def failed(self) -> tuple[str, ...]:
        """Names of steps that terminally failed (including timeouts)."""
        return tuple(o.name for o in self.outcomes if o.status in ("failed", "timeout"))

    @property
    def skipped(self) -> tuple[str, ...]:
        """Names of steps never attempted because an upstream step failed."""
        return tuple(o.name for o in self.outcomes if o.status == "skipped_upstream")

    @property
    def retried(self) -> tuple[str, ...]:
        """Names of steps that succeeded only after at least one retry."""
        return tuple(o.name for o in self.outcomes if o.status == "retried")

    @property
    def replayed(self) -> tuple[str, ...]:
        """Names of steps served from journal + cache by a resumed run."""
        return tuple(o.name for o in self.outcomes if o.status == "replayed")

    @property
    def replayed_from_journal(self) -> int:
        """How many steps a resumed run recovered without re-executing."""
        return len(self.replayed)

    @property
    def cache_unavailable(self) -> tuple[str, ...]:
        """Names of steps whose value computed but never reached the cache
        (full disk or other cache-write failure; the run continued)."""
        return tuple(o.name for o in self.outcomes if o.cache_unavailable)

    @property
    def total_attempts(self) -> int:
        return sum(o.attempts for o in self.outcomes)

    def counts(self) -> dict[str, int]:
        """``{status: count}`` over every recorded outcome."""
        tally: dict[str, int] = {}
        for o in self.outcomes:
            tally[o.status] = tally.get(o.status, 0) + 1
        return tally

    def render(self) -> str:
        """Human-readable outcome summary (one line per non-ok step)."""
        counts = ", ".join(f"{k}={v}" for k, v in sorted(self.counts().items()))
        headline = f"run report: {len(self.outcomes)} steps ({counts})"
        if self.resumed:
            headline += f" [resumed from {self.resumed_from}]"
        lines = [headline]
        for o in self.outcomes:
            if o.status in ("ok", "cached", "replayed") and not o.cache_unavailable:
                continue
            detail = f" after {o.attempts} attempts" if o.attempts > 1 else ""
            reason = f" — {o.error}" if o.error else ""
            flag = " [cache unavailable]" if o.cache_unavailable else ""
            lines.append(f"  {o.name}: {o.status}{detail}{flag}{reason}")
        return "\n".join(lines)


@dataclass
class ExecutorMetrics:
    """Aggregate record of one executor run.

    ``resumed_from`` / ``journal_path`` / ``journal_unavailable`` surface
    the durability layer: whether the run recovered a prior journal, where
    its own journal lives, and whether journal writes were disabled by an
    I/O failure mid-run.
    """

    mode: str
    max_workers: int
    steps: list[StepMetric] = field(default_factory=list)
    wall_seconds: float = 0.0
    run_report: RunReport | None = None
    resumed_from: str | None = None
    journal_path: str | None = None
    journal_unavailable: bool = False
    #: Backend-specific counters (dist: reassignments, speculations,
    #: quarantined steps, dead workers, publish audit). None for the
    #: in-process executors.
    backend_stats: dict[str, Any] | None = None

    def record(
        self,
        name: str,
        key: str,
        cached: bool,
        wall_seconds: float,
        started_at: float = 0.0,
        finished_at: float = 0.0,
        outcome: str = "ok",
        attempts: int = 1,
        error: str = "",
        cache_unavailable: bool = False,
        queue_seconds: float = 0.0,
        compute_seconds: float | None = None,
    ) -> None:
        self.steps.append(
            StepMetric(
                name, key, cached, wall_seconds, started_at, finished_at,
                outcome, attempts, error, cache_unavailable,
                queue_seconds, compute_seconds,
            )
        )

    @property
    def steps_run(self) -> int:
        """Steps whose value was computed this run."""
        return sum(1 for s in self.steps if not s.cached and s.outcome in ("ok", "retried"))

    @property
    def steps_cached(self) -> int:
        """Steps served from the artifact cache."""
        return sum(1 for s in self.steps if s.cached)

    @property
    def steps_failed(self) -> int:
        """Steps that terminally failed or timed out this run."""
        return sum(1 for s in self.steps if s.outcome in ("failed", "timeout"))

    @property
    def steps_skipped(self) -> int:
        """Steps skipped because an upstream dependency failed."""
        return sum(1 for s in self.steps if s.outcome == "skipped_upstream")

    @property
    def steps_replayed(self) -> int:
        """Steps a resumed run served from journal + cache."""
        return sum(1 for s in self.steps if s.outcome == "replayed")

    @property
    def steps_cache_unavailable(self) -> int:
        """Steps that computed but could not persist to the cache."""
        return sum(1 for s in self.steps if s.cache_unavailable)

    @property
    def busy_seconds(self) -> float:
        """Total worker-seconds spent computing (cache hits excluded)."""
        return sum(s.wall_seconds for s in self.steps if not s.cached)

    def worker_utilization(self) -> float:
        """Fraction of the pool's wall-clock capacity spent computing.

        1.0 means every worker was busy for the whole run; a sequential
        run of pure compute also reports ~1.0 (one worker, always busy).
        """
        capacity = self.wall_seconds * max(self.max_workers, 1)
        if capacity <= 0.0:
            return 0.0
        return min(1.0, self.busy_seconds / capacity)

    def summary(self) -> dict[str, float | int | str]:
        """Flat dict of the headline numbers (for logs and benches)."""
        return {
            "mode": self.mode,
            "max_workers": self.max_workers,
            "steps_run": self.steps_run,
            "steps_cached": self.steps_cached,
            "steps_replayed": self.steps_replayed,
            "wall_seconds": round(self.wall_seconds, 4),
            "busy_seconds": round(self.busy_seconds, 4),
            "worker_utilization": round(self.worker_utilization(), 4),
        }

    @property
    def cache_read_seconds(self) -> float:
        """Total wall time spent serving steps from the artifact cache."""
        return sum(s.wall_seconds for s in self.steps if s.cached)

    def render(self) -> str:
        """Human-readable multi-line timing report.

        A fully-cached run collapses to a single summary line — a table of
        uniformly near-zero cache reads tells the reader nothing, and the
        interesting number there is the total cache-read time.
        """
        degraded = self.steps_failed or self.steps_skipped
        headline = (
            f"executor: {self.mode} (max_workers={self.max_workers}) — "
            f"{self.steps_run} run, {self.steps_cached} cached, "
            f"{self.wall_seconds:.2f}s wall, "
            f"{100.0 * self.worker_utilization():.0f}% utilization"
        )
        if self.steps_replayed:
            headline += f", {self.steps_replayed} replayed from journal"
        if degraded:
            headline += f" [{self.steps_failed} failed, {self.steps_skipped} skipped]"
        lines = [headline]
        if self.resumed_from is not None:
            lines.append(f"  resumed from run {self.resumed_from}")
        if self.journal_unavailable:
            lines.append("  journal unavailable (writes disabled mid-run)")
        if self.backend_stats:
            interesting = {
                k: v
                for k, v in sorted(self.backend_stats.items())
                if v
                and k
                not in ("backend", "workers", "publishes", "worker_pids", "registry")
            }
            if interesting:
                lines.append(
                    "  fleet: "
                    + ", ".join(f"{k}={v}" for k, v in interesting.items())
                )
        if self.steps_cache_unavailable:
            lines.append(
                f"  {self.steps_cache_unavailable} step(s) ran uncached "
                "(cache writes failed — full disk?)"
            )
        if (
            self.steps
            and self.steps_run == 0
            and self.steps_replayed == 0
            and not degraded
        ):
            lines.append(
                f"  all {self.steps_cached} steps cached "
                f"(cache reads took {self.cache_read_seconds:.3f}s)"
            )
            return "\n".join(lines)
        width = max((len(s.name) for s in self.steps), default=0)
        for s in sorted(self.steps, key=lambda m: -m.wall_seconds):
            tag = "cached" if s.cached else ("ran" if s.outcome == "ok" else s.outcome)
            # Compute and queue-wait are separate columns: a step that
            # "took 4s" because it sat 3.9s behind a busy pool is a
            # scheduling problem, not a compute problem.
            compute = s.compute_seconds if s.compute_seconds is not None else s.wall_seconds
            suffix = f"  x{s.attempts}" if s.attempts > 1 else ""
            if s.cache_unavailable:
                suffix += "  [cache unavailable]"
            reason = f"  {s.error}" if s.error and s.outcome != "ok" else ""
            lines.append(
                f"  {s.name:<{width}}  {tag:<16} {compute:8.3f}s"
                f"  +{s.queue_seconds:.3f}s wait{suffix}{reason}"
            )
        return "\n".join(lines)
