"""Survey weighting integration for the trend engine.

The campus population margins (registrar counts of researchers per field and
career stage) are known, so the study reports *post-stratified* estimates
alongside raw ones. This module builds per-cohort raking weights and a
:class:`WeightedTrendEngine` whose rows use weighted proportions with
Kish-effective-sample-size variance — the standard design-effect
approximation for weighted survey comparisons.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.core.trends import TrendEngine
from repro.stats.weights import effective_sample_size, rake_weights
from repro.survey.responses import ResponseSet

__all__ = ["make_cohort_weights", "WeightedTrendEngine"]


def make_cohort_weights(
    cohort: ResponseSet,
    targets_by_key: Mapping[str, Mapping[str, float]],
) -> np.ndarray:
    """Raking weights for one cohort, aligned with its response order.

    Parameters
    ----------
    cohort:
        A single-cohort response set.
    targets_by_key:
        Mapping question key -> {answer label: population share}, one entry
        per raking margin (e.g. ``{"field": shares, "career_stage": stages}``).

    Respondents missing any margin answer are excluded from the raking
    solve and receive weight 1.0 (neutral), so weighting never silently
    drops their answers from downstream analyses.
    """
    if not targets_by_key:
        raise ValueError("no raking margins given")
    n = len(cohort)
    if n == 0:
        raise ValueError("empty cohort")
    columns = {key: cohort.column(key) for key in targets_by_key}
    usable = np.array(
        [all(columns[key][i] is not None for key in targets_by_key) for i in range(n)]
    )
    weights = np.ones(n, dtype=float)
    if usable.sum() == 0:
        return weights
    margins = [
        [str(columns[key][i]) for i in range(n) if usable[i]]
        for key in targets_by_key
    ]
    raked = rake_weights(margins, list(targets_by_key.values()))
    weights[usable] = raked
    # Keep mean weight 1 over the whole cohort.
    return weights / weights.mean()


class WeightedTrendEngine(TrendEngine):
    """Trend engine whose proportions are post-stratification weighted.

    Weighted counts enter the shared row machinery as *effective* counts:
    ``successes = round(p_w * ESS)``, ``trials = round(ESS)`` where ESS is
    the Kish effective sample size of the answering respondents' weights.
    This shrinks the evidence exactly by the design effect, so intervals
    widen and tests lose power in proportion to weighting variance.
    """

    def __init__(
        self,
        responses: ResponseSet,
        targets_by_key: Mapping[str, Mapping[str, float]],
        baseline_cohort: str = "2011",
        current_cohort: str = "2024",
        confidence: float = 0.95,
    ) -> None:
        super().__init__(responses, baseline_cohort, current_cohort, confidence)
        self._weights = {
            baseline_cohort: make_cohort_weights(self.baseline, targets_by_key),
            current_cohort: make_cohort_weights(self.current, targets_by_key),
        }

    def weights_for(self, cohort_label: str) -> np.ndarray:
        """The raking weights computed for one cohort."""
        try:
            return self._weights[cohort_label]
        except KeyError:
            raise KeyError(f"no weights for cohort {cohort_label!r}") from None

    def _cohort_weights(self, cohort: ResponseSet) -> np.ndarray:
        # Both stored subsets are the engine's own objects, so identity
        # tells us which weight vector applies.
        if cohort is self.baseline:
            return self._weights[self.baseline_cohort]
        if cohort is self.current:
            return self._weights[self.current_cohort]
        raise ValueError("unknown cohort subset")

    def _weighted_effective_counts(
        self, cohort: ResponseSet, hit_mask: np.ndarray, answered_mask: np.ndarray
    ) -> tuple[int, int]:
        weights = self._cohort_weights(cohort)
        w_answered = weights[answered_mask]
        if w_answered.size == 0:
            return 0, 0
        total = w_answered.sum()
        p_w = float(weights[hit_mask].sum() / total) if total > 0 else 0.0
        ess = effective_sample_size(w_answered)
        successes = int(round(p_w * ess))
        trials = max(1, int(round(ess)))
        return min(successes, trials), trials

    def _single_counts(self, cohort: ResponseSet, key: str, option: str):  # type: ignore[override]
        col = cohort.column(key)
        answered = np.array([v is not None for v in col])
        hits = np.array([v == option for v in col])
        return self._weighted_effective_counts(cohort, hits, answered)

    def _multi_counts(self, cohort: ResponseSet, key: str, option: str):  # type: ignore[override]
        question = cohort.questionnaire[key]
        j = question.options.index(option)
        matrix = cohort.selection_matrix(key)
        answered = cohort.answered_mask(key)
        hits = matrix[:, j] & answered
        return self._weighted_effective_counts(cohort, hits, answered)
