"""Zero-copy result transport for process-pool workers.

Large numpy-backed artifacts returned by process-mode steps would
otherwise be serialized into the pool's pipe-based result channel,
copied through the OS pipe buffer in 64KB chunks, and reassembled on
the coordinator. This module moves those payloads through POSIX shared
memory instead: the worker pickles the value once with protocol 5,
keeps the array bodies as out-of-band :class:`pickle.PickleBuffer`
frames, writes stream + frames into one ``multiprocessing.shared_memory``
segment, and ships only a tiny *handle* (segment name + frame layout)
through the pool channel. The coordinator attaches, rebuilds the value,
and releases the segment.

Handle protocol and ownership rules
-----------------------------------
* The **worker** creates the segment, writes it, closes its mapping and
  *unregisters* it from its ``resource_tracker`` — from that point the
  segment is owned by whoever holds the handle.
* The **coordinator** (the only consumer) attaches via the handle and
  is responsible for ``close()`` + ``unlink()`` — performed in
  :func:`decode_result` under ``finally``, so a failed unpickle cannot
  leak the segment.
* If the handle never arrives (worker SIGKILLed mid-transfer, pool torn
  down), the segment is an orphan. Every segment name is prefixed with
  a per-run token (:func:`run_prefix`), and the run end calls
  :func:`sweep` with that token to remove any survivors; a crashed
  *coordinator* leaves segments for :func:`sweep_stale`, which removes
  segments whose embedded creator pid is dead.

Fallbacks
---------
Payloads whose out-of-band frames total less than ``SHM_MIN_BYTES``,
payloads with no buffer-exporting objects at all (plain dicts, lists,
dataclasses), and environments where segment creation fails (no
``/dev/shm``, permissions, exhaustion) all fall back to an *inline*
envelope carrying the pickle stream itself — never to a second
serialization of the original object. Sequential and thread executors
never touch this module: values stay in-process.
"""

from __future__ import annotations

import os
import pickle
import struct
import uuid
from typing import Any

__all__ = [
    "SHM_MIN_BYTES",
    "run_prefix",
    "encode_result",
    "decode_result",
    "sweep",
    "sweep_stale",
]

# Frames below this total stay inline: a segment + handle round-trip
# costs two syscalls and a mmap, which only pays for itself on payloads
# well past the pipe-chunking regime.
SHM_MIN_BYTES = 1 << 20

_PREFIX_BASE = "repro-shm"
_SHM_DIR = "/dev/shm"

_INLINE = "inline"
_SEGMENT = "shm"


def run_prefix() -> str:
    """A fresh per-run segment-name prefix embedding the creator pid.

    The pid makes :func:`sweep_stale` possible (liveness check); the
    random suffix keeps concurrent runs from the same pid distinct.
    """
    return f"{_PREFIX_BASE}-{os.getpid()}-{uuid.uuid4().hex[:8]}"


def _dumps_oob(value: Any) -> tuple[bytes, list[pickle.PickleBuffer]]:
    buffers: list[pickle.PickleBuffer] = []
    stream = pickle.dumps(value, protocol=5, buffer_callback=buffers.append)
    return stream, buffers


def _loads_oob(stream: bytes, frames: list[bytearray]) -> Any:
    # bytearray frames keep rehydrated arrays writable, matching what an
    # in-band unpickle would have produced.
    return pickle.loads(stream, buffers=frames)


def encode_result(
    value: Any, prefix: str, threshold: int | None = None
) -> tuple[str, Any]:
    """Worker-side: pickle ``value`` once and pick a transport.

    Returns an envelope tuple — ``("shm", handle)`` where ``handle`` is
    ``(name, pickle_len, frame_lens)``, or ``("inline", stream, frames)``
    with the frames copied to bytes. The envelope itself is small and
    crosses the pool's normal result channel.
    """
    from multiprocessing import shared_memory

    limit = SHM_MIN_BYTES if threshold is None else threshold
    stream, buffers = _dumps_oob(value)
    raws = [buf.raw() for buf in buffers]
    total = len(stream) + sum(r.nbytes for r in raws)
    if not raws or total < limit:
        return (_INLINE, stream, tuple(bytes(r) for r in raws))
    name = f"{prefix}-{uuid.uuid4().hex[:8]}"
    try:
        seg = shared_memory.SharedMemory(name=name, create=True, size=total)
    except OSError:
        # No usable shm backend (or it is full): degrade to inline.
        return (_INLINE, stream, tuple(bytes(r) for r in raws))
    try:
        view = seg.buf
        view[: len(stream)] = stream
        offset = len(stream)
        frame_lens = []
        for raw in raws:
            n = raw.nbytes
            view[offset : offset + n] = raw  # raw() is already a flat "B" view
            offset += n
            frame_lens.append(n)
        handle = (seg.name, len(stream), tuple(frame_lens))
    except BaseException:
        seg.close()
        try:
            seg.unlink()
        except OSError:
            pass
        raise
    finally:
        for buf in buffers:
            buf.release()
    # Hand ownership to the handle holder: without this, the worker's
    # resource tracker would unlink the segment when the worker exits.
    _untrack(seg.name)
    seg.close()
    return (_SEGMENT, handle)


def _untrack(name: str) -> None:
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister("/" + name.lstrip("/"), "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary
        pass


def decode_result(envelope: tuple[str, Any] | Any) -> Any:
    """Coordinator-side: rebuild the value and release its segment."""
    from multiprocessing import shared_memory

    if not (isinstance(envelope, tuple) and envelope and envelope[0] in (_INLINE, _SEGMENT)):
        raise ValueError("malformed shm transport envelope")
    if envelope[0] == _INLINE:
        _, stream, frames = envelope
        return _loads_oob(stream, [bytearray(f) for f in frames])
    _, (name, pickle_len, frame_lens) = envelope
    seg = shared_memory.SharedMemory(name=name)
    try:
        view = seg.buf
        stream = bytes(view[:pickle_len])
        frames: list[bytearray] = []
        offset = pickle_len
        for n in frame_lens:
            frames.append(bytearray(view[offset : offset + n]))
            offset += n
        return _loads_oob(stream, frames)
    finally:
        seg.close()
        try:
            seg.unlink()
        except OSError:
            # Already gone (swept, or a duplicate delivery): releasing is
            # idempotent.
            pass


def _segment_names(glob_prefix: str) -> list[str]:
    if not os.path.isdir(_SHM_DIR):  # pragma: no cover - non-Linux
        return []
    try:
        entries = os.listdir(_SHM_DIR)
    except OSError:  # pragma: no cover - shm dir vanished
        return []
    return sorted(e for e in entries if e.startswith(glob_prefix))


def sweep(prefix: str) -> list[str]:
    """Remove every surviving segment of one run; returns removed names.

    Called at run end: any segment still carrying the run's prefix was
    orphaned by a crashed or killed worker (the coordinator unlinks the
    ones it consumes).
    """
    removed = []
    for name in _segment_names(prefix):
        try:
            os.unlink(os.path.join(_SHM_DIR, name))
            removed.append(name)
        except OSError:
            pass
    return removed


def sweep_stale() -> list[str]:
    """Remove segments left by *dead* processes (crashed coordinators).

    A segment name embeds its creating pid (``repro-shm-<pid>-…``); a
    segment whose pid no longer exists can never be consumed and is
    removed. Live pids — concurrent runs — are left alone.
    """
    removed = []
    for name in _segment_names(_PREFIX_BASE + "-"):
        parts = name.split("-")
        try:
            pid = int(parts[2])
        except (IndexError, ValueError):
            continue
        try:
            os.kill(pid, 0)
            alive = True
        except ProcessLookupError:
            alive = False
        except PermissionError:  # pragma: no cover - other-user process
            alive = True
        if alive:
            continue
        try:
            os.unlink(os.path.join(_SHM_DIR, name))
            removed.append(name)
        except OSError:
            pass
    return removed
